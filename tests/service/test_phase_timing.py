"""Phase-timed revisions: breakdown present, schedules unchanged."""

import pytest

from repro import telemetry
from repro.service import (ChurnConfig, ControllerService,
                           IncrementalController, NetworkState,
                           ServiceConfig, churn_events)
from repro.topology.builder import fig7_topology

PHASE_FIELDS = ("membership_us", "conflict_us", "cache_us",
                "convert_us", "digest_us", "total_us")


def run_churn(phase_timing, updates=200, seed=7):
    topology = fig7_topology()
    events = churn_events(NetworkState.from_topology(topology),
                          ChurnConfig(updates=updates, seed=seed))
    engine = IncrementalController(
        NetworkState.from_topology(topology),
        ServiceConfig(phase_timing=phase_timing))
    service = ControllerService(engine)
    service.run_events(events)
    return service


class TestPhaseBreakdown:
    def test_off_by_default_leaves_phases_none(self):
        service = run_churn(phase_timing=False)
        assert all(r.phases is None for r in service.revisions)

    def test_every_revision_carries_the_breakdown(self):
        service = run_churn(phase_timing=True)
        assert service.revisions
        for revision in service.revisions:
            phases = revision.phases
            assert phases is not None
            assert set(phases) == set(PHASE_FIELDS)
            assert all(v >= 0.0 for v in phases.values())
            parts = sum(v for k, v in phases.items() if k != "total_us")
            assert phases["total_us"] == pytest.approx(parts)

    def test_identical_schedules_with_timing_on_and_off(self):
        """Timing must be pure observation: digests match exactly."""
        off = run_churn(phase_timing=False)
        on = run_churn(phase_timing=True)
        assert [r.digest for r in off.revisions] == \
            [r.digest for r in on.revisions]


class TestPhaseTelemetry:
    def run_traced(self, phase_timing):
        recorder = telemetry.activate()
        try:
            service = run_churn(phase_timing=phase_timing)
        finally:
            telemetry.deactivate()
        return service, recorder

    def test_trace_gains_one_phases_event_per_revision(self):
        service, recorder = self.run_traced(phase_timing=True)
        records = recorder.records()
        revisions = [r for r in records if r["ev"] == "sched_revision"]
        phases = [r for r in records if r["ev"] == "revision_phases"]
        assert len(phases) == len(revisions) == len(service.revisions)
        by_id = {r["id"]: r for r in revisions}
        for record in phases:
            parent = by_id[record["cause"]]       # spans its revision
            assert record["version"] == parent["version"]
            assert record["epoch"] == parent["epoch"]
            for phase_field in PHASE_FIELDS:
                value = record[phase_field]
                # Canonical JSONL rounding: one decimal of a µs.
                assert value == round(value, 1)

    def test_phase_histograms_register(self):
        _service, recorder = self.run_traced(phase_timing=True)
        names = set(recorder.metrics.snapshot())
        for phase in ("membership", "conflict", "cache", "convert",
                      "digest", "total"):
            assert f"service.phase.{phase}_ms" in names

    def test_no_phase_records_when_disabled(self):
        _service, recorder = self.run_traced(phase_timing=False)
        assert not any(r["ev"] == "revision_phases"
                       for r in recorder.records())
        assert not any(name.startswith("service.phase.")
                       for name in recorder.metrics.snapshot())
