"""Suppression fixture: a real violation silenced in place."""

import time  # dominolint: disable=DOM101


def stamp() -> float:
    return time.time()  # dominolint: disable=DOM101
