"""The matrix engine: the reference event loop, a vectorized medium.

Profiling the reference engine on the Fig. 14 workload shows the heap
itself is cheap (~5% of wall time); the cost is the O(reach x active)
per-radio Python bookkeeping on every energy edge, plus the
reception-dict scans behind every per-slot carrier-sense check.  The
matrix engine therefore keeps :class:`~repro.sim.engine.Simulator`'s
loop — same ``Event`` ordering, same rng, same telemetry — and changes
exactly one thing through the engine contract's hooks:
:meth:`make_medium` returns a
:class:`~repro.sim.matrix.medium.MatrixMedium`, which batches each
edge's bookkeeping into numpy operations over all receivers and makes
``channel_busy()`` an O(1) read of the maintained carrier-sense state.

Per-slot MAC countdown timers are *not* batched: each hop's fresh heap
sequence number decides commit order when several stations (or a
station and a frame-end edge) share one float instant, so collapsing
the chain reorders exactly the collisions the model exists to capture
(see :mod:`repro.sim.protocol`).
"""

from __future__ import annotations

from typing import Any, Callable

from ..engine import Simulator


class MatrixSimulator(Simulator):
    """Drop-in engine whose media vectorize the energy bookkeeping.

    Construct it exactly like :class:`~repro.sim.engine.Simulator`;
    everything above the medium is unaware of the swap.  Traces are
    byte-identical to the reference engine per (scheme, topology,
    seed) — the cross-backend digest tests hold this line.
    """

    def make_medium(self, profile: Any, rss_dbm: Callable[[int, int], float],
                    energy_floor_dbm: float = -105.0) -> Any:
        from .medium import MatrixMedium
        return MatrixMedium(self, profile, rss_dbm,
                            energy_floor_dbm=energy_floor_dbm)
