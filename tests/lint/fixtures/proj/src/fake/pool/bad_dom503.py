"""DOM503 fixture: unpicklable callables cross the pool boundary."""

from concurrent.futures import ProcessPoolExecutor


def run_all(points):
    scale = 2.0

    def work(point):
        return point * scale

    with ProcessPoolExecutor() as executor:
        futures = [executor.submit(work, p) for p in points]
        doubled = executor.map(lambda p: p + p, points)
    return futures, list(doubled)
