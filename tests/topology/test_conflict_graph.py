"""Tests for conflict-graph construction and utilities."""

import networkx as nx
import pytest

from repro.topology.builder import fig7_topology, fig13a_topology
from repro.topology.conflict_graph import (ConflictGraphUpdateCost,
                                           build_conflict_graph,
                                           greedy_maximal_extension,
                                           hearing_graph,
                                           is_independent_set)
from repro.topology.links import Link


def test_fig7_downlink_graph_edges():
    topo = fig7_topology()
    imap = topo.interference_map()
    downlinks = [Link(2 * i, 2 * i + 1) for i in range(4)]
    graph = build_conflict_graph(imap, downlinks)
    assert graph.number_of_nodes() == 4
    assert set(map(frozenset, graph.edges)) == {
        frozenset((Link(0, 1), Link(2, 3))),
        frozenset((Link(4, 5), Link(6, 7))),
    }


def test_fig13a_graph_has_no_edges():
    topo = fig13a_topology()
    graph = build_conflict_graph(topo.interference_map(), topo.flows)
    assert graph.number_of_edges() == 0


def test_is_independent_set():
    topo = fig7_topology()
    graph = build_conflict_graph(topo.interference_map(),
                                 [Link(2 * i, 2 * i + 1) for i in range(4)])
    assert is_independent_set(graph, [Link(0, 1), Link(4, 5)])
    assert not is_independent_set(graph, [Link(0, 1), Link(2, 3)])


def test_greedy_maximal_extension():
    topo = fig7_topology()
    links = [Link(2 * i, 2 * i + 1) for i in range(4)]
    graph = build_conflict_graph(topo.interference_map(), links)
    extended = greedy_maximal_extension(graph, [Link(0, 1)], links)
    assert Link(0, 1) in extended
    assert Link(2, 3) not in extended  # conflicts with base
    assert is_independent_set(graph, extended)
    # Maximal: nothing else can be added.
    leftovers = [l for l in links if l not in extended]
    for leftover in leftovers:
        assert not is_independent_set(graph, extended + [leftover])


def test_update_cost_formula_matches_paper():
    """Sec. 5: delta=40, 40 us beacons, 125.1 ms coherence -> ~1.3 %."""
    cost = ConflictGraphUpdateCost()
    star = nx.star_graph(40)  # center has degree 40
    # two-hop graph of a star is complete: every leaf reaches every
    # other leaf through the hub -> max degree stays 40.
    assert cost.two_hop_max_degree(star) == 40
    overhead = cost.overhead_fraction(star)
    assert overhead == pytest.approx(40e-6 * 41 / 125.1e-3, rel=1e-6)
    assert 0.012 < overhead < 0.014


def test_two_hop_degree_on_path():
    cost = ConflictGraphUpdateCost()
    path = nx.path_graph(5)  # 0-1-2-3-4
    # node 2 reaches 0,1,3,4 within two hops.
    assert cost.two_hop_max_degree(path) == 4


def test_two_hop_degree_empty_graph():
    cost = ConflictGraphUpdateCost()
    assert cost.two_hop_max_degree(nx.Graph()) == 0


def test_hearing_graph_uses_cs_range():
    topo = fig7_topology()
    imap = topo.interference_map()
    graph = hearing_graph(imap, [0, 2, 4, 6])
    assert graph.has_edge(0, 2)   # AP2 audible at AP1
    assert graph.has_edge(0, 4)   # AP3 audible at AP1
    assert not graph.has_edge(4, 6)  # AP3/AP4 hidden
