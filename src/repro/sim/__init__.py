"""Discrete-event wireless simulation substrate.

This package replaces the paper's ns-3 substrate: a microsecond-clock
event engine (:mod:`engine`), an RSS/SINR broadcast medium
(:mod:`medium`), per-node half-duplex radios with carrier sensing and
preamble capture (:mod:`radio`), PHY profiles (:mod:`phy`), frames
(:mod:`packet`), nodes (:mod:`node`) and the jittery wired backbone
(:mod:`wire`).
"""

from .engine import Event, SimulationError, Simulator
from .medium import Medium, Transmission
from .node import Network, Node, NodeKind
from .packet import (ACK_BYTES, MAC_HEADER_BYTES, POLL_BYTES, Frame,
                     FrameKind, ack_frame, data_frame, fake_frame)
from .phy import (DOT11G, MAX_NODES_PER_DOMAIN, SIGNATURE_CORRELATION_GAIN_DB,
                  SIGNATURE_US, USRP, PhyProfile, dbm_to_mw, mw_to_dbm,
                  profile_by_name)
from .radio import Radio, Reception
from .wire import WiredBackbone, WireStats

__all__ = [
    "ACK_BYTES", "DOT11G", "Event", "Frame", "FrameKind",
    "MAC_HEADER_BYTES", "MAX_NODES_PER_DOMAIN", "Medium", "Network",
    "Node", "NodeKind", "POLL_BYTES", "PhyProfile", "Radio", "Reception",
    "SIGNATURE_CORRELATION_GAIN_DB", "SIGNATURE_US", "SimulationError",
    "Simulator", "Transmission", "USRP", "WireStats", "WiredBackbone",
    "ack_frame", "data_frame", "dbm_to_mw", "fake_frame", "mw_to_dbm",
    "profile_by_name",
]
