"""Sweep observability: heartbeats, monitor, diagnosis, HTML report.

The contract under test: observability is pure *output* — heartbeat
lines, ETA/stall math, per-point doctor rollups and the HTML report
all derive from worker-side plain data and never perturb what gets
simulated (digests with diagnosis on equal digests with it off).
"""

import json

import pytest

from repro.runner import (ExperimentPoint, SweepMonitor, SweepResult,
                          TopologySpec, render_sweep_report, run_sweep,
                          write_sweep_report)
from repro.runner import __main__ as runner_cli
from repro.runner.progress import doctor_line, finish_record, start_record
from repro.topology.builder import random_t_topology

HORIZON_US = 100_000.0
WARMUP_US = 20_000.0


def _points(n=1):
    return [
        ExperimentPoint(
            scheme=scheme, seed=100 + i,
            topology=TopologySpec(random_t_topology, (6, 2),
                                  {"seed": 100 + i}),
            label=f"{scheme}:{i}", horizon_us=HORIZON_US,
            warmup_us=WARMUP_US,
            run_kwargs={"downlink_mbps": 10.0, "uplink_mbps": 4.0})
        for i in range(n) for scheme in ("dcf", "domino")
    ]


@pytest.fixture(scope="module")
def diagnosed_sweep():
    """One serial traced sweep with worker-side diagnosis."""
    lines = []
    sweep = run_sweep(_points(), workers=0, trace=True, diagnose=True,
                      progress=lines.append)
    return sweep, lines


class TestSweepMonitor:
    def _monitor(self, n=4, workers=2, stall_s=30.0):
        lines = []
        clock = {"now": 0.0}
        monitor = SweepMonitor(n, workers, lines.append,
                               stall_timeout_s=stall_s,
                               clock=lambda: clock["now"])
        return monitor, lines, clock

    def test_finish_line_has_progress_rate_and_eta(self):
        monitor, lines, clock = self._monitor()
        monitor.note(start_record(0, "domino:0"))
        clock["now"] = 10.0
        monitor.note(finish_record(0, "domino:0", wall_s=10.0,
                                   events=50_000))
        assert len(lines) == 1
        assert "[1/4] domino:0 finished in 10.00s" in lines[0]
        assert "5k ev/s" in lines[0]
        # 3 points left x 10 s mean / 2 workers = 15 s.
        assert "ETA 15s" in lines[0]

    def test_no_eta_before_first_finish(self):
        monitor, _, _ = self._monitor()
        assert monitor.eta_s() is None
        monitor.note(finish_record(0, "p", wall_s=2.0, events=1))
        assert monitor.eta_s() == pytest.approx(3.0)

    def test_stall_flagged_once_per_point(self):
        monitor, lines, clock = self._monitor(stall_s=30.0)
        monitor.note(start_record(0, "domino:0"))
        clock["now"] = 29.0
        assert monitor.check_stalls() == []
        clock["now"] = 31.0
        assert monitor.check_stalls() == ["domino:0"]
        assert monitor.check_stalls() == []          # flagged once
        assert any("stall: point domino:0" in line for line in lines)

    def test_finish_clears_stall_state(self):
        monitor, _, clock = self._monitor(stall_s=30.0)
        monitor.note(start_record(0, "p"))
        clock["now"] = 40.0
        monitor.check_stalls()
        monitor.note(finish_record(0, "p", wall_s=40.0, events=1))
        clock["now"] = 80.0
        assert monitor.check_stalls() == []

    def test_finish_line_carries_doctor_verdict(self):
        monitor, lines, _ = self._monitor()
        monitor.note(finish_record(0, "p", wall_s=1.0, events=10,
                                   findings=["fairness degraded: 0.5"],
                                   causality={"makespan_p95_us": 99_500.0}))
        assert "doctor: 1 finding(s) — fairness degraded: 0.5" in lines[0]
        assert "critical p95 99.50 ms" in lines[0]

    def test_doctor_line_truncates_long_findings(self):
        line = doctor_line(["x" * 100])
        assert len(line) < 90 and line.endswith("...")
        assert doctor_line([]) == "doctor: ok"
        assert doctor_line(None) == ""


class TestDiagnosedSweep:
    def test_heartbeats_cover_every_point(self, diagnosed_sweep):
        sweep, lines = diagnosed_sweep
        finishes = [line for line in lines if "finished in" in line]
        assert len(finishes) == len(sweep.points)
        assert f"[{len(sweep.points)}/{len(sweep.points)}]" in finishes[-1]

    def test_points_carry_doctor_and_causality(self, diagnosed_sweep):
        sweep, _ = diagnosed_sweep
        for point in sweep.points:
            assert point.doctor_findings is not None
            assert point.causality is not None or point.scheme != "domino"
        domino = sweep.by_label()["domino:0"]
        assert domino.causality["batches"] > 0
        assert domino.causality["makespan_p95_us"] > 0

    def test_diagnosis_does_not_perturb_digests(self, diagnosed_sweep):
        sweep, _ = diagnosed_sweep
        plain = run_sweep(_points(), workers=0, trace=True)
        assert plain.digests() == sweep.digests()

    def test_json_round_trip(self, diagnosed_sweep, tmp_path):
        sweep, _ = diagnosed_sweep
        path = sweep.save_json(str(tmp_path / "sweep.json"))
        loaded = SweepResult.load_json(path)
        assert [p.label for p in loaded.points] == \
            [p.label for p in sweep.points]
        for a, b in zip(sweep.points, loaded.points):
            assert b.aggregate_mbps == a.aggregate_mbps
            assert b.flows == a.flows
            assert b.trace_digest == a.trace_digest
            assert b.doctor_findings == a.doctor_findings
            assert b.causality == a.causality
            assert b.trace_records is None


class TestHtmlReport:
    def test_report_is_self_contained_html(self, diagnosed_sweep):
        sweep, _ = diagnosed_sweep
        html = render_sweep_report(sweep, title="unit-test sweep")
        assert html.startswith("<!DOCTYPE html>")
        assert "unit-test sweep" in html
        assert "<style>" in html
        # Self-contained: no external fetches of any kind.
        assert "http://" not in html and "https://" not in html
        assert "<script" not in html
        for point in sweep.points:
            assert point.label in html

    def test_report_carries_causality_rollups(self, diagnosed_sweep):
        sweep, _ = diagnosed_sweep
        html = render_sweep_report(sweep)
        assert "Critical-path wait by chain step" in html
        assert "Busiest links on critical paths" in html

    def test_report_without_diagnosis_says_so(self):
        sweep = run_sweep(_points(), workers=0)
        html = render_sweep_report(sweep)
        assert "No causal spans in this sweep" in html

    def test_findings_are_escaped(self, diagnosed_sweep, tmp_path):
        sweep, _ = diagnosed_sweep
        point = sweep.points[0]
        mutated = SweepResult.from_json(sweep.to_json())
        mutated.points[0].doctor_findings = ["<script>alert(1)</script>"]
        html = render_sweep_report(mutated)
        assert "<script>" not in html
        assert "&lt;script&gt;" in html

    def test_write_sweep_report(self, diagnosed_sweep, tmp_path):
        sweep, _ = diagnosed_sweep
        path = write_sweep_report(sweep, str(tmp_path / "report.html"))
        with open(path) as handle:
            assert "<!DOCTYPE html>" in handle.read()


class TestRunnerCli:
    def test_sweep_report_renders_saved_sweep(self, diagnosed_sweep,
                                              tmp_path, capsys):
        sweep, _ = diagnosed_sweep
        saved = sweep.save_json(str(tmp_path / "sweep.json"))
        out = str(tmp_path / "report.html")
        assert runner_cli.main(["sweep-report", saved, "-o", out,
                                "--title", "cli sweep"]) == 0
        assert "wrote" in capsys.readouterr().out
        with open(out) as handle:
            html = handle.read()
        assert "cli sweep" in html

    def test_missing_input_exits_two(self, tmp_path, capsys):
        assert runner_cli.main(
            ["sweep-report", str(tmp_path / "nope.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_garbage_input_exits_two(self, tmp_path, capsys):
        path = tmp_path / "garbage.json"
        path.write_text(json.dumps({"not": "a sweep"}))
        assert runner_cli.main(["sweep-report", str(path)]) == 2
        assert "not a saved sweep" in capsys.readouterr().err
