"""The asyncio controller daemon and its deterministic twin.

Two ways to drive the same epoch processor:

* :meth:`ControllerService.run` — the live asyncio loop: events
  arrive through :meth:`submit`, each epoch drains whatever is queued
  (bounded by ``debounce_events`` and the virtual-time
  ``epoch_gap_us`` window), revises, and fans the revision out to
  subscribers.
* :meth:`ControllerService.run_events` — the replayable-scenario
  driver: the same debouncing applied synchronously to a pre-sorted
  event list, so epoch boundaries — and therefore every revision
  digest and trace record — are a pure function of the scenario.

Latency discipline: wall-clock timing wraps only the *incremental*
path (apply + revise).  The equality oracle's from-scratch recompute,
when enabled, runs outside the timed window — it is harness
machinery, not service work.
"""

from __future__ import annotations

import asyncio
import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from .. import telemetry
from ..telemetry.ops import FlightRecorder, SloTracker
from ..telemetry.wallclock import perf_counter
from .events import ControllerEvent
from .incremental import IncrementalController
from .revision import ScheduleRevision, percentiles_ms


class OracleMismatch(AssertionError):
    """An incremental revision diverged from the from-scratch digest."""


@dataclass
class ServiceStats:
    """End-of-run summary of one service run."""

    revisions: int
    epochs: int
    events: int
    ignored_events: int
    revision_p50_ms: float
    revision_p99_ms: float
    revision_mean_ms: float
    incremental_hit_rate: float
    conflict_checks: int
    oracle_checks: int
    last_digest: str

    def render(self) -> str:
        lines = [
            f"revisions          {self.revisions}",
            f"epochs             {self.epochs}",
            f"events             {self.events}"
            + (f" ({self.ignored_events} ignored)"
               if self.ignored_events else ""),
            f"revision p50       {self.revision_p50_ms:.3f} ms",
            f"revision p99       {self.revision_p99_ms:.3f} ms",
            f"revision mean      {self.revision_mean_ms:.3f} ms",
            f"cache hit rate     {self.incremental_hit_rate:.3f}",
            f"conflict checks    {self.conflict_checks}",
        ]
        if self.oracle_checks:
            lines.append(f"oracle checks      {self.oracle_checks} "
                         "(all digests equal)")
        if self.last_digest:
            lines.append(f"last digest        {self.last_digest[:12]}")
        return "\n".join(lines)


class ControllerService:
    """Long-running controller: event stream in, revisions out."""

    def __init__(self, engine: IncrementalController,
                 check_every: int = 0, keep_revisions: int = 1024,
                 slo: Optional[SloTracker] = None,
                 flight: Optional[FlightRecorder] = None):
        self.engine = engine
        #: Every ``check_every``-th epoch is verified against a
        #: from-scratch recompute (0 disables; 1 checks every epoch).
        self.check_every = check_every
        #: Live SLO judge (optional): fed every revision latency and
        #: every oracle verdict; a ``slo_p99`` breach also triggers the
        #: flight recorder, when armed.
        self.slo = slo
        #: Flight recorder (optional): dumps the trace-ring tail on
        #: oracle mismatch or SLO breach.
        self.flight = flight
        self._trace = telemetry.current()
        self._inbox: "asyncio.Queue[Optional[ControllerEvent]]" = \
            asyncio.Queue()
        self._subscribers: List["asyncio.Queue[ScheduleRevision]"] = []
        self._callbacks: List[Callable[[ScheduleRevision], None]] = []
        self._pending: Optional[ControllerEvent] = None
        self._closing = False
        self._epoch = 0
        self._events_seen = 0
        self._ignored = 0
        self._oracle_checks = 0
        self._oracle_failed = False
        self._last_event_id: Optional[int] = None
        self.latencies_ms: List[float] = []
        #: Most recent revisions (bounded; the digest history is what
        #: tests and the CLI want, not every batch ever).
        self.revisions: List[ScheduleRevision] = []
        self._keep_revisions = keep_revisions

    # ------------------------------------------------------------------
    # Epoch processing (shared by both drivers)
    # ------------------------------------------------------------------
    def _process_epoch(self,
                       events: Sequence[ControllerEvent]) -> ScheduleRevision:
        engine = self.engine
        t0 = perf_counter()
        applied = engine.apply_events(events)
        apply_s = perf_counter() - t0

        expected: Optional[str] = None
        if self.check_every and self._epoch % self.check_every == 0:
            expected = engine.preview_digest()
            self._oracle_checks += 1

        t1 = perf_counter()
        revision = engine.revise(t_us=events[-1].t_us, epoch=self._epoch,
                                 applied=applied)
        latency_ms = (apply_s + (perf_counter() - t1)) * 1_000.0

        revision = dataclasses.replace(revision, latency_ms=latency_ms)
        self._epoch += 1
        self._events_seen += applied.events
        self._ignored += applied.state.ignored_events
        self.latencies_ms.append(latency_ms)
        self.revisions.append(revision)
        if len(self.revisions) > self._keep_revisions:
            del self.revisions[0]

        # The trace records are written *before* the oracle verdict so
        # a flight-recorder dump triggered by a mismatch ends with the
        # mismatched epoch's own sched_revision event.
        tel = self._trace
        if tel.enabled:
            self._last_event_id = tel.sched_revision(
                revision.t_us, version=revision.version,
                epoch=revision.epoch, events=revision.events,
                dirty=revision.dirty_links, full=revision.full,
                digest=revision.trace_digest,
                batch=revision.batch.batch_id, cause=self._last_event_id)
            tel.metrics.histogram("service.revision_ms").observe(latency_ms)
            tel.metrics.counter("service.revisions").inc()
            tel.metrics.counter("service.events").inc(revision.events)
            tel.metrics.gauge("service.dirty_links").set(
                revision.dirty_links)
            if revision.phases is not None:
                phases = revision.phases
                tel.revision_phases(
                    revision.t_us, version=revision.version,
                    epoch=revision.epoch,
                    membership_us=phases["membership_us"],
                    conflict_us=phases["conflict_us"],
                    cache_us=phases["cache_us"],
                    convert_us=phases["convert_us"],
                    digest_us=phases["digest_us"],
                    total_us=phases["total_us"],
                    cause=self._last_event_id)
                for phase, micros in phases.items():
                    name = "service.phase." + phase[:-3] + "_ms"
                    tel.metrics.histogram(name).observe(micros / 1_000.0)
        for queue in self._subscribers:
            queue.put_nowait(revision)
        for callback in self._callbacks:
            callback(revision)

        if self.slo is not None:
            alert = self.slo.observe_latency(latency_ms,
                                             epoch=revision.epoch)
            if alert is not None and self.flight is not None:
                self.flight.dump("slo_breach", {
                    "rule": alert.rule, "epoch": revision.epoch,
                    "value": alert.value, "threshold": alert.threshold})

        if expected is not None:
            ok = revision.digest == expected
            if self.slo is not None:
                self.slo.record_oracle(ok, epoch=revision.epoch)
            if not ok:
                self._oracle_failed = True
                if self.flight is not None:
                    self.flight.dump("oracle_mismatch", {
                        "epoch": revision.epoch,
                        "version": revision.version,
                        "expected_digest": expected[:12],
                        "actual_digest": revision.trace_digest})
                raise OracleMismatch(
                    f"revision {revision.version} "
                    f"(epoch {revision.epoch}): "
                    f"incremental digest {revision.digest[:12]} != "
                    f"from-scratch {expected[:12]}")
        return revision

    def _take_epoch(self, events: Sequence[ControllerEvent],
                    start: int) -> int:
        """How many events from ``start`` fall into one epoch."""
        config = self.engine.config
        first_t = events[start].t_us
        count = 1
        while (start + count < len(events)
               and count < config.debounce_events
               and events[start + count].t_us - first_t
               <= config.epoch_gap_us):
            count += 1
        return count

    # ------------------------------------------------------------------
    # Deterministic replay driver
    # ------------------------------------------------------------------
    def run_events(self,
                   events: Iterable[ControllerEvent]) -> ServiceStats:
        """Replay a scenario: debounce purely on virtual time."""
        ordered = sorted(events, key=lambda e: e.t_us)
        index = 0
        while index < len(ordered):
            count = self._take_epoch(ordered, index)
            self._process_epoch(ordered[index:index + count])
            index += count
        return self.stats()

    # ------------------------------------------------------------------
    # Live asyncio driver
    # ------------------------------------------------------------------
    async def submit(self, event: ControllerEvent) -> None:
        await self._inbox.put(event)

    async def close(self) -> None:
        """Ask :meth:`run` to drain the inbox and return."""
        await self._inbox.put(None)

    def subscribe(self) -> "asyncio.Queue[ScheduleRevision]":
        """A queue receiving every future revision."""
        queue: "asyncio.Queue[ScheduleRevision]" = asyncio.Queue()
        self._subscribers.append(queue)
        return queue

    def on_revision(self,
                    callback: Callable[[ScheduleRevision], None]) -> None:
        """``callback`` runs synchronously after every revision.

        Unlike :meth:`subscribe` this needs no event loop, so the
        deterministic replay driver can host periodic side work (e.g.
        rendering the metrics exporter) between epochs.
        """
        self._callbacks.append(callback)

    # ------------------------------------------------------------------
    # Live introspection (the ops endpoint's providers)
    # ------------------------------------------------------------------
    def healthy(self) -> bool:
        """``/healthz`` verdict: no oracle mismatch so far."""
        return not self._oracle_failed

    def status(self) -> Dict[str, Any]:
        """JSON-ready run state for ``/statusz``."""
        engine = self.engine
        status: Dict[str, Any] = {
            "epoch": self._epoch,
            "revision_version": engine.version,
            "queue_depth": self._inbox.qsize(),
            "events": self._events_seen,
            "ignored_events": self._ignored,
            "revisions": len(self.latencies_ms),
            "oracle_checks": self._oracle_checks,
            "oracle_failed": self._oracle_failed,
            "conflict_checks": engine.conflict_checks,
            "cache": {
                "hits": engine.cache.hits,
                "misses": engine.cache.misses,
                "hit_rate": round(engine.cache.hit_rate, 4),
                "rejects": dict(engine.cache.reject_counts),
            },
            "last_digest": (self.revisions[-1].trace_digest
                            if self.revisions else ""),
        }
        if self.slo is not None:
            status["slo"] = self.slo.status()
        if self.flight is not None:
            status["flight_dumps"] = list(self.flight.dumps)
        return status

    async def run(self) -> ServiceStats:
        """Consume the inbox until :meth:`close`; one epoch per drain.

        Debouncing is the same virtual-time rule as the replay driver,
        applied to whatever is queued at the moment an epoch starts —
        batching therefore depends on producer/consumer interleaving
        (this is the live mode; replays wanting exact reproducibility
        use :meth:`run_events`).
        """
        config = self.engine.config
        while not (self._closing and self._pending is None
                   and self._inbox.empty()):
            first = self._pending
            self._pending = None
            if first is None:
                first = await self._inbox.get()
                if first is None:
                    self._closing = True
                    continue
            epoch: List[ControllerEvent] = [first]
            while len(epoch) < config.debounce_events:
                try:
                    nxt = self._inbox.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is None:
                    self._closing = True
                    break
                if nxt.t_us - epoch[0].t_us > config.epoch_gap_us:
                    self._pending = nxt
                    break
                epoch.append(nxt)
            self._process_epoch(epoch)
            # Let producers run between epochs.
            await asyncio.sleep(0)
        return self.stats()

    # ------------------------------------------------------------------
    # Summary
    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        p50, p99 = percentiles_ms(self.latencies_ms)
        mean = (sum(self.latencies_ms) / len(self.latencies_ms)
                if self.latencies_ms else 0.0)
        return ServiceStats(
            revisions=len(self.latencies_ms),
            epochs=self._epoch,
            events=self._events_seen,
            ignored_events=self._ignored,
            revision_p50_ms=p50,
            revision_p99_ms=p99,
            revision_mean_ms=mean,
            incremental_hit_rate=self.engine.cache.hit_rate,
            conflict_checks=self.engine.conflict_checks,
            oracle_checks=self._oracle_checks,
            last_digest=(self.revisions[-1].digest
                         if self.revisions else ""),
        )
