"""Link type shared by the topology, scheduling and MAC layers.

A link is a directed (sender, receiver) pair; exactly one endpoint is
an AP (Sec. 3.3: "either l.sender or l.receiver must be an AP").
"""

from __future__ import annotations

from typing import NamedTuple


class Link(NamedTuple):
    """Directed link ``src -> dst`` (node ids)."""

    src: int
    dst: int

    @property
    def sender(self) -> int:
        return self.src

    @property
    def receiver(self) -> int:
        return self.dst

    def reversed(self) -> "Link":
        return Link(self.dst, self.src)

    def shares_node(self, other: "Link") -> bool:
        return bool({self.src, self.dst} & {other.src, other.dst})

    def __str__(self) -> str:
        return f"{self.src}->{self.dst}"
