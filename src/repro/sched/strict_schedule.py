"""Strict (slot-indexed) schedules: ``S = [s1, s2, ..., sk]``.

A strict schedule is what any conventional centralized scheduler
produces: per time slot, the set of links that transmit concurrently.
DOMINO's converter (:mod:`repro.core.converter`) turns these into
relative schedules; the omniscient baseline executes them directly
with perfect synchronization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Sequence

from ..topology.links import Link

if TYPE_CHECKING:  # pragma: no cover - annotation-only dependency
    import networkx as nx


@dataclass
class StrictSchedule:
    """An ordered list of slots, each a list of concurrently active links."""

    slots: List[List[Link]] = field(default_factory=list)

    def append(self, slot: Sequence[Link]) -> None:
        self.slots.append(list(slot))

    def __len__(self) -> int:
        return len(self.slots)

    def __iter__(self) -> Iterator[List[Link]]:
        return iter(self.slots)

    def __getitem__(self, index: int) -> List[Link]:
        return self.slots[index]

    def links(self) -> List[Link]:
        """All distinct links appearing anywhere in the schedule."""
        seen: Dict[Link, None] = {}
        for slot in self.slots:
            for link in slot:
                seen.setdefault(link)
        return list(seen)

    def service_counts(self) -> Dict[Link, int]:
        """How many slots each link is scheduled in."""
        counts: Dict[Link, int] = {}
        for slot in self.slots:
            for link in slot:
                counts[link] = counts.get(link, 0) + 1
        return counts

    def validate_against(self, conflict_graph: "nx.Graph[Link]") -> None:
        """Raise ``ValueError`` if any slot contains conflicting links."""
        import itertools
        for idx, slot in enumerate(self.slots):
            for l1, l2 in itertools.combinations(slot, 2):
                if conflict_graph.has_edge(l1, l2):
                    raise ValueError(
                        f"slot {idx} schedules conflicting links {l1} and {l2}"
                    )
