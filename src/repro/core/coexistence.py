"""Coexistence with external networks: CFP/CoP periods (Sec. 5, Fig. 15).

Enterprise deployments share spectrum with WiFi networks they do not
control.  DOMINO's answer: divide time into a **contention-free
period** (CFP — the relative schedule runs, and every transmitted
packet's NAV field reserves the medium to the end of the CFP, so
standard-compliant external nodes defer) and a **contention period**
(CoP — everyone, external nodes included, uses plain carrier sensing).
"The server estimates the amount of external traffic and internal
traffic during the contention period, and adjusts the durations of the
following CFP and CoP to provide fair access to all traffic"; under
light internal load the CFP collapses to zero and the network behaves
as ordinary DCF.

This module provides the period planner/adaptor; the hooks live in
:class:`~repro.core.controller.DominoController` (gap scheduling,
occupancy reports) and the MACs (NAV stamping and honouring).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class CoexistenceConfig:
    """Static bounds for the CFP/CoP split."""

    enabled: bool = True
    initial_cop_us: float = 2_000.0
    min_cop_us: float = 500.0
    max_cop_us: float = 20_000.0
    #: Exponential smoothing factor for occupancy estimates.
    smoothing: float = 0.3
    #: Internal demand (packets/batch) below which the CFP turns off.
    light_traffic_demand: int = 1


@dataclass
class CoexistencePlanner:
    """Adaptive CFP/CoP duration controller.

    The controller feeds it, per batch, the internal demand (packets
    the scheduler wants to place) and the APs' measured busy fraction
    of the previous contention period (external occupancy).  The
    planner sizes the next CoP so that external traffic's airtime
    share approaches its fair share of the observed load mix.
    """

    config: CoexistenceConfig = field(default_factory=CoexistenceConfig)

    def __post_init__(self) -> None:
        self.cop_us = self.config.initial_cop_us
        self.external_occupancy = 0.0   # smoothed busy fraction of CoP
        self.history: List[float] = []

    # ------------------------------------------------------------------
    # Measurements in
    # ------------------------------------------------------------------
    def observe_cop_busy_fraction(self, fraction: float) -> None:
        """Fold one AP's CoP busy-fraction measurement into the estimate."""
        fraction = min(max(fraction, 0.0), 1.0)
        alpha = self.config.smoothing
        self.external_occupancy = (
            (1.0 - alpha) * self.external_occupancy + alpha * fraction
        )
        self.history.append(fraction)

    # ------------------------------------------------------------------
    # Plans out
    # ------------------------------------------------------------------
    def cfp_enabled(self, internal_demand: int) -> bool:
        """Sec. 5: 'Under light traffic, we set CFP duration to 0 to
        turn off scheduling.'"""
        if not self.config.enabled:
            return False
        return internal_demand > self.config.light_traffic_demand

    def next_cop_us(self, cfp_us: float) -> float:
        """Size the next contention period.

        A fully busy CoP means external demand is starved: grow the
        CoP toward parity with the CFP.  An idle CoP means the gap is
        wasted: shrink toward the floor.  The proportional target is
        ``occupancy * cfp`` clamped to the configured bounds — i.e.
        external traffic earns airtime in proportion to how much it
        demonstrably uses.
        """
        target = self.external_occupancy * cfp_us
        self.cop_us = min(max(target, self.config.min_cop_us),
                          self.config.max_cop_us)
        return self.cop_us


@dataclass
class CopOccupancyMeter:
    """Per-AP busy-time accounting over a contention period.

    The AP's radio reports busy/idle edges; between ``open()`` and
    ``close()`` the meter integrates busy time and yields the busy
    fraction that gets reported to the controller.
    """

    _window_start: Optional[float] = None
    _window_end: Optional[float] = None
    _busy_since: Optional[float] = None
    _busy_accum: float = 0.0

    def open(self, now: float, busy_now: bool) -> None:
        self._window_start = now
        self._window_end = None
        self._busy_accum = 0.0
        self._busy_since = now if busy_now else None

    def on_busy(self, now: float) -> None:
        if self._window_start is None or self._busy_since is not None:
            return
        self._busy_since = now

    def on_idle(self, now: float) -> None:
        if self._window_start is None or self._busy_since is None:
            return
        self._busy_accum += now - self._busy_since
        self._busy_since = None

    def close(self, now: float) -> float:
        """End the window; returns the busy fraction (0 when empty)."""
        if self._window_start is None:
            return 0.0
        if self._busy_since is not None:
            self._busy_accum += now - self._busy_since
            self._busy_since = None
        duration = now - self._window_start
        self._window_start = None
        if duration <= 0.0:
            return 0.0
        return min(self._busy_accum / duration, 1.0)

    @property
    def measuring(self) -> bool:
        return self._window_start is not None
