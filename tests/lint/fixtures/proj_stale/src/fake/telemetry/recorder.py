"""Fixture recorder matching the (changed) ping shape."""


class TraceRecorder:
    def __init__(self):
        self.buffer = []

    def _append(self, raw):
        self.buffer.append(raw)

    def ping(self, t, node, burst=0):
        self._append(("ping", t, node, burst))
