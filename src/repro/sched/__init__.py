"""Centralized scheduling: interference map, strict schedules, RAND."""

from .interference_map import InterferenceMap
from .rand_scheduler import RandScheduler
from .strict_schedule import StrictSchedule

__all__ = ["InterferenceMap", "RandScheduler", "StrictSchedule"]
