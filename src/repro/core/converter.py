"""Schedule converter (Sec. 3.3): strict schedule -> relative schedule.

The converter is "a series of procedures that convert a strict
schedule made by an arbitrary scheduler to a relative schedule":

1. **Fake link insertion** — every slot is extended to a *maximal*
   independent set of the link conflict graph; added links are marked
   fake.  This keeps every node triggered frequently so the whole
   network stays slot-synchronized.
2. **Trigger assignment** — for each link ``l`` in slot ``i+1``, pick
   the slot-``i`` node with the highest RSS at ``l.sender`` as its
   trigger, then a secondary trigger in a second pass.  Constraints:
   a link's *inbound* (how many nodes carry its trigger) is capped at
   2 — more would not add robustness but would burn outbound budget —
   and a node's *outbound* (signatures combined in its burst) is
   capped at 4, the Fig. 9 detection limit.
3. **Batch connection** — the last slot of the previous batch is
   retained as the connector: triggers for this batch's first slot are
   assigned from it, so execution flows seamlessly across batches.
   The very first batch has no connector; its APs self-start.
4. **ROP slot insertion** — greedy: for each AP that needs to poll,
   find the earliest slot that can trigger it and interpose an ROP
   slot after it (at most one between any two slots); APs whose links
   do not conflict may share one ROP slot.

Links in slot ``i+1`` that end up with no trigger are dropped from the
batch and reported back for rescheduling (rare once fakes are in).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Dict, FrozenSet, Iterable, List, Optional,
                    Sequence, Set, Tuple)

import networkx as nx

from ..topology.interference_map import InterferenceMap
from ..sched.strict_schedule import StrictSchedule
from ..topology.links import Link
from .conversion_cache import (CachedConversion, ConversionCache, CacheKey,
                               cached_links, clone_batch, key_ap_owner,
                               key_rop_aps, key_semantic_links)
from .relative_schedule import (RelativeBatch, RelativeSlot, SlotEntry,
                                TriggerDuty)


@dataclass
class ConverterConfig:
    max_inbound: int = 2     # triggers carried per next-slot link
    max_outbound: int = 4    # signatures combined per node burst
    insert_fakes: bool = True
    insert_rop: bool = True
    #: Nodes whose links must not be used as fake filler — an
    #: energy-constrained client (Sec. 5) sleeps through uninvolved
    #: slots, which fake insertion would otherwise eliminate.
    fake_exclude_nodes: frozenset = frozenset()


@dataclass
class _DutyBuilder:
    """Mutable duty under construction (frozen TriggerDuty at the end)."""

    node: int
    slot: int
    targets: Set[int] = field(default_factory=set)
    rop_polls: Set[int] = field(default_factory=set)
    rop_flag: bool = False

    @property
    def outbound(self) -> int:
        return len(self.targets) + len(self.rop_polls)

    def freeze(self) -> TriggerDuty:
        return TriggerDuty(node=self.node, slot=self.slot,
                           targets=frozenset(self.targets),
                           rop_polls=frozenset(self.rop_polls),
                           rop_flag=self.rop_flag)


class ScheduleConverter:
    """Stateful converter; retains the connector slot across batches.

    Parameters
    ----------
    imap:
        The central interference map (for trigger reachability and
        RSS-ordered trigger choice).
    conflict_graph:
        Conflict graph over the *full* link universe (flows plus all
        association links available as fakes).
    fake_candidates:
        Links eligible for fake insertion, in deterministic priority
        order.
    """

    def __init__(self, imap: InterferenceMap, conflict_graph: nx.Graph,
                 fake_candidates: Sequence[Link],
                 config: Optional[ConverterConfig] = None,
                 cache: Optional["ConversionCache"] = None):
        self.imap = imap
        self.graph = conflict_graph
        self.fake_candidates = list(fake_candidates)
        self.config = config if config is not None else ConverterConfig()
        #: Optional conversion memo (see repro.core.conversion_cache).
        #: The cache outlives the converter: the controller hands the
        #: same instance to every rebuilt converter and rekeys it when
        #: the control plane changes.
        self.cache = cache
        self._connector: Optional[RelativeSlot] = None
        self._next_slot_index = 0
        self._batch_id = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def reset_connector(self) -> None:
        """Forget the retained connector slot.

        Used when a contention period (Sec. 5 coexistence) separates
        two batches: triggers cannot cross a CoP full of foreign
        traffic, so the next batch self-starts like the very first.
        """
        self._connector = None

    def fork_preview(self, imap: InterferenceMap, conflict_graph: nx.Graph,
                     fake_candidates: Sequence[Link]) -> "ScheduleConverter":
        """Uncached converter at the same stream position.

        The fork starts from a deep-enough clone of the retained
        connector and copies the slot/batch counters, so converting
        the next strict batch through it yields exactly what *this*
        converter would emit — without touching this converter's
        state or the shared cache.  The online controller's equality
        oracle runs its from-scratch recompute through such a fork.
        """
        forked = ScheduleConverter(imap, conflict_graph, fake_candidates,
                                   config=self.config, cache=None)
        if self._connector is not None:
            forked._connector = RelativeSlot(
                index=self._connector.index,
                entries=list(self._connector.entries),
                rop_after=list(self._connector.rop_after))
        forked._next_slot_index = self._next_slot_index
        forked._batch_id = self._batch_id
        return forked

    def purge_links(self, links: Iterable[Link]) -> int:
        """Drop departed links from the retained connector slot.

        When a client disassociates mid-run its links vanish from the
        universe, but the connector — the previous batch's last slot —
        may still carry them; the next conversion would then assign
        trigger duties to a node that left.  The connector is replaced
        (not mutated: the emitted batch still owns the original slot)
        with the surviving entries; if none survive it is reset and the
        next batch self-starts.  Returns the number of entries dropped.
        """
        connector = self._connector
        if connector is None:
            return 0
        gone = frozenset(links)
        if not gone:
            return 0
        kept = [e for e in connector.entries
                if e.link not in gone]
        dropped = len(connector.entries) - len(kept)
        if dropped == 0:
            return 0
        if not kept:
            self._connector = None
        else:
            self._connector = RelativeSlot(index=connector.index,
                                           entries=kept,
                                           rop_after=list(connector.rop_after))
        return dropped

    def revalidate_cache(self, topology_key: str,
                         dirty_links: Iterable[Link],
                         dirty_nodes: Iterable[int],
                         changed_pairs: Iterable[Tuple[Link, Link]] = (),
                         ) -> Tuple[int, int]:
        """Migrate the conversion cache across a *localized* change.

        Must be called after the interference map / conflict graph /
        ``fake_candidates`` already reflect the new control plane.  An
        entry survives (and is re-filed under ``topology_key``) iff a
        fresh conversion of its inputs would still reproduce its
        template byte for byte:

        * **rule 1** — no dirty link appears among its connector
          entries, strict links or template slots (incl. accepted
          fakes).  These are the links whose RSS feeds trigger
          assignment and fake-insertion SINR tests directly; it also
          pins every template *participant* clean, because any
          universe link touching a dirty node is itself dirty;
        * **rule 2** — no dirty node is among its polled ROP APs
          (poll triggering reads RSS toward the AP, and AP/AP
          audibility gates poll sharing, even when no AP link is
          scheduled);
        * **rule 3** — no dirty fake *candidate* would newly be
          accepted into one of its slots (rule 1 guarantees dirty
          candidates were rejected everywhere in the template, so
          divergence can only be a rejection flipping to acceptance);
        * **rule 4** — no *flipped* conflict edge (``changed_pairs``,
          from :func:`repro.topology.conflict_graph.update_conflict_graph`)
          changes a ROP sharing verdict between two distinct polled
          APs.  The per-AP association table is consulted only as the
          OR over ``graph.has_edge`` / ``shares_node`` of the two
          APs' link pairs, so a flip is invisible while any *other*
          pair of the same two cells still conflicts — only a flip
          that toggles that OR (re-evaluated exactly, with the
          pre-flip edge values restored) evicts.

        Everything else the conversion reads — pairwise conflicts,
        additive SINR sums, trigger RSS orderings — involves only
        template links/nodes, which rules 1–2 keep clean, so those
        reads are untouched by construction.  Returns
        ``(kept, evicted)``; ``(0, 0)`` when the converter runs
        uncached.
        """
        cache = self.cache
        if cache is None:
            return (0, 0)
        count_reject = cache.count_reject
        dirty_link_set = frozenset(dirty_links)
        dirty_node_set = frozenset(dirty_nodes)
        dirty_candidates = [cand for cand in self.fake_candidates
                            if cand in dirty_link_set]
        flipped = [(u, v) for u, v in changed_pairs
                   if not u.shares_node(v)]
        flipped_pairs = {frozenset((u, v)) for u, v in flipped}
        # Sharing-verdict changes are a function of the key's per-AP
        # link table only, so memoize per links_key component.
        sharing_changed_memo: Dict[object, bool] = {}

        def sharing_changed(key: CacheKey) -> bool:
            links_component = key[4]
            cached = sharing_changed_memo.get(links_component)
            if cached is not None:
                return cached
            owner = key_ap_owner(key)
            table: Dict[int, List[Link]] = {}
            for link, ap in owner.items():
                table.setdefault(ap, []).append(link)
            changed = any(
                self._sharing_verdict_flipped(owner.get(u), owner.get(v),
                                              table, flipped_pairs)
                for u, v in flipped)
            sharing_changed_memo[links_component] = changed
            return changed

        def keep(key: CacheKey, entry: CachedConversion) -> bool:
            if not dirty_link_set.isdisjoint(key_semantic_links(key)):
                count_reject("rule1")
                return False
            if not dirty_link_set.isdisjoint(cached_links(entry)):
                count_reject("rule1")
                return False
            rop_aps = key_rop_aps(key)
            if not dirty_node_set.isdisjoint(rop_aps):
                count_reject("rule2")
                return False
            if flipped and len(rop_aps) > 1 and self.config.insert_rop:
                if sharing_changed(key):
                    count_reject("rule4")
                    return False
            if self.config.insert_fakes and dirty_candidates:
                if not self._fake_insertion_stable(entry.batch,
                                                   dirty_candidates):
                    count_reject("rule3")
                    return False
            return True

        return cache.refine_topology(topology_key, keep)

    def _sharing_verdict_flipped(
            self, ap_u: Optional[int], ap_v: Optional[int],
            table: Dict[int, List[Link]],
            flipped_pairs: Set[FrozenSet[Link]],
    ) -> bool:
        """Did ``links_conflict(ap_u, ap_v)`` change across the flips?

        Re-evaluates the ROP sharing test's OR twice — once against
        the live graph and once with every flipped edge restored to
        its pre-flip value (an edge in ``flipped_pairs`` toggled, by
        definition of a flip) — and reports whether the outcomes
        differ.
        """
        if ap_u is None or ap_v is None or ap_u == ap_v:
            return False
        or_now = or_before = False
        for la in table.get(ap_u, ()):
            for lb in table.get(ap_v, ()):
                if la.shares_node(lb):
                    return False  # conflicts regardless of any edge
                edge_now = self.graph.has_edge(la, lb)
                if frozenset((la, lb)) in flipped_pairs:
                    edge_before = not edge_now
                else:
                    edge_before = edge_now
                or_now = or_now or edge_now
                or_before = or_before or edge_before
                if or_now and or_before:
                    return False
        return or_now != or_before

    def _fake_insertion_stable(self, batch: RelativeBatch,
                               dirty_candidates: Sequence[Link]) -> bool:
        """Would fake insertion still skip every dirty candidate?

        The caller has established that no dirty link appears in the
        template, so each dirty candidate was (implicitly) rejected in
        every slot.  Replay diverges from a fresh conversion only if
        one of them would *now* be accepted — checked against the same
        chosen-prefix the fresh run would test it with: the real
        entries plus the fakes accepted before it in candidate order.
        """
        order = {link: i for i, link in enumerate(self.fake_candidates)}
        excluded = self.config.fake_exclude_nodes
        for slot in batch.slots:
            real = [e.link for e in slot.entries if not e.fake]
            fakes = [(order.get(e.link, -1), e.link)
                     for e in slot.entries if e.fake]
            fakes.sort()
            for cand in dirty_candidates:
                prefix = real + [link for pos, link in fakes
                                 if pos < order[cand]]
                if self._fake_would_accept(cand, prefix, excluded):
                    return False
        return True

    def _fake_would_accept(self, cand: Link, chosen: Sequence[Link],
                           excluded: frozenset) -> bool:
        """One candidate's accept test, mirroring :meth:`_insert_fakes`."""
        if cand in chosen:
            return False
        if excluded and (cand.src in excluded or cand.dst in excluded):
            return False
        if any(cand.shares_node(link) for link in chosen):
            return False
        if any(self.graph.has_edge(cand, link) for link in chosen):
            return False
        return self.imap.set_survives([*chosen, cand])

    def convert(self, strict: StrictSchedule,
                rop_aps: Sequence[int] = (),
                ap_links: Optional[Dict[int, List[Link]]] = None) -> RelativeBatch:
        """Convert one strict batch; returns the distributable batch.

        ``rop_aps`` lists APs that must poll during this batch;
        ``ap_links`` maps each such AP to its association links (for
        the ROP-slot sharing test).
        """
        cache = self.cache
        key = None
        if cache is not None:
            key = cache.key(self._connector, strict, rop_aps, ap_links)
            template = cache.get(key)
            if template is not None:
                return self._replay(template)
        base = self._next_slot_index
        incoming_connector = self._connector
        connector_rop_len = (len(incoming_connector.rop_after)
                             if incoming_connector is not None else 0)
        batch = RelativeBatch(batch_id=self._batch_id,
                              initial=self._connector is None)
        self._batch_id += 1

        slots: List[RelativeSlot] = []
        if self._connector is not None:
            slots.append(self._connector)
        for strict_slot in strict:
            entries = [SlotEntry(link=link, fake=False) for link in strict_slot]
            if self.config.insert_fakes:
                entries = self._insert_fakes(entries)
            slots.append(RelativeSlot(index=self._next_slot_index,
                                      entries=entries))
            self._next_slot_index += 1

        duties: Dict[Tuple[int, int], _DutyBuilder] = {}
        for prev, nxt in zip(slots, slots[1:]):
            self._assign_triggers(prev, nxt, duties, batch)

        if self.config.insert_rop and rop_aps:
            self._insert_rop_slots(slots, rop_aps, ap_links or {}, duties,
                                   batch)

        # The connector belongs to the previous batch's execution; only
        # its *duties* ship with this batch.
        own_slots = slots[1:] if self._connector is not None else slots
        batch.slots = own_slots
        batch.duties = {key: builder.freeze()
                        for key, builder in duties.items()}
        if own_slots:
            self._connector = own_slots[-1]
        batch.validate()
        if cache is not None:
            appended = ([] if incoming_connector is None else
                        list(incoming_connector.rop_after[connector_rop_len:]))
            cache.put(key, base, self._next_slot_index - base, batch,
                      appended)
        return batch

    def _replay(self, template: "CachedConversion") -> RelativeBatch:
        """Reissue a cached conversion under the current numbering.

        Equivalent to running :meth:`convert` again on the same
        inputs: slot indices shift by however far the global counter
        has advanced since the template was built, the batch takes the
        next batch id, and the ROP polls the original run appended to
        its incoming connector are appended to the live one.
        """
        delta = self._next_slot_index - template.base
        batch = clone_batch(template.batch, delta=delta,
                            batch_id=self._batch_id)
        self._batch_id += 1
        self._next_slot_index += template.n_new_slots
        if self._connector is not None and template.connector_rop_append:
            self._connector.rop_after.extend(template.connector_rop_append)
        if batch.slots:
            self._connector = batch.slots[-1]
        return batch

    # ------------------------------------------------------------------
    # 1. Fake link insertion
    # ------------------------------------------------------------------
    def _insert_fakes(self, entries: List[SlotEntry]) -> List[SlotEntry]:
        """Extend a slot to a maximal independent set with fake links.

        Beyond pairwise graph independence, the whole slot must pass
        the additive-interference test: several individually tolerable
        interferers can still sum up to break a marginal link.
        """
        chosen = [e.link for e in entries]
        out = list(entries)
        excluded = self.config.fake_exclude_nodes
        for cand in self.fake_candidates:
            if cand in chosen:
                continue
            if excluded and (cand.src in excluded or cand.dst in excluded):
                continue
            if any(cand.shares_node(link) for link in chosen):
                continue
            if any(self.graph.has_edge(cand, link) for link in chosen):
                continue
            if not self.imap.set_survives([*chosen, cand]):
                continue
            out.append(SlotEntry(link=cand, fake=True))
            chosen.append(cand)
        return out

    # ------------------------------------------------------------------
    # 2. Trigger assignment
    # ------------------------------------------------------------------
    def _assign_triggers(self, prev: RelativeSlot, nxt: RelativeSlot,
                         duties: Dict[Tuple[int, int], _DutyBuilder],
                         batch: RelativeBatch) -> None:
        """Wire triggers from ``prev``'s participants to ``nxt``'s senders."""
        candidates = sorted(prev.participants())
        inbound: Dict[Link, List[int]] = {e.link: [] for e in nxt.entries}

        def try_assign(entry: SlotEntry, foreign_only: bool = False) -> bool:
            """Pick one more trigger node for ``entry``.

            ``foreign_only`` restricts the choice to nodes outside the
            link's own endpoints: a backup trigger drawn from a
            *different* chain is what couples chains together so that
            "last trigger wins" can pull them into global alignment
            (Sec. 3.4's healing needs cross-chain listening).
            """
            link = entry.link
            target = link.src
            best: Optional[int] = None
            best_rss = float("-inf")
            for node in candidates:
                if node in inbound[link]:
                    continue
                if foreign_only and node in (link.src, link.dst):
                    continue
                duty = duties.get((node, prev.index))
                if duty is not None and duty.outbound >= self.config.max_outbound:
                    continue
                if node == target:
                    # Self-trigger: the target was active in the previous
                    # slot and needs no over-the-air wake-up.  Prefer it
                    # unconditionally; costs no outbound budget.
                    best = node
                    best_rss = float("inf")
                    break
                if not self.imap.node_can_trigger(node, target):
                    continue
                rss = self.imap.rss_dbm(node, target)
                if rss > best_rss:
                    best = node
                    best_rss = rss
            if best is None:
                return False
            inbound[link].append(best)
            if best != target:
                duty = duties.setdefault(
                    (best, prev.index), _DutyBuilder(node=best, slot=prev.index)
                )
                duty.targets.add(target)
            return True

        # First pass: one trigger per next-slot link; second pass: a
        # backup trigger where budget allows, preferably from a foreign
        # chain (falling back to any node when no foreign one reaches).
        survivors: List[SlotEntry] = []
        for entry in nxt.entries:
            if try_assign(entry):
                survivors.append(entry)
            elif entry.fake:
                continue  # silently drop untriggerable fakes
            else:
                batch.untriggerable.append((nxt.index, entry.link))
        for entry in survivors:
            if len(inbound[entry.link]) < self.config.max_inbound:
                if not try_assign(entry, foreign_only=True):
                    try_assign(entry)

        nxt.entries = [e for e in nxt.entries
                       if e in survivors]
        for entry in survivors:
            batch.inbound[(nxt.index, entry.link)] = inbound[entry.link]

    # ------------------------------------------------------------------
    # 4. ROP slot insertion
    # ------------------------------------------------------------------
    def _insert_rop_slots(self, slots: List[RelativeSlot],
                          rop_aps: Sequence[int],
                          ap_links: Dict[int, List[Link]],
                          duties: Dict[Tuple[int, int], _DutyBuilder],
                          batch: RelativeBatch) -> None:
        """Greedy insertion per Sec. 3.3."""
        polls_after: Dict[int, List[int]] = {}  # slot list position -> AP ids

        def links_conflict(ap_a: int, ap_b: int) -> bool:
            for la in ap_links.get(ap_a, []):
                for lb in ap_links.get(ap_b, []):
                    if self.graph.has_edge(la, lb) or la.shares_node(lb):
                        return True
            return False

        def can_share(ap_a: int, ap_b: int) -> bool:
            """Sec. 3.3 requires the APs' links not to conflict; we
            additionally keep mutually audible APs in separate polling
            slots so each can hear the other's poll — the reference
            broadcast that re-anchors chains (simultaneous polls would
            leave audible AP clusters permanently deaf to each other's
            timing)."""
            if links_conflict(ap_a, ap_b):
                return False
            return not self.imap.in_cs_range(ap_a, ap_b)

        for ap in rop_aps:
            placed = False
            for pos in range(len(slots) - 1):
                slot = slots[pos]
                trigger_node = self._rop_trigger_node(slot, ap, duties)
                if pos in polls_after:
                    # An ROP slot already sits here: share if compatible.
                    if all(can_share(ap, other)
                           for other in polls_after[pos]):
                        if trigger_node is None:
                            continue
                        self._add_rop_duty(trigger_node, slot, ap, duties)
                        polls_after[pos].append(ap)
                        slot.rop_after.append(ap)
                        batch.rop_polls.setdefault(slot.index, []).append(ap)
                        placed = True
                        break
                    continue
                if trigger_node is None:
                    continue
                self._add_rop_duty(trigger_node, slot, ap, duties)
                polls_after[pos] = [ap]
                slot.rop_after.append(ap)
                batch.rop_polls.setdefault(slot.index, []).append(ap)
                self._flag_rop(slot, duties)
                placed = True
                break
            if not placed:
                # No slot can trigger this AP this batch; it polls in a
                # later batch (its stale queue picture self-corrects).
                continue

    def _rop_trigger_node(self, slot: RelativeSlot, ap: int,
                          duties: Dict[Tuple[int, int], _DutyBuilder]
                          ) -> Optional[int]:
        """Best slot participant that can wake ``ap`` for polling."""
        best: Optional[int] = None
        best_rss = float("-inf")
        for node in sorted(slot.participants()):
            if node == ap:
                return ap  # the AP is active in the slot: self-timed poll
            duty = duties.get((node, slot.index))
            if duty is not None and duty.outbound >= self.config.max_outbound:
                continue
            if not self.imap.node_can_trigger(node, ap):
                continue
            rss = self.imap.rss_dbm(node, ap)
            if rss > best_rss:
                best = node
                best_rss = rss
        return best

    def _add_rop_duty(self, trigger_node: int, slot: RelativeSlot, ap: int,
                      duties: Dict[Tuple[int, int], _DutyBuilder]) -> None:
        if trigger_node == ap:
            return  # self-timed; no over-the-air signature needed
        duty = duties.setdefault(
            (trigger_node, slot.index),
            _DutyBuilder(node=trigger_node, slot=slot.index),
        )
        duty.rop_polls.add(ap)

    def _flag_rop(self, slot: RelativeSlot,
                  duties: Dict[Tuple[int, int], _DutyBuilder]) -> None:
        """Mark every duty of ``slot`` with the ROP flag: next-slot
        senders must wait one polling slot before transmitting."""
        for (node, slot_idx), duty in duties.items():
            if slot_idx == slot.index:
                duty.rop_flag = True
