"""Behavioural tests for the CENTAUR baseline."""


from repro.mac.centaur import CentaurApMac, build_centaur_network
from repro.metrics.stats import FlowRecorder
from repro.sim.engine import Simulator
from repro.topology.builder import (fig7_topology, fig13a_topology,
                                    fig13b_topology)
from repro.traffic.udp import SaturatedSource

HORIZON = 400_000.0


def run_centaur(topology, horizon=HORIZON, seed=1, epoch_packets=5):
    sim = Simulator(seed=seed)
    medium, macs, controller = build_centaur_network(
        sim, topology, epoch_packets=epoch_packets)
    recorder = FlowRecorder(topology.flows, warmup_us=horizon * 0.1)
    recorder.attach_all(macs.values())
    for flow in topology.flows:
        SaturatedSource(sim, macs[flow.src], flow.dst).start()
    controller.start()
    sim.run(until=horizon)
    return sim, macs, controller, recorder


def test_conflicting_downlinks_have_no_ack_timeouts():
    """Sec. 4.2.3: CENTAUR schedules conflicting downlinks apart, so
    (unlike DCF) it sees essentially zero ACK timeouts."""
    sim, macs, controller, recorder = run_centaur(fig7_topology())
    timeouts = sum(m.stats.ack_timeouts for m in macs.values())
    assert timeouts == 0
    assert recorder.aggregate_throughput_mbps(HORIZON) > 10.0


def test_epochs_form_batch_barrier():
    """No epoch is dispatched before the previous one completed."""
    sim, macs, controller, recorder = run_centaur(fig13a_topology())
    epochs = controller.epochs
    assert len(epochs) > 10
    for prev, nxt in zip(epochs, epochs[1:]):
        assert prev.completed_at is not None
        assert nxt.dispatched_at >= prev.completed_at


def test_aligned_exposure_beats_serialization():
    """Fig. 13a: aligned exposed links give CENTAUR a big win over
    one serialized channel (~8 Mbps)."""
    _, _, _, recorder = run_centaur(fig13a_topology())
    assert recorder.aggregate_throughput_mbps(HORIZON) > 16.0


def test_misaligned_exposure_pathology():
    """Fig. 13b / Table 3: CENTAUR falls below its own 13a result when
    the senders cannot align."""
    a = run_centaur(fig13a_topology())[3].aggregate_throughput_mbps(HORIZON)
    b = run_centaur(fig13b_topology())[3].aggregate_throughput_mbps(HORIZON)
    assert b < a


def test_grants_gate_transmissions():
    """An AP with a backlog but no grant must stay silent."""
    topology = fig13a_topology()
    sim = Simulator(seed=1)
    medium = topology.build_medium(sim)
    mac = CentaurApMac(sim, topology.network.nodes[0], medium)
    from repro.mac.dcf import DcfMac
    client = DcfMac(sim, topology.network.nodes[1], medium)  # ACKs back
    from repro.sim.packet import data_frame
    for seq in range(5):
        mac.enqueue(data_frame(0, 1, 512, seq, 0.0))
    sim.run(until=50_000.0)
    assert mac.stats.data_tx == 0
    mac.grant(1, {1: 3})
    sim.run(until=100_000.0)
    assert mac.stats.data_tx == 3  # exactly the granted credits
    assert mac.stats.successes == 3


def test_done_reported_when_grant_exhausted():
    topology = fig13a_topology()
    sim = Simulator(seed=1)
    medium = topology.build_medium(sim)
    mac = CentaurApMac(sim, topology.network.nodes[0], medium)
    reports = []
    mac.send_to_controller = reports.append
    from repro.sim.packet import data_frame
    mac.enqueue(data_frame(0, 1, 512, 0, 0.0))
    mac.grant(7, {1: 1})
    sim.run(until=50_000.0)
    assert reports == [{"type": "epoch_done", "ap": 0, "grant": 7}]


def test_done_reported_for_empty_queue_grant():
    """A grant the AP cannot use (queue empty) is reported done
    immediately — the barrier must not deadlock."""
    topology = fig13a_topology()
    sim = Simulator(seed=1)
    medium = topology.build_medium(sim)
    mac = CentaurApMac(sim, topology.network.nodes[0], medium)
    reports = []
    mac.send_to_controller = reports.append
    mac.grant(3, {1: 4})
    sim.run(until=10_000.0)
    assert any(r["grant"] == 3 for r in reports)
