"""Tests for packet splitting / aggregation (Sec. 3.5 virtual packets)."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.packet import data_frame
from repro.traffic.virtual_packets import (Reassembler, VirtualPacketizer)


def frame(payload, seq=0, dst=2):
    return data_frame(1, dst, payload, seq, enqueued_at=5.0)


class TestSplit:
    def test_small_packet_passes_through(self):
        packetizer = VirtualPacketizer(512)
        original = frame(300)
        assert packetizer.split(original) == [original]

    def test_large_packet_fragments(self):
        packetizer = VirtualPacketizer(512)
        fragments = packetizer.split(frame(1500, seq=9))
        assert len(fragments) == 3
        assert [f.payload_bytes for f in fragments] == [512, 512, 476]
        assert all(f.meta["orig_seq"] == 9 for f in fragments)
        assert [f.meta["frag"] for f in fragments] == [0, 1, 2]
        bundles = {f.meta["bundle"] for f in fragments}
        assert len(bundles) == 1

    def test_each_fragment_fits_one_slot(self):
        packetizer = VirtualPacketizer(512)
        for size in (513, 1024, 4096, 10_000):
            for fragment in packetizer.split(frame(size)):
                assert fragment.payload_bytes <= 512

    def test_non_data_rejected(self):
        from repro.sim.packet import ack_frame
        with pytest.raises(ValueError):
            VirtualPacketizer(512).split(ack_frame(1, 2, 0))

    def test_invalid_slot_size(self):
        with pytest.raises(ValueError):
            VirtualPacketizer(0)


class TestAggregate:
    def test_small_packets_packed(self):
        packetizer = VirtualPacketizer(512)
        frames = [frame(100, seq=i) for i in range(4)]
        out = packetizer.aggregate(frames)
        assert len(out) == 1
        assert out[0].payload_bytes == 400
        assert len(out[0].meta["aggregated"]) == 4

    def test_capacity_respected(self):
        packetizer = VirtualPacketizer(512)
        frames = [frame(200, seq=i) for i in range(5)]  # 1000 B total
        out = packetizer.aggregate(frames)
        assert len(out) == 3  # 400, 400, 200
        assert all(f.payload_bytes <= 512 for f in out)

    def test_different_destinations_not_mixed(self):
        packetizer = VirtualPacketizer(512)
        frames = [frame(100, seq=0, dst=2), frame(100, seq=1, dst=3)]
        out = packetizer.aggregate(frames)
        assert len(out) == 2
        assert {f.dst for f in out} == {2, 3}

    def test_oversized_packet_mid_stream_is_split(self):
        packetizer = VirtualPacketizer(512)
        frames = [frame(100, seq=0), frame(1200, seq=1), frame(100, seq=2)]
        out = packetizer.aggregate(frames)
        assert sum(f.payload_bytes for f in out) == 1400
        assert all(f.payload_bytes <= 512 for f in out)

    def test_lone_packet_not_wrapped(self):
        packetizer = VirtualPacketizer(512)
        original = frame(400)
        out = packetizer.aggregate([original])
        assert out == [original]
        assert "aggregated" not in out[0].meta


class TestReassembly:
    def test_split_roundtrip(self):
        packetizer = VirtualPacketizer(512)
        reassembler = Reassembler()
        fragments = packetizer.split(frame(1500, seq=9))
        results = []
        for i, fragment in enumerate(fragments):
            results.extend(reassembler.accept(fragment, now=100.0 + i))
        assert len(results) == 1
        packet = results[0]
        assert packet.seq == 9
        assert packet.payload_bytes == 1500
        assert packet.enqueued_at == 5.0
        assert packet.completed_at == 102.0
        assert reassembler.pending_bundles() == 0

    def test_aggregate_roundtrip(self):
        packetizer = VirtualPacketizer(512)
        reassembler = Reassembler()
        out = packetizer.aggregate([frame(100, seq=3), frame(100, seq=4)])
        results = reassembler.accept(out[0], now=50.0)
        assert [r.seq for r in results] == [3, 4]
        assert all(r.payload_bytes == 100 for r in results)

    def test_partial_bundle_waits(self):
        packetizer = VirtualPacketizer(512)
        reassembler = Reassembler()
        fragments = packetizer.split(frame(1024, seq=1))
        assert reassembler.accept(fragments[0], 1.0) == []
        assert reassembler.pending_bundles() == 1

    def test_plain_packet_passes(self):
        reassembler = Reassembler()
        results = reassembler.accept(frame(256, seq=7), now=9.0)
        assert len(results) == 1 and results[0].seq == 7

    def test_stale_bundles_dropped(self):
        packetizer = VirtualPacketizer(512)
        reassembler = Reassembler()
        for seq in range(20):
            fragments = packetizer.split(frame(1024, seq=seq))
            reassembler.accept(fragments[0], 1.0)  # never complete
        reassembler.drop_stale(older_than_bundle_count=5)
        assert reassembler.pending_bundles() == 5
        assert reassembler.incomplete_dropped == 15


@given(st.integers(min_value=1, max_value=20_000))
def test_property_split_conserves_bytes(size):
    packetizer = VirtualPacketizer(512)
    fragments = packetizer.split(frame(size))
    assert sum(f.payload_bytes for f in fragments) == size
    assert len(fragments) == packetizer.virtual_packet_count(size)


@given(st.lists(st.integers(min_value=1, max_value=512), min_size=1,
                max_size=25))
def test_property_aggregate_conserves_packets(sizes):
    packetizer = VirtualPacketizer(512)
    reassembler = Reassembler()
    frames = [frame(s, seq=i) for i, s in enumerate(sizes)]
    out = packetizer.aggregate(frames)
    recovered = []
    for virtual in out:
        recovered.extend(reassembler.accept(virtual, 1.0))
    assert [r.seq for r in recovered] == list(range(len(sizes)))
    assert [r.payload_bytes for r in recovered] == sizes
