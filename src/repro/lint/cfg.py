"""Per-function control-flow graphs for the dataflow rules.

The granularity is the *statement*: each simple statement (and each
compound statement's header) is one CFG node, with successor edges for
sequencing, branches, loop back-edges, ``break``/``continue``, and the
conservative "any statement in a ``try`` body may jump to any
handler" rule.  ``return``/``raise``/``continue``/``break`` end their
block (no fall-through edge).

Two questions the rule families ask of a CFG:

* :func:`await_crossed` — which statements may execute *after* an
  ``await`` has yielded the event loop (DOM501: shared state observed
  before the await can be stale by the time these statements run).
* :func:`guarded_statements` — which statements sit lexically inside a
  ``with``/``async with`` whose context manager looks like a lock or
  epoch guard (the explicit-guard exemption).

The builder is deliberately conservative: extra edges make the await
analysis *more* suspicious, never less, which is the right failure
mode for a determinism linter.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Sequence, Set, Tuple, Union

FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Context-manager name fragments recognized as an explicit guard for
#: the DOM501 exemption (``async with self._revision_lock:`` etc.).
GUARD_NAME_FRAGMENTS = ("lock", "guard", "epoch", "mutex")


class CFG:
    """Statement-level control-flow graph of one function body."""

    def __init__(self) -> None:
        self.stmts: List[ast.stmt] = []
        self.succ: Dict[int, Set[int]] = {}

    def add(self, stmt: ast.stmt) -> int:
        node = len(self.stmts)
        self.stmts.append(stmt)
        self.succ[node] = set()
        return node

    def edge(self, src: int, dst: int) -> None:
        self.succ[src].add(dst)

    def reachable_from(self, roots: Iterable[int]) -> Set[int]:
        """All nodes reachable along one or more edges from ``roots``."""
        seen: Set[int] = set()
        frontier = list(roots)
        while frontier:
            node = frontier.pop()
            for nxt in self.succ.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen


class _Builder:
    """Recursive-descent CFG construction with loop/exception frames."""

    def __init__(self) -> None:
        self.cfg = CFG()
        # (continue-targets, break-collector) per enclosing loop.
        self._loops: List[Tuple[int, List[int]]] = []

    # -- plumbing -------------------------------------------------------
    def _link(self, preds: Sequence[int], node: int) -> None:
        for pred in preds:
            self.cfg.edge(pred, node)

    def _new(self, stmt: ast.stmt, preds: Sequence[int]) -> int:
        node = self.cfg.add(stmt)
        self._link(preds, node)
        return node

    # -- statement dispatch ---------------------------------------------
    def block(self, stmts: Sequence[ast.stmt],
              preds: Sequence[int]) -> List[int]:
        """Thread ``stmts``; returns the exits that fall through.

        Statements after a terminator still get nodes (entered from
        nowhere — they are unreachable, and the await analysis treats
        them accordingly).
        """
        current = list(preds)
        for stmt in stmts:
            current = self.statement(stmt, current)
        return current

    def statement(self, stmt: ast.stmt,
                  preds: Sequence[int]) -> List[int]:
        node = self._new(stmt, preds)

        if isinstance(stmt, (ast.If,)):
            body_exits = self.block(stmt.body, [node])
            else_exits = self.block(stmt.orelse, [node]) if stmt.orelse \
                else [node]
            return [*body_exits, *else_exits]

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            breaks: List[int] = []
            self._loops.append((node, breaks))
            body_exits = self.block(stmt.body, [node])
            self._loops.pop()
            self._link(body_exits, node)  # back edge
            else_exits = self.block(stmt.orelse, [node]) if stmt.orelse \
                else [node]
            return [*else_exits, *breaks]

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self.block(stmt.body, [node])

        if isinstance(stmt, ast.Try):
            body_start = len(self.cfg.stmts)
            body_exits = self.block(stmt.body, [node])
            body_nodes = range(body_start, len(self.cfg.stmts))
            exits: List[int] = []
            for handler in stmt.handlers:
                # Any statement in the try body may transfer to any
                # handler — the conservative exception edge.
                entry = self._new(handler, [node])  # type: ignore[arg-type]
                for body_node in body_nodes:
                    self.cfg.edge(body_node, entry)
                exits.extend(self.block(handler.body, [entry]))
            else_exits = self.block(stmt.orelse, body_exits) \
                if stmt.orelse else list(body_exits)
            exits.extend(else_exits)
            if stmt.finalbody:
                return self.block(stmt.finalbody, exits or [node])
            return exits

        if isinstance(stmt, ast.Match):
            exits = []
            for case in stmt.cases:
                exits.extend(self.block(case.body, [node]))
            exits.append(node)  # no case may match
            return exits

        if isinstance(stmt, ast.Break):
            if self._loops:
                self._loops[-1][1].append(node)
            return []
        if isinstance(stmt, ast.Continue):
            if self._loops:
                self.cfg.edge(node, self._loops[-1][0])
            return []
        if isinstance(stmt, (ast.Return, ast.Raise)):
            return []

        # Nested defs/classes are opaque single nodes: their bodies are
        # separate CFGs built on demand by the rules.
        return [node]


def build_cfg(func: FuncDef) -> CFG:
    """The statement-level CFG of ``func``'s body.

    Node 0 is a synthetic entry carrying the ``def`` header itself.
    """
    builder = _Builder()
    entry = builder.cfg.add(func)  # synthetic entry: the def header
    builder.block(func.body, [entry])
    return builder.cfg


def contains_await(stmt: ast.AST) -> bool:
    """Does ``stmt`` suspend?  Nested defs/lambdas are opaque."""
    if isinstance(stmt, (ast.AsyncFor, ast.AsyncWith)):
        return True

    frontier: List[ast.AST] = [stmt]
    while frontier:
        node = frontier.pop()
        if node is not stmt and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                       ast.ClassDef)):
            continue  # a nested scope's awaits are its own business
        if isinstance(node, (ast.Await, ast.AsyncFor, ast.AsyncWith)):
            return True
        frontier.extend(ast.iter_child_nodes(node))
    return False


def await_crossed(cfg: CFG) -> Set[int]:
    """Node ids that may execute after an ``await`` has suspended.

    A node that *itself* awaits is included: by the time the rest of
    the statement (e.g. the store in ``self.x = await q.get()``) runs,
    the loop has been yielded.  The synthetic entry (node 0, the
    ``def`` header) never counts as an await of its own.
    """
    await_nodes = [
        node for node, stmt in enumerate(cfg.stmts)
        if node != 0
        and not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef))
        and contains_await(stmt)
    ]
    crossed = cfg.reachable_from(await_nodes)
    crossed.update(await_nodes)
    return crossed


def _names_in(expr: ast.AST) -> Iterable[str]:
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr


def _looks_like_guard(item: ast.withitem) -> bool:
    return any(
        any(fragment in name.lower() for fragment in GUARD_NAME_FRAGMENTS)
        for name in _names_in(item.context_expr)
    )


def guarded_statements(func: FuncDef) -> Set[int]:
    """Line numbers lexically inside a lock/guard ``with`` block."""
    lines: Set[int] = set()

    def visit(stmts: Sequence[ast.stmt], inside: bool) -> None:
        for stmt in stmts:
            here = inside
            if isinstance(stmt, (ast.With, ast.AsyncWith)) and any(
                    _looks_like_guard(item) for item in stmt.items):
                here = True
            if here:
                end = getattr(stmt, "end_lineno", None) or stmt.lineno
                lines.update(range(stmt.lineno, end + 1))
            for field in ("body", "orelse", "finalbody"):
                children = getattr(stmt, field, None)
                if children:
                    visit(children, here)
            for handler in getattr(stmt, "handlers", []) or []:
                visit(handler.body, here)
            for case in getattr(stmt, "cases", []) or []:
                visit(case.body, here)

    visit(func.body, False)
    return lines


__all__ = [
    "CFG", "FuncDef", "await_crossed", "build_cfg", "contains_await",
    "guarded_statements",
]
