"""Shared benchmark configuration.

Every bench regenerates one of the paper's tables/figures.  The
simulations are deterministic and expensive, so each bench executes
its workload exactly once (``rounds=1``) — the benchmark timer then
records how long regenerating that result takes, and the assertions
check the paper's *shape* (who wins, by roughly what factor, where
crossovers fall).

Run with::

    pytest benchmarks/ --benchmark-only

Benches whose workload is a sweep honour ``SWEEP_WORKERS`` (worker
processes per sweep; default 0 = serial in-process) — results are
byte-identical either way, only the wall clock moves.
"""

import os

import pytest


@pytest.fixture
def once(benchmark):
    """Run a workload exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner


@pytest.fixture
def sweep_workers():
    """Worker-pool size for sweep-shaped benches (0 = serial)."""
    return int(os.environ.get("SWEEP_WORKERS", "0"))
