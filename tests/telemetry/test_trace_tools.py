"""Trace tooling: timeline reconstruction, summaries, filters, CLI."""

import pytest

from repro.telemetry import __main__ as cli
from repro.telemetry.jsonl import dump_jsonl
from repro.telemetry.trace_tools import (filter_records, render_timeline,
                                         summarize, trigger_chain_timeline)


def chain_records():
    """A hand-built two-slot chain: node 1 fires the duty for slot 1,
    node 2 detects it and executes; slot 2 needs the watchdog."""
    return [
        {"ev": "slot_exec", "t": 100.0, "node": 1, "slot": 0, "dst": 9,
         "fake": False},
        {"ev": "trigger_fire", "t": 550.0, "node": 1, "slot": 0,
         "targets": [2], "rop": False, "polls": []},
        {"ev": "sig_detect", "t": 560.0, "node": 2, "src": 1, "slot": 0,
         "sinr_db": 15.0, "combined": 1, "detected": True},
        {"ev": "slot_exec", "t": 600.0, "node": 2, "slot": 1, "dst": 9,
         "fake": True},
        {"ev": "rop_poll", "t": 650.0, "node": 9, "slot": 1, "poll_set": 0},
        {"ev": "sig_detect", "t": 1050.0, "node": 3, "src": 2, "slot": 1,
         "sinr_db": 2.0, "combined": 1, "detected": False},
        {"ev": "backup_trigger", "t": 1400.0, "node": 3, "slot": 2,
         "reason": "watchdog"},
        {"ev": "slot_exec", "t": 1450.0, "node": 3, "slot": 2, "dst": 9,
         "fake": False},
    ]


class TestTimeline:
    def test_reconstruction(self):
        timeline = trigger_chain_timeline(chain_records())
        assert [e.slot for e in timeline] == [0, 1, 2]
        slot0, slot1, slot2 = timeline

        assert slot0.senders == [(1, False)]
        assert slot0.signature_detected is None       # self-timed
        assert not slot0.fallback_used

        # The duty fired at slot 0 covers slot 1's senders.
        assert slot1.trigger_node == 1
        assert slot1.senders == [(2, True)]
        assert slot1.detected == {2: True}
        assert slot1.signature_detected is True
        assert slot1.polls == [9]
        assert slot1.start_us == 600.0

        # Slot 2's draw failed; the watchdog restarted the chain.
        assert slot2.signature_detected is False
        assert slot2.fallback == {3: "watchdog"}
        assert slot2.fallback_used

    def test_replanned_draw_success_wins(self):
        records = [
            {"ev": "sig_detect", "t": 1.0, "node": 2, "src": 1, "slot": 0,
             "sinr_db": 2.0, "combined": 1, "detected": False},
            {"ev": "sig_detect", "t": 2.0, "node": 2, "src": 1, "slot": 0,
             "sinr_db": 15.0, "combined": 1, "detected": True},
        ]
        (entry,) = trigger_chain_timeline(records)
        assert entry.slot == 1 and entry.detected == {2: True}

    def test_mixed_verdict_is_a_miss(self):
        records = [
            {"ev": "sig_detect", "t": 1.0, "node": 2, "src": 1, "slot": 0,
             "sinr_db": 15.0, "combined": 2, "detected": True},
            {"ev": "sig_detect", "t": 1.0, "node": 3, "src": 1, "slot": 0,
             "sinr_db": 1.0, "combined": 2, "detected": False},
        ]
        (entry,) = trigger_chain_timeline(records)
        assert entry.signature_detected is False

    def test_render(self):
        text = render_timeline(trigger_chain_timeline(chain_records()),
                               names={9: "AP1"})
        lines = text.splitlines()
        assert "slot" in lines[0] and "fallback" in lines[0]
        assert len(lines) == 2 + 3    # header + rule + one row per slot
        assert "AP1" in text          # names applied to poll column
        assert "MISS" in text         # failed draw visible
        assert "3:watchdog" in text
        assert render_timeline([]) == "(no slotted events in trace)"


class TestSummarize:
    def test_headline_numbers(self):
        text = summarize(chain_records())
        assert "8 events" in text
        assert "signature detections: 1/2" in text
        assert "backup-trigger fallbacks: 1" in text
        assert "trigger-chain timeline" in text

    def test_empty(self):
        assert summarize([]) == "(empty trace)"


class TestFilter:
    def test_by_kind_node_slot_time(self):
        records = chain_records()
        assert len(list(filter_records(records, kind="slot_exec"))) == 3
        assert len(list(filter_records(records, node=2))) == 2
        assert len(list(filter_records(records, kind="slot_exec",
                                       slot=1))) == 1
        windowed = list(filter_records(records, t0=500.0, t1=700.0))
        assert [r["t"] for r in windowed] == [550.0, 560.0, 600.0, 650.0]


class TestCli:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        dump_jsonl(str(path), chain_records())
        return str(path)

    def test_summarize(self, trace_path, capsys):
        assert cli.main(["summarize", trace_path]) == 0
        out = capsys.readouterr().out
        assert "trigger-chain timeline" in out and "watchdog" in out

    def test_timeline_with_slot_window(self, trace_path, capsys):
        assert cli.main(["timeline", trace_path, "--first", "1",
                         "--last", "1"]) == 0
        out = capsys.readouterr().out
        body = [l for l in out.splitlines()[2:] if l.strip()]
        assert len(body) == 1 and body[0].startswith("1 ")

    def test_filter_reemits_jsonl(self, trace_path, capsys):
        assert cli.main(["filter", trace_path, "--kind", "sig_detect",
                         "--node", "3"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 1
        assert '"detected":false' in out[0]

    def test_user_errors_are_clean(self, tmp_path, capsys):
        # Missing, non-JSONL, and future-schema traces must produce a
        # one-line error + exit 2, not a traceback.
        assert cli.main(["summarize", str(tmp_path / "nope.jsonl")]) == 2
        garbage = tmp_path / "garbage.jsonl"
        garbage.write_text("not json\n")
        assert cli.main(["summarize", str(garbage)]) == 2
        future = tmp_path / "future.jsonl"
        future.write_text('{"__domino_trace__":99}\n')
        assert cli.main(["summarize", str(future)]) == 2
        err = capsys.readouterr().err
        assert err.count("error:") == 3 and "Traceback" not in err
