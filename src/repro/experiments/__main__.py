"""Regenerate every paper table/figure in one run.

Usage::

    python -m repro.experiments            # full report to stdout
    python -m repro.experiments --quick    # reduced runs/horizons
    python -m repro.experiments --out out/report.txt
    python -m repro.experiments --engine matrix   # vectorized backend

The per-experiment modules remain individually runnable
(``python -m repro.experiments.fig02_motivation`` etc.); this driver
strings them together in paper order and stamps each section.
"""

from __future__ import annotations

import argparse
import os
import time

from ..telemetry import get_logger
from . import common
from . import (fig02_motivation, fig05_fig06_rop, fig09_signatures,
               fig10_microscope, fig11_misalignment, fig12_t10_2,
               fig14_random, sec5_extensions, sec5_polling, tab02_usrp,
               tab03_exposed)


def build_sections(quick: bool):
    horizon = 400_000.0 if quick else 1_000_000.0
    runs = 100 if quick else 300
    fig14_runs = 6 if quick else 50
    return [
        ("Fig. 2 — motivating network",
         lambda: fig02_motivation.report(fig02_motivation.run(horizon))),
        ("Fig. 5 / Fig. 6 — ROP subchannels and guard sweep",
         lambda: fig05_fig06_rop.report(
             fig05_fig06_rop.run_fig5(),
             fig05_fig06_rop.run_fig6(runs=max(runs // 3, 30)))),
        ("Fig. 9 — signature detection",
         lambda: fig09_signatures.report(fig09_signatures.run(runs=runs))),
        ("Table 2 — USRP prototype",
         lambda: tab02_usrp.report(tab02_usrp.run(
             horizon_us=20_000_000.0 if quick else 60_000_000.0))),
        ("Fig. 10 — under the microscope",
         lambda: fig10_microscope.report(fig10_microscope.run())),
        ("Fig. 11 — misalignment convergence",
         lambda: fig11_misalignment.report(fig11_misalignment.run())),
        ("Fig. 12(a-c) — T(10,2) UDP",
         lambda: fig12_t10_2.report(fig12_t10_2.run(
             "udp", uplink_rates=(0.0, 4.0, 10.0) if quick
             else fig12_t10_2.DEFAULT_UPLINK_RATES,
             horizon_us=horizon))),
        ("Fig. 12(d-f) — T(10,2) TCP",
         lambda: fig12_t10_2.report(fig12_t10_2.run(
             "tcp", uplink_rates=(0.0, 10.0), horizon_us=horizon))),
        ("Table 3 — exposed-link topologies",
         lambda: tab03_exposed.report(tab03_exposed.run(horizon))),
        ("Fig. 14 — random-network gain CDF",
         lambda: fig14_random.report(fig14_random.run(
             n_runs=fig14_runs, horizon_us=min(horizon, 600_000.0)))),
        ("Sec. 5 — polling frequency and light traffic",
         lambda: "\n\n".join([
             sec5_polling.report_batch_size(
                 sec5_polling.run_batch_size(sec5_polling.HEAVY_MBPS,
                                             horizon_us=horizon),
                 sec5_polling.run_batch_size(sec5_polling.LIGHT_MBPS,
                                             horizon_us=horizon)),
             sec5_polling.report_light(sec5_polling.run_light_traffic()),
         ])),
        ("Sec. 5 — extensions (signatures, energy, coexistence)",
         lambda: "\n\n".join([
             sec5_extensions.report_signature_lengths(
                 sec5_extensions.run_signature_lengths()),
             sec5_extensions.report_energy(sec5_extensions.run_energy()),
             sec5_extensions.report_coexistence(
                 sec5_extensions.run_coexistence()),
         ])),
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate every DOMINO table/figure.")
    parser.add_argument("--quick", action="store_true",
                        help="reduced horizons and run counts")
    parser.add_argument("--out", type=str, default=None,
                        help="also write the report to this file "
                             "(reports belong under the untracked out/)")
    parser.add_argument("--engine", choices=common.ENGINES,
                        default="event",
                        help="simulation backend for every run "
                             "(matrix = vectorized, byte-identical "
                             "traces; see DESIGN.md 'Engine backends')")
    args = parser.parse_args(argv)
    common.set_default_engine(args.engine)

    log = get_logger("experiments")
    chunks = []
    for title, runner in build_sections(args.quick):
        started = time.time()
        log.info("%s: running...", title)
        body = runner()
        elapsed = time.time() - started
        chunk = "\n".join([
            "=" * 72,
            f"{title}   ({elapsed:.1f} s)",
            "=" * 72,
            body,
            "",
        ])
        print(chunk)
        chunks.append(chunk)
    if args.out:
        out_dir = os.path.dirname(args.out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.out, "w") as handle:
            handle.write("\n".join(chunks))
        log.info("report written to %s", args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
