"""repro.telemetry — structured tracing and metrics for the simulator.

The subsystem has two halves sharing one on/off switch:

* a **trace**: typed, per-event records (frame lifecycle, signature
  detections, trigger firings and backup fallbacks, ROP rounds,
  schedule distribution) in a bounded ring buffer, exportable as
  deterministic JSONL (:mod:`~repro.telemetry.recorder`,
  :mod:`~repro.telemetry.events`, :mod:`~repro.telemetry.jsonl`);
* a **metrics registry**: counters, gauges and p50/p95/p99 histograms
  for airtime, trigger latency, collisions and event-loop throughput
  (:mod:`~repro.telemetry.metrics`).

Usage::

    from repro import telemetry

    recorder = telemetry.activate()        # before building the network
    try:
        net = build_domino_network(sim, topology)
        ...
        sim.run(until=horizon)
    finally:
        telemetry.deactivate()
    recorder.export_jsonl("run.jsonl")
    print(recorder.metrics.render())

or, for experiments, ``run_scheme(..., trace=True)`` which wraps the
same dance and hands the recorder back on the ``RunResult``.

**Zero-cost disabled path.**  Components capture ``current()`` once at
construction; while no session is active that is the module-level
no-op :data:`~repro.telemetry.recorder.NULL` recorder, whose
``enabled`` is ``False`` — instrumented hot paths pay one attribute
load and one branch.  Consequently a recorder must be activated
*before* the instrumented objects (simulator, medium, MACs,
controller) are constructed, and stays bound to them for their
lifetime.

Trace files are examined with ``python -m repro.telemetry``
(``summarize`` / ``timeline`` / ``filter`` / ``doctor`` / ``diff``);
the diagnosis layer behind ``doctor`` and ``diff`` lives in
:mod:`~repro.telemetry.analysis`.
"""

from __future__ import annotations

from typing import Optional

from .events import EVENT_TYPES, SCHEMA_VERSION, TraceEvent, from_record
from .jsonl import dump_jsonl, load_jsonl, read_jsonl
from .log import get_logger
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .recorder import (NULL, ORIGIN_META_KEY, TX_META_KEY, NullRecorder,
                       TraceRecorder)
from .trace_tools import (SlotChainEntry, filter_records, render_timeline,
                          summarize, trigger_chain_timeline)
from . import analysis

__all__ = [
    "EVENT_TYPES", "SCHEMA_VERSION", "TraceEvent", "from_record",
    "dump_jsonl", "load_jsonl", "read_jsonl",
    "get_logger",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "NULL", "ORIGIN_META_KEY", "TX_META_KEY", "NullRecorder",
    "TraceRecorder",
    "SlotChainEntry", "filter_records", "render_timeline", "summarize",
    "trigger_chain_timeline",
    "analysis",
    "current", "activate", "deactivate", "enabled",
]

_current: NullRecorder = NULL


def current() -> NullRecorder:
    """The active recorder, or the shared no-op :data:`NULL`."""
    return _current


def enabled() -> bool:
    return _current.enabled


def activate(recorder: Optional[TraceRecorder] = None) -> TraceRecorder:
    """Install ``recorder`` (a fresh default one if omitted) as the
    current telemetry sink and return it.

    Only objects constructed while it is active will record into it.
    Nested activation is an error — a forgotten ``deactivate()`` would
    silently cross-wire two runs' traces.
    """
    global _current
    if _current.enabled:
        raise RuntimeError(
            "telemetry already active; deactivate() the previous session first"
        )
    if recorder is None:
        recorder = TraceRecorder()
    _current = recorder
    return recorder


def deactivate() -> None:
    """Restore the no-op recorder.  Idempotent."""
    global _current
    _current = NULL
