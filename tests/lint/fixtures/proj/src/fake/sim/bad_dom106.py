"""DOM106 fixture: RNG taint laundered through helper calls."""

from ..helpers.entropy import reroll


def jitter_backoff(slots):
    spread = reroll()
    return slots + spread
