"""Bottom-layer package for the transitive-leak fixture."""
