"""UDP-style traffic sources: constant bit rate and saturated.

The evaluation's default traffic is 10 Mbps CBR per flow with 512 B
packets (Sec. 4.2.1); at the 12 Mbps PHY rate that saturates the MAC
queues quickly, which is what makes queueing delay dominate Fig. 12(b).
"""

from __future__ import annotations

import itertools
import random
from typing import Optional, Tuple, TYPE_CHECKING

from ..sim.engine import Simulator
from ..sim.packet import data_frame

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..mac.base import Mac

DEFAULT_PAYLOAD_BYTES = 512


class CbrSource:
    """Constant-bit-rate source feeding one MAC queue.

    Parameters
    ----------
    rate_mbps:
        Application rate in Mbps; the packet interval is derived from
        it.  ``0`` creates a silent source (useful in sweeps).
    start_us:
        When the first packet is generated; a random phase within one
        interval is added so co-started flows do not enqueue in
        lockstep.
    """

    def __init__(self, sim: Simulator, mac: "Mac", dst: int,
                 rate_mbps: float, payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
                 start_us: float = 0.0, seed: Optional[int] = None):
        self.sim = sim
        self.mac = mac
        self.src = mac.node.node_id
        self.dst = dst
        self.flow: Tuple[int, int] = (self.src, dst)
        self.rate_mbps = rate_mbps
        self.payload_bytes = payload_bytes
        self.start_us = start_us
        self._seq = itertools.count()
        self._rng = random.Random(
            seed if seed is not None else sim.rng.getrandbits(64)
        )
        self.generated = 0

    @property
    def interval_us(self) -> float:
        if self.rate_mbps <= 0:
            return float("inf")
        return self.payload_bytes * 8.0 / self.rate_mbps  # Mbps == bits/us

    def start(self) -> None:
        if self.rate_mbps <= 0:
            return
        phase = self._rng.uniform(0.0, self.interval_us)
        self.sim.schedule(self.start_us + phase, self._emit)

    def _emit(self) -> None:
        frame = data_frame(self.src, self.dst, self.payload_bytes,
                           seq=next(self._seq), enqueued_at=self.sim.now,
                           flow=self.flow)
        self.generated += 1
        self.mac.enqueue(frame)
        self.sim.schedule(self.interval_us, self._emit)


class SaturatedSource:
    """Keeps a MAC queue permanently backlogged.

    Used for the saturated-throughput experiments (Fig. 2, Table 2,
    Table 3, Fig. 10): the queue is topped up to capacity periodically,
    far faster than the MAC can drain it.
    """

    def __init__(self, sim: Simulator, mac: "Mac", dst: int,
                 payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
                 top_up_interval_us: float = 1_000.0):
        self.sim = sim
        self.mac = mac
        self.src = mac.node.node_id
        self.dst = dst
        self.flow: Tuple[int, int] = (self.src, dst)
        self.payload_bytes = payload_bytes
        self.top_up_interval_us = top_up_interval_us
        self._seq = itertools.count()
        self.generated = 0

    def start(self) -> None:
        self._top_up()

    def _top_up(self) -> None:
        queue = self.mac.queues.queue_for(self.dst)
        while len(queue) < queue.capacity:
            frame = data_frame(self.src, self.dst, self.payload_bytes,
                               seq=next(self._seq), enqueued_at=self.sim.now,
                               flow=self.flow)
            self.generated += 1
            if not self.mac.enqueue(frame):
                break
        self.sim.schedule(self.top_up_interval_us, self._top_up)
