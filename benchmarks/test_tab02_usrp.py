"""Table 2 bench: USRP prototype throughput, DOMINO vs DCF.

Paper's shape: Kbps-scale throughput on the host-latency-bound USRP
PHY; DOMINO ~1.5x DCF in the plain contention (SC) case and ~2.5-3.4x
under hidden (HT) / exposed (ET) terminals; DOMINO's ET doubles its SC
because the exposed links run concurrently.
"""

from repro.experiments import tab02_usrp


def test_tab02_usrp(once, sweep_workers):
    result = once(tab02_usrp.run, 60_000_000.0, workers=sweep_workers)
    print()
    print(tab02_usrp.report(result))

    kbps = result.kbps
    # Single-digit Kbps, the prototype's regime.
    for scheme in ("DOMINO", "DCF"):
        for scenario in tab02_usrp.SCENARIOS:
            assert 0.5 < kbps[scheme][scenario] < 30.0
    # DOMINO beats DCF everywhere; modestly in SC, heavily otherwise.
    assert 1.1 < result.ratio("SC") < 2.2
    assert result.ratio("HT") > 1.8
    assert result.ratio("ET") > 1.8
    assert result.ratio("HT") > result.ratio("SC")
    assert result.ratio("ET") > result.ratio("SC")
    # Hidden terminals crater DCF specifically.
    assert kbps["DCF"]["HT"] < 0.7 * kbps["DCF"]["SC"]
    # Exposed concurrency doubles DOMINO's SC throughput.
    assert kbps["DOMINO"]["ET"] > 1.7 * kbps["DOMINO"]["SC"]
