"""The engine contract: what every simulation backend must provide.

`repro` has two simulation backends behind one runtime contract:

* :class:`~repro.sim.engine.Simulator` — the reference heap-based
  discrete-event engine.  Every semantic question ("what order do
  callbacks fire in?", "what does a timestamp tie mean?") is answered
  by this implementation.
* :class:`~repro.sim.matrix.MatrixSimulator` — the vectorized backend:
  the same event loop, but media built through :meth:`make_medium`
  batch the per-radio energy bookkeeping into numpy matrix operations.

One tempting optimisation is deliberately **absent** from the
contract: collapsing per-slot MAC countdown timers into one scheduled
event.  Each per-slot hop re-enters the heap and receives a fresh
sequence number *at that boundary*; when several stations' counters
expire at the same float instant (the collision case the whole model
exists to capture), those sequence numbers decide commit order — and
whether a commit fires before or after a frame-end edge sharing the
instant, which changes SINRs.  A one-shot timer carries a sequence
number from when the countdown *started* and provably reorders such
ties.  Slot timers are therefore part of the observable ordering
contract; backends make them cheap (O(1) carrier-sense checks), not
fewer.

The contract is deliberately *behavioural*, not just structural: a
conforming engine must produce **byte-identical canonical traces** for
the same (scheme, topology, seed) as the reference engine.  The
cross-backend digest tests in ``tests/sim/matrix`` and the
``benchmarks/test_matrix_speedup.py`` bench enforce this the same way
the sweep runner proved parallel == serial.

Construction flows through two factory hooks so the backend choice is
made exactly once, at :func:`repro.experiments.common.run_scheme`:

* ``sim.make_medium(profile, rss_fn)`` — the engine picks its medium
  implementation (:class:`~repro.sim.medium.Medium` or
  :class:`~repro.sim.matrix.medium.MatrixMedium`);
* ``medium.make_radio(node_id)`` — the medium picks its radio.

Everything above the medium (MACs, traffic, controllers, telemetry)
is backend-agnostic and must stay that way.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional, Protocol, runtime_checkable

from .phy import PhyProfile


@runtime_checkable
class EventHandle(Protocol):
    """A scheduled callback that can be cancelled (lazy deletion)."""

    time: float
    cancelled: bool

    def cancel(self) -> None: ...


@runtime_checkable
class EngineProtocol(Protocol):
    """Runtime contract shared by the event and matrix backends.

    Attributes
    ----------
    now:
        Current simulation time in microseconds.
    rng:
        The engine-owned seeded :class:`random.Random`.  Components
        needing independent streams derive
        ``random.Random(sim.rng.getrandbits(64))`` — the *order* of
        derivations is part of the determinism contract.
    """

    now: float
    rng: random.Random

    def schedule(self, delay: float, fn: Callable[..., Any],
                 *args: Any) -> EventHandle: ...

    def schedule_at(self, time: float, fn: Callable[..., Any],
                    *args: Any) -> EventHandle: ...

    def run(self, until: float) -> None: ...

    def step(self) -> bool: ...

    @property
    def events_processed(self) -> int: ...

    @property
    def pending(self) -> int: ...

    def next_event_time(self) -> Optional[float]: ...

    def serial(self, name: str) -> int: ...

    def make_medium(self, profile: PhyProfile,
                    rss_dbm: Callable[[int, int], float],
                    energy_floor_dbm: float = -105.0) -> Any: ...
