"""dominolint — the repo's determinism & layering static-analysis pass.

The DOMINO reproduction's central invariant is that a simulator run is
a pure function of its seed: conversion caching, parallel sweeps and
causal spans (PRs 3-4) are only sound because two runs with the same
seed export byte-identical traces.  End-to-end digest tests catch a
broken invariant *after the fact*; dominolint rejects the source
patterns that break it *at commit time*:

* **Determinism rules (DOM1xx)** — wall-clock reads, unseeded or
  process-global RNG, unordered ``set`` iteration and float-timestamp
  equality inside the sim-logic layers.
* **Layering rules (DOM2xx)** — the allowed-dependency DAG between
  ``repro.*`` packages, declared in ``[tool.dominolint.layers]`` in
  ``pyproject.toml``; an import edge not in the table is an error.
* **Telemetry-schema rules (DOM3xx)** — every event emission in
  ``src/`` must name a kind registered in
  :mod:`repro.telemetry.events` with a matching shape, and changing an
  event's shape without bumping ``SCHEMA_VERSION`` is an error.
* **Dependency rules (DOM4xx)** — third-party imports in the sim
  packages must appear in ``[project] dependencies`` (or hide behind
  ``TYPE_CHECKING`` / a ``try/except ImportError`` gate), so a clean
  install can always import the simulation core.
* **Async/concurrency rules (DOM5xx)** — in the asyncio service
  packages, guarded controller/registry state must not mutate across
  an ``await`` boundary outside a lock/epoch guard (DOM501), task
  handles must be retained (DOM502), and only picklable module-level
  functions may cross the process-pool boundary (DOM503).
* **Dataflow rules (DOM105/DOM106, DOM203)** — a whole-tree phase:
  per-function CFGs and a module call graph track wall-clock/RNG
  values laundered into sim code through helper calls (with
  ``repro.telemetry.wallclock`` as the blessed sanitizer), and the
  *transitive* import closure is checked for cycles and layering
  escapes the per-edge DOM201 check cannot see.

Run it as ``python -m repro.lint [paths]`` (paths default to ``src``).
Findings go to stderr as ``path:line:col: RULE message``; exit code 0
means clean, 1 means findings, 2 means bad input (unreadable path,
syntax error, broken config) — the same convention as the doctor CLI.
``--format sarif`` renders the findings as one SARIF 2.1.0 document on
stdout for CI code-scanning; ``--no-cache`` bypasses the content-hash
cache (``.dominolint-cache.json``) that makes warm whole-tree runs
cheap.

Suppress a deliberate violation on its own line::

    if self.time != other.time:  # dominolint: disable=DOM104

Multiple rules comma-separate (``disable=DOM101,DOM104``); ``all``
silences every rule on the line.  Each suppression should carry a
justifying comment — the escape hatch exists for the handful of spots
where the pattern is deliberate, not as a bulk mute.

The implementation is stdlib-only (``ast`` + ``tomllib``) on purpose:
the linter guards the dependency floor, so it must not raise it.
"""

from .config import Config, ConfigError, load_config
from .findings import Finding, Suppressions
from .runner import lint_paths, main

__all__ = [
    "Config",
    "ConfigError",
    "Finding",
    "Suppressions",
    "lint_paths",
    "load_config",
    "main",
]
