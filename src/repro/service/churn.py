"""Synthetic load for the online controller.

Three deterministic event sources, all seeded:

* :func:`churn_events` — the load harness's mixed stream: mostly
  queue reports, a trickle of RSS drift, occasional client
  leave/rejoin churn.  Scales to the ≥10⁵-update runs the revision
  latency benchmark drives.
* :func:`link_rss_wobble` — the narrowest possible dirty region: one
  client's association pair re-measured over and over (the
  "single-link RSS delta" of the ≥5x incremental-speedup criterion).
* :func:`mobility_events` — a :func:`repro.topology.mobility.linear_drift`
  walk replayed as ``RssDelta`` events, making mobility traces a
  first-class event source without the topology layer importing the
  service.

Generators work on private *copies* of the seed state (matrix,
membership), so building a scenario never perturbs the state the
engine will actually run on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..topology.links import Link
from ..topology.mobility import linear_drift
from ..topology.propagation import LogDistanceModel, Position
from ..topology.trace import SyntheticTrace
from .events import (Associate, ControllerEvent, Disassociate, QueueUpdate,
                     RssDelta)
from .state import NetworkState


@dataclass
class ChurnConfig:
    """Mix and pacing of the synthetic event stream."""

    updates: int = 10_000
    seed: int = 7
    start_us: float = 0.0
    mean_gap_us: float = 40.0
    p_queue: float = 0.90
    p_rss: float = 0.07
    #: Remaining probability mass is membership churn (leave/rejoin).
    max_backlog: int = 8
    rss_jitter_db: float = 2.0


def churn_events(state: NetworkState,
                 config: Optional[ChurnConfig] = None
                 ) -> List[ControllerEvent]:
    """A seeded mixed stream of controller events.

    Tracks its own ground truth (matrix copy, membership copy) so the
    stream is self-consistent: queue reports only for links that
    exist at that point, RSS jitter accumulates on the copy, departed
    clients rejoin their original AP with their current (jittered)
    RSS rows.
    """
    cfg = config if config is not None else ChurnConfig()
    rng = random.Random(cfg.seed)
    rss = state.rss.copy()
    n = rss.shape[0]
    clients: Dict[int, int] = dict(state.clients)
    parked: Dict[int, int] = {}      # departed client -> home AP
    links: List[Link] = list(state.links)
    out: List[ControllerEvent] = []
    t = cfg.start_us

    def emit_queue() -> None:
        link = links[rng.randrange(len(links))]
        out.append(QueueUpdate(t_us=t, src=link.src, dst=link.dst,
                               backlog=float(rng.randint(0,
                                                         cfg.max_backlog))))

    def emit_rss() -> None:
        node = sorted(clients)[rng.randrange(len(clients))]
        rss_to: Dict[int, float] = {}
        rss_from: Dict[int, float] = {}
        for other in range(n):
            if other == node:
                continue
            rss[node, other] += rng.gauss(0.0, cfg.rss_jitter_db)
            rss_to[other] = float(rss[node, other])
            rss[other, node] += rng.gauss(0.0, cfg.rss_jitter_db)
            rss_from[other] = float(rss[other, node])
        out.append(RssDelta(t_us=t, node=node, rss_to=rss_to,
                            rss_from=rss_from))

    def emit_membership() -> None:
        rejoin = parked and (len(clients) <= 1 or rng.random() < 0.5)
        if rejoin:
            client = sorted(parked)[rng.randrange(len(parked))]
            ap = parked.pop(client)
            clients[client] = ap
            links.append(Link(ap, client))
            links.append(Link(client, ap))
            out.append(Associate(
                t_us=t, client=client, ap=ap,
                rss_to={o: float(rss[client, o])
                        for o in range(n) if o != client},
                rss_from={o: float(rss[o, client])
                          for o in range(n) if o != client}))
        elif len(clients) > 1:
            client = sorted(clients)[rng.randrange(len(clients))]
            parked[client] = clients.pop(client)
            gone = {l for l in links if client in (l.src, l.dst)}
            links[:] = [l for l in links if l not in gone]
            out.append(Disassociate(t_us=t, client=client))
        else:
            emit_queue()

    for _ in range(cfg.updates):
        t += rng.expovariate(1.0 / cfg.mean_gap_us)
        draw = rng.random()
        if draw < cfg.p_queue or not clients:
            emit_queue()
        elif draw < cfg.p_queue + cfg.p_rss:
            emit_rss()
        else:
            emit_membership()
    return out


def link_rss_wobble(state: NetworkState, client: int, updates: int,
                    seed: int = 0, start_us: float = 0.0,
                    gap_us: float = 500.0,
                    jitter_db: float = 1.5) -> List[RssDelta]:
    """Single-link deltas: re-measure one association pair repeatedly.

    Each event touches only the ``(client, ap)`` matrix entries, so
    the dirty region per epoch is exactly the client's two links —
    the workload the ≥5x incremental-vs-full criterion is stated
    over.
    """
    ap = state.clients[client]
    rng = random.Random(seed ^ (client * 2_654_435_761))
    to_ap = float(state.rss[client, ap])
    from_ap = float(state.rss[ap, client])
    out: List[RssDelta] = []
    t = start_us
    for _ in range(updates):
        t += gap_us
        to_ap += rng.gauss(0.0, jitter_db)
        from_ap += rng.gauss(0.0, jitter_db)
        out.append(RssDelta(t_us=t, node=client,
                            rss_to={ap: to_ap}, rss_from={ap: from_ap}))
    return out


def mobility_events(trace: SyntheticTrace, node: int, to_pos: Position,
                    steps: int, interval_us: float,
                    start_us: float = 0.0,
                    model: Optional[LogDistanceModel] = None,
                    tx_power_dbm: float = 15.0,
                    seed: int = 0) -> List[RssDelta]:
    """A linear drift of ``node``, snapshotted into ``RssDelta`` events.

    Walks a *copy* of the trace (the caller's ground truth is not
    perturbed) and emits the node's full refreshed row/column after
    every hop.
    """
    work = SyntheticTrace(rss_dbm=trace.rss_dbm.copy(),
                          positions=list(trace.positions),
                          comm_threshold_dbm=trace.comm_threshold_dbm)
    n = work.n_nodes
    out: List[RssDelta] = []
    t = start_us
    for _step, _pos in linear_drift(work, node, to_pos, steps,
                                    model=model,
                                    tx_power_dbm=tx_power_dbm, seed=seed):
        t += interval_us
        out.append(RssDelta(
            t_us=t, node=node,
            rss_to={o: float(work.rss_dbm[node, o])
                    for o in range(n) if o != node},
            rss_from={o: float(work.rss_dbm[o, node])
                      for o in range(n) if o != node}))
    return out
