"""Tests for the central interference map."""


from repro.topology.interference_map import InterferenceMap
from repro.sim.phy import DOT11G
from repro.topology.builder import fig1_topology
from repro.topology.links import Link
from repro.topology.trace import manual_trace


def make_imap(pairs, n=6, margin=3.0):
    trace = manual_trace(n, pairs)
    return InterferenceMap(trace.rss_fn(), DOT11G, margin_db=margin)


def test_shared_node_always_conflicts():
    imap = make_imap({(0, 1): -50.0, (1, 2): -50.0})
    assert imap.conflicts(Link(0, 1), Link(1, 2))
    assert imap.conflicts(Link(0, 1), Link(2, 1))


def test_data_interference_conflict():
    # Link 2->3's sender is loud at receiver 1: conflict.
    imap = make_imap({(0, 1): -50.0, (2, 3): -50.0, (2, 1): -55.0})
    assert imap.conflicts(Link(0, 1), Link(2, 3))


def test_ack_on_ack_conflict():
    # Receivers loud at each other's senders break the ACK exchange.
    imap = make_imap({(0, 1): -50.0, (2, 3): -50.0, (3, 0): -52.0})
    assert imap.conflicts(Link(0, 1), Link(2, 3))


def test_data_does_not_see_foreign_ack_interference():
    """Slot-aligned semantics: the other link's *receiver* being loud
    at my receiver is irrelevant (ACKs never overlap foreign data)."""
    imap = make_imap({(0, 1): -50.0, (2, 3): -50.0, (3, 1): -52.0})
    assert not imap.conflicts(Link(0, 1), Link(2, 3))


def test_far_links_independent():
    imap = make_imap({(0, 1): -50.0, (2, 3): -50.0})
    assert not imap.conflicts(Link(0, 1), Link(2, 3))


def test_set_survives_catches_additive_interference():
    """Three pairwise-compatible links whose interference adds up to
    break one reception — the pairwise graph misses this."""
    pairs = {
        (0, 1): -62.0,             # marginal victim link
        (2, 3): -50.0, (4, 5): -50.0,
        # each interferer alone leaves ~12.5 dB SINR (threshold 8+3):
        (2, 1): -74.5, (4, 1): -74.5,
    }
    imap = make_imap(pairs)
    assert not imap.conflicts(Link(0, 1), Link(2, 3))
    assert not imap.conflicts(Link(0, 1), Link(4, 5))
    assert imap.set_survives([Link(0, 1), Link(2, 3)])
    # Together the two interferers push SINR below threshold+margin.
    assert not imap.set_survives([Link(0, 1), Link(2, 3), Link(4, 5)])


def test_set_survives_rejects_shared_nodes():
    imap = make_imap({(0, 1): -50.0, (1, 2): -50.0})
    assert not imap.set_survives([Link(0, 1), Link(1, 2)])


def test_link_viability():
    imap = make_imap({(0, 1): -50.0, (2, 3): -86.0})
    assert imap.link_viable(Link(0, 1))
    assert not imap.link_viable(Link(2, 3))  # below 12 Mbps + margin


def test_trigger_reachability_uses_correlation_gain():
    imap = make_imap({(0, 1): -50.0, (0, 2): -95.0})
    # -95 dBm is hopeless for data but the correlator's ~21 dB of
    # processing gain keeps the signature detectable.
    assert imap.node_can_trigger(0, 2)
    assert not imap.node_can_trigger(0, 5)  # default -120: silence


def test_link_can_trigger_via_either_endpoint():
    imap = make_imap({(0, 1): -50.0, (1, 2): -80.0})
    assert imap.link_can_trigger(Link(0, 1), 2)   # via receiver 1
    assert imap.trigger_rss_dbm(Link(0, 1), 2) == -80.0


def test_census_on_fig1():
    topo = fig1_topology()
    imap = topo.interference_map()
    census = imap.census(topo.flows)
    assert census["total"] == 3
    assert census["hidden"] == 1     # (AP1->C1, AP3->C3)
    assert census["exposed"] == 1    # (AP1->C1, C2->AP2)
    assert census["independent"] == 1


def test_classify_pair_conflict_with_cs():
    # Conflicting AND senders in CS range -> plain 'conflict'.
    imap = make_imap({(0, 1): -50.0, (2, 3): -50.0,
                      (2, 1): -55.0, (0, 2): -70.0})
    assert imap.classify_pair(Link(0, 1), Link(2, 3)) == "conflict"
