"""The controller's typed input event stream.

Four event kinds cover everything an enterprise WLAN controller hears
about between schedules:

* :class:`Associate` — a client joins an AP, bringing measured RSS
  for both directions of every pair it participates in;
* :class:`Disassociate` — a client leaves; its links vanish from the
  universe;
* :class:`RssDelta` — new measurements for one node's RSS row/column
  (mobility drift, a beacon campaign, a single re-measured pair);
* :class:`QueueUpdate` — a backlog report for one link (the online
  analogue of the ROP / wired queue reports).

Timestamps are *virtual* microseconds on the event stream's own
clock.  The service debounces on them and stamps them into trace
events, so a replayed scenario is bit-for-bit reproducible no matter
how fast the host machine drains it.

Events are immutable and JSON round-trippable
(:func:`event_to_json` / :func:`event_from_json`) so scenarios can be
stored under ``examples/`` and replayed from the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Union


@dataclass(frozen=True)
class Associate:
    """A client joined ``ap``; carries its measured RSS entries.

    ``rss_to[other]`` is the RSS at ``other`` when the client
    transmits; ``rss_from[other]`` the reverse direction.  Entries may
    cover any subset of nodes (a real association only measures what
    it can hear); unmentioned pairs keep their previous values.
    """

    t_us: float
    client: int
    ap: int
    rss_to: Mapping[int, float] = field(default_factory=dict)
    rss_from: Mapping[int, float] = field(default_factory=dict)

    KIND = "associate"


@dataclass(frozen=True)
class Disassociate:
    """A client left the network."""

    t_us: float
    client: int

    KIND = "disassociate"


@dataclass(frozen=True)
class RssDelta:
    """Fresh RSS measurements for one node's row/column.

    A single re-measured pair is the degenerate case: one entry in
    ``rss_to`` and/or ``rss_from``.  The dirty region is always
    confined to links touching ``node`` (see the conflict test's
    read-set argument in
    :func:`repro.topology.conflict_graph.update_conflict_graph`).
    """

    t_us: float
    node: int
    rss_to: Mapping[int, float] = field(default_factory=dict)
    rss_from: Mapping[int, float] = field(default_factory=dict)

    KIND = "rss_delta"


@dataclass(frozen=True)
class QueueUpdate:
    """A backlog report for link ``src -> dst`` (packets, fractional)."""

    t_us: float
    src: int
    dst: int
    backlog: float

    KIND = "queue_update"


ControllerEvent = Union[Associate, Disassociate, RssDelta, QueueUpdate]

_KINDS = {cls.KIND: cls for cls in (Associate, Disassociate, RssDelta,
                                    QueueUpdate)}


def _rss_out(mapping: Mapping[int, float]) -> Dict[str, float]:
    # JSON object keys are strings; sort for stable files.
    return {str(node): float(value)
            for node, value in sorted(mapping.items())}


def _rss_in(mapping: Mapping[str, float]) -> Dict[int, float]:
    return {int(node): float(value) for node, value in mapping.items()}


def event_to_json(event: ControllerEvent) -> Dict[str, object]:
    """One event as a plain JSON-serializable dict."""
    if isinstance(event, Associate):
        return {"kind": event.KIND, "t_us": event.t_us,
                "client": event.client, "ap": event.ap,
                "rss_to": _rss_out(event.rss_to),
                "rss_from": _rss_out(event.rss_from)}
    if isinstance(event, Disassociate):
        return {"kind": event.KIND, "t_us": event.t_us,
                "client": event.client}
    if isinstance(event, RssDelta):
        return {"kind": event.KIND, "t_us": event.t_us, "node": event.node,
                "rss_to": _rss_out(event.rss_to),
                "rss_from": _rss_out(event.rss_from)}
    return {"kind": event.KIND, "t_us": event.t_us, "src": event.src,
            "dst": event.dst, "backlog": event.backlog}


def event_from_json(record: Mapping[str, object]) -> ControllerEvent:
    """Parse one scenario record; unknown kinds fail loudly."""
    data = dict(record)
    kind = data.pop("kind", None)
    if kind not in _KINDS:
        raise ValueError(f"unknown controller event kind: {kind!r}")
    if kind in ("associate", "rss_delta"):
        data["rss_to"] = _rss_in(data.get("rss_to", {}))  # type: ignore[arg-type]
        data["rss_from"] = _rss_in(data.get("rss_from", {}))  # type: ignore[arg-type]
    return _KINDS[kind](**data)  # type: ignore[arg-type, no-any-return]
