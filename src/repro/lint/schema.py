"""DOM3xx — telemetry-schema rules.

The trace schema's source of truth is the dataclass registry in
:mod:`repro.telemetry.events`; the recorder's typed helpers and every
emission site in ``src/`` must agree with it, and any change to an
event's shape must bump ``SCHEMA_VERSION`` (older traces parse by
defaulted fields; tooling refuses newer files — see ``jsonl.py``).

The rules work on the *AST* of ``events.py``/``recorder.py``, never by
importing them: the linter must not execute the code it judges, and
must stay runnable on a tree whose imports are broken.

DOM301
    An emission names an event kind that is not in the registry.
DOM302
    An emission's shape disagrees with the schema: a typed-helper call
    that does not bind to the helper's signature, a raw ring-buffer
    tuple whose arity differs from the field count, or an ``emit``
    record dict with missing/unknown fields.
DOM303
    The registry's shape fingerprint differs from the committed
    baseline (``schema_baseline.json``) without a ``SCHEMA_VERSION``
    change — or the version was bumped but the baseline not refreshed.
    ``python -m repro.lint --update-schema-baseline`` rewrites it.

Recognized emission forms (matching the recorder's three paths):

* typed helpers — any call ``obj.<kind>(...)`` whose attribute name is
  a registered kind (``tel.frame_tx(...)``);
* raw tuples — ``self._append(("<kind>", v1, ...))`` inside the
  recorder's hot path;
* record dicts — ``emit({"ev": "<kind>", ...})``.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .config import Config
from .findings import Finding


# ----------------------------------------------------------------------
# Registry model, parsed from events.py
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EventShape:
    """One event kind's schema: ordered fields and which have defaults."""

    kind: str
    fields: Tuple[str, ...]            # schema order, ``t`` first
    defaulted: Tuple[str, ...]         # fields that may be omitted
    line: int                          # class definition line


@dataclass(frozen=True)
class HelperSignature:
    """A typed recorder helper's parameters (``self`` stripped)."""

    name: str
    params: Tuple[str, ...]
    required: int                      # params without defaults
    line: int


@dataclass(frozen=True)
class SchemaRegistry:
    events_path: Path
    version: int
    version_line: int
    shapes: Dict[str, EventShape]
    helpers: Dict[str, HelperSignature]

    def fingerprint(self) -> Dict[str, object]:
        """The shape summary DOM303 compares against its baseline."""
        return {
            "schema_version": self.version,
            "events": {
                kind: list(shape.fields)
                for kind, shape in sorted(self.shapes.items())
            },
        }


class SchemaError(RuntimeError):
    """events.py / recorder.py could not be parsed into a registry."""


def _class_shapes(tree: ast.Module) -> Tuple[Dict[str, EventShape], int, int]:
    """Extract event shapes plus (SCHEMA_VERSION, its line)."""
    version: Optional[int] = None
    version_line = 1
    shapes: Dict[str, EventShape] = {}
    base_fields: List[Tuple[str, bool]] = []
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and \
                        target.id == "SCHEMA_VERSION" and \
                        isinstance(node.value, ast.Constant) and \
                        isinstance(node.value.value, int):
                    version = node.value.value
                    version_line = node.lineno
        if not isinstance(node, ast.ClassDef):
            continue
        kind: Optional[str] = None
        own_fields: List[Tuple[str, bool]] = []
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                own_fields.append((stmt.target.id, stmt.value is not None))
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == "KIND" \
                            and isinstance(stmt.value, ast.Constant) \
                            and isinstance(stmt.value.value, str):
                        kind = stmt.value.value
        bases = {b.id for b in node.bases if isinstance(b, ast.Name)}
        if node.name == "TraceEvent":
            base_fields = own_fields
            continue
        if "TraceEvent" not in bases or not kind:
            continue
        combined = [*base_fields, *own_fields]
        shapes[kind] = EventShape(
            kind=kind,
            fields=tuple(name for name, _ in combined),
            defaulted=tuple(name for name, has in combined if has),
            line=node.lineno,
        )
    if version is None:
        raise SchemaError("events.py defines no integer SCHEMA_VERSION")
    if not shapes:
        raise SchemaError("events.py defines no TraceEvent subclasses")
    return shapes, version, version_line


def _helper_signatures(tree: ast.Module,
                       kinds: Dict[str, EventShape]) -> Dict[str, HelperSignature]:
    """Typed-helper signatures from the recorder's ``TraceRecorder``."""
    helpers: Dict[str, HelperSignature] = {}
    for node in tree.body:
        if not (isinstance(node, ast.ClassDef)
                and node.name == "TraceRecorder"):
            continue
        for stmt in node.body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name in kinds:
                args = stmt.args
                params = tuple(a.arg for a in args.args[1:])  # drop self
                helpers[stmt.name] = HelperSignature(
                    name=stmt.name,
                    params=params,
                    required=len(params) - len(args.defaults),
                    line=stmt.lineno,
                )
    return helpers


def load_registry(config: Config) -> SchemaRegistry:
    """Parse the schema registry out of events.py and recorder.py."""
    try:
        events_tree = ast.parse(config.schema_events.read_text())
        recorder_tree = ast.parse(config.schema_recorder.read_text())
    except (OSError, SyntaxError) as exc:
        raise SchemaError(f"cannot load schema modules: {exc}") from exc
    shapes, version, version_line = _class_shapes(events_tree)
    helpers = _helper_signatures(recorder_tree, shapes)
    missing = sorted(set(shapes) - set(helpers))
    if missing:
        raise SchemaError(
            f"recorder.py lacks typed helpers for: {', '.join(missing)}"
        )
    return SchemaRegistry(
        events_path=config.schema_events,
        version=version,
        version_line=version_line,
        shapes=shapes,
        helpers=helpers,
    )


# ----------------------------------------------------------------------
# Emission-site checking
# ----------------------------------------------------------------------
class _EmissionVisitor(ast.NodeVisitor):
    def __init__(self, registry: SchemaRegistry, path: str):
        self.registry = registry
        self.path = path
        self.findings: List[Finding] = []

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
        ))

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in self.registry.shapes:
                self._check_helper_call(node, func.attr)
            elif func.attr == "_append":
                self._check_raw_tuple(node)
            elif func.attr == "emit":
                self._check_record_dict(node)
        elif isinstance(func, ast.Name):
            if func.id == "_append":
                self._check_raw_tuple(node)
            elif func.id == "emit":
                self._check_record_dict(node)
        self.generic_visit(node)

    def _check_helper_call(self, node: ast.Call, kind: str) -> None:
        helper = self.registry.helpers[kind]
        if any(isinstance(a, ast.Starred) for a in node.args) or \
                any(kw.arg is None for kw in node.keywords):
            return  # *args/**kwargs: not statically checkable
        bound = len(node.args)
        if bound > len(helper.params):
            self._flag(
                node, "DOM302",
                f"'{kind}' emission passes {bound} positional args but "
                f"the typed helper takes at most {len(helper.params)} "
                f"({', '.join(helper.params)})",
            )
            return
        seen = set(helper.params[:bound])
        for kw in node.keywords:
            if kw.arg not in helper.params:
                self._flag(
                    node, "DOM302",
                    f"'{kind}' emission passes unknown field '{kw.arg}'; "
                    f"the schema's fields are: {', '.join(helper.params)}",
                )
                return
            if kw.arg in seen:
                self._flag(
                    node, "DOM302",
                    f"'{kind}' emission binds '{kw.arg}' twice",
                )
                return
            seen.add(kw.arg)
        missing = [p for p in helper.params[:helper.required]
                   if p not in seen]
        if missing:
            self._flag(
                node, "DOM302",
                f"'{kind}' emission omits required field(s) "
                f"{', '.join(missing)}; bump-safe optional fields need "
                f"defaults in events.py",
            )

    def _check_raw_tuple(self, node: ast.Call) -> None:
        if len(node.args) != 1 or not isinstance(node.args[0], ast.Tuple):
            return
        elements = node.args[0].elts
        if not elements or not isinstance(elements[0], ast.Constant) or \
                not isinstance(elements[0].value, str):
            return
        kind = elements[0].value
        shape = self.registry.shapes.get(kind)
        if shape is None:
            self._flag(
                node, "DOM301",
                f"raw trace tuple names unknown event kind '{kind}'; "
                f"register it in telemetry/events.py first",
            )
            return
        got = len(elements) - 1
        if got != len(shape.fields):
            self._flag(
                node, "DOM302",
                f"raw '{kind}' tuple carries {got} values but the schema "
                f"has {len(shape.fields)} fields "
                f"({', '.join(shape.fields)}); the recorder materializes "
                f"tuples by zipping schema order",
            )

    def _check_record_dict(self, node: ast.Call) -> None:
        if len(node.args) != 1 or not isinstance(node.args[0], ast.Dict):
            return
        record = node.args[0]
        keys: List[str] = []
        kind: Optional[str] = None
        for key_node, value_node in zip(record.keys, record.values):
            if not (isinstance(key_node, ast.Constant)
                    and isinstance(key_node.value, str)):
                return  # dynamic keys: not statically checkable
            keys.append(key_node.value)
            if key_node.value == "ev":
                if not (isinstance(value_node, ast.Constant)
                        and isinstance(value_node.value, str)):
                    return
                kind = value_node.value
        if kind is None:
            return  # not an event record
        shape = self.registry.shapes.get(kind)
        if shape is None:
            self._flag(
                node, "DOM301",
                f"emit() record names unknown event kind '{kind}'; "
                f"register it in telemetry/events.py first",
            )
            return
        fields = set(shape.fields)
        unknown = [k for k in keys if k != "ev" and k not in fields]
        required = [f for f in shape.fields if f not in shape.defaulted]
        missing = [f for f in required if f not in keys]
        if unknown:
            self._flag(
                node, "DOM302",
                f"emit() record for '{kind}' carries unknown field(s) "
                f"{', '.join(unknown)}; the schema has: "
                f"{', '.join(shape.fields)}",
            )
        elif missing:
            self._flag(
                node, "DOM302",
                f"emit() record for '{kind}' omits required field(s) "
                f"{', '.join(missing)}",
            )


def check_emissions(tree: ast.AST, path: str,
                    registry: SchemaRegistry) -> List[Finding]:
    """DOM301/DOM302 findings for one source file."""
    visitor = _EmissionVisitor(registry, path)
    visitor.visit(tree)
    return visitor.findings


# ----------------------------------------------------------------------
# DOM303: the shape-change-needs-a-version-bump gate
# ----------------------------------------------------------------------
def check_baseline(registry: SchemaRegistry, config: Config,
                   rel_events: str) -> List[Finding]:
    """Compare the live registry against the committed fingerprint."""
    baseline_path = config.schema_baseline
    if not baseline_path.is_file():
        return [Finding(
            path=rel_events, line=registry.version_line, col=0,
            rule="DOM303",
            message=(
                f"no schema baseline at "
                f"{baseline_path.relative_to(config.root)}; create it "
                f"with --update-schema-baseline"
            ),
        )]
    try:
        baseline = json.loads(baseline_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [Finding(
            path=rel_events, line=registry.version_line, col=0,
            rule="DOM303",
            message=f"unreadable schema baseline: {exc}",
        )]
    live = registry.fingerprint()
    if live == baseline:
        return []
    if live["events"] == baseline.get("events"):
        # Only the version changed: a bump with no shape change is
        # legal (it can cover semantic changes); refresh the baseline.
        note = "version changed with no shape change"
    elif live["schema_version"] == baseline.get("schema_version"):
        return [Finding(
            path=rel_events, line=registry.version_line, col=0,
            rule="DOM303",
            message=(
                "event shapes changed but SCHEMA_VERSION did not; bump "
                "it (new fields need defaults so old traces still "
                "parse), then refresh the baseline with "
                "--update-schema-baseline"
            ),
        )]
    else:
        note = "shapes and version both changed"
    return [Finding(
        path=rel_events, line=registry.version_line, col=0,
        rule="DOM303",
        message=(
            f"schema baseline is stale ({note}); refresh it with "
            f"--update-schema-baseline so future diffs are judged "
            f"against the current shape"
        ),
    )]


def write_baseline(registry: SchemaRegistry, config: Config) -> None:
    """Rewrite the committed fingerprint from the live registry."""
    payload = json.dumps(registry.fingerprint(), indent=2, sort_keys=True)
    config.schema_baseline.write_text(payload + "\n")
