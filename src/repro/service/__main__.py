"""Online controller CLI.

Usage::

    python -m repro.service --scenario examples/service_churn.json \
        [--check-every N] [--trace out.jsonl] [--json] [--quiet]

Replays the scenario deterministically (virtual-time debouncing) and
prints the run summary.  ``--check-every N`` verifies every N-th epoch
against a from-scratch recompute — exit code 3 flags a digest
mismatch, which is a correctness bug, never load.  ``--trace`` writes
the ``sched_revision`` stream (plus metrics) as telemetry JSONL for
``python -m repro.telemetry summarize``.

Exit codes: 0 success, 2 unreadable/invalid scenario, 3 oracle
mismatch.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .. import telemetry
from .incremental import IncrementalController
from .scenario import load_scenario
from .service import ControllerService, OracleMismatch


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Replay a controller scenario through the online "
                    "incremental scheduler.")
    parser.add_argument("--scenario", required=True,
                        help="scenario JSON file (see repro.service."
                             "scenario for the schema)")
    parser.add_argument("--check-every", type=int, default=0,
                        metavar="N",
                        help="verify every N-th epoch against a "
                             "from-scratch recompute (0 = off)")
    parser.add_argument("--trace", metavar="OUT.JSONL", default=None,
                        help="write telemetry JSONL (sched_revision "
                             "events + metrics) to this path")
    parser.add_argument("--json", action="store_true",
                        help="emit the summary as JSON instead of text")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the summary (exit code only)")
    args = parser.parse_args(argv)

    try:
        scenario = load_scenario(args.scenario)
    except OSError as exc:
        print(f"error: cannot read {args.scenario}: "
              f"{exc.strerror or exc}", file=sys.stderr)
        return 2
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        print(f"error: invalid scenario {args.scenario}: {exc}",
              file=sys.stderr)
        return 2

    recorder = telemetry.activate() if args.trace else None
    try:
        engine = IncrementalController(scenario.make_state(),
                                       scenario.config)
        service = ControllerService(engine, check_every=args.check_every)
        try:
            stats = service.run_events(scenario.events)
        except OracleMismatch as exc:
            print(f"ORACLE MISMATCH: {exc}", file=sys.stderr)
            return 3
    finally:
        if recorder is not None:
            telemetry.deactivate()
    if recorder is not None:
        recorder.export_jsonl(args.trace)

    if not args.quiet:
        if args.json:
            payload = {
                "scenario": scenario.name,
                "events": stats.events,
                "ignored_events": stats.ignored_events,
                "revisions": stats.revisions,
                "epochs": stats.epochs,
                "revision_p50_ms": stats.revision_p50_ms,
                "revision_p99_ms": stats.revision_p99_ms,
                "revision_mean_ms": stats.revision_mean_ms,
                "incremental_hit_rate": stats.incremental_hit_rate,
                "conflict_checks": stats.conflict_checks,
                "oracle_checks": stats.oracle_checks,
                "last_digest": stats.last_digest,
            }
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(f"scenario           {scenario.name}")
            print(stats.render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
