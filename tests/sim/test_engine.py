"""Unit tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "late")
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(3.0, fired.append, "mid")
    sim.run(until=10.0)
    assert fired == ["early", "mid", "late"]


def test_same_time_events_fire_in_insertion_order():
    sim = Simulator()
    fired = []
    for tag in ("a", "b", "c"):
        sim.schedule(2.0, fired.append, tag)
    sim.run(until=5.0)
    assert fired == ["a", "b", "c"]


def test_clock_advances_to_until_even_when_heap_drains():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run(until=100.0)
    assert sim.now == 100.0


def test_events_beyond_horizon_are_not_executed():
    sim = Simulator()
    fired = []
    sim.schedule(50.0, fired.append, "x")
    sim.run(until=10.0)
    assert fired == []
    sim.run(until=60.0)
    assert fired == ["x"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run(until=5.0)
    assert fired == []
    assert sim.events_processed == 0


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run(until=2.0)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_in_the_past_rejected():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run(until=10.0)
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_nested_scheduling_from_callbacks():
    sim = Simulator()
    fired = []

    def outer():
        fired.append("outer")
        sim.schedule(1.0, fired.append, "inner")

    sim.schedule(1.0, outer)
    sim.run(until=5.0)
    assert fired == ["outer", "inner"]
    assert sim.now == 5.0


def test_step_processes_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, fired.append, 2)
    assert sim.step() is True
    assert fired == [1]
    assert sim.step() is True
    assert sim.step() is False


def test_run_not_reentrant():
    sim = Simulator()
    errors = []

    def recurse():
        try:
            sim.run(until=100.0)
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, recurse)
    sim.run(until=10.0)
    assert len(errors) == 1


def test_pending_and_next_event_time_skip_cancelled():
    sim = Simulator()
    keep = sim.schedule(7.0, lambda: None)
    drop = sim.schedule(3.0, lambda: None)
    drop.cancel()
    assert sim.pending == 1
    assert sim.next_event_time() == 7.0
    assert keep.time == 7.0


def test_pending_counter_tracks_cancel_and_execution():
    sim = Simulator()
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
    assert sim.pending == 5
    events[1].cancel()
    events[1].cancel()                   # idempotent: counted once
    events[3].cancel()
    assert sim.pending == 3
    sim.run(until=10.0)
    assert sim.pending == 0
    assert sim.events_processed == 3


def test_pending_counts_events_cancelled_from_callbacks():
    sim = Simulator()
    victim = sim.schedule(5.0, lambda: None)
    sim.schedule(1.0, victim.cancel)
    sim.step()
    assert sim.pending == 0
    assert sim.next_event_time() is None


def test_next_event_time_discards_cancelled_heads():
    sim = Simulator()
    for t in (1.0, 2.0, 3.0):
        sim.schedule(t, lambda: None).cancel()
    keep = sim.schedule(4.0, lambda: None)
    assert sim.next_event_time() == 4.0
    assert sim.pending == 1
    # The lazy pop must not lose the surviving event.
    sim.run(until=10.0)
    assert sim.events_processed == 1
    assert keep.cancelled is False


def test_rng_determinism():
    a = Simulator(seed=42)
    b = Simulator(seed=42)
    assert [a.rng.random() for _ in range(5)] == \
        [b.rng.random() for _ in range(5)]


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
                min_size=1, max_size=40))
def test_property_all_events_fire_in_nondecreasing_time(delays):
    sim = Simulator()
    times = []
    for delay in delays:
        sim.schedule(delay, lambda: times.append(sim.now))
    sim.run(until=2e6)
    assert times == sorted(times)
    assert len(times) == len(delays)
