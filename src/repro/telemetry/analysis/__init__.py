"""Diagnosis layer over traces and metrics — "the doctor".

Three entry points:

* :func:`diagnose` — one pass over a trace, out comes a typed
  :class:`HealthReport` (trigger reliability, ROP decode health,
  airtime accounting, per-flow fairness, plain-language findings);
* :func:`diff_traces` — align two traces slot-by-slot and report the
  first divergence (:class:`TraceDiff`);
* the report/section dataclasses themselves, for tooling that wants
  the numbers rather than the rendered text.

Also reachable as ``RunResult.doctor()`` on a traced experiment run
and as ``python -m repro.telemetry doctor / diff`` on exported JSONL.
"""

from .diff import SlotDivergence, TraceDiff, diff_traces
from .doctor import diagnose
from .reports import (AirtimeBucket, AirtimeReport, FlowHealth, FlowStats,
                      HealthReport, LinkTriggerStats, RopHealth,
                      TriggerHealth)

__all__ = [
    "AirtimeBucket",
    "AirtimeReport",
    "FlowHealth",
    "FlowStats",
    "HealthReport",
    "LinkTriggerStats",
    "RopHealth",
    "SlotDivergence",
    "TraceDiff",
    "TriggerHealth",
    "diagnose",
    "diff_traces",
]
