"""Online-controller load bench: churn at scale + latency gate.

Drives the controller service through a seeded 40-node workload —
queue-heavy churn with membership turnover, then RSS wobble on two
clients and a mobility walk — twice:

* **replay** — the deterministic ``run_events`` driver, which is what
  the gated metrics come from: epoch boundaries are a pure function
  of the scenario, so ``incremental_hit_rate`` is a deterministic
  simulation output and ``revision_p50_ms`` / ``revision_p99_ms``
  measure exactly the incremental path (apply + revise; the equality
  oracle's from-scratch recomputes run outside the timed window);
* **live** — the asyncio loop fed by ``SERVICE_BENCH_PRODUCERS``
  concurrent producers (default 2), proving the daemon survives the
  same volume with interleaved arrival and periodic oracle checks.

``SERVICE_CHURN_UPDATES`` scales the churn stream (default 10_000;
the generator handles >= 10**5 for soak runs).  Every 16th epoch is
verified against a from-scratch recompute in both passes — a digest
mismatch is a correctness bug and fails the bench outright.

Numbers land in ``BENCH_service.json`` (latest snapshot) and the
``service_loadtest`` entry of ``BENCH_history.jsonl``, where
``revision_p99_ms`` (lower) and ``incremental_hit_rate`` (higher)
join the trend gate.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

from repro.service import (ControllerService, IncrementalController,
                           build_scenario)

import trend

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(_ROOT, "BENCH_service.json")

UPDATES = int(os.environ.get("SERVICE_CHURN_UPDATES", "10000"))
PRODUCERS = int(os.environ.get("SERVICE_BENCH_PRODUCERS", "2"))
CHECK_EVERY = 16

# Churn at a 40 us mean gap spans UPDATES * 40 us of virtual time;
# the wobble / mobility phases start just past that so the cache sees
# the steady-state single-link regime the service is built for.
_CHURN_SPAN_US = UPDATES * 40.0


def loadtest_scenario():
    return build_scenario({
        "name": f"loadtest-{UPDATES}",
        "topology": {"kind": "random_t", "m": 10, "n": 3, "seed": 2},
        "config": {"batch_slots": 12, "debounce_events": 64,
                   "epoch_gap_us": 2000.0},
        "sources": [
            {"kind": "churn", "updates": UPDATES, "seed": 11},
            {"kind": "rss_wobble", "client": 2, "updates": 200,
             "start_us": _CHURN_SPAN_US + 50_000.0, "gap_us": 2000.0,
             "jitter_db": 0.75},
            {"kind": "rss_wobble", "client": 5, "updates": 200,
             "start_us": _CHURN_SPAN_US + 51_000.0, "gap_us": 2000.0,
             "jitter_db": 0.75},
            {"kind": "mobility", "node": 1, "to": [400.0, 400.0],
             "steps": 40, "interval_us": 4000.0,
             "start_us": _CHURN_SPAN_US + 500_000.0},
        ],
    })


async def _live_run(scenario):
    engine = IncrementalController(scenario.make_state(), scenario.config)
    service = ControllerService(engine, check_every=CHECK_EVERY)

    async def producer(lane):
        # Round-robin lanes keep submissions in rough global time
        # order while still exercising concurrent interleaving.
        for i, event in enumerate(scenario.events[lane::PRODUCERS]):
            await service.submit(event)
            if i % 13 == 0:
                await asyncio.sleep(0)

    async def producers():
        await asyncio.gather(*(producer(k) for k in range(PRODUCERS)))
        await service.close()

    stats, _ = await asyncio.gather(service.run(), producers())
    return service, stats


def test_service_loadtest():
    scenario = loadtest_scenario()
    n_events = len(scenario.events)

    # Deterministic replay: the gated numbers.
    engine = IncrementalController(scenario.make_state(), scenario.config)
    service = ControllerService(engine, check_every=CHECK_EVERY)
    t0 = time.perf_counter()
    stats = service.run_events(scenario.events)
    replay_wall_s = time.perf_counter() - t0

    assert stats.events == n_events
    assert stats.oracle_checks >= stats.revisions // CHECK_EVERY
    versions = [r.version for r in service.revisions]
    assert versions == sorted(versions)

    # Live daemon under concurrent producers: same volume, same
    # oracle, arrival-dependent epochs.
    t0 = time.perf_counter()
    live_service, live_stats = asyncio.run(_live_run(scenario))
    live_wall_s = time.perf_counter() - t0
    assert live_stats.events == n_events
    assert live_stats.oracle_checks > 0
    live_versions = [r.version for r in live_service.revisions]
    assert live_versions == sorted(live_versions)

    report = {
        "workload": f"T(10,3) churn x {UPDATES} + 2 wobble streams "
                    f"+ mobility walk ({n_events} events)",
        "events": n_events,
        "producers": PRODUCERS,
        "replay_revisions": stats.revisions,
        "replay_wall_s": round(replay_wall_s, 4),
        "revision_p50_ms": round(stats.revision_p50_ms, 4),
        "revision_p99_ms": round(stats.revision_p99_ms, 4),
        "revision_mean_ms": round(stats.revision_mean_ms, 4),
        "incremental_hit_rate": round(stats.incremental_hit_rate, 4),
        "conflict_checks": stats.conflict_checks,
        "oracle_checks": stats.oracle_checks + live_stats.oracle_checks,
        "live_revisions": live_stats.revisions,
        "live_wall_s": round(live_wall_s, 4),
        "live_events_per_sec": round(n_events / live_wall_s, 1)
        if live_wall_s else 0.0,
    }
    with open(RESULT_PATH, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    trend.append("service_loadtest", {
        "events": n_events,
        "revision_p50_ms": round(stats.revision_p50_ms, 4),
        "revision_p99_ms": round(stats.revision_p99_ms, 4),
        "incremental_hit_rate": round(stats.incremental_hit_rate, 4),
        "live_events_per_sec": report["live_events_per_sec"],
    })

    # The wobble/mobility tail must actually replay from cache — a
    # hit rate collapse means revalidation got too aggressive.
    assert stats.incremental_hit_rate > 0.05, report
