"""diff_traces pinpoints a single perturbed slot in a matrix-engine run.

When a matrix-backend bug makes one slot behave differently, the
debugging tool of record is :func:`repro.telemetry.analysis.diff_traces`
— it must name *exactly* the perturbed slot as the first divergence,
not an earlier or later one, or forensics start in the wrong place.
This test manufactures that situation deliberately: take one traced
matrix-engine domino run, flip one slot-chain-visible field in a copy
of its trace, and check the report.
"""

import copy

from repro.experiments.common import run_scheme
from repro.telemetry.analysis import diff_traces
from repro.telemetry.trace_tools import trigger_chain_timeline
from repro.topology.builder import fig1_topology


def _matrix_domino_records():
    result = run_scheme("domino", fig1_topology(), horizon_us=120_000.0,
                        seed=1, saturated=True, trace=True,
                        engine="matrix")
    return result.trace.records()


def test_single_slot_perturbation_is_pinpointed():
    records = _matrix_domino_records()
    timeline = trigger_chain_timeline(records)
    executed = [e.slot for e in timeline if e.senders]
    assert len(executed) >= 4, "need a few executed slots to perturb one"
    # Perturb a mid-chain slot so the report must skip identical
    # earlier slots and stop before later (also-identical) ones.
    target_slot = executed[len(executed) // 2]

    perturbed = copy.deepcopy(records)
    index = next(i for i, r in enumerate(perturbed)
                 if r.get("ev") == "slot_exec"
                 and r.get("slot") == target_slot)
    perturbed[index]["fake"] = not perturbed[index]["fake"]

    diff = diff_traces(records, perturbed)
    assert not diff.identical
    assert diff.first_divergence is not None
    assert diff.first_divergence.slot == target_slot
    assert diff.slots_divergent == 1
    assert diff.first_record_mismatch == index

    # Sanity: the unperturbed trace diffs clean against itself.
    assert diff_traces(records, copy.deepcopy(records)).identical
