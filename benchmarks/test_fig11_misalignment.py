"""Figure 11 bench: misalignment convergence vs wired jitter.

Paper's shape: initial misalignment grows with the wired-latency
variance (10-20 us over the swept settings) and collapses to 1-2 us
within a few slots for every setting.
"""

from repro.experiments import fig11_misalignment


def test_fig11_misalignment(once):
    result = once(fig11_misalignment.run)
    print()
    print(fig11_misalignment.report(result))

    series = result.series
    # Initial misalignment grows with the variance setting.
    initial = [series[v][0] for v in fig11_misalignment.VARIANCES_US2]
    assert initial == sorted(initial)
    assert initial[0] > 5.0
    assert initial[-1] > 15.0
    # Small-jitter settings align within 4 slots (paper's claim);
    # the large ones within 6 (one poll cycle later than the paper).
    assert result.converged_within(20.0, slots=4)
    assert result.converged_within(40.0, slots=6)
    assert result.converged_within(60.0, slots=6)
    assert result.converged_within(80.0, slots=6)
    # Converged residual is microsecond-scale everywhere.
    for variance in fig11_misalignment.VARIANCES_US2:
        assert max(series[variance][6:]) <= 2.5
