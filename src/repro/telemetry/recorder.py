"""Trace recorders: the bounded-ring-buffer event sink and its no-op twin.

Instrumented components capture the *current* recorder once, at
construction time (``self._trace = telemetry.current()``), and guard
every hot-path emission with::

    tel = self._trace
    if tel.enabled:
        tel.frame_tx(...)

When telemetry is disabled — the default — ``current()`` returns the
module-level :data:`NULL` recorder whose ``enabled`` is ``False``, so
the instrumentation costs one attribute load and one branch per site
and nothing else.  ``benchmarks/test_telemetry_overhead.py`` keeps
that honest (<5 % on a reference fig12 run).

The typed helpers (``frame_tx`` .. ``batch_start``) build plain dicts
matching the :mod:`~repro.telemetry.events` schema; set-valued fields
are sorted here so exports are deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import IO, TYPE_CHECKING, Deque, Iterator, List, Optional

from . import jsonl
from .metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - the recorder only duck-types
    from ..sim.packet import Frame  # Frame; no runtime sim dependency


class NullRecorder:
    """Disabled telemetry: every operation is a no-op.

    Carries a throwaway :class:`MetricsRegistry` so code that reaches
    ``recorder.metrics`` without checking ``enabled`` still works (it
    records into the void); hot paths must check ``enabled`` first.
    """

    enabled = False

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()

    # -- generic sink ---------------------------------------------------
    def emit(self, record: dict) -> None:
        pass

    # -- typed helpers (all no-ops, same signatures as TraceRecorder) ---
    def frame_tx(self, t, node, frame, airtime_us):
        pass

    def frame_rx(self, t, node, frame):
        pass

    def frame_drop(self, t, node, frame, reason):
        pass

    def sig_detect(self, t, node, src, slot, sinr_db, combined, detected):
        pass

    def trigger_fire(self, t, node, slot, targets, rop, polls):
        pass

    def backup_trigger(self, t, node, slot, reason):
        pass

    def slot_exec(self, t, node, slot, dst, fake):
        pass

    def rop_poll(self, t, node, slot, poll_set):
        pass

    def rop_decode(self, t, node, decoded, failed):
        pass

    def sched_dispatch(self, t, batch, first_slot, last_slot, slots):
        pass

    def batch_start(self, t, batch, node):
        pass


#: The one shared disabled recorder (what ``telemetry.current()``
#: returns outside an activated session).
NULL = NullRecorder()


class TraceRecorder(NullRecorder):
    """Structured trace sink with a bounded ring buffer.

    Parameters
    ----------
    capacity:
        Maximum events held; once full, the *oldest* events are
        evicted (``evicted`` counts them).  A bounded buffer keeps
        long runs at O(capacity) memory — the tail of a trace is
        almost always the interesting part.
    metrics:
        Optional shared :class:`MetricsRegistry`; a fresh one is
        created by default.
    """

    enabled = True

    def __init__(self, capacity: int = 65536,
                 metrics: Optional[MetricsRegistry] = None):
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.capacity = capacity
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._events: Deque[dict] = deque(maxlen=capacity)
        self.emitted = 0
        self.evicted = 0

    # ------------------------------------------------------------------
    # Sink
    # ------------------------------------------------------------------
    def emit(self, record: dict) -> None:
        if len(self._events) == self.capacity:
            self.evicted += 1
        self._events.append(record)
        self.emitted += 1

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        # An empty recorder must not read as "no recorder" to code
        # doing `if trace:` — emptiness is `len(recorder) == 0`.
        return True

    def clear(self) -> None:
        self._events.clear()
        self.emitted = 0
        self.evicted = 0

    # ------------------------------------------------------------------
    # Typed helpers (hot path: build the record inline, no dataclass)
    # ------------------------------------------------------------------
    @staticmethod
    def _slot_of(frame: Frame):
        return frame.meta.get("slot")

    def frame_tx(self, t: float, node: int, frame: Frame,
                 airtime_us: float) -> None:
        self.emit({"ev": "frame_tx", "t": t, "node": node,
                   "frame": frame.kind.value, "dst": frame.dst,
                   "seq": frame.seq, "slot": self._slot_of(frame),
                   "airtime_us": airtime_us})

    def frame_rx(self, t: float, node: int, frame: Frame) -> None:
        self.emit({"ev": "frame_rx", "t": t, "node": node,
                   "src": frame.src, "frame": frame.kind.value,
                   "seq": frame.seq, "slot": self._slot_of(frame)})

    def frame_drop(self, t: float, node: int, frame: Frame,
                   reason: str) -> None:
        self.emit({"ev": "frame_drop", "t": t, "node": node,
                   "src": frame.src, "frame": frame.kind.value,
                   "seq": frame.seq, "slot": self._slot_of(frame),
                   "reason": reason})

    def sig_detect(self, t: float, node: int, src: int, slot: int,
                   sinr_db: float, combined: int, detected: bool) -> None:
        self.emit({"ev": "sig_detect", "t": t, "node": node, "src": src,
                   "slot": slot, "sinr_db": round(sinr_db, 3),
                   "combined": combined, "detected": detected})

    def trigger_fire(self, t: float, node: int, slot: int, targets,
                     rop: bool, polls) -> None:
        self.emit({"ev": "trigger_fire", "t": t, "node": node,
                   "slot": slot, "targets": sorted(targets),
                   "rop": bool(rop), "polls": sorted(polls)})

    def backup_trigger(self, t: float, node: int, slot: int,
                       reason: str) -> None:
        self.emit({"ev": "backup_trigger", "t": t, "node": node,
                   "slot": slot, "reason": reason})

    def slot_exec(self, t: float, node: int, slot: int, dst: int,
                  fake: bool) -> None:
        self.emit({"ev": "slot_exec", "t": t, "node": node, "slot": slot,
                   "dst": dst, "fake": fake})

    def rop_poll(self, t: float, node: int, slot: int,
                 poll_set: int) -> None:
        self.emit({"ev": "rop_poll", "t": t, "node": node, "slot": slot,
                   "poll_set": poll_set})

    def rop_decode(self, t: float, node: int, decoded: int,
                   failed: int) -> None:
        self.emit({"ev": "rop_decode", "t": t, "node": node,
                   "decoded": decoded, "failed": failed})

    def sched_dispatch(self, t: float, batch: int, first_slot: int,
                       last_slot: int, slots: int) -> None:
        self.emit({"ev": "sched_dispatch", "t": t, "batch": batch,
                   "first_slot": first_slot, "last_slot": last_slot,
                   "slots": slots})

    def batch_start(self, t: float, batch: int, node: int) -> None:
        self.emit({"ev": "batch_start", "t": t, "batch": batch,
                   "node": node})

    # ------------------------------------------------------------------
    # Query / export
    # ------------------------------------------------------------------
    def events(self, kind: Optional[str] = None,
               node: Optional[int] = None,
               t0: Optional[float] = None,
               t1: Optional[float] = None) -> Iterator[dict]:
        """Iterate buffered records, optionally filtered."""
        for record in self._events:
            if kind is not None and record.get("ev") != kind:
                continue
            if node is not None and record.get("node") != node:
                continue
            t = record.get("t", 0.0)
            if t0 is not None and t < t0:
                continue
            if t1 is not None and t > t1:
                continue
            yield record

    def records(self) -> List[dict]:
        return list(self._events)

    def export_jsonl(self, path: str) -> int:
        """Write the buffered trace to ``path`` (canonical JSONL)."""
        return jsonl.dump_jsonl(path, self._events)

    def write_jsonl(self, stream: IO[str]) -> int:
        return jsonl.write_jsonl(stream, self._events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceRecorder({len(self)}/{self.capacity} buffered, "
                f"{self.emitted} emitted, {self.evicted} evicted)")
