"""Synthetic RSS trace — substitute for the paper's 40-node testbed trace.

The paper's large-scale evaluation (Sec. 4.2) is driven by an RSS
trace measured between 40 WiFi nodes across two buildings.  That
trace is not public, so this module synthesizes one with the same
role and the same reported statistics:

* an RSS matrix between all node pairs, used (a) to build ``T(m, n)``
  topologies and (b) as the medium's ground truth;
* heterogeneous connectivity: some node pairs are in communication
  range, some only in carrier-sense range, some hidden — this is what
  gives the evaluation its hidden/exposed terminal pairs;
* the ROP design statistic from Sec. 3.1: "only 0.54 % of all link
  pairs have an RSS difference greater than 38 dB" — checked by
  :meth:`SyntheticTrace.rss_difference_fraction` and asserted in the
  trace tests for the default seed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from .placement import TwoBuildingLayout, two_building_placement
from .propagation import LogDistanceModel, matrix_rss_fn

DEFAULT_TX_POWER_DBM = 15.0
ROP_TOLERANCE_DB = 38.0  # ROP guard subcarriers tolerate up to this mismatch


@dataclass
class SyntheticTrace:
    """An RSS matrix plus the metadata the builders need.

    Attributes
    ----------
    rss_dbm:
        ``rss_dbm[i, j]`` = RSS at node ``j`` when ``i`` transmits.
    positions:
        Node positions in metres (for plotting / debugging).
    comm_threshold_dbm:
        Minimum RSS for two nodes to be "in communication range".
        The default is association-grade (clients land within ~10 m of
        their AP), giving the robust links enterprise deployments aim
        for; weak marginal associations would turn every audible
        transmitter into an interferer.
    """

    rss_dbm: np.ndarray
    positions: List[Tuple[float, float]] = field(default_factory=list)
    comm_threshold_dbm: float = -65.0

    @property
    def n_nodes(self) -> int:
        return self.rss_dbm.shape[0]

    def rss(self, tx_id: int, rx_id: int) -> float:
        return float(self.rss_dbm[tx_id, rx_id])

    def rss_fn(self) -> Callable[[int, int], float]:
        """Adapter for :class:`repro.sim.Medium`."""
        return matrix_rss_fn(self.rss_dbm)

    # ------------------------------------------------------------------
    # Connectivity queries used by the T(m, n) builder (Sec. 4.2.1)
    # ------------------------------------------------------------------
    def can_communicate(self, a: int, b: int) -> bool:
        """Both directions above the communication threshold."""
        return (self.rss(a, b) >= self.comm_threshold_dbm
                and self.rss(b, a) >= self.comm_threshold_dbm)

    def comm_neighbors(self, node: int) -> List[int]:
        return [other for other in range(self.n_nodes)
                if other != node and self.can_communicate(node, other)]

    def degree_order(self) -> List[int]:
        """Nodes sorted by communication-range degree, decreasing.

        Ties break by node id so the ordering is deterministic; this is
        the sort the paper uses to pick APs for ``T(m, n)``.
        """
        degrees = [(len(self.comm_neighbors(node)), -node, node)
                   for node in range(self.n_nodes)]
        degrees.sort(reverse=True)
        return [node for _, _, node in degrees]

    # ------------------------------------------------------------------
    # ROP design statistic (Sec. 3.1)
    # ------------------------------------------------------------------
    def rss_difference_fraction(self, threshold_db: float = ROP_TOLERANCE_DB) -> float:
        """Fraction of receiver-side RSS pairs differing by more than
        ``threshold_db``.

        For every receiver, every pair of *audible* transmitters is a
        "link pair" whose RSS difference matters to ROP subchannel
        interference; the paper reports 0.54 % above 38 dB.
        """
        floor = -95.0  # inaudible transmitters cannot interfere with ROP
        total = 0
        exceeding = 0
        for rx in range(self.n_nodes):
            audible = [self.rss(tx, rx) for tx in range(self.n_nodes)
                       if tx != rx and self.rss(tx, rx) >= floor]
            for a, b in itertools.combinations(audible, 2):
                total += 1
                if abs(a - b) > threshold_db:
                    exceeding += 1
        return exceeding / total if total else 0.0


def two_building_trace(n_nodes: int = 40, seed: int = 7,
                       tx_power_dbm: float = DEFAULT_TX_POWER_DBM,
                       model: Optional[LogDistanceModel] = None) -> SyntheticTrace:
    """Generate the default 40-node two-building trace.

    The default seed is chosen so the resulting matrix reproduces the
    paper's connectivity character: a mix of hidden, exposed and
    clean pairs, and well under ~1 % of receiver-side pairs with more
    than 38 dB RSS mismatch.
    """
    layout: TwoBuildingLayout = two_building_placement(n_nodes, seed=seed)
    prop = model if model is not None else LogDistanceModel()
    matrix = prop.rss_matrix(
        layout.positions,
        tx_power_dbm=tx_power_dbm,
        seed=seed,
        wall_counter=layout.wall_counter(),
    )
    return SyntheticTrace(rss_dbm=matrix, positions=list(layout.positions))


def manual_trace(n_nodes: int, pairs_dbm: dict,
                 default_dbm: float = -120.0) -> SyntheticTrace:
    """Hand-crafted trace from an explicit pair -> RSS map.

    ``pairs_dbm`` maps ``(tx, rx)`` to dBm; unless the reverse pair is
    also given, the value is applied symmetrically.  Used to encode
    the paper's canonical figures (Fig. 1, Fig. 7, Fig. 13) whose
    semantics are specified by which nodes hear which.
    """
    matrix = np.full((n_nodes, n_nodes), default_dbm)
    np.fill_diagonal(matrix, DEFAULT_TX_POWER_DBM)
    for (tx, rx), value in pairs_dbm.items():
        matrix[tx, rx] = value
        if (rx, tx) not in pairs_dbm:
            matrix[rx, tx] = value
    return SyntheticTrace(rss_dbm=matrix)
