"""Central interference map (Sec. 3, "Identifying hidden and exposed links").

The DOMINO server maintains the received signal strength between all
node pairs and derives from it which links may transmit concurrently.
This module wraps an RSS source (trace matrix or propagation model)
and answers the questions the scheduler, converter and analysis need:

* can two links be active in the same slot (``conflicts``)?
* can a node's signature trigger another node (``can_trigger``)?
* which link pairs are *hidden* or *exposed* — the counts reported in
  Sec. 4.2.3 ("10 hidden link pairs and 62 exposed link pairs out of
  720 possible link pairs").

Conflict definition: two links conflict when they share a node, or
when the sender (or the ACK-sending receiver) of one link lowers the
other link's data SINR below the decode threshold plus a safety
margin.  This mirrors the conflict-graph construction of the
measurement-based interference literature the paper cites.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Sequence, Set, Tuple

from ..sim.phy import PhyProfile, dbm_to_mw, mw_to_dbm
from .links import Link

RssFn = Callable[[int, int], float]


@dataclass
class InterferenceMap:
    """RSS-matrix view used by the central server.

    Parameters
    ----------
    rss_dbm:
        ``rss_dbm(tx, rx)`` in dBm, same convention as the medium.
    profile:
        PHY profile; supplies noise floor, CS threshold and the data
        SINR threshold used in the conflict test.
    margin_db:
        Safety margin added to the decode threshold when declaring two
        links compatible, so borderline pairs are scheduled apart.
    """

    rss_dbm: RssFn
    profile: PhyProfile
    margin_db: float = 3.0
    _trigger_cache: Dict[Tuple[int, int], bool] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Basic link quantities
    # ------------------------------------------------------------------
    def link_rss_dbm(self, link: Link) -> float:
        return self.rss_dbm(link.src, link.dst)

    def link_snr_db(self, link: Link) -> float:
        return self.link_rss_dbm(link) - self.profile.noise_dbm

    def link_viable(self, link: Link) -> bool:
        """Can the link carry data at the profile's data rate in isolation?"""
        threshold = self.profile.sinr_threshold_db(self.profile.data_rate_mbps)
        return (self.link_rss_dbm(link) >= self.profile.sensitivity_dbm
                and self.link_snr_db(link) >= threshold + self.margin_db)

    def in_cs_range(self, a: int, b: int) -> bool:
        """Do ``a`` and ``b`` carrier-sense each other's transmissions?"""
        return (self.rss_dbm(a, b) >= self.profile.cs_threshold_dbm
                or self.rss_dbm(b, a) >= self.profile.cs_threshold_dbm)

    # ------------------------------------------------------------------
    # Conflicts
    # ------------------------------------------------------------------
    def _sinr_survives(self, signal_from: int, at: int,
                       interferers: Iterable[int],
                       rate_mbps: Optional[float] = None) -> bool:
        """Does a reception at ``at`` from ``signal_from`` survive?"""
        signal_mw = dbm_to_mw(self.rss_dbm(signal_from, at))
        interference_mw = self.profile.noise_mw()
        for node in interferers:
            interference_mw += dbm_to_mw(self.rss_dbm(node, at))
        sinr_db = mw_to_dbm(signal_mw) - mw_to_dbm(interference_mw)
        rate = rate_mbps if rate_mbps is not None \
            else self.profile.data_rate_mbps
        threshold = self.profile.sinr_threshold_db(rate)
        return sinr_db >= threshold + self.margin_db

    def conflicts(self, l1: Link, l2: Link) -> bool:
        """May ``l1`` and ``l2`` NOT share a slot?

        In slot-aligned operation the two links' *data* transmissions
        overlap and, later in the slot, their *ACKs* overlap — data
        never overlaps a foreign ACK.  So the test is: each link's
        data reception must survive the other's data sender, and each
        link's ACK reception (receiver back to sender, at the basic
        rate) must survive the other's ACK sender.
        """
        if l1.shares_node(l2):
            return True
        basic = self.profile.basic_rate_mbps
        # Data vs. data.
        if not self._sinr_survives(l1.src, l1.dst, [l2.src]):
            return True
        if not self._sinr_survives(l2.src, l2.dst, [l1.src]):
            return True
        # ACK vs. ACK (receivers transmit, senders listen).
        if not self._sinr_survives(l1.dst, l1.src, [l2.dst], basic):
            return True
        if not self._sinr_survives(l2.dst, l2.src, [l1.dst], basic):
            return True
        return False

    def set_survives(self, links: Sequence[Link]) -> bool:
        """Does the whole slot survive additively?

        Stronger than pairwise compatibility: interference is additive,
        so a set can fail even when each pair passes.  Data receptions
        face every other sender; ACK receptions face every other
        receiver (slot-aligned semantics as in :meth:`conflicts`).
        """
        basic = self.profile.basic_rate_mbps
        nodes_used: Set[int] = set()
        for link in links:
            if link.src in nodes_used or link.dst in nodes_used:
                return False
            nodes_used.add(link.src)
            nodes_used.add(link.dst)
        for link in links:
            data_interferers = [o.src for o in links if o != link]
            if not self._sinr_survives(link.src, link.dst, data_interferers):
                return False
            ack_interferers = [o.dst for o in links if o != link]
            if not self._sinr_survives(link.dst, link.src, ack_interferers,
                                       basic):
                return False
        return True

    # ------------------------------------------------------------------
    # Triggering (Sec. 3.3: "link l could trigger n iff the signature
    # sent by l.sender or l.receiver can be received by node n")
    # ------------------------------------------------------------------
    def node_can_trigger(self, src: int, target: int) -> bool:
        """Can ``src``'s signature be detected at ``target`` in the clear?

        Signature detection enjoys the Gold-code correlation gain, so
        the requirement is only that the signature arrives above an
        SNR the correlator can work with; interference robustness is
        handled at runtime by the detection model.
        """
        key = (src, target)
        cached = self._trigger_cache.get(key)
        if cached is not None:
            return cached
        from ..sim.phy import SIGNATURE_CORRELATION_GAIN_DB
        snr_db = self.rss_dbm(src, target) - self.profile.noise_dbm
        basic_threshold = self.profile.sinr_threshold_db(self.profile.basic_rate_mbps)
        ok = snr_db >= basic_threshold - SIGNATURE_CORRELATION_GAIN_DB + 6.0
        self._trigger_cache[key] = ok
        return ok

    def invalidate_nodes(self, nodes: Iterable[int]) -> int:
        """Purge cached trigger verdicts touching ``nodes``.

        The trigger cache is the map's only memoized state; everything
        else reads the RSS source live.  After an in-place RSS change
        confined to some nodes' rows/columns (mobility, re-measurement)
        the online controller calls this with exactly those nodes, so
        stale verdicts disappear while the rest of the cache — the
        expensive steady-state majority — survives.  Returns the
        number of entries purged.
        """
        dirty = frozenset(nodes)
        if not dirty:
            return 0
        stale = [key for key in self._trigger_cache
                 if key[0] in dirty or key[1] in dirty]
        for key in stale:
            del self._trigger_cache[key]
        return len(stale)

    def link_can_trigger(self, link: Link, target: int) -> bool:
        return (self.node_can_trigger(link.src, target)
                or self.node_can_trigger(link.dst, target))

    def trigger_rss_dbm(self, link: Link, target: int) -> float:
        """Best signature RSS at ``target`` from either endpoint of ``link``."""
        return max(self.rss_dbm(link.src, target), self.rss_dbm(link.dst, target))

    # ------------------------------------------------------------------
    # Hidden / exposed census (Sec. 4.2.3)
    # ------------------------------------------------------------------
    def classify_pair(self, l1: Link, l2: Link) -> str:
        """``'hidden'``, ``'exposed'``, ``'conflict'`` or ``'independent'``.

        * hidden: the links conflict, yet the senders cannot carrier-
          sense each other — DCF will collide them.
        * exposed: the links do not conflict, yet the senders *do*
          carrier-sense each other — DCF will serialize them.
        """
        if l1.shares_node(l2):
            return "conflict"
        conflicting = self.conflicts(l1, l2)
        senders_cs = self.in_cs_range(l1.src, l2.src)
        if conflicting and not senders_cs:
            return "hidden"
        if not conflicting and senders_cs:
            return "exposed"
        return "conflict" if conflicting else "independent"

    def census(self, links: Sequence[Link]) -> Dict[str, int]:
        """Counts of each pair class over all unordered link pairs."""
        counts = {"hidden": 0, "exposed": 0, "conflict": 0,
                  "independent": 0, "total": 0}
        for l1, l2 in itertools.combinations(links, 2):
            counts[self.classify_pair(l1, l2)] += 1
            counts["total"] += 1
        return counts
