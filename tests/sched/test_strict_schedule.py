"""Tests for the strict schedule container."""

import networkx as nx
import pytest

from repro.sched.strict_schedule import StrictSchedule
from repro.topology.links import Link


def test_append_iter_getitem():
    schedule = StrictSchedule()
    schedule.append([Link(0, 1)])
    schedule.append([Link(2, 3), Link(4, 5)])
    assert len(schedule) == 2
    assert schedule[1] == [Link(2, 3), Link(4, 5)]
    assert [len(s) for s in schedule] == [1, 2]


def test_links_deduplicated_in_order():
    schedule = StrictSchedule()
    schedule.append([Link(0, 1), Link(2, 3)])
    schedule.append([Link(0, 1)])
    assert schedule.links() == [Link(0, 1), Link(2, 3)]


def test_service_counts():
    schedule = StrictSchedule()
    schedule.append([Link(0, 1)])
    schedule.append([Link(0, 1), Link(2, 3)])
    counts = schedule.service_counts()
    assert counts[Link(0, 1)] == 2
    assert counts[Link(2, 3)] == 1


def test_validate_against_detects_conflict():
    graph = nx.Graph()
    graph.add_edge(Link(0, 1), Link(2, 3))
    bad = StrictSchedule()
    bad.append([Link(0, 1), Link(2, 3)])
    with pytest.raises(ValueError):
        bad.validate_against(graph)
    good = StrictSchedule()
    good.append([Link(0, 1)])
    good.append([Link(2, 3)])
    good.validate_against(graph)  # no raise


def test_link_helpers():
    link = Link(3, 7)
    assert link.sender == 3 and link.receiver == 7
    assert link.reversed() == Link(7, 3)
    assert link.shares_node(Link(7, 9))
    assert not link.shares_node(Link(1, 2))
    assert str(link) == "3->7"
