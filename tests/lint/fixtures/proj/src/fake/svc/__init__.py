"""Async service layer: under the async-state contract (DOM5xx)."""
