"""DOMINO core: the paper's contribution.

Gold-code signatures and their correlation detector (Fig. 9), the ROP
control-symbol PHY (Table 1, Fig. 5/6) and protocol, the relative
schedule representation, the strict-to-relative schedule converter
(Sec. 3.3), the calibrated trigger-detection model, the per-node
DOMINO MAC, and the central controller.
"""

from .coexistence import (CoexistenceConfig, CoexistencePlanner,
                          CopOccupancyMeter)
from .controller import (ControllerConfig, DominoController, DominoNetwork,
                         build_domino_network)
from .converter import ConverterConfig, ScheduleConverter
from .energy import (EnergyAccountant, annotate_programs,
                     involvement_slots, sleep_windows)
from .correlator import (FIG9_SETUPS, ChannelConfig, DetectionResult,
                         SignatureDetector, detection_curve,
                         run_detection_experiment, synthesize_burst)
from .domino_mac import DominoMac, DominoStats, SlotTiming
from .ofdm import (DEFAULT_PARAMS, MAX_QUEUE_REPORT, ClientSignal,
                   OfdmParams, RopSymbolDecoder, aggregate_at_ap,
                   build_client_waveform, bits_to_queue_len,
                   queue_len_to_bits, rss_difference_tolerance_experiment,
                   snr_floor_experiment)
from .relative_schedule import (NodeProgram, RelativeBatch, RelativeSlot,
                                SlotEntry, TriggerDuty, build_programs)
from .rop import (GUARD_TOLERANCE_DB, MIN_REPORT_SNR_DB, ReportObservation,
                  RopDecoder, SubchannelPlan, plan_subchannels,
                  rop_slot_duration_us)
from .signatures import (GoldFamily, SignatureAssigner, gold_family,
                         lfsr_m_sequence, max_cross_correlation,
                         periodic_cross_correlation)
from .trigger_model import (PerfectTriggerModel, TriggerDetectionModel,
                            calibrate_from_experiment)

__all__ = [
    "ChannelConfig", "ClientSignal", "CoexistenceConfig",
    "CoexistencePlanner", "ControllerConfig", "ConverterConfig",
    "CopOccupancyMeter", "EnergyAccountant", "annotate_programs",
    "involvement_slots", "sleep_windows",
    "DEFAULT_PARAMS", "DetectionResult", "DominoController", "DominoMac",
    "DominoNetwork", "DominoStats", "FIG9_SETUPS", "GUARD_TOLERANCE_DB",
    "GoldFamily", "MAX_QUEUE_REPORT", "MIN_REPORT_SNR_DB", "NodeProgram",
    "OfdmParams", "PerfectTriggerModel", "RelativeBatch", "RelativeSlot",
    "ReportObservation", "RopDecoder", "RopSymbolDecoder",
    "ScheduleConverter", "SignatureAssigner", "SignatureDetector",
    "SlotEntry", "SlotTiming", "SubchannelPlan", "TriggerDetectionModel",
    "aggregate_at_ap", "bits_to_queue_len", "build_client_waveform",
    "build_domino_network", "build_programs", "calibrate_from_experiment",
    "detection_curve", "gold_family", "lfsr_m_sequence",
    "max_cross_correlation", "periodic_cross_correlation",
    "plan_subchannels", "queue_len_to_bits", "rop_slot_duration_us",
    "rss_difference_tolerance_experiment", "run_detection_experiment",
    "snr_floor_experiment", "synthesize_burst",
]
