"""Controller-side network state under an event stream.

:class:`NetworkState` is the online controller's picture of the
world: the measured RSS matrix (mutated strictly in place, so the
interference map's live reads always see current values), AP and
client membership, the ordered link universe, and per-link queue
backlogs.  Applying an event returns a :class:`StateDelta` naming the
dirty region — the engine turns that into incremental graph and cache
maintenance.

Universe ordering is load-bearing: fake candidates are tried in
universe order, so the order must be a deterministic function of the
event history.  The initial order matches
:class:`repro.core.controller.DominoController` (flows first, then
association links); joins append their two links at the tail, leaves
remove theirs, everything else keeps its position.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Set

import numpy as np

from ..topology.links import Link
from .events import (Associate, ControllerEvent, Disassociate, QueueUpdate,
                     RssDelta)

if TYPE_CHECKING:  # pragma: no cover - annotation-only dependencies
    from ..sim.phy import PhyProfile
    from ..topology.builder import Topology


@dataclass
class StateDelta:
    """Dirty region of one applied event (or an accumulation of them)."""

    dirty_nodes: Set[int] = field(default_factory=set)
    added_links: List[Link] = field(default_factory=list)
    removed_links: List[Link] = field(default_factory=list)
    queue_events: int = 0
    ignored_events: int = 0

    @property
    def topology_dirty(self) -> bool:
        return bool(self.dirty_nodes or self.added_links
                    or self.removed_links)

    def merge(self, other: "StateDelta") -> None:
        self.dirty_nodes |= other.dirty_nodes
        self.added_links.extend(l for l in other.added_links
                                if l not in self.added_links)
        self.removed_links.extend(l for l in other.removed_links
                                  if l not in self.removed_links)
        self.queue_events += other.queue_events
        self.ignored_events += other.ignored_events


class NetworkState:
    """Mutable controller state: RSS, membership, universe, queues."""

    def __init__(self, rss_dbm: np.ndarray, aps: List[int],
                 clients: Mapping[int, int], links: List[Link],
                 profile: "PhyProfile"):
        #: Measured RSS matrix; mutated in place only — the engine's
        #: interference map holds a closure over this exact array.
        self.rss = np.array(rss_dbm, dtype=float)
        self.aps = list(aps)
        self._ap_set = frozenset(self.aps)
        #: client id -> governing AP, in association order.
        self.clients: Dict[int, int] = dict(clients)
        self.links: List[Link] = list(links)
        self.profile = profile
        self.queues: Dict[Link, float] = {link: 0.0 for link in self.links}

    @classmethod
    def from_topology(cls, topology: "Topology") -> "NetworkState":
        """Seed the state from a static topology snapshot.

        Mirrors the batch controller's universe construction exactly,
        so a service with zero events schedules the same network a
        :class:`~repro.core.controller.DominoController` would.
        """
        universe: List[Link] = []
        for link in (list(topology.flows)
                     + topology.all_association_links()):
            if link not in universe:
                universe.append(link)
        return cls(
            rss_dbm=topology.trace.rss_dbm,
            aps=[ap.node_id for ap in topology.network.aps],
            clients={client.node_id: client.ap_id
                     for client in topology.network.clients},
            links=universe,
            profile=topology.profile,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return int(self.rss.shape[0])

    def ap_of(self, node: int) -> int:
        return node if node in self._ap_set else self.clients[node]

    def ap_links(self) -> Dict[int, List[Link]]:
        """Per-AP association-link view, in universe order."""
        table: Dict[int, List[Link]] = {ap: [] for ap in self.aps}
        for link in self.links:
            table[self.ap_of(link.src)].append(link)
        return table

    def association_links(self, client: int, ap: int) -> List[Link]:
        """Both directions of one association, downlink first (the
        same relative order :meth:`from_topology` seeds)."""
        return [Link(ap, client), Link(client, ap)]

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def apply(self, event: ControllerEvent) -> StateDelta:
        """Fold one event in; returns the dirty region it created."""
        if isinstance(event, QueueUpdate):
            return self._apply_queue(event)
        if isinstance(event, RssDelta):
            return self._apply_rss(event)
        if isinstance(event, Associate):
            return self._apply_associate(event)
        if isinstance(event, Disassociate):
            return self._apply_disassociate(event)
        raise TypeError(f"not a controller event: {event!r}")

    def _apply_queue(self, event: QueueUpdate) -> StateDelta:
        link = Link(event.src, event.dst)
        if link not in self.queues:
            # Reports racing a disassociation arrive for links that no
            # longer exist; they are stale by definition.
            return StateDelta(ignored_events=1)
        self.queues[link] = max(0.0, float(event.backlog))
        return StateDelta(queue_events=1)

    def _write_rss(self, node: int, rss_to: Mapping[int, float],
                   rss_from: Mapping[int, float]) -> None:
        n = self.n_nodes
        for other, value in rss_to.items():
            if other != node and 0 <= other < n:
                self.rss[node, other] = float(value)
        for other, value in rss_from.items():
            if other != node and 0 <= other < n:
                self.rss[other, node] = float(value)

    def _apply_rss(self, event: RssDelta) -> StateDelta:
        if not event.rss_to and not event.rss_from:
            return StateDelta(ignored_events=1)
        self._write_rss(event.node, event.rss_to, event.rss_from)
        return StateDelta(dirty_nodes={event.node})

    def _apply_associate(self, event: Associate) -> StateDelta:
        client, ap = event.client, event.ap
        if ap not in self._ap_set:
            return StateDelta(ignored_events=1)
        if client in self._ap_set or client >= self.n_nodes or client < 0:
            return StateDelta(ignored_events=1)
        delta = StateDelta(dirty_nodes={client})
        if client in self.clients:
            # Roaming: tear down the old association first.
            delta.merge(self._apply_disassociate(
                Disassociate(t_us=event.t_us, client=client)))
            delta.dirty_nodes.add(client)
        self._write_rss(client, event.rss_to, event.rss_from)
        self.clients[client] = ap
        for link in self.association_links(client, ap):
            if link not in self.queues:
                self.links.append(link)
                self.queues[link] = 0.0
                delta.added_links.append(link)
        return delta

    def _apply_disassociate(self, event: Disassociate) -> StateDelta:
        client = event.client
        ap = self.clients.pop(client, None)
        if ap is None:
            return StateDelta(ignored_events=1)
        gone = [link for link in self.links
                if client in (link.src, link.dst)]
        if gone:
            gone_set = set(gone)
            self.links = [l for l in self.links if l not in gone_set]
            for link in gone:
                self.queues.pop(link, None)
        return StateDelta(dirty_nodes={client}, removed_links=gone)
