"""Table 2: USRP prototype — DOMINO vs DCF in SC / HT / ET scenarios.

Two AP-client pairs on the ``usrp-gnuradio`` PHY profile (host-
turnaround-dominated timing calibrated to the testbed's Kbps-scale
throughput), saturated downlinks, schedules preloaded and polling off
— matching the paper's prototype setup ("we assume that the queue in
the clients are saturated and the transmission schedules are already
loaded in each AP").

Paper's shape: DOMINO ≈1.5x DCF in the single-contention (SC) case
(pure backoff saving) and >3x under hidden (HT) / exposed (ET)
terminals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..core import ControllerConfig
from ..runner import ExperimentPoint, TopologySpec, run_sweep
from ..topology.builder import usrp_pair_topology
from .common import format_table

SCENARIOS = ("SC", "HT", "ET")

#: Table 2 of the paper, for side-by-side reporting (Kbps).
PAPER_KBPS = {
    "DOMINO": {"SC": 4.25, "HT": 5.42, "ET": 9.18},
    "DCF": {"SC": 2.76, "HT": 1.62, "ET": 2.72},
}


@dataclass
class Tab2Result:
    kbps: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def ratio(self, scenario: str) -> float:
        dcf = self.kbps["DCF"][scenario]
        return self.kbps["DOMINO"][scenario] / dcf if dcf else float("inf")


def run(horizon_us: float = 60_000_000.0, seed: int = 1,
        workers: int = 0) -> Tab2Result:
    """Default horizon is 60 simulated seconds — USRP slots are tens of
    milliseconds, so long horizons are still cheap to simulate."""
    config = ControllerConfig(poll_every_batch=False, batch_slots=8)
    points = [
        ExperimentPoint(
            scheme=scheme,
            topology=TopologySpec(usrp_pair_topology, (scenario,)),
            label=f"{scenario}:{key}", seed=seed, horizon_us=horizon_us,
            warmup_us=horizon_us * 0.05,
            run_kwargs={"saturated": True,
                        "domino_config":
                            config if scheme == "domino" else None})
        for scenario in SCENARIOS
        for scheme, key in (("dcf", "DCF"), ("domino", "DOMINO"))
    ]
    sweep = run_sweep(points, workers=workers)
    by_label = sweep.by_label()
    result = Tab2Result()
    result.kbps = {"DOMINO": {}, "DCF": {}}
    for scenario in SCENARIOS:
        for key in ("DCF", "DOMINO"):
            run_result = by_label[f"{scenario}:{key}"]
            result.kbps[key][scenario] = run_result.aggregate_mbps * 1000.0
    return result


def report(result: Tab2Result) -> str:
    headers = ["scheme", *(f"{s} (Kbps)" for s in SCENARIOS)]
    rows = []
    for key in ("DOMINO", "DCF"):
        rows.append([key, *(f"{result.kbps[key][s]:.2f}"
                            for s in SCENARIOS)])
        rows.append([f"  paper {key}",
                     *(f"{PAPER_KBPS[key][s]:.2f}" for s in SCENARIOS)])
    lines = [format_table(headers, rows)]
    for scenario in SCENARIOS:
        paper = PAPER_KBPS["DOMINO"][scenario] / PAPER_KBPS["DCF"][scenario]
        lines.append(
            f"DOMINO/DCF in {scenario}: {result.ratio(scenario):.2f}x "
            f"(paper: {paper:.2f}x)"
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
