"""Figure 11: transmission misalignment convergence at startup.

Because schedule programs reach the APs over the jittery wired
backbone, the transmissions of slot 0 are misaligned by tens of
microseconds.  Relative scheduling heals this: every subsequent slot
re-anchors on the trigger bursts, and the paper measures the maximum
misalignment falling to 1-2 us within 4 slots for wired-latency
"variance" settings of 20-80 us (we read those values as variances,
i.e. std = sqrt(value), which matches the 10-20 us initial
misalignments the figure shows for a 10-AP network).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from ..core import build_domino_network
from ..sim.engine import Simulator
from ..topology.builder import build_t_topology
from ..topology.trace import two_building_trace
from ..traffic.udp import SaturatedSource
from .common import format_table

VARIANCES_US2 = (20.0, 40.0, 60.0, 80.0)
N_SLOTS = 8


@dataclass
class Fig11Result:
    #: variance -> misalignment (us) for slot indices 0..N_SLOTS-1
    series: Dict[float, List[float]] = field(default_factory=dict)

    def converged_within(self, variance: float, slots: int,
                         tolerance_us: float = 2.5) -> bool:
        tail = self.series[variance][slots:]
        return bool(tail) and all(v <= tolerance_us for v in tail)


def run(seed: int = 2, horizon_us: float = 40_000.0) -> Fig11Result:
    """Measure max misalignment per slot index over the startup window."""
    result = Fig11Result()
    for variance in VARIANCES_US2:
        trace = two_building_trace()
        topology = build_t_topology(trace, 10, 2, seed=3)
        imap = topology.interference_map()
        sim = Simulator(seed=seed)
        net = build_domino_network(sim, topology,
                                   wire_std_us=math.sqrt(variance))
        for flow in topology.flows:
            SaturatedSource(sim, net.macs[flow.src], flow.dst).start()
        net.controller.start()
        sim.run(until=horizon_us)
        # Spread among mutually carrier-sensing senders: chains in
        # disjoint collision domains can hold a constant offset
        # without ever interacting, which is not misalignment in any
        # physically meaningful (or harmful) sense.
        result.series[variance] = net.timeline.misalignment_series(
            N_SLOTS, audible=imap.in_cs_range)
    return result


def report(result: Fig11Result) -> str:
    headers = ["wire variance", *(f"slot {i}" for i in range(N_SLOTS))]
    rows = [
        [f"{v:.0f} us^2", *(f"{m:.1f}" for m in result.series[v])]
        for v in VARIANCES_US2
    ]
    lines = [format_table(headers, rows)]
    for variance in VARIANCES_US2:
        within4 = result.converged_within(variance, slots=4)
        within6 = result.converged_within(variance, slots=6)
        lines.append(
            f"variance {variance:.0f}: aligned within 4 slots: {within4}, "
            f"within 6: {within6} (paper: within 4, to 1-2 us)"
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
