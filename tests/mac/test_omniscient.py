"""Behavioural tests for the omniscient upper-bound scheduler."""

import pytest

from repro.mac.omniscient import build_omniscient_network
from repro.metrics.stats import FlowRecorder
from repro.sim.engine import Simulator
from repro.topology.builder import (fig1_topology, fig13a_topology)
from repro.topology.links import Link
from repro.traffic.udp import CbrSource, SaturatedSource

HORIZON = 400_000.0


def run_omni(topology, horizon=HORIZON, seed=1, rates=None):
    sim = Simulator(seed=seed)
    medium, macs, coordinator = build_omniscient_network(sim, topology)
    recorder = FlowRecorder(topology.flows, warmup_us=horizon * 0.1)
    recorder.attach_all(macs.values())
    for flow in topology.flows:
        if rates is None:
            SaturatedSource(sim, macs[flow.src], flow.dst).start()
        else:
            CbrSource(sim, macs[flow.src], flow.dst, rates).start()
    coordinator.start()
    sim.run(until=horizon)
    return sim, macs, coordinator, recorder


def test_fig1_optimal_pattern():
    """The paper's omniscient claim: C2->AP2 every slot; the two
    conflicting downlinks split the remaining capacity evenly."""
    _, macs, _, recorder = run_omni(fig1_topology())
    uplink = recorder.flow_throughput_mbps(Link(3, 2), HORIZON)
    d1 = recorder.flow_throughput_mbps(Link(0, 1), HORIZON)
    d3 = recorder.flow_throughput_mbps(Link(4, 5), HORIZON)
    assert uplink == pytest.approx(2 * d1, rel=0.1)
    assert d1 == pytest.approx(d3, rel=0.1)
    assert recorder.aggregate_throughput_mbps(HORIZON) > 17.0


def test_no_collisions_ever():
    """Conflict-free scheduling with perfect sync: every data frame
    is delivered (the genie never wastes airtime)."""
    _, macs, _, recorder = run_omni(fig13a_topology())
    failures = sum(m.failures for m in macs.values())
    assert failures == 0


def test_full_spatial_reuse_on_exposed_links():
    _, macs, coordinator, recorder = run_omni(fig13a_topology())
    # Four concurrent links at slot capacity ~9.5 Mbps each.
    assert recorder.aggregate_throughput_mbps(HORIZON) > 33.0


def test_idle_when_no_traffic():
    topology = fig1_topology()
    sim = Simulator(seed=1)
    medium, macs, coordinator = build_omniscient_network(sim, topology)
    coordinator.start()
    sim.run(until=50_000.0)
    assert coordinator.slots_executed == 0


def test_light_traffic_served_promptly():
    topology = fig1_topology()
    _, macs, _, recorder = run_omni(topology, rates=0.5)
    for flow in topology.flows:
        assert recorder.flow_throughput_mbps(flow, HORIZON) == \
            pytest.approx(0.5, rel=0.3)
    assert recorder.mean_delay_us() < 5_000.0
