"""DOM104 fixture: exact equality between float timestamps."""


def due(now, t0):
    return now == t0
