"""Wired backbone between the central server and the APs.

The paper models backbone latency as normally distributed with mean
285 us and "variance" 22 us (Sec. 4.2.1, following CENTAUR's
measurements); like the original CENTAUR paper we interpret the second
number as the standard deviation of the per-message latency.  This
jitter is precisely what breaks strict scheduling (Sec. 2) and what
relative scheduling is designed to absorb, so it is modelled
explicitly rather than folded into a constant.

Messages are opaque Python objects delivered by callback; ordering
between a given (src, dst) pair is *not* enforced — jitter can reorder
messages, as on a real switched LAN.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from .engine import Simulator

DEFAULT_MEAN_US = 285.0
DEFAULT_STD_US = 22.0


@dataclass
class WireStats:
    messages: int = 0
    total_latency_us: float = 0.0

    @property
    def mean_latency_us(self) -> float:
        return self.total_latency_us / self.messages if self.messages else 0.0


class WiredBackbone:
    """Star-topology wired network: server <-> APs.

    Parameters
    ----------
    sim:
        Simulation engine.
    mean_us, std_us:
        Per-message latency distribution (truncated at ``min_us`` so a
        deep negative draw cannot produce time travel).
    seed:
        Seed for this backbone's private RNG stream.
    """

    SERVER_ID = -1

    def __init__(self, sim: Simulator, mean_us: float = DEFAULT_MEAN_US,
                 std_us: float = DEFAULT_STD_US, min_us: float = 1.0,
                 seed: Optional[int] = None):
        self.sim = sim
        self.mean_us = mean_us
        self.std_us = std_us
        self.min_us = min_us
        self._rng = random.Random(
            seed if seed is not None else sim.rng.getrandbits(64)
        )
        self._ports: Dict[int, Callable[[int, Any], None]] = {}
        self.stats = WireStats()

    def register(self, endpoint_id: int,
                 handler: Callable[[int, Any], None]) -> None:
        """Attach ``handler(src_id, message)`` as ``endpoint_id``'s inbox."""
        if endpoint_id in self._ports:
            raise ValueError(f"duplicate wired endpoint {endpoint_id}")
        self._ports[endpoint_id] = handler

    def latency_sample_us(self) -> float:
        return max(self.min_us, self._rng.gauss(self.mean_us, self.std_us))

    def send(self, src_id: int, dst_id: int, message: Any) -> float:
        """Send ``message`` from ``src_id`` to ``dst_id``.

        Returns the sampled latency (useful for tests).  Raises
        ``KeyError`` if the destination was never registered.
        """
        if dst_id not in self._ports:
            raise KeyError(f"no wired endpoint {dst_id}")
        latency = self.latency_sample_us()
        self.stats.messages += 1
        self.stats.total_latency_us += latency
        self.sim.schedule(latency, self._ports[dst_id], src_id, message)
        return latency

    def broadcast_from_server(self, message_for: Dict[int, Any]) -> None:
        """Send a per-AP message to many APs, one jittered unicast each.

        This is how the controller distributes schedules: each AP gets
        its own copy at its own jittered arrival time, which is what
        desynchronizes the first slot of a batch (Fig. 11).
        """
        for ap_id, message in message_for.items():
            self.send(self.SERVER_ID, ap_id, message)
