"""SARIF 2.1.0 rendering for CI code-scanning integration.

``python -m repro.lint --format sarif`` writes one SARIF run to
*stdout* (stderr keeps the human ``path:line:col: RULE msg`` stream as
the default), which CI uploads as an artifact / code-scanning result.
Only the small stable subset of the spec is emitted: driver + rule
metadata and one ``result`` per finding with a physical location.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from .findings import Finding

SARIF_VERSION = "2.1.0"
_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: One-line rule descriptions for the SARIF rule table.  Keep in sync
#: with the reference table in DESIGN.md.
RULE_DESCRIPTIONS: Dict[str, str] = {
    "DOM101": "wall-clock read in sim-layer code",
    "DOM102": "process-global or unseeded RNG in sim-layer code",
    "DOM103": "iteration over an unordered container into sim state",
    "DOM104": "float accumulation hazard in sim-layer reductions",
    "DOM105": "wall-clock taint reaches sim code through call hops",
    "DOM106": "RNG taint reaches sim code through call hops",
    "DOM201": "import violates the declared layering DAG",
    "DOM202": "package missing from the layering DAG",
    "DOM203": "package import cycle or transitive layering escape",
    "DOM301": "unknown telemetry event name",
    "DOM302": "telemetry emission field mismatch",
    "DOM303": "telemetry schema drifted from committed baseline",
    "DOM401": "sim-layer import of an undeclared dependency",
    "DOM501": "guarded state mutated across an await boundary",
    "DOM502": "asyncio task created and immediately discarded",
    "DOM503": "unpicklable callable handed to a process pool",
}


def render_sarif(findings: Sequence[Finding]) -> str:
    """The SARIF document (a JSON string) for ``findings``."""
    rule_ids = sorted({finding.rule for finding in findings})
    rules: List[Dict[str, Any]] = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": RULE_DESCRIPTIONS.get(rule_id, rule_id),
            },
        }
        for rule_id in rule_ids
    ]
    rule_index = {rule_id: index for index, rule_id in enumerate(rule_ids)}
    results: List[Dict[str, Any]] = [
        {
            "ruleId": finding.rule,
            "ruleIndex": rule_index[finding.rule],
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": finding.line,
                            # SARIF columns are 1-based; findings carry
                            # the AST's 0-based col_offset.
                            "startColumn": finding.col + 1,
                        },
                    },
                },
            ],
        }
        for finding in findings
    ]
    document = {
        "$schema": _SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "dominolint",
                        "informationUri":
                            "https://example.invalid/dominolint",
                        "rules": rules,
                    },
                },
                "results": results,
            },
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


__all__ = ["RULE_DESCRIPTIONS", "SARIF_VERSION", "render_sarif"]
