"""Compliant emission sites: helper call, raw tuple, record dict."""


def typed(tel):
    return tel.ping(0.0, 1)


def keyword(tel):
    return tel.ping(t=0.0, node=1, note="ok")


def raw(rec):
    rec._append(("ping", 0.0, 1, ""))


def record(tel):
    tel.emit({"ev": "ping", "t": 0.0, "node": 1})
