"""Figure 2 bench: the motivating 3-pair network.

Paper's shape: omniscient ~1.76x DCF and ~1.61x CENTAUR overall;
DOMINO close to omniscient; under DCF the hidden link starves and the
uplink exposes; under the centralized schemes the uplink transmits in
every slot while the two conflicting downlinks alternate.
"""

from repro.experiments import fig02_motivation


def test_fig02_motivation(once, sweep_workers):
    result = once(fig02_motivation.run, 800_000.0,
                  workers=sweep_workers)
    print()
    print(fig02_motivation.report(result))

    overall = result.overall_mbps
    # Ordering: DCF < CENTAUR < DOMINO <= omniscient.
    assert overall["dcf"] < overall["centaur"] < overall["domino"]
    assert overall["domino"] <= overall["omniscient"] * 1.02
    # Omniscient well above the distributed schemes (paper: 1.76x DCF).
    assert overall["omniscient"] / overall["dcf"] > 1.5
    assert overall["omniscient"] / overall["centaur"] > 1.35
    # DOMINO close to the omniscient bound (paper: "performs close").
    assert overall["domino"] / overall["omniscient"] > 0.80

    from repro.topology.links import Link
    domino = result.per_link_mbps["domino"]
    dcf = result.per_link_mbps["dcf"]
    # The uplink rides every slot under DOMINO; downlinks alternate.
    assert domino[Link(3, 2)] > 1.7 * domino[Link(0, 1)]
    # DCF's hidden terminal starves relative to DOMINO's schedule.
    assert dcf[Link(4, 5)] < 0.5 * domino[Link(4, 5)]
