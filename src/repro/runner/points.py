"""Experiment points and their picklable results.

A sweep is a list of :class:`ExperimentPoint`\\ s — (scheme, topology,
traffic, seed, horizon) tuples — each of which runs one independent
simulation.  Points must cross a process boundary, so a point carries
a :class:`TopologySpec` (a top-level factory plus its arguments)
instead of a built :class:`~repro.topology.builder.Topology`, and a
worker reduces the unpicklable ``RunResult`` (live MACs, simulator,
controller) to a :class:`PointResult` of plain data.

Determinism contract: a point's result is a pure function of the
point itself.  The seed lives *on the point* (never derived from
worker identity or wall clock), topology construction happens inside
the worker from the spec's seed arguments, and trace records carry no
process-global counters — which is why serial and parallel execution
of the same point are byte-identical
(``benchmarks/test_sweep_speedup.py`` and
``tests/runner/test_sweep.py`` enforce this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .. import telemetry
from ..topology.builder import Topology

Flow = Tuple[int, int]


@dataclass
class TopologySpec:
    """Recipe for building a topology inside a worker process.

    ``factory`` must be picklable — a module-level function such as
    :func:`repro.topology.builder.random_t_topology` or an experiment
    module's own factory — because pool workers receive the spec over
    a pipe even under the ``fork`` start method.
    """

    factory: Callable[..., Topology]
    args: tuple = ()
    kwargs: Dict[str, object] = field(default_factory=dict)

    def build(self) -> Topology:
        return self.factory(*self.args, **self.kwargs)


@dataclass
class ExperimentPoint:
    """One simulation run of a sweep.

    ``run_kwargs`` are forwarded verbatim to
    :func:`repro.experiments.common.run_scheme` (traffic rates,
    ``saturated``/``tcp`` flags, ``payload_bytes``, ``domino_config``,
    ``queue_capacity`` ...) and must be picklable.
    """

    scheme: str
    topology: TopologySpec
    label: str = ""
    seed: int = 1
    horizon_us: float = 1_000_000.0
    warmup_us: float = 100_000.0
    run_kwargs: Dict[str, object] = field(default_factory=dict)
    #: Simulation backend for this point ("event" or "matrix"; see
    #: repro.sim.protocol).  Backends are trace-identical, so mixing
    #: engines within one sweep is legitimate — the field exists so a
    #: sweep can route dense points to the vectorized engine.
    engine: str = "event"
    #: Opt into wall-clock phase timing: the worker splits its wall
    #: time into build/run/reduce and reports it on
    #: :attr:`PointResult.phases`.  Timing only — results stay
    #: byte-identical with it on or off.
    phase_timing: bool = False


@dataclass
class FlowSummary:
    """Per-flow slice of a worker's ``FlowRecorder`` (Sec. 4.2 stats)."""

    flow: Flow
    packets: int
    payload_bytes: int
    total_delay_us: float
    delays_us: List[float]
    mbps: float

    @property
    def mean_delay_us(self) -> float:
        return self.total_delay_us / self.packets if self.packets else 0.0

    def to_json(self) -> dict:
        return {"flow": list(self.flow), "packets": self.packets,
                "payload_bytes": self.payload_bytes,
                "total_delay_us": self.total_delay_us,
                "delays_us": list(self.delays_us), "mbps": self.mbps}

    @classmethod
    def from_json(cls, data: dict) -> "FlowSummary":
        return cls(flow=tuple(data["flow"]), packets=data["packets"],
                   payload_bytes=data["payload_bytes"],
                   total_delay_us=data["total_delay_us"],
                   delays_us=list(data["delays_us"]), mbps=data["mbps"])


@dataclass
class PointResult:
    """Everything a sweep consumer needs from one point, all picklable.

    ``trace_digest`` is the sha256 over the point's canonical-JSONL
    trace (one :func:`~repro.telemetry.jsonl.dumps_record` line per
    record) when the sweep ran with ``trace=True``; identical digests
    mean byte-identical traces, which is the parallel-equals-serial
    enforcement lever.
    """

    label: str
    scheme: str
    seed: int
    horizon_us: float
    warmup_us: float
    aggregate_mbps: float
    mean_delay_us: float
    fairness: float
    flows: List[FlowSummary]
    events_processed: int
    wall_s: float
    #: Backend that produced the result ("event" / "matrix").
    engine: str = "event"
    #: Conversion-cache counters of the point's DOMINO controller
    #: (zero for schemes without one).
    cache_hits: int = 0
    cache_misses: int = 0
    trace_digest: Optional[str] = None
    #: Metrics-registry snapshot (``trace=True`` sweeps only).
    metrics: Optional[Dict[str, object]] = None
    #: Doctor finding strings (``diagnose=True`` sweeps only).
    doctor_findings: Optional[List[str]] = None
    #: Picklable critical-path rollup from
    #: :func:`~repro.telemetry.analysis.summarize_causality`
    #: (``diagnose=True`` sweeps only; ``None`` for pre-v3 traces).
    causality: Optional[dict] = None
    #: Raw trace records (``keep_traces=True`` sweeps only — large).
    trace_records: Optional[List[dict]] = None
    #: Wall-clock phase split in ms (``build_ms`` / ``run_ms`` /
    #: ``reduce_ms``), present when the point opted into
    #: :attr:`ExperimentPoint.phase_timing`.
    phases: Optional[Dict[str, float]] = None

    def flow_mbps(self, flow: Any) -> float:
        key = (flow.src, flow.dst) if hasattr(flow, "src") else tuple(flow)
        for summary in self.flows:
            if summary.flow == key:
                return summary.mbps
        return 0.0

    def doctor(self) -> "telemetry.analysis.HealthReport":
        """Diagnose the point's kept trace (``keep_traces=True`` runs)."""
        if self.trace_records is None:
            raise ValueError(
                "doctor() needs kept trace records: run the sweep with "
                "trace=True, keep_traces=True")
        return telemetry.analysis.diagnose(self.trace_records,
                                           horizon_us=self.horizon_us)

    def to_json(self) -> dict:
        """Plain-data snapshot for sweep persistence / ``sweep-report``.

        Raw trace records are deliberately excluded — they dwarf
        everything else and the digest already identifies them.
        """
        return {
            "label": self.label, "scheme": self.scheme, "seed": self.seed,
            "horizon_us": self.horizon_us, "warmup_us": self.warmup_us,
            "aggregate_mbps": self.aggregate_mbps,
            "mean_delay_us": self.mean_delay_us,
            "fairness": self.fairness,
            "flows": [flow.to_json() for flow in self.flows],
            "events_processed": self.events_processed,
            "wall_s": self.wall_s,
            "engine": self.engine,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "trace_digest": self.trace_digest,
            "metrics": self.metrics,
            "doctor_findings": self.doctor_findings,
            "causality": self.causality,
            "phases": self.phases,
        }

    @classmethod
    def from_json(cls, data: dict) -> "PointResult":
        return cls(
            label=data["label"], scheme=data["scheme"], seed=data["seed"],
            horizon_us=data["horizon_us"], warmup_us=data["warmup_us"],
            aggregate_mbps=data["aggregate_mbps"],
            mean_delay_us=data["mean_delay_us"],
            fairness=data["fairness"],
            flows=[FlowSummary.from_json(f) for f in data["flows"]],
            events_processed=data["events_processed"],
            wall_s=data["wall_s"],
            engine=data.get("engine", "event"),
            cache_hits=data.get("cache_hits", 0),
            cache_misses=data.get("cache_misses", 0),
            trace_digest=data.get("trace_digest"),
            metrics=data.get("metrics"),
            doctor_findings=data.get("doctor_findings"),
            causality=data.get("causality"),
            phases=data.get("phases"))


@dataclass
class SweepResult:
    """A completed sweep: per-point results in submission order."""

    points: List[PointResult]
    workers: int
    wall_s: float

    @property
    def total_events(self) -> int:
        return sum(p.events_processed for p in self.points)

    @property
    def events_per_sec(self) -> float:
        return self.total_events / self.wall_s if self.wall_s > 0 else 0.0

    def by_label(self) -> Dict[str, PointResult]:
        return {p.label: p for p in self.points}

    def digests(self) -> List[Optional[str]]:
        return [p.trace_digest for p in self.points]

    def merged_metrics(self) -> Dict[str, float]:
        """Sum the scalar metrics of every traced point.

        Counters sum meaningfully across points (total airtime, total
        collisions, total cache hits); gauges are per-run levels, so
        their sum is only useful relative to another sweep of the same
        shape.  Histogram snapshots stay per-point
        (``PointResult.metrics``) — percentiles do not merge.
        """
        merged: Dict[str, float] = {}
        for point in self.points:
            for name, value in (point.metrics or {}).items():
                if isinstance(value, (int, float)):
                    merged[name] = merged.get(name, 0.0) + value
        return merged

    def to_json(self) -> dict:
        return {"points": [p.to_json() for p in self.points],
                "workers": self.workers, "wall_s": self.wall_s}

    @classmethod
    def from_json(cls, data: dict) -> "SweepResult":
        return cls(points=[PointResult.from_json(p)
                           for p in data["points"]],
                   workers=data["workers"], wall_s=data["wall_s"])

    def save_json(self, path: str) -> str:
        """Persist the sweep (minus raw traces) for later reporting."""
        import json
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def load_json(cls, path: str) -> "SweepResult":
        import json
        with open(path) as handle:
            return cls.from_json(json.load(handle))
