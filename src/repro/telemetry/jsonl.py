"""Deterministic JSONL serialization for trace exports.

One record per line, keys sorted, compact separators, no trailing
whitespace.  Given identical record values this produces *byte*
identical output — the property the determinism regression test
pins down — because:

* ``sort_keys=True`` removes dict-insertion-order effects;
* floats serialize via ``repr`` (shortest round-trip form), which is
  deterministic for identical IEEE-754 values;
* set-valued fields are sorted into lists before they get here (the
  recorder's typed helpers do this).
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Iterator, List, Union

from .events import SCHEMA_VERSION

#: First line of every exported trace.
HEADER_KEY = "__domino_trace__"

#: Explicit version field in the header (v2+).  v1 files carried the
#: version as the value of :data:`HEADER_KEY` only; readers accept
#: both spellings.
VERSION_KEY = "schema_version"


def header_record() -> dict:
    return {HEADER_KEY: SCHEMA_VERSION, VERSION_KEY: SCHEMA_VERSION}


def dumps_record(record: dict) -> str:
    """One record as its canonical single-line JSON form."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def write_jsonl(stream: IO[str], records: Iterable[dict],
                header: bool = True) -> int:
    """Write records to an open text stream; returns the line count."""
    n = 0
    if header:
        stream.write(dumps_record(header_record()))
        stream.write("\n")
        n += 1
    for record in records:
        stream.write(dumps_record(record))
        stream.write("\n")
        n += 1
    return n


def dump_jsonl(path: str, records: Iterable[dict], header: bool = True) -> int:
    """Write records to ``path``; returns the line count."""
    with open(path, "w", encoding="utf-8", newline="\n") as stream:
        return write_jsonl(stream, records, header=header)


class TraceFormatError(ValueError):
    """The file is not a DOMINO trace, or its schema is unsupported."""


def _check_version(version: object) -> None:
    """Refuse traces this build cannot faithfully parse.

    Older versions are fine — every schema addition since v1 carries a
    default, so old records still round-trip.  *Newer* versions must
    fail here, with one clean line, rather than deep inside
    :func:`~repro.telemetry.events.from_record` on an unknown field.
    """
    if not isinstance(version, int) or isinstance(version, bool):
        raise TraceFormatError(
            f"trace header carries a malformed schema version {version!r}"
        )
    if version > SCHEMA_VERSION:
        raise TraceFormatError(
            f"trace schema v{version} is newer than this build supports "
            f"(reads up to v{SCHEMA_VERSION}); upgrade the trace tooling"
        )
    if version < 1:
        raise TraceFormatError(f"trace schema v{version} is not a known version")


def read_jsonl(source: Union[str, IO[str]],
               require_header: bool = False) -> Iterator[dict]:
    """Yield records from a trace file or open stream.

    The header line, when present, is validated and swallowed.  Blank
    lines are skipped so hand-edited traces stay loadable.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as stream:
            yield from read_jsonl(stream, require_header=require_header)
        return
    first = True
    for line in source:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if first:
            first = False
            if HEADER_KEY in record:
                _check_version(record.get(VERSION_KEY, record[HEADER_KEY]))
                continue
            if require_header:
                raise TraceFormatError("missing trace header line")
        yield record


def load_jsonl(source: Union[str, IO[str]]) -> List[dict]:
    """Eager form of :func:`read_jsonl`."""
    return list(read_jsonl(source))
