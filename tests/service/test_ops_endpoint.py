"""The ops HTTP endpoint, scraped in-process over a real socket."""

import asyncio
import json

from repro import telemetry
from repro.service import (ChurnConfig, ControllerService,
                           IncrementalController, NetworkState,
                           ServiceConfig, churn_events)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.ops import METRICS_CONTENT_TYPE, OpsServer
from repro.topology.builder import fig7_topology


async def scrape(port, request_line):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write((request_line + "\r\nHost: x\r\n\r\n").encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.decode("utf-8").partition("\r\n\r\n")
    status_line, _, header_block = head.partition("\r\n")
    headers = dict(
        line.split(": ", 1) for line in header_block.splitlines())
    return int(status_line.split()[1]), headers, body


async def get(port, path):
    return await scrape(port, f"GET {path} HTTP/1.1")


class TestRoutes:
    def run(self, coro_fn, **server_kwargs):
        async def harness():
            server = OpsServer(**server_kwargs)
            port = await server.start()
            try:
                return await coro_fn(port, server)
            finally:
                await server.stop()
        return asyncio.run(harness())

    def test_metrics_route(self):
        registry = MetricsRegistry()
        registry.counter("service.revisions").inc(5)

        async def check(port, _server):
            return await get(port, "/metrics")

        status, headers, body = self.run(check, metrics=registry)
        assert status == 200
        assert headers["Content-Type"] == METRICS_CONTENT_TYPE
        assert "service_revisions_total 5" in body
        assert body.endswith("\n")

    def test_healthz_flips_with_provider(self):
        health = {"ok": True}

        async def check(port, _server):
            first = await get(port, "/healthz")
            health["ok"] = False
            second = await get(port, "/healthz")
            return first, second

        (s1, _h1, b1), (s2, _h2, b2) = self.run(
            check, metrics=MetricsRegistry(),
            healthy_fn=lambda: health["ok"])
        assert (s1, b1) == (200, "ok\n")
        assert (s2, b2) == (503, "unhealthy\n")

    def test_statusz_merges_uptime(self):
        async def check(port, _server):
            return await get(port, "/statusz")

        status, headers, body = self.run(
            check, metrics=MetricsRegistry(),
            status_fn=lambda: {"epoch": 3})
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        payload = json.loads(body)
        assert payload["epoch"] == 3
        assert payload["uptime_s"] >= 0.0

    def test_unknown_path_404(self):
        async def check(port, _server):
            return await get(port, "/nope")

        status, _headers, body = self.run(check, metrics=MetricsRegistry())
        assert status == 404
        assert "/metrics" in body       # tells the caller the routes

    def test_post_is_405(self):
        async def check(port, _server):
            return await scrape(port, "POST /metrics HTTP/1.1")

        status, _headers, _body = self.run(check, metrics=MetricsRegistry())
        assert status == 405

    def test_bad_request_line_400(self):
        async def check(port, _server):
            return await scrape(port, "GARBAGE")

        status, _headers, _body = self.run(check, metrics=MetricsRegistry())
        assert status == 400

    def test_query_string_ignored(self):
        async def check(port, _server):
            return await get(port, "/healthz?probe=1")

        status, _headers, body = self.run(check, metrics=MetricsRegistry())
        assert (status, body) == (200, "ok\n")

    def test_request_counter(self):
        async def check(port, server):
            await get(port, "/healthz")
            await get(port, "/metrics")
            return server.requests

        assert self.run(check, metrics=MetricsRegistry()) == 2


class TestServiceIntegration:
    def test_live_scrape_of_a_churn_replay(self):
        """A replayed churn run exposes live revision + phase stats."""
        topology = fig7_topology()
        events = churn_events(NetworkState.from_topology(topology),
                              ChurnConfig(updates=300, seed=9))
        recorder = telemetry.activate()
        try:
            engine = IncrementalController(
                NetworkState.from_topology(topology),
                ServiceConfig(phase_timing=True))
            service = ControllerService(engine, check_every=8)

            async def harness():
                server = OpsServer(recorder.metrics,
                                   status_fn=service.status,
                                   healthy_fn=service.healthy)
                port = await server.start()
                try:
                    loop = asyncio.get_running_loop()
                    stats = await loop.run_in_executor(
                        None, service.run_events, events)
                    metrics = await get(port, "/metrics")
                    statusz = await get(port, "/statusz")
                    health = await get(port, "/healthz")
                    return stats, metrics, statusz, health
                finally:
                    await server.stop()

            stats, metrics, statusz, health = asyncio.run(harness())
        finally:
            telemetry.deactivate()

        assert health[0] == 200
        body = metrics[2]
        assert "service_revision_ms_count" in body
        assert 'service_phase_convert_ms{quantile="0.99"}' in body
        payload = json.loads(statusz[2])
        assert payload["revision_version"] == stats.revisions
        assert payload["oracle_checks"] == stats.oracle_checks
        assert set(payload["cache"]["rejects"]) == \
            {"rule1", "rule2", "rule3", "rule4"}
