"""Tests for the calibrated trigger-detection model."""

import random

import pytest

from repro.core.trigger_model import (DEFAULT_DETECTION_BY_COMBINED,
                                      WORST_CASE_DETECTION_BY_COMBINED,
                                      PerfectTriggerModel,
                                      TriggerDetectionModel,
                                      calibrate_from_experiment)


@pytest.fixture
def model():
    return TriggerDetectionModel()


def test_combining_probability_monotone(model):
    probs = [model.combining_probability(n) for n in range(1, 8)]
    assert all(a >= b - 1e-9 for a, b in zip(probs, probs[1:]))
    assert probs[3] >= 0.94  # ~100 % at the outbound cap of 4


def test_extrapolation_beyond_table(model):
    p8 = model.combining_probability(8)
    p9 = model.combining_probability(9)
    assert p8 < model.combining_probability(7)
    assert p9 < p8


def test_zero_or_negative_combined(model):
    assert model.combining_probability(0) == 0.0
    assert model.p_detect(10.0, 0) == model.p_detect(10.0, 1)  # clamped


def test_sinr_ramp(model):
    assert model.sinr_factor(model.min_sinr_db - 1.0) == 0.0
    assert model.sinr_factor(model.min_sinr_db + model.ramp_db) == 1.0
    mid = model.sinr_factor(model.min_sinr_db + model.ramp_db / 2)
    assert 0.4 < mid < 0.6


def test_p_detect_combines_factors(model):
    strong = model.p_detect(20.0, 2)
    weak_sinr = model.p_detect(model.min_sinr_db + 1.0, 2)
    assert strong > weak_sinr > 0.0


def test_sample_detect_statistics(model):
    rng = random.Random(0)
    hits = sum(model.sample_detect(rng, 20.0, 4) for _ in range(2000))
    assert hits / 2000 == pytest.approx(model.p_detect(20.0, 4), abs=0.03)


def test_jitter_symmetric_and_bounded(model):
    rng = random.Random(1)
    samples = [model.sample_jitter_us(rng) for _ in range(2000)]
    half = model.jitter_max_us / 2.0
    assert all(-half <= s <= half for s in samples)
    assert abs(sum(samples) / len(samples)) < 0.1


def test_perfect_model():
    perfect = PerfectTriggerModel()
    assert perfect.p_detect(0.0, 7) == 1.0
    assert perfect.p_detect(-50.0, 1) == 0.0


def test_worst_case_table_is_weaker():
    for n in range(4, 8):
        assert WORST_CASE_DETECTION_BY_COMBINED[n] <= \
            DEFAULT_DETECTION_BY_COMBINED[n]


def test_calibrate_from_experiment_structure():
    model = calibrate_from_experiment(runs=20, seed=1, max_combined=4)
    assert set(model.detection_by_combined) == {1, 2, 3, 4}
    assert all(0.0 <= v <= 1.0
               for v in model.detection_by_combined.values())
    # Low combining counts must calibrate high even at tiny run counts.
    assert model.detection_by_combined[1] >= 0.9
