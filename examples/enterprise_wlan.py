#!/usr/bin/env python3
"""Enterprise WLAN study: four channel-access schemes on T(10, 2).

Carves the paper's T(10, 2) topology (10 APs, 2 clients each) out of
the synthetic two-building RSS trace, reports its hidden/exposed
census, then runs DCF, CENTAUR, DOMINO and the omniscient bound under
mixed up/downlink UDP — the Fig. 12 setting at one sweep point.

Run:  python examples/enterprise_wlan.py [uplink_mbps]
"""

import sys

from repro.experiments.common import run_scheme
from repro.topology.builder import build_t_topology
from repro.topology.trace import two_building_trace

HORIZON_US = 1_000_000.0
DOWNLINK_MBPS = 10.0


def main():
    uplink = float(sys.argv[1]) if len(sys.argv) > 1 else 4.0
    trace = two_building_trace()
    topology = build_t_topology(trace, 10, 2, seed=3)
    imap = topology.interference_map()
    census = imap.census(topology.flows)

    print(f"topology {topology.name}: {len(topology.network.aps)} APs, "
          f"{len(topology.network.clients)} clients, "
          f"{len(topology.flows)} flows")
    print(f"link-pair census: {census['hidden']} hidden, "
          f"{census['exposed']} exposed, {census['conflict']} other "
          f"conflicts, {census['independent']} independent "
          f"(paper's trace: 10 hidden, 62 exposed)")
    print(f"traffic: {DOWNLINK_MBPS} Mbps down / {uplink} Mbps up "
          f"per flow, {HORIZON_US / 1e6:.0f} s\n")

    print(f"{'scheme':<12} {'Mbps':>6} {'Jain':>6} {'delay ms':>9}")
    for scheme in ("dcf", "centaur", "domino", "omniscient"):
        result = run_scheme(scheme, topology, horizon_us=HORIZON_US,
                            downlink_mbps=DOWNLINK_MBPS,
                            uplink_mbps=uplink)
        print(f"{scheme:<12} {result.aggregate_mbps:>6.1f} "
              f"{result.fairness:>6.2f} "
              f"{result.mean_delay_us / 1000.0:>9.0f}")
    print("\nDOMINO closes most of the gap to the omniscient bound "
          "while DCF and CENTAUR\nleave the exposed-terminal capacity "
          "on the table.")


if __name__ == "__main__":
    main()
