"""Compliant async service: every DOM5xx pattern done right.

Guarded state mutates before the first await or inside the lock;
spawned tasks keep their handles (and a task group owns its own).
"""

import asyncio


class Guarded:
    def __init__(self):
        self.registry = {}
        self._revision_lock = asyncio.Lock()
        self._tasks = set()

    async def apply(self, key):
        self.registry.setdefault(key, 0)  # before the first await: fine
        staged = await self.compute(key)
        async with self._revision_lock:
            self.registry[key] = staged
        return staged

    async def compute(self, key):
        await asyncio.sleep(0)
        return key

    def spawn(self, coro):
        task = asyncio.create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task


async def run_group(workers):
    async with asyncio.TaskGroup() as tg:
        for worker in workers:
            tg.create_task(worker())
