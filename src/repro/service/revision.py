"""Versioned schedule revisions and the canonical batch digest.

The digest is the subsystem's correctness currency: two
:class:`~repro.core.relative_schedule.RelativeBatch` objects digest
equal iff they describe byte-identical schedules (slots, entries,
duties, inbound triggers, ROP polls, untriggerable leftovers).  The
equality oracle compares an incremental revision's digest against a
from-scratch recompute of the same state — unordered containers are
canonicalized (sorted) first, so dict insertion order, which may
legitimately differ between the two computation paths, cannot create
false mismatches.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.relative_schedule import RelativeBatch
from ..telemetry.metrics import percentile

#: Hex digits of the digest carried in trace events (full digest on
#: the revision object itself).
TRACE_DIGEST_CHARS = 12


def batch_digest(batch: RelativeBatch) -> str:
    """Canonical content hash of one relative batch."""
    slots = [
        [slot.index,
         [[entry.link.src, entry.link.dst, bool(entry.fake)]
          for entry in slot.entries],
         list(slot.rop_after)]
        for slot in batch.slots
    ]
    duties = sorted(
        [node, slot, sorted(duty.targets), sorted(duty.rop_polls),
         bool(duty.rop_flag)]
        for (node, slot), duty in batch.duties.items()
    )
    inbound = sorted(
        [slot, link.src, link.dst, list(nodes)]
        for (slot, link), nodes in batch.inbound.items()
    )
    rop_polls = sorted(
        [slot, list(aps)] for slot, aps in batch.rop_polls.items()
    )
    untriggerable = [[slot, link.src, link.dst]
                     for slot, link in batch.untriggerable]
    canonical = {
        "batch": batch.batch_id,
        "initial": bool(batch.initial),
        "slots": slots,
        "duties": duties,
        "inbound": inbound,
        "rop_polls": rop_polls,
        "untriggerable": untriggerable,
    }
    payload = json.dumps(canonical, sort_keys=True,
                         separators=(",", ":")).encode()
    return hashlib.sha256(payload).hexdigest()


@dataclass(frozen=True)
class ScheduleRevision:
    """One versioned output of the online controller."""

    version: int            # monotonically increasing, starts at 1
    epoch: int              # debounce epoch that produced it
    t_us: float             # virtual time of the epoch's last event
    batch: RelativeBatch
    digest: str             # batch_digest(batch)
    events: int             # controller events folded into the epoch
    dirty_links: int        # dirty links when the epoch closed
    cache_hit: bool         # conversion replayed from cache
    full: bool = False      # produced by a from-scratch recompute
    latency_ms: float = 0.0  # wall-clock apply+revise time (not traced)
    #: Wall-clock phase breakdown in µs (``membership_us`` /
    #: ``conflict_us`` / ``cache_us`` / ``convert_us`` / ``digest_us``
    #: / ``total_us``), populated only under ``phase_timing``.
    phases: Optional[Dict[str, float]] = None

    @property
    def trace_digest(self) -> str:
        return self.digest[:TRACE_DIGEST_CHARS]


def percentiles_ms(latencies_ms: List[float]) -> Tuple[float, float]:
    """(p50, p99) by nearest-rank, matching the metrics histogram."""
    ordered = sorted(latencies_ms)
    return (percentile(ordered, 50.0), percentile(ordered, 99.0))
