"""Figure 12(a-c) bench: T(10,2) UDP throughput, delay and fairness.

Paper's shape: DOMINO clearly above CENTAUR and DCF at every uplink
rate (headline: "up to 1.96x the throughput of DCF"); DOMINO's Jain
fairness far above DCF's (0.78 vs 0.47); DOMINO's delay at or below
DCF's under saturation.
"""

from repro.experiments import fig12_t10_2

UPLINK_RATES = (0.0, 4.0, 10.0)


def test_fig12_udp(once, sweep_workers):
    result = once(fig12_t10_2.run, "udp", UPLINK_RATES, 800_000.0,
                  workers=sweep_workers)
    print()
    print(fig12_t10_2.report(result))

    for point in result.points:
        thr = point.throughput_mbps
        # DOMINO wins at every uplink rate (paper: +24 % .. +96 %).
        assert thr["domino"] > 1.2 * thr["dcf"]
        assert thr["domino"] > 1.2 * thr["centaur"]
        # Within the paper's gain envelope (its headline max is 1.96x;
        # allow a little simulator slack either way).
        assert thr["domino"] / thr["dcf"] < 2.3
        # Fairness: DOMINO far above DCF (paper: 0.78 vs 0.47).
        assert point.fairness["domino"] > point.fairness["dcf"] + 0.2
        assert point.fairness["domino"] > 0.7
    # Saturated-queue delay: DOMINO at or below DCF (paper: DCF ~2x).
    last = result.points[-1]
    assert last.delay_us["domino"] < 1.1 * last.delay_us["dcf"]
