"""repro — a full reproduction of DOMINO (CoNEXT 2013).

DOMINO: Relative Scheduling in Enterprise Wireless LANs
(W. Zhou, D. Li, K. Srinivasan, P. Sinha).

Quick start::

    from repro.sim import Simulator
    from repro.topology import fig1_topology
    from repro.core import build_domino_network
    from repro.traffic import SaturatedSource
    from repro.metrics import FlowRecorder

    topo = fig1_topology()
    sim = Simulator(seed=1)
    net = build_domino_network(sim, topo)
    recorder = FlowRecorder(topo.flows)
    recorder.attach_all(net.macs.values())
    for flow in topo.flows:
        SaturatedSource(sim, net.macs[flow.src], flow.dst).start()
    net.controller.start()
    sim.run(until=1_000_000.0)  # one second
    print(recorder.aggregate_throughput_mbps(1_000_000.0), "Mbps")

Packages: :mod:`repro.sim` (event-driven wireless substrate),
:mod:`repro.topology`, :mod:`repro.sched`, :mod:`repro.mac`
(baselines), :mod:`repro.traffic`, :mod:`repro.core` (DOMINO),
:mod:`repro.metrics`, :mod:`repro.telemetry` (structured tracing,
metrics registry and the ``python -m repro.telemetry`` trace CLI),
:mod:`repro.experiments` (paper figures/tables).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
