"""The live ops plane: exporter, SLO tracker, flight recorder."""

import json

import pytest

from repro.telemetry import jsonl
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.ops import (FlightRecorder, SloAlert, SloConfig,
                                 SloTracker, prometheus_name,
                                 render_prometheus)
from repro.telemetry.recorder import TraceRecorder


class TestPrometheusRendering:
    def test_name_sanitization(self):
        assert prometheus_name("service.revision_ms") == \
            "service_revision_ms"
        assert prometheus_name("converter.cache.reject.rule1") == \
            "converter_cache_reject_rule1"
        assert prometheus_name("9lives") == "_9lives"
        assert prometheus_name("a b:c") == "a_b:c"

    def test_empty_registry_is_valid_text(self):
        assert render_prometheus(MetricsRegistry()) == "\n"

    def test_counter_renders_with_total_suffix(self):
        registry = MetricsRegistry()
        registry.counter("service.revisions").inc(3)
        text = render_prometheus(registry)
        assert "# TYPE service_revisions_total counter\n" in text
        assert "service_revisions_total 3\n" in text

    def test_gauge_renders_plain(self):
        registry = MetricsRegistry()
        registry.gauge("service.dirty_links").set(7)
        text = render_prometheus(registry)
        assert "# TYPE service_dirty_links gauge" in text
        assert "service_dirty_links 7" in text.splitlines()

    def test_histogram_renders_as_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("service.revision_ms")
        for value in range(1, 101):
            hist.observe(float(value))
        text = render_prometheus(registry)
        assert "# TYPE service_revision_ms summary" in text
        assert 'service_revision_ms{quantile="0.5"} 50' in text
        assert 'service_revision_ms{quantile="0.99"} 99' in text
        assert "service_revision_ms_count 100" in text
        assert "service_revision_ms_sum 5050" in text

    def test_output_shape(self):
        """Sorted by name, one trailing newline, no blank lines."""
        registry = MetricsRegistry()
        registry.counter("b.second").inc()
        registry.counter("a.first").inc()
        text = render_prometheus(registry)
        assert text.endswith("\n") and not text.endswith("\n\n")
        lines = text.splitlines()
        assert "" not in lines
        assert lines.index("a_first_total 1") < \
            lines.index("b_second_total 1")


class TestSloTracker:
    def make(self, **kwargs):
        defaults = dict(p99_target_ms=10.0, window=64, min_samples=8)
        defaults.update(kwargs)
        return SloTracker(SloConfig(**defaults))

    def test_quiet_below_target(self):
        slo = self.make()
        for _ in range(50):
            assert slo.observe_latency(1.0) is None
        assert not slo.breached
        assert slo.status()["breached"] is False

    def test_no_judgement_before_min_samples(self):
        slo = self.make(min_samples=8)
        for _ in range(7):
            assert slo.observe_latency(1_000.0) is None
        assert not slo.breached

    def test_breach_alerts_once_edge_triggered(self):
        slo = self.make()
        alerts = []
        slo.subscribe(alerts.append)
        for _ in range(20):
            slo.observe_latency(100.0, epoch=4)
        assert len(alerts) == 1
        alert = alerts[0]
        assert alert.rule == "slo_p99"
        assert alert.epoch == 4
        assert alert.value > alert.threshold == 10.0
        assert "[warn] slo_p99:" in alert.render()
        assert "(epoch 4)" in alert.render()

    def test_rearms_after_recovery(self):
        slo = self.make(window=16, min_samples=8)
        for _ in range(16):
            slo.observe_latency(100.0)
        assert len(slo.alerts) == 1
        for _ in range(16):                 # window fully recovers
            slo.observe_latency(0.5)
        for _ in range(16):                 # second breach
            slo.observe_latency(100.0)
        assert len(slo.alerts) == 2

    def test_oracle_budget(self):
        slo = self.make(oracle_budget=1)
        assert slo.record_oracle(True) is None
        assert slo.record_oracle(False) is None      # within budget
        alert = slo.record_oracle(False, epoch=9)
        assert alert is not None
        assert alert.rule == "oracle_budget"
        assert alert.severity == "critical"
        assert slo.status()["oracle_failures"] == 2
        assert slo.status()["oracle_checks"] == 3

    def test_status_is_json_ready(self):
        slo = self.make()
        for _ in range(10):
            slo.observe_latency(100.0)
        payload = json.loads(json.dumps(slo.status()))
        assert payload["samples"] == 10
        assert payload["alerts"] and isinstance(payload["alerts"][0], str)


class TestFlightRecorder:
    def fill(self, recorder, n):
        for i in range(n):
            recorder.sched_revision(float(i), version=i + 1, epoch=i,
                                    events=1, dirty=0, full=False,
                                    digest="d" * 12, batch=i + 1)

    def test_dump_is_loadable_trace(self, tmp_path):
        rec = TraceRecorder()
        self.fill(rec, 5)
        flight = FlightRecorder(rec, str(tmp_path))
        path = flight.dump("oracle_mismatch", {"epoch": 4})
        records = jsonl.load_jsonl(path)
        meta = records[0]
        assert meta[FlightRecorder.META_KEY] == 1
        assert meta["reason"] == "oracle_mismatch"
        assert meta["epoch"] == 4
        assert meta["events"] == 5
        assert [r["epoch"] for r in records[1:]] == list(range(5))

    def test_dump_keeps_only_the_tail(self, tmp_path):
        rec = TraceRecorder()
        self.fill(rec, 20)
        flight = FlightRecorder(rec, str(tmp_path), keep_last=4)
        path = flight.dump("slo_breach")
        records = jsonl.load_jsonl(path)
        assert len(records) == 1 + 4
        assert [r["epoch"] for r in records[1:]] == [16, 17, 18, 19]

    def test_sequential_dumps_never_overwrite(self, tmp_path):
        rec = TraceRecorder()
        self.fill(rec, 2)
        flight = FlightRecorder(rec, str(tmp_path))
        a = flight.dump("slo_breach")
        b = flight.dump("slo_breach")
        assert a != b
        assert flight.dumps == [a, b]

    def test_reason_is_sanitized_into_filename(self, tmp_path):
        rec = TraceRecorder()
        self.fill(rec, 1)
        flight = FlightRecorder(rec, str(tmp_path))
        path = flight.dump("weird reason/../x")
        assert "/.." not in path.replace(str(tmp_path), "")
        records = jsonl.load_jsonl(path)
        assert records[0]["reason"] == "weird reason/../x"

    def test_rejects_nonpositive_tail(self, tmp_path):
        with pytest.raises(ValueError):
            FlightRecorder(TraceRecorder(), str(tmp_path), keep_last=0)


def test_alert_render_without_epoch():
    alert = SloAlert(rule="slo_p99", severity="warn", message="m",
                     value=1.0, threshold=0.5)
    assert alert.render() == "[warn] slo_p99: m"
