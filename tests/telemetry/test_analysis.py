"""The doctor: health reports, trace diffing, CLI golden outputs.

The golden tests pin the CLI's byte-exact output over the committed
fixture trace (``fixtures/chain.jsonl``) — regenerate with the
commands in ``fixtures/README`` after an intentional format change.

The fig12 regression test is the acceptance check for the diagnosis
layer: inject trigger loss into the T(10, 2) reference run and the
doctor must attribute the throughput drop to backup-trigger fallbacks
and chain stalls (not merely notice that throughput fell).
"""

import json
import os

import pytest

from repro.core.trigger_model import TriggerDetectionModel
from repro.experiments.common import run_scheme
from repro.experiments.fig12_t10_2 import default_topology
from repro.telemetry import __main__ as cli
from repro.telemetry.analysis import diagnose, diff_traces
from repro.telemetry.jsonl import load_jsonl

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def fixture(name: str) -> str:
    return os.path.join(FIXTURES, name)


def chain_records():
    return load_jsonl(fixture("chain.jsonl"))


class TestGoldenCli:
    """CLI output over the committed fixture must match byte-for-byte."""

    @pytest.mark.parametrize("command, golden, code", [
        (["summarize"], "chain.summarize.txt", 0),
        (["timeline"], "chain.timeline.txt", 0),
        (["filter", "--kind", "sig_detect"], "chain.filter.jsonl", 0),
        # The fixture trace carries real findings, so `doctor` signals
        # them through its exit code (the CI gating contract).
        (["doctor"], "chain.doctor.txt", 1),
    ])
    def test_matches_golden(self, command, golden, code, capsys):
        assert cli.main([command[0], fixture("chain.jsonl")]
                        + command[1:]) == code
        with open(fixture(golden)) as handle:
            expected = handle.read()
        assert capsys.readouterr().out == expected


class TestCliExitCodes:
    """0 healthy / identical, 1 findings / divergence, 2 bad input."""

    def test_doctor_healthy_trace_exits_zero(self, tmp_path, capsys):
        # A single clean execution produces no findings.
        path = str(tmp_path / "healthy.jsonl")
        with open(path, "w") as handle:
            handle.write('{"__domino_trace__":3,"schema_version":3}\n')
            handle.write('{"ev":"slot_exec","t":10.0,"node":1,"slot":0,'
                         '"dst":2,"fake":false,"id":0,"cause":null,'
                         '"via":"initial"}\n')
        assert cli.main(["doctor", path]) == 0

    def test_doctor_findings_exit_one(self, capsys):
        assert cli.main(["doctor", fixture("chain.jsonl")]) == 1

    def test_diff_identical_exits_zero(self, capsys):
        path = fixture("chain.jsonl")
        assert cli.main(["diff", path, path]) == 0

    def test_diff_divergent_exits_one(self, tmp_path, capsys):
        records = chain_records()
        for record in records:
            if record["ev"] == "sig_detect":
                record["detected"] = not record["detected"]
        mutated = str(tmp_path / "mutated.jsonl")
        with open(mutated, "w") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
        assert cli.main(["diff", fixture("chain.jsonl"), mutated]) == 1

    def test_missing_file_exits_two(self, capsys):
        assert cli.main(["doctor", fixture("no-such-trace.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_not_jsonl_exits_two(self, tmp_path, capsys):
        path = str(tmp_path / "garbage.jsonl")
        with open(path, "w") as handle:
            handle.write("this is not json\n")
        assert cli.main(["doctor", path]) == 2
        assert "not JSONL" in capsys.readouterr().err

    def test_future_schema_exits_two(self, tmp_path, capsys):
        path = str(tmp_path / "future.jsonl")
        with open(path, "w") as handle:
            handle.write('{"__domino_trace__":3,"schema_version":99}\n')
        assert cli.main(["doctor", path]) == 2
        assert "newer than this build supports" in capsys.readouterr().err

    def test_causality_v2_trace_exits_zero_with_notice(self, capsys):
        assert cli.main(["causality", fixture("chain.jsonl")]) == 0
        assert "no causal spans" in capsys.readouterr().out

    def test_causality_unknown_batch_exits_two(self, capsys):
        assert cli.main(["causality", fixture("chain.jsonl"),
                         "--batch", "41"]) == 2
        assert "no causal chain" in capsys.readouterr().err


class TestDiagnose:
    def test_fixture_sections(self):
        report = diagnose(chain_records())
        assert report.events == 17

        trigger = report.trigger
        assert trigger.draws == 2 and trigger.hits == 1
        assert trigger.miss_rate == 0.5
        # v2 traces carry the model probability behind each draw.
        assert trigger.expected_miss_rate == pytest.approx(0.325)
        assert trigger.fallbacks_by_reason == {"watchdog": 1}
        assert trigger.executed_slots == 3
        assert trigger.primary_slots == 1 and trigger.fallback_slots == 1
        assert trigger.stalled_slots == []
        links = {(l.src, l.dst): l for l in trigger.per_link}
        assert links[(1, 2)].hits == 1 and links[(2, 3)].hits == 0

        rop = report.rop
        assert rop.polls == 1 and rop.rounds == 2
        assert rop.reports_decoded == 3 and rop.reports_failed == 1
        assert rop.low_snr == 1 and rop.blocked == 0
        assert rop.decode_error == 0.25
        assert rop.round_errors == [0.5, 0.0]
        assert rop.staleness_max_us == pytest.approx(1980.0)

        airtime = report.airtime
        assert airtime.by_kind["data"].frames == 2
        assert airtime.by_kind["fake"].airtime_us == 400.0
        # The collided frame joins back to its 400 us transmission.
        assert airtime.collision_count == 1
        assert airtime.collision_airtime_us == 400.0
        assert airtime.per_batch == {
            0: {"data": 800.0, "fake": 400.0, "queue_report": 16.0}}

        flows = report.flows
        assert [(f.src, f.dst, f.delivered, f.dropped)
                for f in flows.flows] == [(1, 9, 1, 0), (3, 9, 0, 1)]
        assert flows.fairness == pytest.approx(0.5)

    def test_json_round_trips(self):
        report = diagnose(chain_records())
        data = json.loads(json.dumps(report.to_json()))
        assert data["trigger"]["miss_rate"] == 0.5
        assert data["rop"]["decode_error"] == 0.25
        assert data["findings"] == report.findings

    def test_horizon_pins_idle_accounting(self):
        report = diagnose(chain_records(), horizon_us=10_000.0)
        assert report.airtime.horizon_us == 10_000.0
        assert report.airtime.idle_us == pytest.approx(
            10_000.0 - report.airtime.busy_us)

    def test_empty_trace(self):
        report = diagnose([])
        assert report.events == 0 and report.findings == []
        assert "0 events" in report.render()

    def test_stall_requires_later_execution(self):
        # A targeted slot with no senders mid-run is a stall; the same
        # situation at the trace tail is the horizon cutting the run.
        burst = {"ev": "trigger_fire", "t": 1.0, "node": 1, "slot": 0,
                 "targets": [2], "rop": False, "polls": []}
        tail_only = diagnose([burst])
        assert tail_only.trigger.stalled_slots == []
        executed_later = diagnose([
            burst,
            {"ev": "slot_exec", "t": 9.0, "node": 3, "slot": 5, "dst": 9,
             "fake": False},
        ])
        assert executed_later.trigger.stalled_slots == [1]


class TestDiff:
    def test_identical(self):
        records = chain_records()
        result = diff_traces(records, [dict(r) for r in records])
        assert result.identical
        assert result.first_divergence is None
        assert result.first_record_mismatch is None
        assert result.kind_deltas == {}
        assert "identical" in result.render()

    def test_first_divergent_slot(self):
        a = chain_records()
        b = [dict(r) for r in a]
        # Flip slot 1's draw outcome in B: slot 2 is where behaviour
        # forks (a slot-0 burst covers slot 1, a slot-1 draw slot 2).
        for record in b:
            if record["ev"] == "sig_detect" and record["slot"] == 1:
                record["detected"] = True
        result = diff_traces(a, b)
        assert not result.identical
        assert result.first_divergence.slot == 2
        assert "MISS" in result.first_divergence.a
        assert result.slots_divergent == 1
        assert result.first_record_mismatch is not None

    def test_record_mismatch_without_slot_divergence(self):
        a = chain_records()
        b = [dict(r) for r in a]
        b[0] = dict(b[0], slots=99)   # sched_dispatch: not slot-mapped
        result = diff_traces(a, b)
        assert result.first_divergence is None
        assert result.first_record_mismatch == 0
        assert not result.identical

    def test_length_mismatch_detected(self):
        a = chain_records()
        result = diff_traces(a, a[:-1])
        assert result.first_record_mismatch == len(a) - 1
        assert result.kind_deltas == {"rop_decode": -1}


def _reference_run(trigger_model=None):
    return run_scheme("domino", default_topology(), horizon_us=120_000.0,
                      saturated=True, seed=1, trace=True,
                      trigger_model=trigger_model)


@pytest.fixture(scope="module")
def healthy_run():
    return _reference_run()


@pytest.fixture(scope="module")
def lossy_run():
    return _reference_run(TriggerDetectionModel(
        detection_by_combined={i: 0.45 for i in range(1, 13)}))


class TestFig12Attribution:
    """Acceptance: injected trigger loss must be *attributed*, not just
    noticed — the doctor's findings name backup fallbacks and stalls."""

    def test_lossy_run_attributed_to_backup_fallbacks(self, healthy_run,
                                                      lossy_run):
        assert lossy_run.aggregate_mbps < 0.7 * healthy_run.aggregate_mbps

        healthy_report = healthy_run.doctor()
        assert not any("backup-trigger" in f
                       for f in healthy_report.findings)

        report = lossy_run.doctor()
        assert report.trigger.miss_rate > 0.4
        assert report.trigger.fallbacks_by_reason.get("watchdog", 0) > 0
        assert report.trigger.stalled_slots
        joined = " ".join(report.findings)
        assert "backup-trigger fallbacks" in joined
        assert "chain stalls" in joined
        # The report's own numbers carry the attribution: a large share
        # of what did execute only ran because a backup path saved it.
        assert (report.trigger.fallback_slots
                / report.trigger.executed_slots) > 0.1

    def test_diff_same_seed_identical_and_lossy_diverges(self, healthy_run,
                                                         lossy_run):
        rerun = _reference_run()
        assert diff_traces(healthy_run.trace.records(),
                           rerun.trace.records()).identical

        result = diff_traces(healthy_run.trace.records(),
                             lossy_run.trace.records())
        assert not result.identical
        assert result.first_divergence is not None
        assert result.first_divergence.slot >= 0
        assert result.kind_deltas.get("backup_trigger", 0) > 0
