"""Table 3: aggregate throughput on the exposed-link topologies (Fig. 13).

Fig. 13a: four downlinks whose senders all hear each other but whose
receptions are mutually clean — CENTAUR aligns them with carrier
sensing + fixed backoff and lands near DOMINO, both ~3x DCF.

Fig. 13b: three senders out of each other's carrier-sense range
sharing one common exposed link (AP4 hears all three).  CENTAUR's
alignment assumption collapses: AP4 keeps deferring, the batch
barrier waits for it, and CENTAUR drops *below* DCF.  DOMINO does not
carrier-sense and delivers the same throughput in both topologies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

from ..runner import TopologySpec, run_sweep, scheme_sweep
from ..topology.builder import Topology, fig13a_topology, fig13b_topology
from .common import format_table

SCHEMES = ("domino", "centaur", "dcf")

#: Table 3 of the paper (Mbps), for side-by-side reporting.
PAPER_MBPS = {
    "fig13a": {"domino": 32.72, "centaur": 28.60, "dcf": 9.97},
    "fig13b": {"domino": 33.85, "centaur": 18.35, "dcf": 22.13},
}


@dataclass
class Tab3Result:
    mbps: Dict[str, Dict[str, float]] = field(default_factory=dict)


def run(horizon_us: float = 1_000_000.0, seed: int = 1,
        workers: int = 0) -> Tab3Result:
    topologies: Dict[str, Callable[[], Topology]] = {
        "fig13a": fig13a_topology,
        "fig13b": fig13b_topology,
    }
    points = [
        point
        for name, topology_fn in topologies.items()
        for point in scheme_sweep(SCHEMES, TopologySpec(topology_fn),
                                  horizon_us=horizon_us, seed=seed,
                                  label_prefix=f"{name}:", saturated=True)
    ]
    sweep = run_sweep(points, workers=workers)
    by_label = sweep.by_label()
    result = Tab3Result()
    for name in topologies:
        result.mbps[name] = {
            scheme: by_label[f"{name}:{scheme}"].aggregate_mbps
            for scheme in SCHEMES
        }
    return result


def report(result: Tab3Result) -> str:
    headers = ["topology", *(f"{s} (Mbps)" for s in SCHEMES)]
    rows = []
    for name in ("fig13a", "fig13b"):
        rows.append([name, *(f"{result.mbps[name][s]:.2f}"
                             for s in SCHEMES)])
        rows.append([f"  paper {name}",
                     *(f"{PAPER_MBPS[name][s]:.2f}" for s in SCHEMES)])
    lines = [format_table(headers, rows)]
    a, b = result.mbps["fig13a"], result.mbps["fig13b"]
    lines.append(f"fig13a: CENTAUR/DCF = {a['centaur'] / a['dcf']:.2f}x "
                 "(paper ~2.9x, both centralized schemes wide above DCF)")
    lines.append(f"fig13b: CENTAUR below DCF: {b['centaur'] < b['dcf']} "
                 "(paper: yes)")
    lines.append("DOMINO equal across topologies: "
                 f"{abs(a['domino'] - b['domino']) / a['domino']:.1%} apart "
                 "(paper: ~3%)")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
