"""DOM203 — transitive layering over the real import closure.

DOM201/DOM202 judge each import statement against the layers DAG one
edge at a time.  Two escapes survive that check:

* **Cycles.**  A pair of packages can each hold a legal-looking edge
  to the other (one of them lazy, or inline-suppressed) and the DAG
  check never sees the loop.  This is exactly how the old
  ``topology -> sched`` lazy import hid for four PRs.
* **Laundering.**  ``P`` may not import ``R``, but ``P -> Q -> R``
  with both edges individually allowed (or suppressed) gives ``P``
  everything ``R`` exports anyway.

DOM203 therefore works on the *actual* package import graph — every
first-party import site, **including** lazy function-level imports
and sites carrying a DOM201 suppression (suppressing the direct rule
must not silence the structural one).  ``if TYPE_CHECKING:`` imports
are excluded: they never execute, so they cannot create a runtime
cycle or dependency.

Escapes must be paid for in config: a ``transitive-waivers`` entry
(``"pkg.a -> pkg.b"``) removes that edge from the analysis, making
every accepted exception a reviewed artifact in ``pyproject.toml``
rather than a comment lost in a function body.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from .callgraph import ImportEdge, ProgramIndex
from .findings import Finding

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from .config import Config

#: (src_pkg, dst_pkg) -> (path, first import site) — the graph shape
#: produced by :meth:`ProgramIndex.package_import_edges`.
EdgeMap = Dict[Tuple[str, str], Tuple[str, ImportEdge]]


def _actual_edges(index: ProgramIndex, config: "Config") -> EdgeMap:
    """The package graph minus waived edges."""
    edges = index.package_import_edges(config.package_of)
    for waived in config.transitive_waivers:
        edges.pop(waived, None)
    return edges


def _reach_edges(index: ProgramIndex, config: "Config",
                 edges: EdgeMap) -> EdgeMap:
    """The subgraph the *reach* analysis walks.

    An edge qualifies if it is table-legal, or if some site of it
    carries an inline DOM201 suppression (paid for locally, but its
    transitive consequences still count).  An *unsuppressed* illegal
    edge is excluded: DOM201 already reports it, and walking through
    it would just duplicate that report transitively.
    """
    suppressed: Set[Tuple[str, str]] = set()
    for facts in index.modules.values():
        src_pkg = config.package_of(facts.module)
        for site in facts.imports:
            if site.type_checking:
                continue
            dst_pkg = config.package_of(site.target)
            if dst_pkg == src_pkg:
                continue
            rules = facts.suppressions.get(site.lineno, [])
            if "DOM201" in rules or "ALL" in rules:
                suppressed.add((src_pkg, dst_pkg))

    def legal(src: str, dst: str) -> bool:
        allowed = config.layers.get(src)
        if allowed is None:
            return False  # no table row: DOM202's report
        return "*" in allowed or dst in allowed

    return {
        pair: site for pair, site in edges.items()
        if legal(*pair) or pair in suppressed
    }


def _successors(edges: EdgeMap) -> Dict[str, List[str]]:
    succ: Dict[str, List[str]] = {}
    for src, dst in edges:
        succ.setdefault(src, []).append(dst)
        succ.setdefault(dst, [])
    for dsts in succ.values():
        dsts.sort()
    return succ


def _sccs(succ: Dict[str, List[str]]) -> List[List[str]]:
    """Tarjan's strongly connected components, iteratively."""
    order: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[List[str]] = []
    counter = 0

    for root in sorted(succ):
        if root in order:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                order[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            children = succ[node]
            advanced = False
            for index in range(child_index, len(children)):
                child = children[index]
                if child not in order:
                    work.append((node, index + 1))
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], order[child])
            if advanced:
                continue
            if low[node] == order[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return components


def _allowed_closure(config: "Config") -> Dict[str, Optional[Set[str]]]:
    """Transitive closure of the layers DAG per package.

    ``None`` means unconstrained (the package, or something it may
    reach, declares ``"*"``).
    """
    closure: Dict[str, Optional[Set[str]]] = {}
    for package in config.layers:
        if "*" in config.layers[package]:
            closure[package] = None
            continue
        reached: Set[str] = set()
        frontier = list(config.layers[package])
        unconstrained = False
        while frontier:
            dep = frontier.pop()
            if dep == "*" or "*" in config.layers.get(dep, ()):
                unconstrained = True
                break
            if dep in reached:
                continue
            reached.add(dep)
            frontier.extend(config.layers.get(dep, ()))
        closure[package] = None if unconstrained else reached
    return closure


def _shortest_path(succ: Dict[str, List[str]], src: str,
                   dst: str) -> List[str]:
    parent: Dict[str, str] = {}
    frontier = [src]
    seen = {src}
    while frontier:
        nxt: List[str] = []
        for node in frontier:
            for child in succ.get(node, ()):
                if child in seen:
                    continue
                seen.add(child)
                parent[child] = node
                if child == dst:
                    path = [dst]
                    while path[-1] != src:
                        path.append(parent[path[-1]])
                    return list(reversed(path))
                nxt.append(child)
        frontier = nxt
    return [src, dst]  # unreachable by construction


def check_transitive(index: ProgramIndex,
                     config: "Config") -> List[Finding]:
    """Cycle and transitive-reach findings over the package graph."""
    edges = _actual_edges(index, config)
    succ = _successors(edges)
    findings: List[Finding] = []

    # -- cycles ---------------------------------------------------------
    scc_of: Dict[str, int] = {}
    for number, component in enumerate(_sccs(succ)):
        for member in component:
            scc_of[member] = number
        in_cycle = len(component) > 1 or (
            len(component) == 1
            and (component[0], component[0]) in edges)
        if not in_cycle:
            continue
        loop = " -> ".join([*component, component[0]])
        for (src, dst), (path, site) in sorted(edges.items()):
            if src in component and dst in component:
                findings.append(Finding(
                    path=path, line=site.lineno, col=site.col,
                    rule="DOM203",
                    message=(
                        f"import cycle between packages: {loop}; "
                        f"this edge ({src} -> {dst}"
                        f"{', lazy' if site.lazy else ''}) keeps the "
                        f"cycle alive — break it by moving the shared "
                        f"type down a layer, or waive the edge in "
                        f"[tool.dominolint] transitive-waivers"
                    ),
                ))

    # -- transitive reach beyond the allowed closure --------------------
    # Walked over the legal+suppressed subgraph only: unsuppressed
    # illegal edges are DOM201's report, not a corridor to traverse.
    reach_edges = _reach_edges(index, config, edges)
    succ = _successors(reach_edges)
    closure = _allowed_closure(config)
    for package in sorted(succ):
        if package not in closure:
            continue  # no table row — DOM202's job
        allowed = closure[package]
        if allowed is None:
            continue  # unconstrained ("*" reachable)
        reached: Set[str] = set()
        frontier = list(succ.get(package, ()))
        while frontier:
            node = frontier.pop()
            if node in reached or node == package:
                continue
            reached.add(node)
            frontier.extend(succ.get(node, ()))
        for target in sorted(reached):
            if target in allowed or target == package:
                continue
            if scc_of.get(target) == scc_of.get(package):
                continue  # already reported as a cycle
            chain = _shortest_path(succ, package, target)
            if len(chain) == 2:
                continue  # a direct edge — DOM201/DOM202 own that
            path, site = edges[(chain[0], chain[1])]
            findings.append(Finding(
                path=path, line=site.lineno, col=site.col,
                rule="DOM203",
                message=(
                    f"'{package}' transitively reaches '{target}' "
                    f"({' -> '.join(chain)}) but the layers DAG only "
                    f"allows {sorted(allowed) or 'nothing'}; add the "
                    f"missing layers rows or break the chain"
                ),
            ))

    return sorted(findings)


__all__ = ["check_transitive"]
