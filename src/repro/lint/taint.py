"""DOM1xx-flow — interprocedural wall-clock / RNG taint.

DOM101/DOM102 are syntactic: they fire when a sim-layer file *itself*
spells out ``time.time()`` or ``random.random()``.  They are blind to
laundering — a helper (possibly in a layer the determinism contract
does not cover) that reads the clock and hands the value up a call
chain into simulation state.  These rules close that hole:

DOM105
    A sim-layer function calls a first-party function whose return
    value derives — through any number of assignments, returns and
    call hops — from a wall-clock or process-unique source.
DOM106
    Same, for the process-global / unseeded RNG sources.

The engine is a classic two-level summary analysis:

* **intra** (:func:`intra_taint`): per function, a flow-insensitive
  fixpoint over local assignments answers "does the return value
  derive from a direct source call, and/or from which callees'
  return values?"  Argument taint is folded into call results, so
  ``str(time.time())`` stays tainted.
* **inter** (:func:`propagate`): the summaries form a dependency
  graph; propagate source kinds along ``return_deps`` edges to a
  fixpoint.  Functions living in a configured *sanitizer* module
  (``taint-sanitizers``, canonically ``repro.telemetry.wallclock``)
  contribute nothing — that module is the one blessed clock boundary,
  and its contract (readings feed metrics, never sim state) is
  enforced by review, not dataflow.

Known under-approximations, on purpose: parameters are untainted
(taint enters sim code only through calls, which is where the finding
lands anyway), attribute stores are not tracked across objects, and
unresolvable calls are assumed clean.  A determinism linter must not
cry wolf; the runtime digest oracles remain the backstop.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple, Union

from .findings import Finding

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from .callgraph import ProgramIndex, _Scope
    from .config import Config

#: Taint kinds and the rule each maps to.
KIND_WALLCLOCK = "wallclock"
KIND_RNG = "rng"
KIND_RULES = {KIND_WALLCLOCK: "DOM105", KIND_RNG: "DOM106"}

#: Fully-resolved dotted calls that read the wall clock or mint
#: process-unique values (the DOM101 table, post alias resolution).
_WALLCLOCK_SOURCES = {
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "uuid.uuid1", "uuid.uuid4",
}
_DATETIME_ROOTS = {"datetime", "date"}
_DATETIME_METHODS = {"now", "utcnow", "today"}

#: ``random.<fn>`` names on the hidden process-global stream.
_GLOBAL_RANDOM_FNS = {
    "random", "randint", "randrange", "getrandbits", "choice", "choices",
    "sample", "shuffle", "uniform", "triangular", "betavariate",
    "expovariate", "gammavariate", "gauss", "lognormvariate",
    "normalvariate", "vonmisesvariate", "paretovariate", "weibullvariate",
}

#: A taint token: a source kind, or a dependency on a callee's return.
Token = Union[str, Tuple[str, str]]


def source_kind(resolved: str, call: ast.Call) -> Optional[str]:
    """Taint kind of a direct source call, or ``None``."""
    parts = resolved.split(".")
    if resolved in _WALLCLOCK_SOURCES:
        return KIND_WALLCLOCK
    if (len(parts) >= 2 and parts[-1] in _DATETIME_METHODS
            and parts[-2] in _DATETIME_ROOTS):
        return KIND_WALLCLOCK
    if len(parts) == 2 and parts[0] == "random" \
            and parts[1] in _GLOBAL_RANDOM_FNS:
        return KIND_RNG
    if resolved == "random.Random" and not call.args and not call.keywords:
        return KIND_RNG
    if len(parts) >= 3 and parts[0] == "numpy" and parts[1] == "random":
        if parts[2] == "default_rng" and (call.args or call.keywords):
            return None  # explicitly seeded generator
        return KIND_RNG
    return None


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class _IntraTaint:
    """Flow-insensitive local taint environment for one function."""

    def __init__(self, scope: "_Scope", cls: Optional[str]):
        self.scope = scope
        self.cls = cls
        self.env: Dict[str, Set[Token]] = {}
        self.returned: Set[Token] = set()

    # -- expressions ----------------------------------------------------
    def expr(self, node: Optional[ast.AST]) -> Set[Token]:
        if node is None:
            return set()
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, ()))
        if isinstance(node, ast.Attribute):
            return self.expr(node.value)
        if isinstance(node, ast.Await):
            return self.expr(node.value)
        if isinstance(node, ast.BinOp):
            return self.expr(node.left) | self.expr(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.expr(node.operand)
        if isinstance(node, ast.BoolOp):
            out: Set[Token] = set()
            for value in node.values:
                out |= self.expr(value)
            return out
        if isinstance(node, ast.IfExp):
            return self.expr(node.body) | self.expr(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = set()
            for elt in node.elts:
                out |= self.expr(elt)
            return out
        if isinstance(node, ast.Dict):
            out = set()
            for value in node.values:
                out |= self.expr(value)
            return out
        if isinstance(node, ast.Subscript):
            return self.expr(node.value)
        if isinstance(node, ast.Starred):
            return self.expr(node.value)
        if isinstance(node, ast.NamedExpr):
            taints = self.expr(node.value)
            if isinstance(node.target, ast.Name):
                self.env.setdefault(node.target.id, set()).update(taints)
            return taints
        return set()

    def _call(self, node: ast.Call) -> Set[Token]:
        from .callgraph import resolve_call

        out: Set[Token] = set()
        dotted = _dotted(node.func)
        if dotted is not None:
            resolved_source = self.scope.resolve(dotted)
            kind = source_kind(resolved_source, node)
            if kind is not None:
                out.add(kind)
            else:
                callee = resolve_call(dotted, self.scope, self.cls)
                if callee is not None:
                    out.add(("dep", callee))
        # A function of a tainted value is tainted (str(), round(), ...).
        for arg in node.args:
            out |= self.expr(arg)
        for keyword in node.keywords:
            out |= self.expr(keyword.value)
        return out

    # -- statements -----------------------------------------------------
    def statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scopes summarize separately
        if isinstance(stmt, ast.Assign):
            taints = self.expr(stmt.value)
            for target in stmt.targets:
                self._bind(target, taints)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self.expr(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            taints = self.expr(stmt.value)
            if isinstance(stmt.target, ast.Name):
                taints |= self.env.get(stmt.target.id, set())
            self._bind(stmt.target, taints)
        elif isinstance(stmt, ast.Return):
            self.returned |= self.expr(stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind(stmt.target, self.expr(stmt.iter))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._bind(item.optional_vars,
                               self.expr(item.context_expr))
        elif isinstance(stmt, ast.Expr):
            self.expr(stmt.value)  # walrus side effects
        # Compound bodies are walked by the driver below.

    def _bind(self, target: ast.AST, taints: Set[Token]) -> None:
        if isinstance(target, ast.Name):
            if taints:
                self.env.setdefault(target.id, set()).update(taints)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, taints)
        # Attribute/subscript stores are not tracked (see module doc).


def _body_statements(node: ast.AST) -> List[ast.stmt]:
    """All statements of a function, skipping nested scopes' bodies."""
    out: List[ast.stmt] = []
    frontier: List[ast.stmt] = list(getattr(node, "body", []))
    while frontier:
        stmt = frontier.pop(0)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        out.append(stmt)
        for field in ("body", "orelse", "finalbody"):
            frontier.extend(getattr(stmt, field, []) or [])
        for handler in getattr(stmt, "handlers", []) or []:
            frontier.extend(handler.body)
        for case in getattr(stmt, "cases", []) or []:
            frontier.extend(case.body)
    return out


def intra_taint(func: ast.AST, scope: "_Scope",
                cls: Optional[str]) -> Tuple[Set[str], Set[str]]:
    """(direct source kinds, callee deps) flowing into the return.

    Iterates the statement list to a fixpoint so use-before-def order
    and loops don't hide a flow; bounded to a handful of rounds — the
    lattice height is tiny.
    """
    statements = _body_statements(func)
    analysis = _IntraTaint(scope, cls)
    for _ in range(8):
        before = {name: set(tokens)
                  for name, tokens in analysis.env.items()}
        returned_before = set(analysis.returned)
        for stmt in statements:
            analysis.statement(stmt)
        if analysis.env == before and analysis.returned == returned_before:
            break
    direct = {token for token in analysis.returned
              if isinstance(token, str)}
    deps = {token[1] for token in analysis.returned
            if isinstance(token, tuple)}
    return direct, deps


# ----------------------------------------------------------------------
# Interprocedural propagation + the sim-layer check
# ----------------------------------------------------------------------
def propagate(index: "ProgramIndex", config: "Config",
              ) -> Tuple[Dict[str, Set[str]], Dict[str, Dict[str, Optional[str]]]]:
    """Fixpoint of return-taint kinds over the call-dependency graph.

    Returns ``(kinds, provenance)`` where ``provenance[f][kind]`` is
    the callee the kind arrived through (``None`` for a direct source
    read) — enough to render the laundering chain in a finding.
    """
    kinds: Dict[str, Set[str]] = {}
    provenance: Dict[str, Dict[str, Optional[str]]] = {}

    def is_sanitized(qname: str) -> bool:
        module = index.module_of_function(qname)
        return module is not None and config.is_sanitizer(module)

    for qname, facts in index.functions.items():
        if is_sanitized(qname):
            kinds[qname] = set()
            continue
        kinds[qname] = set(facts.direct_return_taint)
        provenance[qname] = {kind: None
                             for kind in facts.direct_return_taint}

    changed = True
    while changed:
        changed = False
        for qname, facts in index.functions.items():
            if is_sanitized(qname):
                continue
            for dep in facts.return_deps:
                resolved = index.resolve_function(dep)
                if resolved is None or is_sanitized(resolved.qname):
                    continue
                for kind in kinds.get(resolved.qname, ()):
                    if kind not in kinds[qname]:
                        kinds[qname].add(kind)
                        provenance.setdefault(qname, {})[kind] = \
                            resolved.qname
                        changed = True
    return kinds, provenance


def _chain(qname: str, kind: str,
           provenance: Dict[str, Dict[str, Optional[str]]],
           limit: int = 6) -> List[str]:
    """The laundering path from ``qname`` down to the direct source."""
    path = [qname]
    current: Optional[str] = qname
    while current is not None and len(path) <= limit:
        nxt = provenance.get(current, {}).get(kind)
        if nxt is None:
            break
        path.append(nxt)
        current = nxt
    return path


_SOURCE_LABEL = {
    KIND_WALLCLOCK: "the wall clock",
    KIND_RNG: "the process-global/unseeded RNG",
}


def check_taint(index: "ProgramIndex", config: "Config") -> List[Finding]:
    """DOM105/DOM106 findings at sim-layer call sites."""
    kinds, provenance = propagate(index, config)
    findings: List[Finding] = []
    for module in sorted(index.modules):
        if not config.in_sim_packages(module):
            continue
        facts = index.modules[module]
        for qname in sorted(facts.functions):
            for site in facts.functions[qname].calls:
                if site.callee is None:
                    continue
                resolved = index.resolve_function(site.callee)
                if resolved is None:
                    continue
                callee_module = index.module_of_function(resolved.qname)
                if callee_module is None or \
                        config.is_sanitizer(callee_module):
                    continue
                for kind in sorted(kinds.get(resolved.qname, ())):
                    chain = _chain(resolved.qname, kind, provenance)
                    sanitizers = ", ".join(config.taint_sanitizers) \
                        or "a sanctioned telemetry accessor"
                    findings.append(Finding(
                        path=facts.path,
                        line=site.lineno,
                        col=site.col,
                        rule=KIND_RULES[kind],
                        message=(
                            f"'{site.raw}()' returns a value derived "
                            f"from {_SOURCE_LABEL[kind]} "
                            f"(via {' -> '.join(chain)}); sim logic "
                            f"must stay a pure function of the seed "
                            f"even across call hops — route the read "
                            f"through {sanitizers} or derive it from "
                            f"sim.now / the seeded RNG"
                        ),
                    ))
    return findings


__all__ = [
    "KIND_RNG", "KIND_RULES", "KIND_WALLCLOCK", "check_taint",
    "intra_taint", "propagate", "source_kind",
]
