"""DOM102 fixture: process-global / unseeded randomness."""

import random


def pick(values):
    return values[int(random.random() * len(values))]


def fresh_rng():
    return random.Random()
