"""Figure 10 bench: DOMINO under the microscope (Fig. 7, all flows).

Paper's shape: initial wired-jitter misalignment (their example:
24 us) heals to 1-2 us; fake packets keep untriggerable links alive;
polling slots interleave with data slots; receivers trigger hidden
senders so both conflicting groups keep alternating.
"""

from repro.experiments import fig10_microscope


def test_fig10_microscope(once):
    result = once(fig10_microscope.run, 200_000.0)
    print()
    print(fig10_microscope.report(result))

    # Startup misalignment is wired-jitter sized, then heals.
    assert result.initial_misalignment_us > 3.0
    assert result.settled_misalignment_us < 3.0
    assert result.healed()
    # Fake entries keep the chains connected; under saturation they
    # carry real packets (point 3's fake keeps AP2->C2 triggerable).
    assert result.fake_entries_scheduled > 0
    assert result.poll_transmissions > 10
    assert result.trigger_detections > 100
    # All four pairs carried traffic (both conflict groups alternate).
    assert result.aggregate_mbps > 14.0
