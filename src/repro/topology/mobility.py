"""Node mobility: move a node and update the ground-truth RSS matrix.

The paper's evaluation assumes a static conflict graph and discusses
(Sec. 5) how a real deployment would refresh it under mobility.  This
module provides the ground-truth side of that story: move a node,
recompute its row/column of the RSS matrix with the propagation
model, and invalidate the medium's reachability cache.  The
*controller* does not see any of this until a measurement campaign
(:mod:`repro.topology.measurement`) tells it.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from .propagation import LogDistanceModel, Position, WallCounter
from .trace import SyntheticTrace


def move_node(trace: SyntheticTrace, node_id: int, new_pos: Position,
              model: Optional[LogDistanceModel] = None,
              tx_power_dbm: float = 15.0,
              wall_counter: Optional[WallCounter] = None,
              seed: int = 0) -> None:
    """Teleport ``node_id`` to ``new_pos`` and refresh its RSS in place.

    The matrix object is mutated (no replacement), so media built from
    ``trace.rss_fn()`` see the change immediately — modulo their
    reachability caches, which the caller must invalidate
    (``medium.invalidate_topology()``).
    """
    if not trace.positions:
        raise ValueError("trace has no positions; cannot move nodes")
    prop = model if model is not None else LogDistanceModel()
    rng = random.Random(seed ^ (node_id * 2_654_435_761))
    trace.positions[node_id] = new_pos
    for other in range(trace.n_nodes):
        if other == node_id:
            continue
        ox, oy = trace.positions[other]
        distance = math.hypot(new_pos[0] - ox, new_pos[1] - oy)
        walls = wall_counter(new_pos, (ox, oy)) if wall_counter else 0
        loss = prop.path_loss_db(distance, walls)
        shadow = rng.gauss(0.0, prop.shadowing_sigma_db)
        base = tx_power_dbm - loss - shadow
        asym = rng.gauss(0.0, prop.asymmetry_sigma_db)
        trace.rss_dbm[node_id][other] = base + asym / 2.0
        trace.rss_dbm[other][node_id] = base - asym / 2.0


def place_near(trace: SyntheticTrace, node_id: int, target_id: int,
               distance_m: float,
               model: Optional[LogDistanceModel] = None,
               tx_power_dbm: float = 15.0, seed: int = 0) -> Position:
    """Move ``node_id`` to ``distance_m`` from ``target_id`` (due east)."""
    tx, ty = trace.positions[target_id]
    new_pos = (tx + distance_m, ty)
    move_node(trace, node_id, new_pos, model=model,
              tx_power_dbm=tx_power_dbm, seed=seed)
    return new_pos
