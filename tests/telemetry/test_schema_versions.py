"""Schema-version negotiation: old traces load, future ones refuse.

The contract the fixtures pin down:

* **v1** (``chain_v1.jsonl``, magic-key-only header) and **v2**
  (``chain.jsonl``, explicit ``schema_version``) traces still load
  read-only on a v3 build — every field added since parses to its
  default (``p`` on ``sig_detect``, the v3 ``id``/``cause``/``via``
  spans), and the analysis layer treats them as span-less;
* traces from a **future** schema are refused up front with one clear
  message, never half-parsed.
"""

import io
import os

import pytest

from repro.telemetry import from_record, jsonl
from repro.telemetry.analysis import causality_report, diagnose
from repro.telemetry.events import SCHEMA_VERSION
from repro.telemetry.recorder import TraceRecorder

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def fixture(name: str) -> str:
    return os.path.join(FIXTURES, name)


class TestOldVersionsLoadReadOnly:
    def test_v1_fixture_parses_with_defaults(self):
        records = jsonl.load_jsonl(fixture("chain_v1.jsonl"))
        assert len(records) == 5
        events = [from_record(r) for r in records]
        sig = next(e for e in events if e.KIND == "sig_detect")
        assert sig.detected is True
        assert sig.p is None            # v2 addition, defaulted
        assert sig.id is None           # v3 addition, defaulted
        assert sig.cause is None
        exec_events = [e for e in events if e.KIND == "slot_exec"]
        assert all(e.via is None for e in exec_events)

    def test_v2_fixture_parses_with_default_spans(self):
        records = jsonl.load_jsonl(fixture("chain.jsonl"))
        assert records, "fixture went missing"
        for event in map(from_record, records):
            assert event.id is None

    def test_v1_trace_diagnoses_without_spans(self):
        records = jsonl.load_jsonl(fixture("chain_v1.jsonl"))
        report = diagnose(records)
        assert report.events == 5
        assert report.causality is None
        spans = causality_report(records)
        assert not spans.has_spans
        assert "no causal spans" in spans.render()

    def test_v3_export_round_trips_spans(self):
        rec = TraceRecorder()
        root = rec.sched_dispatch(0.0, 0, 0, 1, 2)
        child = rec.slot_exec(10.0, 1, 0, 9, False, cause=root,
                              via="initial")
        assert (root, child) == (0, 1)
        stream = io.StringIO()
        jsonl.write_jsonl(stream, rec.records())
        stream.seek(0)
        loaded = jsonl.load_jsonl(stream)
        assert loaded == rec.records()
        assert loaded[1]["cause"] == root and loaded[1]["via"] == "initial"


class TestServiceTraceVersions:
    """v5 added ``revision_phases``; older service traces stay loadable."""

    def test_v5_fixture_round_trips_phases(self):
        records = jsonl.load_jsonl(fixture("service_v5.jsonl"))
        events = [from_record(r) for r in records]
        phases = [e for e in events if e.KIND == "revision_phases"]
        assert len(phases) == 1
        assert phases[0].total_us == 610.5
        assert phases[0].cause == 0     # spans the revision that timed it
        revisions = [e for e in events if e.KIND == "sched_revision"]
        assert [r.version for r in revisions] == [1, 2]

    @pytest.mark.parametrize("name", ["service_v3.jsonl",
                                      "service_v4.jsonl"])
    def test_pre_v5_fixtures_load_with_phase_data_absent(self, name):
        records = jsonl.load_jsonl(fixture(name))
        events = [from_record(r) for r in records]
        assert [e.KIND for e in events] == ["sched_revision"] * 2
        assert not any(e.KIND == "revision_phases" for e in events)
        # The v4-era fields are all present and intact.
        assert events[0].digest == "abcdef012345"
        assert events[1].cause == 0

    def test_pre_v5_service_trace_diagnoses(self):
        records = jsonl.load_jsonl(fixture("service_v4.jsonl"))
        report = diagnose(records)
        assert report.events == 2

    def test_recorder_emits_current_version_header(self):
        rec = TraceRecorder()
        rec.revision_phases(0.0, version=1, epoch=0, membership_us=1.0,
                            conflict_us=2.0, cache_us=3.0, convert_us=4.0,
                            digest_us=5.0, total_us=15.0)
        stream = io.StringIO()
        jsonl.write_jsonl(stream, rec.records())
        stream.seek(0)
        first = stream.readline()
        assert f'"schema_version":{SCHEMA_VERSION}' in first
        assert SCHEMA_VERSION == 5


class TestFutureVersionsRefused:
    def test_future_explicit_version_refused(self):
        stream = io.StringIO(
            '{"__domino_trace__":3,"schema_version":99}\n'
            '{"ev":"x","t":0}\n')
        with pytest.raises(jsonl.TraceFormatError) as err:
            jsonl.load_jsonl(stream)
        assert "newer than this build supports" in str(err.value)
        assert f"v{SCHEMA_VERSION}" in str(err.value)

    def test_future_magic_only_version_refused(self):
        # v1-style header spelling, future number — still refused.
        stream = io.StringIO('{"__domino_trace__":99}\n{"ev":"x","t":0}\n')
        with pytest.raises(jsonl.TraceFormatError) as err:
            jsonl.load_jsonl(stream)
        assert "newer than this build supports" in str(err.value)

    def test_malformed_version_refused(self):
        stream = io.StringIO(
            '{"__domino_trace__":3,"schema_version":"three"}\n')
        with pytest.raises(jsonl.TraceFormatError) as err:
            jsonl.load_jsonl(stream)
        assert "malformed" in str(err.value)

    def test_nothing_yielded_before_refusal(self):
        stream = io.StringIO(
            '{"__domino_trace__":99}\n{"ev":"x","t":0}\n')
        reader = jsonl.read_jsonl(stream)
        with pytest.raises(jsonl.TraceFormatError):
            next(reader)
