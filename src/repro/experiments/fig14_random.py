"""Figure 14: CDF of DOMINO's throughput gain over DCF, random networks.

T(20, 3) topologies (80 nodes) placed uniformly at random in an
800 x 800 m area, RSS from the ns-3-default log-distance model, UDP
traffic, repeated over many seeds.  The paper reports gains between
1.22x and 1.96x with a median of 1.58x over 50 runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..runner import ExperimentPoint, TopologySpec, run_sweep
from ..topology.builder import random_t_topology
from .common import format_table


@dataclass
class Fig14Result:
    gains: List[float] = field(default_factory=list)

    def sorted_gains(self) -> List[float]:
        return sorted(self.gains)

    @property
    def median(self) -> float:
        ordered = self.sorted_gains()
        n = len(ordered)
        if n == 0:
            return 0.0
        mid = n // 2
        if n % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    def cdf(self) -> List[Tuple[float, float]]:
        ordered = self.sorted_gains()
        n = len(ordered)
        return [(g, (i + 1) / n) for i, g in enumerate(ordered)]


def sweep_points(n_runs: int = 50, m: int = 20, n: int = 3,
                 horizon_us: float = 600_000.0,
                 downlink_mbps: float = 10.0, uplink_mbps: float = 10.0,
                 seed0: int = 100) -> List[ExperimentPoint]:
    """The Fig. 14 sweep as runner points: DCF and DOMINO per placement.

    Also the workload of ``benchmarks/test_sweep_speedup.py`` — many
    independent mid-sized points is the sweep engine's target shape.
    """
    return [
        ExperimentPoint(
            scheme=scheme,
            topology=TopologySpec(random_t_topology, (m, n),
                                  {"seed": seed0 + i}),
            label=f"{scheme}:{i}", seed=seed0 + i, horizon_us=horizon_us,
            run_kwargs={"downlink_mbps": downlink_mbps,
                        "uplink_mbps": uplink_mbps})
        for i in range(n_runs) for scheme in ("dcf", "domino")
    ]


def run(n_runs: int = 50, m: int = 20, n: int = 3,
        horizon_us: float = 600_000.0,
        downlink_mbps: float = 10.0, uplink_mbps: float = 10.0,
        seed0: int = 100, workers: int = 0) -> Fig14Result:
    """Gains over ``n_runs`` random placements.

    The paper repeats 50 times with UDP traffic; reduce ``n_runs`` for
    quick benches, or raise ``workers`` to fan the placements out over
    a process pool.  Topology carving occasionally needs a re-draw on
    very sparse placements; ``random_t_topology`` handles that.
    """
    sweep = run_sweep(
        sweep_points(n_runs, m, n, horizon_us, downlink_mbps, uplink_mbps,
                     seed0),
        workers=workers)
    by_label = sweep.by_label()
    result = Fig14Result()
    for i in range(n_runs):
        dcf = by_label[f"dcf:{i}"]
        domino = by_label[f"domino:{i}"]
        if dcf.aggregate_mbps > 0:
            result.gains.append(domino.aggregate_mbps / dcf.aggregate_mbps)
    return result


def report(result: Fig14Result) -> str:
    lines = ["Fig. 14 — CDF of DOMINO/DCF throughput gain, random T(20,3):"]
    rows = [(f"{g:.2f}", f"{p:.2f}") for g, p in result.cdf()]
    lines.append(format_table(["gain", "CDF"], rows))
    ordered = result.sorted_gains()
    if ordered:
        lines.append(f"range: {ordered[0]:.2f}x .. {ordered[-1]:.2f}x "
                     "(paper: 1.22x .. 1.96x)")
        lines.append(f"median: {result.median:.2f}x (paper: 1.58x)")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run(n_runs=10)))


if __name__ == "__main__":  # pragma: no cover
    main()
