"""Matrix-engine bench: cross-backend identity + engine throughput.

The matrix backend exists to lift the serial event loop's throughput
ceiling (``serial_events_per_sec`` in ``BENCH_sweep.json``).  This
bench runs the Fig. 14 workload — one ``random_t_topology(20, 3)``
placement, dcf + domino, CBR 10/10 Mbps — on both engines and asserts
the two promises in order of importance:

* **identity** — traced runs produce byte-identical canonical-trace
  digests per (scheme, seed).  Non-negotiable, on any machine; a
  failure here means a backend bug, not a slow box.
* **speedup** — the matrix engine is faster than the reference engine
  on the same workload (``MIN_SPEEDUP`` floor, set conservatively for
  noisy CI boxes).

The measured ``matrix_events_per_sec`` (untraced, engine-only wall)
lands in ``BENCH_matrix.json`` and joins the ``BENCH_history.jsonl``
trend gate, so a regression of the vectorized medium fails CI even
while the wall-clock seconds stay machine-dependent info.

Honesty note: both engines execute the *same* event stream (that is
what byte-identical traces mean), so the observable per-event work —
MAC callbacks on carrier-sense flips, per-slot countdown timers,
traffic arrivals, the heap itself — is a shared serial floor.  The
matrix engine removes the O(reach) per-edge energy bookkeeping and the
reception-dict scans, worth ~1.5-1.7x on this workload and growing
with density (~2.5x at T(60, 3)); the original 10x target assumed
slot timers could be collapsed, which provably reorders same-instant
commits (see DESIGN.md, "Engine backends").
"""

from __future__ import annotations

import json
import os
import time

from repro.experiments.common import run_scheme
from repro.runner import trace_digest
from repro.topology.builder import random_t_topology

import trend

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(_ROOT, "BENCH_matrix.json")

M, N, SEED = 20, 3, 100               # the fig14 placement
HORIZON_US = 250_000.0
SCHEMES = ("dcf", "domino")
ENGINES = ("event", "matrix")
#: The matrix engine must beat the reference engine by at least this
#: much on the fig14 workload (measured ~1.5-1.7x; floor leaves room
#: for CI noise without ever tolerating "not actually faster").
MIN_SPEEDUP = 1.2


def _run(scheme: str, engine: str, traced: bool):
    """One fig14 run; returns (wall_s, events, digest-or-None)."""
    topology = random_t_topology(M, N, seed=SEED)
    started = time.perf_counter()
    result = run_scheme(
        scheme, topology, horizon_us=HORIZON_US, seed=SEED,
        downlink_mbps=10.0, uplink_mbps=10.0,
        trace=True if traced else None, engine=engine)
    wall = time.perf_counter() - started
    sim = next(iter(result.macs.values())).sim
    digest = (trace_digest(result.trace.records())
              if result.trace is not None else None)
    return wall, sim.events_processed, digest


def test_matrix_identity_and_speedup():
    # Identity first: traced, both engines, digest per (scheme, engine).
    digests = {}
    for scheme in SCHEMES:
        for engine in ENGINES:
            digests[(scheme, engine)] = _run(scheme, engine, traced=True)[2]
    digests_identical = all(
        digests[(scheme, "event")] == digests[(scheme, "matrix")]
        for scheme in SCHEMES)

    # Throughput second: untraced, so the wall is the engine's own.
    walls = {engine: 0.0 for engine in ENGINES}
    total_events = 0
    per_scheme = {}
    for scheme in SCHEMES:
        row = {}
        counts = {}
        for engine in ENGINES:
            wall, events, _ = _run(scheme, engine, traced=False)
            walls[engine] += wall
            row[f"{engine}_s"] = round(wall, 4)
            counts[engine] = events
        # Same workload, same stream: the engines must execute the
        # exact same number of events.
        assert counts["event"] == counts["matrix"], (scheme, counts)
        row["events"] = counts["event"]
        total_events += row["events"]
        per_scheme[scheme] = row

    speedup = walls["event"] / walls["matrix"] if walls["matrix"] else 0.0
    matrix_eps = total_events / walls["matrix"] if walls["matrix"] else 0.0
    event_eps = total_events / walls["event"] if walls["event"] else 0.0

    report = {
        "workload": f"fig14 random T({M},{N}) seed={SEED}, dcf+domino, "
                    f"CBR 10/10 Mbps, horizon={HORIZON_US / 1000.0:.0f} ms",
        "schemes": per_scheme,
        "total_events": total_events,
        "event_s": round(walls["event"], 4),
        "matrix_s": round(walls["matrix"], 4),
        "event_events_per_sec": round(event_eps, 1),
        "matrix_events_per_sec": round(matrix_eps, 1),
        "speedup": round(speedup, 4),
        "speedup_floor": MIN_SPEEDUP,
        "digests_identical": digests_identical,
        "note": "identical event streams (byte-identical traces) put "
                "both engines behind the same observable MAC-callback "
                "floor; the matrix advantage grows with density — see "
                "DESIGN.md, 'Engine backends'.",
    }
    with open(RESULT_PATH, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    trend.append("matrix_speedup", {
        "matrix_events_per_sec": round(matrix_eps, 1),
        "matrix_speedup": round(speedup, 4),
        "total_events": total_events,
    })

    assert digests_identical, (
        "matrix backend diverged from the event engine", digests)
    for scheme in SCHEMES:
        assert per_scheme[scheme]["events"] > 0
    assert speedup >= MIN_SPEEDUP, report
