"""Whole-tree module facts: imports, functions, and the call graph.

The per-node rules (DOM1xx syntactic, DOM2xx direct, DOM3xx, DOM4xx,
DOM5xx) look at one file at a time; the *flow* rules need a view of
the whole ``src`` tree:

* :class:`ModuleFacts` is everything the cross-file phases need from
  one module, extracted in a single AST pass and — crucially — fully
  JSON-serializable, so the content-hash cache can skip re-parsing
  unchanged files entirely.
* :class:`ProgramIndex` is the assembled whole-program view: the
  module import graph (including *lazy* function-level imports, which
  direct layering checks can be talked out of with an inline
  suppression) and the function table with call edges, which the taint
  engine (:mod:`repro.lint.taint`) runs its fixpoint over.

Call resolution is deliberately best-effort static: direct calls to
names imported with ``from m import f``, ``m.f(...)`` through a module
alias, local functions, and ``self.method(...)`` within a class body.
Unresolved calls are treated as taint-free — the engine under-reports
rather than guessing, the same trade every static taint tool makes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .layering import _resolve_relative

#: Serialized-facts schema version; bump on shape changes so stale
#: cache entries self-invalidate.
FACTS_VERSION = 1


@dataclass
class ImportEdge:
    """One first-party import site."""

    target: str               # absolute dotted module/attr path
    lineno: int
    col: int
    lazy: bool                # inside a function body (deferred)
    type_checking: bool       # under ``if TYPE_CHECKING:`` (never runs)

    def to_json(self) -> List[Any]:
        return [self.target, self.lineno, self.col,
                int(self.lazy), int(self.type_checking)]

    @staticmethod
    def from_json(row: Sequence[Any]) -> "ImportEdge":
        return ImportEdge(str(row[0]), int(row[1]), int(row[2]),
                          bool(row[3]), bool(row[4]))


@dataclass
class CallSite:
    """One call expression inside a function body."""

    callee: Optional[str]     # resolved dotted target, or None
    raw: str                  # the source spelling (for messages)
    lineno: int
    col: int

    def to_json(self) -> List[Any]:
        return [self.callee, self.raw, self.lineno, self.col]

    @staticmethod
    def from_json(row: Sequence[Any]) -> "CallSite":
        return CallSite(row[0], str(row[1]), int(row[2]), int(row[3]))


@dataclass
class FunctionFacts:
    """Taint-relevant summary of one function or method."""

    qname: str                          # module-qualified dotted name
    lineno: int
    calls: List[CallSite] = field(default_factory=list)
    #: Taint kinds ("wallclock"/"rng") the return value derives from
    #: *directly* (a source call flowing into a return).
    direct_return_taint: List[str] = field(default_factory=list)
    #: Resolved callees whose return value flows into this function's
    #: return value — the interprocedural propagation edges.
    return_deps: List[str] = field(default_factory=list)

    def to_json(self) -> Dict[str, Any]:
        return {
            "qname": self.qname,
            "lineno": self.lineno,
            "calls": [c.to_json() for c in self.calls],
            "direct": list(self.direct_return_taint),
            "ret_deps": list(self.return_deps),
        }

    @staticmethod
    def from_json(data: Dict[str, Any]) -> "FunctionFacts":
        return FunctionFacts(
            qname=str(data["qname"]),
            lineno=int(data["lineno"]),
            calls=[CallSite.from_json(c) for c in data["calls"]],
            direct_return_taint=[str(k) for k in data["direct"]],
            return_deps=[str(d) for d in data["ret_deps"]],
        )


@dataclass
class ModuleFacts:
    """Everything the cross-file phases need from one module."""

    module: str
    path: str                           # root-relative, for findings
    imports: List[ImportEdge] = field(default_factory=list)
    functions: Dict[str, FunctionFacts] = field(default_factory=dict)
    #: ``lineno -> [RULE, ...]`` inline suppressions, so cross-file
    #: findings can honour them without re-reading the source.
    suppressions: Dict[int, List[str]] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "v": FACTS_VERSION,
            "module": self.module,
            "path": self.path,
            "imports": [e.to_json() for e in self.imports],
            "functions": {q: f.to_json()
                          for q, f in sorted(self.functions.items())},
            "suppressions": {str(line): rules for line, rules
                             in sorted(self.suppressions.items())},
        }

    @staticmethod
    def from_json(data: Dict[str, Any]) -> Optional["ModuleFacts"]:
        if data.get("v") != FACTS_VERSION:
            return None
        return ModuleFacts(
            module=str(data["module"]),
            path=str(data["path"]),
            imports=[ImportEdge.from_json(e) for e in data["imports"]],
            functions={str(q): FunctionFacts.from_json(f)
                       for q, f in data["functions"].items()},
            suppressions={int(line): [str(r) for r in rules]
                          for line, rules in data["suppressions"].items()},
        )


class _Scope:
    """Name bindings visible to call resolution in one module."""

    def __init__(self, module: str, root: str):
        self.module = module
        self.root = root
        #: local alias -> absolute dotted target ("np" -> "numpy",
        #: "perf_counter" -> "time.perf_counter", ...).
        self.aliases: Dict[str, str] = {}
        #: names defined as functions/classes at module level.
        self.module_defs: Dict[str, str] = {}

    def resolve(self, dotted: str) -> str:
        """Expand the leading alias of ``a.b.c`` if one is bound."""
        head, sep, rest = dotted.partition(".")
        if head in self.aliases:
            return self.aliases[head] + (sep + rest if rest else "")
        if head in self.module_defs and not rest:
            return self.module_defs[head]
        return dotted


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_type_checking_test(test: ast.AST) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


class _FactsExtractor(ast.NodeVisitor):
    """One pass over a module: imports, aliases, function summaries."""

    def __init__(self, facts: ModuleFacts, is_package: bool):
        self.facts = facts
        self.is_package = is_package
        self.root = facts.module.split(".")[0]
        self.scope = _Scope(facts.module, self.root)
        self._func_depth = 0
        self._type_checking = 0
        self._class_stack: List[str] = []

    # -- imports --------------------------------------------------------
    def _record_import(self, node: ast.AST, target: str) -> None:
        if target == self.root or target.startswith(self.root + "."):
            self.facts.imports.append(ImportEdge(
                target=target,
                lineno=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                lazy=self._func_depth > 0,
                type_checking=self._type_checking > 0,
            ))

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._record_import(node, alias.name)
            bound = alias.asname or alias.name.split(".")[0]
            self.scope.aliases[bound] = (alias.name if alias.asname
                                         else alias.name.split(".")[0])

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = _resolve_relative(self.facts.module, self.is_package,
                                 node.level, node.module)
        if base is None:
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            target = f"{base}.{alias.name}"
            self._record_import(node, target)
            self.scope.aliases[alias.asname or alias.name] = target

    def visit_If(self, node: ast.If) -> None:
        if _is_type_checking_test(node.test):
            self._type_checking += 1
            for child in node.body:
                self.visit(child)
            self._type_checking -= 1
            for child in node.orelse:
                self.visit(child)
        else:
            self.generic_visit(node)

    # -- definitions ----------------------------------------------------
    def _qualify(self, name: str) -> str:
        if self._class_stack:
            return ".".join([self.facts.module, *self._class_stack, name])
        return f"{self.facts.module}.{name}"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._func_depth == 0 and not self._class_stack:
            self.scope.module_defs[node.name] = self._qualify(node.name)
        self._class_stack.append(node.name)
        for child in node.body:
            self.visit(child)
        self._class_stack.pop()

    def _visit_func(self, node: Any) -> None:
        if self._func_depth == 0 and not self._class_stack:
            self.scope.module_defs[node.name] = self._qualify(node.name)
        qname = self._qualify(node.name)
        if self._func_depth == 0:
            summary = summarize_function(
                node, self.scope, self._class_stack[-1]
                if self._class_stack else None)
            summary.qname = qname
            self.facts.functions[qname] = summary
        self._func_depth += 1
        for child in node.body:
            self.visit(child)
        self._func_depth -= 1

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func


# ----------------------------------------------------------------------
# Function summaries (the intra-procedural half of the taint engine
# lives in taint.py; this records call sites for the call graph)
# ----------------------------------------------------------------------
def resolve_call(dotted: str, scope: _Scope,
                 cls: Optional[str]) -> Optional[str]:
    """Best-effort static target of one call spelling, or ``None``."""
    if dotted.startswith("self.") and cls is not None:
        method = dotted[len("self."):]
        if "." not in method:
            return f"{scope.module}.{cls}.{method}"
        return None
    resolved = scope.resolve(dotted)
    if resolved.split(".")[0] == scope.root:
        return resolved
    return None


def summarize_function(node: ast.AST, scope: _Scope,
                       cls: Optional[str]) -> FunctionFacts:
    """Call sites + intra-procedural taint summary of one function."""
    from .taint import intra_taint  # callgraph <-> taint: one lazy leg

    facts = FunctionFacts(qname="", lineno=getattr(node, "lineno", 1))
    for child in ast.walk(node):
        if not isinstance(child, ast.Call):
            continue
        dotted = _dotted(child.func)
        if dotted is None:
            continue
        facts.calls.append(CallSite(
            callee=resolve_call(dotted, scope, cls), raw=dotted,
            lineno=child.lineno, col=child.col_offset))
    direct, ret_deps = intra_taint(node, scope, cls)
    facts.direct_return_taint = sorted(direct)
    facts.return_deps = sorted(ret_deps)
    return facts


def extract_facts(tree: ast.AST, module: str, path: str,
                  is_package: bool,
                  suppressions: Dict[int, List[str]]) -> ModuleFacts:
    """All cross-file facts for one parsed module."""
    facts = ModuleFacts(module=module, path=path,
                        suppressions=dict(suppressions))
    extractor = _FactsExtractor(facts, is_package)
    # Two passes so calls resolve against *all* module-level bindings,
    # not just the ones lexically above the call site.
    _prebind(tree, extractor)
    for node in ast.iter_child_nodes(tree):
        extractor.visit(node)
    return facts


def _prebind(tree: ast.AST, extractor: _FactsExtractor) -> None:
    """Pre-register module-level defs and imports for resolution."""
    scope = extractor.scope
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                scope.aliases.setdefault(
                    bound, alias.name if alias.asname
                    else alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_relative(extractor.facts.module,
                                     extractor.is_package,
                                     node.level, node.module)
            if base is None:
                continue
            for alias in node.names:
                if alias.name != "*":
                    scope.aliases.setdefault(alias.asname or alias.name,
                                             f"{base}.{alias.name}")
    for node in ast.iter_child_nodes(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            scope.module_defs.setdefault(
                node.name, f"{extractor.facts.module}.{node.name}")


# ----------------------------------------------------------------------
# The assembled whole-program view
# ----------------------------------------------------------------------
class ProgramIndex:
    """Modules, functions and import edges of the whole src tree."""

    def __init__(self, modules: Dict[str, ModuleFacts]):
        self.modules = modules
        self.functions: Dict[str, FunctionFacts] = {}
        for facts in modules.values():
            self.functions.update(facts.functions)

    def module_of_function(self, qname: str) -> Optional[str]:
        """Longest known module prefix of a function qname."""
        parts = qname.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            candidate = ".".join(parts[:cut])
            if candidate in self.modules:
                return candidate
        return None

    def resolve_function(self, target: str) -> Optional[FunctionFacts]:
        """A callee target to its function facts, if defined in-tree.

        Handles the ``package.attr`` spelling produced when a name is
        imported from a package ``__init__`` re-export hub by also
        trying the bare function name against every module that ends
        with the package path — cheap, and re-export hubs are few.
        """
        if target in self.functions:
            return self.functions[target]
        # ``pkg.sub.f`` where ``pkg.sub`` re-exports f from a child.
        module, _, name = target.rpartition(".")
        if module in self.modules:
            for facts in self.modules.values():
                if facts.module.startswith(module + "."):
                    candidate = f"{facts.module}.{name}"
                    if candidate in self.functions:
                        return self.functions[candidate]
        return None

    def package_import_edges(
            self, package_of: Any,
            include_type_checking: bool = False,
    ) -> Dict[Tuple[str, str], Tuple[str, ImportEdge]]:
        """Package-level edges with their first (provenance) site.

        Maps ``(src_pkg, dst_pkg)`` to ``(path, edge)`` — the file and
        import statement that first creates the edge, in deterministic
        module order, so findings always anchor to the same line.
        """
        edges: Dict[Tuple[str, str], Tuple[str, ImportEdge]] = {}
        for module in sorted(self.modules):
            facts = self.modules[module]
            src_pkg = package_of(module)
            for edge in sorted(facts.imports,
                               key=lambda e: (e.lineno, e.col)):
                if edge.type_checking and not include_type_checking:
                    continue
                dst_pkg = package_of(edge.target)
                if dst_pkg == src_pkg:
                    continue
                key = (src_pkg, dst_pkg)
                if key not in edges:
                    edges[key] = (facts.path, edge)
        return edges


def build_index(facts_list: Sequence[ModuleFacts]) -> ProgramIndex:
    return ProgramIndex({facts.module: facts for facts in facts_list})


__all__ = [
    "CallSite", "FunctionFacts", "ImportEdge", "ModuleFacts",
    "ProgramIndex", "build_index", "extract_facts", "summarize_function",
]
