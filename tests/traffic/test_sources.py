"""Tests for UDP traffic sources, using a sink MAC over a clean link."""

import pytest

from repro.mac.dcf import DcfMac
from repro.sim.engine import Simulator
from repro.sim.medium import Medium
from repro.sim.node import Network
from repro.sim.phy import DOT11G
from repro.traffic.udp import CbrSource, SaturatedSource


def two_node_net(seed=1):
    sim = Simulator(seed=seed)
    network = Network()
    network.add_ap(0)
    network.add_client(1, 0)
    medium = Medium(sim, DOT11G, lambda a, b: -50.0)
    network.attach_all(medium)
    macs = {n.node_id: DcfMac(sim, n, medium) for n in network}
    return sim, network, macs


def test_cbr_interval_matches_rate():
    sim, _, macs = two_node_net()
    source = CbrSource(sim, macs[0], 1, rate_mbps=4.096, payload_bytes=512)
    assert source.interval_us == pytest.approx(1000.0)


def test_cbr_generates_expected_count():
    sim, _, macs = two_node_net()
    source = CbrSource(sim, macs[0], 1, rate_mbps=4.096, payload_bytes=512)
    source.start()
    sim.run(until=100_000.0)
    assert source.generated == pytest.approx(100, abs=2)


def test_cbr_zero_rate_is_silent():
    sim, _, macs = two_node_net()
    source = CbrSource(sim, macs[0], 1, rate_mbps=0.0)
    source.start()
    sim.run(until=50_000.0)
    assert source.generated == 0


def test_cbr_delivers_over_dcf():
    sim, _, macs = two_node_net()
    delivered = []
    macs[1].add_delivery_handler(lambda f, t: delivered.append(f))
    CbrSource(sim, macs[0], 1, rate_mbps=2.0).start()
    sim.run(until=200_000.0)
    assert len(delivered) >= 80  # ~97 offered, allow MAC warmup
    seqs = [f.seq for f in delivered]
    assert seqs == sorted(seqs)


def test_saturated_source_keeps_queue_full():
    sim, _, macs = two_node_net()
    SaturatedSource(sim, macs[0], 1).start()
    sim.run(until=100_000.0)
    queue = macs[0].queues.queue_for(1)
    # Queue stays near capacity despite constant draining.
    assert len(queue) >= queue.capacity - 2
    assert macs[0].stats.successes > 100


def test_saturated_source_tracks_generated():
    sim, _, macs = two_node_net()
    source = SaturatedSource(sim, macs[0], 1)
    source.start()
    sim.run(until=50_000.0)
    assert source.generated >= 100  # initial fill plus refills
