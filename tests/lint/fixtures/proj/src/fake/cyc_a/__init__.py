"""One half of the DOM203 cycle fixture: a table-legal edge to cyc_b."""

from ..cyc_b import ping


def pong():
    return ping() + 1
