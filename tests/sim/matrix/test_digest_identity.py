"""Cross-backend determinism: matrix traces == event traces, byte for byte.

The engine contract (:mod:`repro.sim.protocol`) is behavioural: for
any (scheme, topology, traffic, seed) the matrix backend must produce
the *same canonical trace* as the reference event engine.  These tests
run the three paper workloads the acceptance gate names — Fig. 2
(saturated fig1 topology, all four schemes), Fig. 12 (T(10, 2),
UDP and TCP) and Fig. 14 (random T(20, 3)) — on both backends at
CI-sized horizons and compare sha256 digests; on mismatch the
:func:`~repro.telemetry.analysis.diff_traces` report names the first
divergent record/slot.

The full-horizon fig14 comparison runs in
``benchmarks/test_matrix_speedup.py`` (the CI ``matrix-engine`` job);
shorter horizons here keep the tier-1 suite fast while exercising the
same code paths — divergence is per-event, not per-horizon.
"""

import pytest

from repro.experiments.common import run_scheme
from repro.runner import trace_digest
from repro.telemetry.analysis import diff_traces
from repro.topology.builder import (build_t_topology, fig1_topology,
                                    random_t_topology)
from repro.topology.trace import two_building_trace


def _digest_pair(scheme, make_topology, seed, horizon_us, **run_kwargs):
    """(records, digest) per engine for one configuration."""
    out = {}
    for engine in ("event", "matrix"):
        result = run_scheme(scheme, make_topology(),
                            horizon_us=horizon_us, seed=seed,
                            trace=True, engine=engine, **run_kwargs)
        records = result.trace.records()
        out[engine] = (records, trace_digest(records))
    return out


def _assert_identical(pair, label):
    (a_records, a_digest), (b_records, b_digest) = (pair["event"],
                                                    pair["matrix"])
    if a_digest != b_digest:
        diff = diff_traces(a_records, b_records)
        pytest.fail(f"{label}: matrix trace diverged from event trace\n"
                    f"{diff.render()}")
    assert len(a_records) > 0, f"{label}: empty trace proves nothing"


@pytest.mark.parametrize("scheme",
                         ["dcf", "centaur", "domino", "omniscient"])
def test_fig02_saturated_identity(scheme):
    pair = _digest_pair(scheme, fig1_topology, seed=1,
                        horizon_us=120_000.0, saturated=True)
    _assert_identical(pair, f"fig02/{scheme}")


@pytest.mark.parametrize("scheme", ["dcf", "domino"])
@pytest.mark.parametrize("tcp", [False, True], ids=["udp", "tcp"])
def test_fig12_t_topology_identity(scheme, tcp):
    def topo():
        return build_t_topology(two_building_trace(), 10, 2, seed=3)

    pair = _digest_pair(scheme, topo, seed=1, horizon_us=100_000.0,
                        downlink_mbps=10.0, uplink_mbps=2.0, tcp=tcp)
    _assert_identical(pair, f"fig12/{scheme}/{'tcp' if tcp else 'udp'}")


@pytest.mark.parametrize("scheme", ["dcf", "domino"])
def test_fig14_random_identity(scheme):
    def topo():
        return random_t_topology(20, 3, seed=100)

    pair = _digest_pair(scheme, topo, seed=100, horizon_us=60_000.0,
                        downlink_mbps=10.0, uplink_mbps=10.0)
    _assert_identical(pair, f"fig14/{scheme}")


def test_same_process_reruns_are_identical():
    """Two runs in one process must match (Simulator.serial counters).

    Guards the regression where a class-global counter (e.g. TCP ACK
    uids) leaked state across runs, so only the *first* run in a
    process matched a fresh process's trace.
    """
    def topo():
        return build_t_topology(two_building_trace(), 6, 2, seed=3)

    digests = []
    for _ in range(2):
        result = run_scheme("dcf", topo(), horizon_us=60_000.0, seed=1,
                            downlink_mbps=8.0, uplink_mbps=2.0, tcp=True,
                            trace=True, engine="matrix")
        digests.append(trace_digest(result.trace.records()))
    assert digests[0] == digests[1]
