"""Other half of the cycle: a lazy, DOM201-suppressed import back.

The per-edge rule is silenced in place — exactly how the historical
``topology -> sched`` cycle survived — so only the transitive check
(DOM203) can see the loop.
"""


def ping():
    return 1


def boot():
    from ..cyc_a import pong  # dominolint: disable=DOM201
    return pong()
