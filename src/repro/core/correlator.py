"""Sample-level signature detection — the Fig. 9 substrate.

The paper studies, on USRPs, "how many signatures can be added
together and yet received correctly even in presence of interference"
across five setups (1 sender; 2 senders same/different signatures;
3 senders same/different).  Detection stays ~100 % up to 4 combined
signatures and the false-positive ratio stays below 1 %, which is why
DOMINO caps the per-node *outbound* at 4.

We reproduce the experiment at complex baseband:

* each sender transmits the chip-wise **sum** of its signature set
  (that is what "combining" means — signatures are added sample-wise
  and broadcast as one burst);
* each sender has its own channel: amplitude, random carrier phase,
  and a random chip-level delay (senders are trigger-synchronized to
  within a WiFi slot, i.e. tens of chips at 20 Mchip/s);
* the receiver adds AWGN and runs a normalized sliding correlator for
  the target code over the delay window.

Detection rule: the correlation peak must exceed
``threshold_factor * rms(received) * sqrt(window)`` — a constant-
false-alarm-rate style rule that needs no knowledge of the sender's
amplitude.  With Gold codes the interference floor from ``m`` foreign
signatures grows like ``sqrt(m) * t(n)/L`` while the wanted peak stays
at 1, which is exactly why detection degrades past ~4-5 combined
signatures: the experiment *derives* the paper's design constant
rather than assuming it.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .signatures import GoldFamily, gold_family

#: The experiment setups of Fig. 9.
FIG9_SETUPS = ("1", "2same", "2diff", "3same", "3diff")


@dataclass
class ChannelConfig:
    """Impairments applied per sender.

    Triggering senders respond to the *same* preceding burst, so they
    are aligned to within turnaround jitter plus propagation spread —
    a few chips at 20 Mchip/s, not a slot.  Each sender also has its
    own residual carrier-frequency offset (CFO, up to ~20 ppm at
    2.4 GHz), which rotates the relative phase across the burst and is
    what keeps two senders of the *same* signature from cancelling
    persistently.
    """

    snr_db: float = 12.0                 # per-signature SNR at the receiver
    max_delay_chips: int = 4             # ~200 ns trigger alignment spread
    amplitude_jitter_db: float = 2.0     # sender-to-sender power spread
    random_phase: bool = True
    max_cfo_hz: float = 20_000.0         # +/- residual CFO per sender
    chip_rate_hz: float = 20_000_000.0


class SignatureDetector:
    """Sliding-window normalized correlator for one Gold family.

    Detection uses the **peak-to-mean correlation ratio** over the
    delay search window: a present signature produces one sharp
    correlation spike standing far above the cross-correlation floor,
    while an absent signature's correlation profile is flat.  This is
    amplitude-agnostic (no knowledge of the sender's power needed) and
    is how hardware correlator banks discriminate in practice.
    """

    def __init__(self, family: Optional[GoldFamily] = None,
                 peak_to_floor_threshold: float = 3.5,
                 peak_to_secondary_threshold: float = 1.5,
                 search_window_chips: int = 5,
                 floor_window_chips: int = 48):
        self.family = family if family is not None else gold_family(7)
        self.peak_to_floor_threshold = peak_to_floor_threshold
        self.peak_to_secondary_threshold = peak_to_secondary_threshold
        # A DOMINO node knows its slot timing to within a fraction of a
        # microsecond, so the genuine peak can only land in a narrow
        # window of delays; everything past it is floor.
        self.search_window_chips = search_window_chips
        self.floor_window_chips = floor_window_chips

    def correlation_profile(self, samples: np.ndarray,
                            code: np.ndarray) -> np.ndarray:
        """|correlation|/L for delays 0..floor_window_chips."""
        length = len(code)
        max_delay = min(self.floor_window_chips,
                        max(0, len(samples) - length))
        # All delay hypotheses in one matrix-vector product over a
        # stride-tricked view: no per-delay Python loop, no window
        # copies.  The view is (max_delay+1, length) into `samples`.
        windows = np.lib.stride_tricks.sliding_window_view(
            samples[:max_delay + length], length)
        return np.abs(windows @ code) / length

    def correlation_profiles(self, samples: np.ndarray,
                             codes: np.ndarray) -> np.ndarray:
        """Batched :meth:`correlation_profile`: all codes in one GEMM.

        ``codes`` is ``(length, K)`` — one probed code per column;
        returns ``(max_delay + 1, K)`` whose column ``k`` equals
        ``correlation_profile(samples, codes[:, k])``.  A correlator
        bank probes every candidate signature against the *same*
        burst, so the sliding windows are built once and the K
        matrix-vector products collapse into a single matrix-matrix
        product.
        """
        length = codes.shape[0]
        max_delay = min(self.floor_window_chips,
                        max(0, len(samples) - length))
        windows = np.lib.stride_tricks.sliding_window_view(
            samples[:max_delay + length], length)
        return np.abs(windows @ codes) / length

    def correlate(self, samples: np.ndarray, code: np.ndarray) -> Tuple[float, int]:
        """Best |correlation|/L within the search window; (peak, delay)."""
        profile = self.correlation_profile(samples, code)
        search = profile[:self.search_window_chips + 1]
        delay = int(np.argmax(search))
        return float(search[delay]), delay

    def detect(self, samples: np.ndarray, code: np.ndarray) -> bool:
        """Peak (in the timing window) against the off-window floor.

        Two conditions must hold:

        1. the in-window peak exceeds ``peak_to_floor_threshold`` times
           the *mean* off-window floor — the floor contains only
           cross-correlation residue and noise for any probed code, so
           this is amplitude-agnostic;
        2. the peak exceeds ``peak_to_secondary_threshold`` times the
           *maximum* of the floor region — for an absent code the
           in-window maximum is just another draw from the floor
           distribution, so this rejects it.

        Both collapse exactly when interference genuinely swamps the
        peak, which is the degradation Fig. 9 measures past 4 combined
        signatures.
        """
        profile = self.correlation_profile(samples, code)
        split = self.search_window_chips + 1
        search, floor = profile[:split], profile[split:]
        if len(floor) == 0:
            return False
        floor_mean = float(np.mean(floor))
        floor_max = float(np.max(floor))
        if floor_mean <= 0.0:
            return False
        peak = float(np.max(search))
        return (peak > self.peak_to_floor_threshold * floor_mean
                and peak > self.peak_to_secondary_threshold * floor_max)

    def detect_many(self, samples: np.ndarray,
                    codes: np.ndarray) -> np.ndarray:
        """Batched :meth:`detect` over ``(length, K)`` codes.

        Returns a ``(K,)`` bool array; entry ``k`` applies the exact
        per-code detection rule to column ``k``.  One burst, K probes,
        one GEMM — this is what keeps Fig. 9's thousands of
        (target, absent) probes off the per-call Python path.
        """
        profiles = self.correlation_profiles(samples, codes)
        split = self.search_window_chips + 1
        search, floor = profiles[:split], profiles[split:]
        if floor.shape[0] == 0:
            return np.zeros(codes.shape[1], dtype=bool)
        floor_mean = floor.mean(axis=0)
        floor_max = floor.max(axis=0)
        peak = search.max(axis=0)
        verdict: np.ndarray = (
            (floor_mean > 0.0)
            & (peak > self.peak_to_floor_threshold * floor_mean)
            & (peak > self.peak_to_secondary_threshold * floor_max))
        return verdict


def synthesize_burst(family: GoldFamily,
                     sender_sets: Sequence[Sequence[int]],
                     config: ChannelConfig,
                     rng: random.Random) -> np.ndarray:
    """Complex baseband burst from several senders of combined signatures.

    ``sender_sets[i]`` is the list of signature indices sender ``i``
    combines (chip-wise sum).  Each sender gets an amplitude, phase
    and delay; AWGN is added for the configured per-signature SNR
    (amplitude 1.0 reference).
    """
    length = family.length
    # Pad well past the burst so the detector's sliding window sees a
    # genuine off-burst floor to normalize against (a hardware
    # correlator runs continuously and has the same view).
    total_len = length + config.max_delay_chips + 80
    received = np.zeros(total_len, dtype=np.complex128)
    # Distinct integer chip delays per sender: two radios' bursts never
    # align to within a chip (50 ns) in practice, and it is that offset
    # which keeps same-signature copies from cancelling coherently.
    delays = rng.sample(range(config.max_delay_chips + 1),
                        min(len(sender_sets), config.max_delay_chips + 1))
    while len(delays) < len(sender_sets):
        delays.append(rng.randint(0, config.max_delay_chips))
    for sender_idx, signature_indices in enumerate(sender_sets):
        waveform = np.zeros(length, dtype=np.float64)
        for index in signature_indices:
            waveform += family.code(index)
        amp_db = rng.uniform(-config.amplitude_jitter_db,
                             config.amplitude_jitter_db)
        amplitude = 10.0 ** (amp_db / 20.0)
        phase = rng.uniform(0.0, 2.0 * math.pi) if config.random_phase else 0.0
        cfo = rng.uniform(-config.max_cfo_hz, config.max_cfo_hz)
        rotation = np.exp(
            1j * (phase + 2.0 * math.pi * cfo / config.chip_rate_hz
                  * np.arange(length))
        )
        delay = delays[sender_idx]
        received[delay:delay + length] += amplitude * rotation * waveform
    noise_sigma = 10.0 ** (-config.snr_db / 20.0)
    noise = (rng_normal(rng, total_len) + 1j * rng_normal(rng, total_len))
    received += noise_sigma / math.sqrt(2.0) * noise
    return received


def rng_normal(rng: random.Random, n: int) -> np.ndarray:
    """n standard-normal draws from a ``random.Random`` (determinism)."""
    return np.array([rng.gauss(0.0, 1.0) for _ in range(n)])


def _partition_signatures(setup: str, n_combined: int,
                          family: GoldFamily,
                          rng: random.Random) -> Tuple[List[List[int]], int]:
    """Build sender signature sets for a Fig. 9 setup.

    Returns ``(sender_sets, target_index)`` where the target is one of
    sender 0's signatures.  "same" setups give every sender the same
    combined set; "diff" setups split ``n_combined`` distinct
    signatures round-robin across the senders.
    """
    n_senders = int(setup[0]) if setup != "1" else 1
    pool = rng.sample(range(2, family.family_size), n_combined)
    target = pool[0]
    if setup == "1" or setup.endswith("same"):
        sender_sets = [list(pool) for _ in range(n_senders)]
    else:
        sender_sets = [[] for _ in range(n_senders)]
        for i, index in enumerate(pool):
            sender_sets[i % n_senders].append(index)
        # Ensure the target is transmitted by sender 0.
        if target not in sender_sets[0]:
            for s in sender_sets:
                if target in s:
                    s.remove(target)
                    break
            sender_sets[0].append(target)
        sender_sets = [s for s in sender_sets if s]
    return sender_sets, target


@dataclass
class DetectionResult:
    setup: str
    n_combined: int
    runs: int
    detections: int
    false_positives: int

    @property
    def detection_ratio(self) -> float:
        return self.detections / self.runs if self.runs else 0.0

    @property
    def false_positive_ratio(self) -> float:
        return self.false_positives / self.runs if self.runs else 0.0


def run_detection_experiment(setup: str, n_combined: int, runs: int = 1000,
                             seed: int = 0,
                             config: Optional[ChannelConfig] = None,
                             detector: Optional[SignatureDetector] = None,
                             family: Optional[GoldFamily] = None) -> DetectionResult:
    """One point of Fig. 9: detection ratio for a setup and burst size.

    Also measures the false-positive ratio by probing, in every run, a
    signature that was *not* transmitted.
    """
    if setup not in FIG9_SETUPS:
        raise ValueError(f"setup must be one of {FIG9_SETUPS}")
    family = family if family is not None else gold_family(7)
    detector = detector if detector is not None else SignatureDetector(family)
    config = config if config is not None else ChannelConfig()
    rng = random.Random(seed)
    detections = 0
    false_positives = 0
    for _ in range(runs):
        sender_sets, target = _partition_signatures(setup, n_combined,
                                                    family, rng)
        burst = synthesize_burst(family, sender_sets, config, rng)
        transmitted = {i for s in sender_sets for i in s}
        absent_candidates = [i for i in range(2, family.family_size)
                             if i not in transmitted]
        absent = rng.choice(absent_candidates)
        # Both probes of the run — the transmitted target and the
        # absent control — against the same burst in one batched call.
        codes = np.stack([family.code(target), family.code(absent)],
                         axis=1)
        got_target, got_absent = detector.detect_many(burst, codes)
        if got_target:
            detections += 1
        if got_absent:
            false_positives += 1
    return DetectionResult(setup=setup, n_combined=n_combined, runs=runs,
                           detections=detections,
                           false_positives=false_positives)


def detection_curve(setup: str, max_combined: int = 7, runs: int = 1000,
                    seed: int = 0,
                    config: Optional[ChannelConfig] = None) -> List[DetectionResult]:
    """Detection ratio vs number of combined signatures (one Fig. 9 curve)."""
    family = gold_family(7)
    detector = SignatureDetector(family)
    return [
        run_detection_experiment(setup, n, runs=runs, seed=seed + n,
                                 config=config, detector=detector,
                                 family=family)
        for n in range(1, max_combined + 1)
    ]
