"""Discrete-event simulation engine.

The whole reproduction runs on a single event loop with a microsecond
clock.  All protocol timing in the paper (9 us WiFi slots, 6.35 us
signatures, 16 us ROP symbols, ~285 us wired backbone latency) is
expressed directly in microseconds, so a plain float clock is both
convenient and precise enough (sub-nanosecond resolution at the time
scales simulated here).

Determinism: every stochastic component draws from ``Simulator.rng``
(or from an explicitly seeded ``random.Random`` handed to it), so a
run is fully reproducible from its seed.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Callable, Dict, List, Optional, Tuple

from .. import telemetry
from ..telemetry import MetricsRegistry, wallclock


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` so callers can
    cancel them (``event.cancel()``).  Cancelled events stay in the
    heap but are skipped when popped; this is the standard "lazy
    deletion" trick and keeps scheduling O(log n).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_live")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any],
                 args: Tuple[Any, ...],
                 live: Optional[List[int]] = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        # Shared live-event counter owned by the simulator, so
        # ``Simulator.pending`` stays O(1) under lazy deletion.
        self._live = live

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            if self._live is not None:
                self._live[0] -= 1

    def __lt__(self, other: "Event") -> bool:
        # Exact comparison is deliberate here: the heap tiebreak must
        # treat bit-identical timestamps (same float sums in the same
        # order, the determinism contract) as equal so the sequence
        # number decides — an epsilon would *introduce* order
        # sensitivity.  dominolint: disable=DOM104
        if self.time != other.time:  # dominolint: disable=DOM104
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.3f}, fn={getattr(self.fn, '__name__', self.fn)}, {state})"


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulator (e.g. scheduling in the past)."""


class Simulator:
    """Heap-based discrete-event simulator with a microsecond clock.

    This is the *reference* implementation of the engine contract
    (:class:`~repro.sim.protocol.EngineProtocol`): alternative
    backends (:class:`~repro.sim.matrix.MatrixSimulator`) must match
    its observable behaviour byte-for-byte at the trace level.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned :class:`random.Random`.  Components
        that need independent streams should derive their own
        ``random.Random(sim.rng.getrandbits(64))``.

    Example
    -------
    >>> sim = Simulator(seed=1)
    >>> hits = []
    >>> _ = sim.schedule(5.0, hits.append, 'a')
    >>> _ = sim.schedule(2.0, hits.append, 'b')
    >>> sim.run(until=10.0)
    >>> hits
    ['b', 'a']
    """

    def __init__(self, seed: int = 0, profile: bool = False):
        self.now: float = 0.0
        self.rng = random.Random(seed)
        # Heap entries are (time, seq, event) triples, not bare events:
        # tuple comparison runs in C, and with unique integer seqs the
        # event object itself is never compared.  Ordering is identical
        # to Event.__lt__ — exact float time, then scheduling order.
        self._heap: List[Tuple[float, int, Event]] = []
        # Count of non-cancelled events in the heap, shared with every
        # Event so cancel() can keep it current without a scan.
        self._live: List[int] = [0]
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0
        # Telemetry session bound at construction (the no-op recorder
        # when disabled); run() reports event-loop throughput to it.
        self._telemetry = telemetry.current()
        # Opt-in hot-path attribution: per-callback-site call counts
        # and cumulative wall time (see profile_snapshot()).  Off by
        # default — the plain run loop stays timing-free.
        self.profile_enabled = bool(profile)
        self._profile_sites: Dict[str, List[float]] = {}
        # Named per-simulation serial counters (see serial()).
        self._serials: Dict[str, int] = {}

    def serial(self, name: str) -> int:
        """Next value (1, 2, ...) of the per-simulation counter ``name``.

        Components needing process-global-looking identifiers (e.g.
        transport-level ACK uids that must not collide across flows)
        draw them here instead of from module/class globals: a fresh
        simulator always counts from zero again, so running two
        simulations in one process yields identical traces — the
        property every cross-engine digest comparison relies on.
        """
        value = self._serials.get(name, 0) + 1
        self._serials[name] = value
        return value

    # ------------------------------------------------------------------
    # Backend factory hooks (see repro.sim.protocol)
    # ------------------------------------------------------------------
    def make_medium(self, profile: Any, rss_dbm: Callable[[int, int], float],
                    energy_floor_dbm: float = -105.0) -> Any:
        """Build this engine's medium implementation.

        The import is local: ``medium.py`` imports this module, and
        the hook exists precisely so callers (the topology builder)
        never name a concrete medium class.
        """
        from .medium import Medium
        return Medium(self, profile, rss_dbm,
                      energy_floor_dbm=energy_floor_dbm)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any],
                    *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} (now is {self.now})"
            )
        seq = next(self._seq)
        event = Event(time, seq, fn, args, self._live)
        heapq.heappush(self._heap, (time, seq, event))
        self._live[0] += 1
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: float) -> None:
        """Run until the clock reaches ``until`` (inclusive) or no events remain.

        The clock is left at ``until`` even if the heap drains earlier, so
        rate computations over a fixed horizon stay honest.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        tel = self._telemetry
        started = self._events_processed
        # Wall time is read through telemetry's accessor (never `time`
        # directly — DOM101): the readings feed the metrics registry
        # only, so the exported trace stays deterministic per seed.
        wall_start = wallclock.perf_counter() if tel.enabled else 0.0
        try:
            if self.profile_enabled:
                self._drain_profiled(until)
            else:
                self._drain(until)
            self.now = max(self.now, until)
        finally:
            self._running = False
            if tel.enabled:
                # Event-loop throughput goes to the metrics registry
                # only: wall-clock numbers must never enter the trace
                # (the exported trace is deterministic per seed).
                elapsed = wallclock.perf_counter() - wall_start
                processed = self._events_processed - started
                metrics = tel.metrics
                metrics.counter("engine.events").inc(processed)
                metrics.counter("engine.wall_s").inc(elapsed)
                if elapsed > 0.0 and processed:
                    metrics.histogram("engine.events_per_sec").observe(
                        processed / elapsed)
                if self.profile_enabled:
                    self._publish_profile(metrics)

    def _drain(self, until: float) -> None:
        """The plain event loop (no per-callback timing)."""
        heap = self._heap
        heappop = heapq.heappop
        live = self._live
        processed = 0
        try:
            while heap:
                time = heap[0][0]
                if time > until:
                    break
                event = heappop(heap)[2]
                if event.cancelled:
                    continue
                live[0] -= 1
                self.now = time
                processed += 1
                event.fn(*event.args)
        finally:
            self._events_processed += processed

    def _drain_profiled(self, until: float) -> None:
        """The event loop with per-callback-site attribution.

        Same semantics as :meth:`_drain` plus two ``perf_counter``
        reads per event; kept as a separate loop so the default path
        pays nothing for the feature.
        """
        sites = self._profile_sites
        clock = wallclock.perf_counter
        while self._heap:
            time = self._heap[0][0]
            if time > until:
                break
            event = heapq.heappop(self._heap)[2]
            if event.cancelled:
                continue
            self._live[0] -= 1
            self.now = time
            self._events_processed += 1
            fn = event.fn
            t0 = clock()
            fn(*event.args)
            dt = clock() - t0
            key = getattr(fn, "__qualname__", None) or repr(fn)
            entry = sites.get(key)
            if entry is None:
                entry = sites[key] = [0, 0.0]
            entry[0] += 1
            entry[1] += dt

    def _publish_profile(self, metrics: MetricsRegistry) -> None:
        """Surface the per-site totals through the metrics registry.

        Gauges (last-write-wins, set to the running totals) so calling
        ``run()`` several times never double-counts.
        """
        for name, (calls, cum_s) in self._profile_sites.items():
            metrics.gauge(f"engine.site.{name}.calls").set(calls)
            metrics.gauge(f"engine.site.{name}.cum_s").set(cum_s)

    def profile_snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-callback-site totals, most expensive first.

        ``{site: {"calls": n, "cum_s": seconds}}``; empty unless the
        simulator was built with ``profile=True`` and has run.
        """
        ordered = sorted(self._profile_sites.items(),
                         key=lambda item: item[1][1], reverse=True)
        return {name: {"calls": float(calls), "cum_s": cum_s}
                for name, (calls, cum_s) in ordered}

    def step(self) -> bool:
        """Process exactly one pending (non-cancelled) event.

        Returns ``True`` if an event ran, ``False`` if the heap is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)[2]
            if event.cancelled:
                continue
            self._live[0] -= 1
            self.now = event.time
            self._events_processed += 1
            event.fn(*event.args)
            return True
        return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of non-cancelled events still in the heap.  O(1):
        maintained by ``schedule``/``cancel`` instead of scanned."""
        return self._live[0]

    def next_event_time(self) -> Optional[float]:
        """Time of the earliest pending event, or ``None`` if idle.

        Cancelled events sitting at the top of the heap are popped
        here (they already fired their lazy deletion), so repeated
        queries stay amortised O(log n) instead of sorting the heap.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            if not entry[2].cancelled:
                return entry[0]
            heapq.heappop(heap)
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.3f}us, pending={self.pending})"
