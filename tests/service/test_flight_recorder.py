"""Flight-recorder triggers: oracle fault injection and SLO breach."""

import pytest

from repro import telemetry
from repro.service import (ChurnConfig, ControllerService,
                           IncrementalController, NetworkState,
                           ServiceConfig, churn_events)
from repro.service.service import OracleMismatch
from repro.telemetry import jsonl
from repro.telemetry.ops import (FlightRecorder, SloConfig, SloTracker)
from repro.topology.builder import fig7_topology


def make_run(tmp_path, check_every=0, slo=None, updates=150, seed=3):
    topology = fig7_topology()
    events = churn_events(NetworkState.from_topology(topology),
                          ChurnConfig(updates=updates, seed=seed))
    recorder = telemetry.activate()
    engine = IncrementalController(NetworkState.from_topology(topology),
                                   ServiceConfig())
    flight = FlightRecorder(recorder, str(tmp_path))
    service = ControllerService(engine, check_every=check_every,
                                slo=slo, flight=flight)
    return service, engine, flight, events


class TestOracleMismatchDump:
    def test_fault_injection_dumps_the_mismatched_epoch(self, tmp_path):
        slo = SloTracker(SloConfig(p99_target_ms=1e9))
        service, engine, flight, events = make_run(
            tmp_path, check_every=1, slo=slo)
        try:
            # Kill the equality: the from-scratch preview digest can
            # never match a real revision digest.
            engine.preview_digest = lambda: "0" * 64
            with pytest.raises(OracleMismatch) as err:
                service.run_events(events)
        finally:
            telemetry.deactivate()

        # The first checked epoch (epoch 0) mismatched and dumped.
        assert len(flight.dumps) == 1
        records = jsonl.load_jsonl(flight.dumps[0])
        meta = records[0]
        assert meta[FlightRecorder.META_KEY] == 1
        assert meta["reason"] == "oracle_mismatch"
        assert meta["epoch"] == 0
        assert meta["expected_digest"] == "0" * 12

        # Acceptance criterion: the dump's last sched_revision event
        # is the mismatched epoch's own.
        revisions = [r for r in records[1:]
                     if r["ev"] == "sched_revision"]
        assert revisions
        assert revisions[-1]["epoch"] == meta["epoch"]
        assert revisions[-1]["digest"] == meta["actual_digest"]
        assert f"epoch {meta['epoch']}" in str(err.value)

        # The SLO tracker saw the failed verdict; health flipped.
        assert slo.oracle_failures == 1
        assert slo.alerts and slo.alerts[0].rule == "oracle_budget"
        assert service.healthy() is False

    def test_clean_run_dumps_nothing(self, tmp_path):
        service, _engine, flight, events = make_run(tmp_path,
                                                    check_every=4)
        try:
            service.run_events(events)
        finally:
            telemetry.deactivate()
        assert flight.dumps == []
        assert service.healthy() is True


class TestSloBreachDump:
    def test_latency_breach_dumps_once(self, tmp_path):
        # An absurd target (0 ms) that any real epoch exceeds, judged
        # from the very first sample.
        slo = SloTracker(SloConfig(p99_target_ms=0.0, min_samples=1))
        service, _engine, flight, events = make_run(tmp_path, slo=slo)
        try:
            service.run_events(events)
        finally:
            telemetry.deactivate()
        assert slo.breached
        assert len(flight.dumps) == 1           # edge-triggered
        records = jsonl.load_jsonl(flight.dumps[0])
        meta = records[0]
        assert meta["reason"] == "slo_breach"
        assert meta["rule"] == "slo_p99"
        assert meta["threshold"] == 0.0
        # The breaching epoch's revision is in the tail.
        assert any(r["ev"] == "sched_revision"
                   and r["epoch"] == meta["epoch"]
                   for r in records[1:])
