"""Tests for Sec. 5 energy saving: scheduled client sleep."""

import pytest

from repro.core import ControllerConfig, build_domino_network
from repro.core.energy import (EnergyAccountant, involvement_slots,
                               sleep_windows)
from repro.core.relative_schedule import (RelativeBatch, RelativeSlot,
                                          SlotEntry, TriggerDuty)
from repro.metrics.stats import FlowRecorder
from repro.sim.engine import Simulator
from repro.topology.builder import fig1_topology
from repro.topology.links import Link
from repro.traffic.udp import SaturatedSource


def make_batch():
    """Six slots; client 9 (of AP 8) involved in slots 0 and 5 only."""
    slots = []
    for index in range(6):
        entries = [SlotEntry(link=Link(20, 21))]
        if index in (0, 5):
            entries.append(SlotEntry(link=Link(8, 9)))
        slots.append(RelativeSlot(index=index, entries=entries))
    return RelativeBatch(batch_id=0, slots=slots)


class TestPlanning:
    def test_involvement_from_entries(self):
        involved = involvement_slots(make_batch(), client=9, ap_id=8)
        assert involved == {0, 5}

    def test_duty_extends_involvement(self):
        batch = make_batch()
        batch.duties[(9, 2)] = TriggerDuty(node=9, slot=2,
                                           targets=frozenset({20}))
        involved = involvement_slots(batch, client=9, ap_id=8)
        assert {2, 3} <= involved

    def test_trigger_target_involvement(self):
        batch = make_batch()
        batch.duties[(20, 3)] = TriggerDuty(node=20, slot=3,
                                            targets=frozenset({9}))
        involved = involvement_slots(batch, client=9, ap_id=8)
        assert {3, 4} <= involved

    def test_poll_involvement(self):
        batch = make_batch()
        batch.rop_polls[2] = [8]
        involved = involvement_slots(batch, client=9, ap_id=8)
        assert {2, 3} <= involved
        # A different AP's poll does not wake this client.
        assert 2 not in involvement_slots(batch, client=9, ap_id=99)

    def test_sleep_windows_cover_gaps(self):
        windows = sleep_windows(make_batch(), client=9, ap_id=8)
        assert windows == [(1, 4)]

    def test_short_gaps_not_worth_sleeping(self):
        batch = make_batch()
        batch.slots[2].entries.append(SlotEntry(link=Link(8, 9)))
        windows = sleep_windows(batch, client=9, ap_id=8,
                                min_gap_slots=3)
        assert windows == []

    def test_uninvolved_client_sleeps_whole_batch(self):
        windows = sleep_windows(make_batch(), client=77, ap_id=76)
        assert windows == [(0, 5)]


def test_accountant():
    accountant = EnergyAccountant(horizon_us=1000.0)
    accountant.record(9, 250.0)
    accountant.record(9, 250.0)
    assert accountant.sleep_fraction(9) == pytest.approx(0.5)
    assert accountant.sleep_fraction(8) == 0.0


def test_integration_idle_client_sleeps_without_hurting_others():
    """C3 (node 5) has no traffic of its own on Fig. 1 when its flows
    are excluded; declared energy-constrained, it should spend real
    time asleep while the rest of the network is unaffected."""
    horizon = 400_000.0

    def run(constrained):
        topology = fig1_topology()
        # Only two flows — C3's pair idles except for polls and the
        # fake-link insertions involving it.
        topology.flows = [Link(0, 1), Link(3, 2)]
        sim = Simulator(seed=1)
        config = ControllerConfig(
            energy_constrained=frozenset(constrained))
        net = build_domino_network(sim, topology, config=config)
        recorder = FlowRecorder(topology.flows, warmup_us=40_000)
        recorder.attach_all(net.macs.values())
        for flow in topology.flows:
            SaturatedSource(sim, net.macs[flow.src], flow.dst).start()
        net.controller.start()
        sim.run(until=horizon)
        return net, recorder

    baseline_net, baseline_rec = run(constrained=())
    sleepy_net, sleepy_rec = run(constrained=(5,))

    slept = sleepy_net.macs[5].stats.sleep_us
    assert slept > 0.05 * horizon          # real sleep happened
    assert baseline_net.macs[5].stats.sleep_us == 0.0
    # Network throughput is not harmed by C3 sleeping.
    assert sleepy_rec.aggregate_throughput_mbps(horizon) > \
        0.95 * baseline_rec.aggregate_throughput_mbps(horizon)
