"""DOM4xx — the dependency-floor checker.

The sim packages are the code every experiment, sweep and CI job must
be able to import; a third-party import that ``pyproject.toml`` does
not declare works on the author's machine and breaks on the next clean
install.  DOM401 flags any absolute import in a sim package whose
top-level module is neither stdlib, first-party, nor covered by
``[project] dependencies``.

Two escapes are deliberate:

* ``if TYPE_CHECKING:`` imports never execute, so they impose no
  runtime dependency;
* imports inside a ``try`` whose handler catches ``ImportError`` /
  ``ModuleNotFoundError`` are the repo's sanctioned optional-dependency
  gate ("stub or gate missing deps") and stay legal.
"""

from __future__ import annotations

import ast
import sys
from typing import List

from .config import Config
from .findings import Finding

#: Module names the running interpreter ships (3.10+).
_STDLIB = frozenset(sys.stdlib_module_names)


def _is_type_checking_test(test: ast.AST) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _catches_import_error(node: ast.Try) -> bool:
    for handler in node.handlers:
        types = handler.type
        if types is None:
            return True               # bare except swallows ImportError
        names = types.elts if isinstance(types, ast.Tuple) else [types]
        for name in names:
            label = (name.id if isinstance(name, ast.Name)
                     else name.attr if isinstance(name, ast.Attribute)
                     else None)
            if label in ("ImportError", "ModuleNotFoundError"):
                return True
    return False


class _DepsVisitor(ast.NodeVisitor):
    def __init__(self, config: Config, path: str, module: str):
        self.config = config
        self.path = path
        self.root = module.split(".")[0]
        self.findings: List[Finding] = []
        self._exempt_depth = 0

    def visit_If(self, node: ast.If) -> None:
        if _is_type_checking_test(node.test):
            self._exempt_depth += 1
            for child in node.body:
                self.visit(child)
            self._exempt_depth -= 1
            for child in node.orelse:
                self.visit(child)
        else:
            self.generic_visit(node)

    def visit_Try(self, node: ast.Try) -> None:
        if _catches_import_error(node):
            self._exempt_depth += 1
            for child in node.body:
                self.visit(child)
            self._exempt_depth -= 1
            for group in (node.handlers, node.orelse, node.finalbody):
                for child in group:
                    self.visit(child)
        else:
            self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check(node, alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level or node.module is None:
            return                    # relative: first-party by nature
        self._check(node, node.module)

    def _check(self, node: ast.AST, target: str) -> None:
        if self._exempt_depth > 0:
            return
        top = target.split(".")[0]
        if top == self.root or top in _STDLIB:
            return
        if self.config.dep_declared(top):
            return
        self.findings.append(Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule="DOM401",
            message=(
                f"undeclared third-party import: {top} is not in "
                f"[project] dependencies (declared: "
                f"{', '.join(sorted(self.config.declared_deps)) or 'none'}); "
                f"declare it in pyproject.toml or gate the import with "
                f"try/except ImportError"
            ),
        ))


def check_dependencies(tree: ast.AST, path: str, module: str,
                       config: Config) -> List[Finding]:
    """All DOM4xx findings for one sim-package module."""
    visitor = _DepsVisitor(config, path, module)
    visitor.visit(tree)
    return visitor.findings
