"""Integration test: an AP with more than 24 clients polls in sets.

Sec. 3.5: "In case the number of clients is more than 24, we could
divide the clients into different sets ... and then the AP could poll
once for each set."  The AP must round-robin the sets, each client
must answer only its own set's polls, and every client's queue length
must still reach the controller.
"""

import numpy as np

from repro.core import ControllerConfig, build_domino_network
from repro.sim.engine import Simulator
from repro.sim.node import Network
from repro.topology.builder import Topology
from repro.topology.links import Link
from repro.topology.trace import SyntheticTrace
from repro.traffic.udp import CbrSource

N_CLIENTS = 30


def big_cell_topology():
    """One AP (0) with 30 clients (1..30), all in clean range."""
    n = N_CLIENTS + 1
    matrix = np.full((n, n), -80.0)
    np.fill_diagonal(matrix, 15.0)
    for client in range(1, n):
        matrix[0, client] = matrix[client, 0] = -55.0 - client * 0.1
    trace = SyntheticTrace(rss_dbm=matrix)
    network = Network()
    network.add_ap(0)
    flows = []
    for client in range(1, n):
        network.add_client(client, 0)
        flows.append(Link(client, 0))  # uplink-only traffic
    return Topology(network=network, trace=trace, flows=flows,
                    name="big-cell")


def test_poll_sets_cover_all_clients():
    topology = big_cell_topology()
    sim = Simulator(seed=1)
    net = build_domino_network(sim, topology)
    ap_mac = net.macs[0]
    assert ap_mac.n_poll_sets == 2  # 30 clients over 24 subchannels
    # Every client has a subchannel below 24 and a valid set index.
    sets = {}
    for client in range(1, N_CLIENTS + 1):
        mac = net.macs[client]
        assert 0 <= mac.my_subchannel < 24
        sets.setdefault(mac.my_poll_set, []).append(client)
    assert set(sets) == {0, 1}
    # Within one poll set, subchannels never collide.
    for members in sets.values():
        subchannels = [net.macs[c].my_subchannel for c in members]
        assert len(subchannels) == len(set(subchannels))


def test_all_clients_eventually_reported():
    topology = big_cell_topology()
    sim = Simulator(seed=1)
    net = build_domino_network(
        sim, topology, config=ControllerConfig(batch_slots=6, demand_cap=6))
    for flow in topology.flows:
        CbrSource(sim, net.macs[flow.src], flow.dst, 0.3).start()
    net.controller.start()
    sim.run(until=500_000.0)
    ap_mac = net.macs[0]
    assert ap_mac.stats.polls_sent > 10
    # Both sets answered: reports decoded from (nearly) every client.
    known = net.controller.known_queues
    learned = sum(1 for client in range(1, N_CLIENTS + 1)
                  if known.get(Link(client, 0), 0.0) > 0.0
                  or net.macs[client].stats.reports_sent > 0)
    assert learned >= N_CLIENTS - 2
    # The two poll sets alternate, so per-set report counts are close.
    set0 = sum(net.macs[c].stats.reports_sent
               for c in range(1, N_CLIENTS + 1)
               if net.macs[c].my_poll_set == 0)
    set1 = sum(net.macs[c].stats.reports_sent
               for c in range(1, N_CLIENTS + 1)
               if net.macs[c].my_poll_set == 1)
    assert set0 > 0 and set1 > 0