"""Tests for the synthetic testbed trace."""

import numpy as np
import pytest

from repro.topology.trace import (SyntheticTrace, manual_trace,
                                  two_building_trace)


@pytest.fixture(scope="module")
def trace():
    return two_building_trace()


def test_default_trace_shape(trace):
    assert trace.n_nodes == 40
    assert trace.rss_dbm.shape == (40, 40)
    assert len(trace.positions) == 40


def test_trace_deterministic():
    a = two_building_trace(seed=7)
    b = two_building_trace(seed=7)
    assert np.array_equal(a.rss_dbm, b.rss_dbm)


def test_every_node_has_association_candidates(trace):
    """T(m,n) needs APs with communication-range neighbours."""
    degrees = [len(trace.comm_neighbors(n)) for n in range(trace.n_nodes)]
    assert max(degrees) >= 5
    assert sum(1 for d in degrees if d >= 2) >= 30


def test_degree_order_is_decreasing_and_deterministic(trace):
    order = trace.degree_order()
    degrees = [len(trace.comm_neighbors(n)) for n in order]
    assert degrees == sorted(degrees, reverse=True)
    assert order == trace.degree_order()


def test_can_communicate_requires_both_directions():
    rss = np.full((2, 2), -200.0)
    rss[0, 1] = -50.0
    rss[1, 0] = -90.0  # asymmetric: only one direction strong
    trace = SyntheticTrace(rss_dbm=rss)
    assert not trace.can_communicate(0, 1)


def test_rss_difference_fraction_is_small(trace):
    """Sec. 3.1 reports 0.54 % of receiver-side pairs above 38 dB; the
    synthetic trace must stay in the same low-percent regime so 3
    guard subcarriers suffice for (almost) all pairs."""
    fraction = trace.rss_difference_fraction(38.0)
    assert fraction < 0.03
    # And the statistic is monotone in the threshold.
    assert trace.rss_difference_fraction(20.0) >= fraction


def test_manual_trace_symmetric_default():
    trace = manual_trace(3, {(0, 1): -50.0, (1, 2): -70.0})
    assert trace.rss(0, 1) == -50.0
    assert trace.rss(1, 0) == -50.0
    assert trace.rss(2, 1) == -70.0
    assert trace.rss(0, 2) == -120.0  # default


def test_manual_trace_explicit_asymmetry():
    trace = manual_trace(2, {(0, 1): -50.0, (1, 0): -80.0})
    assert trace.rss(0, 1) == -50.0
    assert trace.rss(1, 0) == -80.0


def test_rss_fn_matches_matrix(trace):
    rss = trace.rss_fn()
    assert rss(3, 17) == trace.rss(3, 17)
