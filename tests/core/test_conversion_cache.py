"""Conversion cache: replay equality, keys, invalidation (ISSUE 3).

The load-bearing property: a cache *hit* must return a batch equal to
what a fresh conversion would have produced — including the slot/batch
renumbering and the ``rop_after`` side effect on the live connector
slot.  Every test mirrors a cached converter against an uncached one
fed the identical call sequence and compares full dataclass equality.
"""

from repro.core.conversion_cache import (ConversionCache, clone_batch,
                                         conversion_topology_key)
from repro.core.converter import ConverterConfig, ScheduleConverter
from repro.sched.strict_schedule import StrictSchedule
from repro.topology.builder import fig7_topology
from repro.topology.conflict_graph import build_conflict_graph
from repro.topology.links import Link


def make_converter(topology, cache=None):
    imap = topology.interference_map()
    universe = list(topology.flows)
    for link in topology.all_association_links():
        if link not in universe:
            universe.append(link)
    graph = build_conflict_graph(imap, universe)
    return ScheduleConverter(imap, graph, fake_candidates=universe,
                             cache=cache)


def strict_a():
    strict = StrictSchedule()
    strict.append([Link(0, 1), Link(6, 7)])
    strict.append([Link(2, 3), Link(4, 5)])
    return strict


def strict_b():
    strict = StrictSchedule()
    strict.append([Link(2, 3), Link(4, 5)])
    strict.append([Link(0, 1), Link(6, 7)])
    strict.append([Link(2, 3), Link(4, 5)])
    return strict


def paired_converters():
    topology = fig7_topology()
    cached = make_converter(topology, cache=ConversionCache("topo"))
    fresh = make_converter(topology)
    return cached, fresh


class TestReplayEquality:
    def test_hit_equals_fresh_conversion(self):
        cached, fresh = paired_converters()
        for _ in range(4):
            assert cached.convert(strict_a()) == fresh.convert(strict_a())
        # Call 1 misses (no connector yet), call 2 misses (the key now
        # includes the carried-over connector entries); calls 3+ replay.
        assert cached.cache.hits == 2
        assert cached.cache.misses == 2

    def test_hits_equal_fresh_after_backlog_changes(self):
        """Alternating strict batches (a changing backlog) must replay
        correctly once the pattern repeats — connector entries are part
        of the key, so the first A-after-B is a fresh conversion."""
        cached, fresh = paired_converters()
        schedule = [strict_a, strict_b, strict_a, strict_b, strict_a,
                    strict_b]
        for build in schedule:
            assert cached.convert(build()) == fresh.convert(build())
        assert cached.cache.hits > 0
        assert cached.cache.hits + cached.cache.misses == len(schedule)

    def test_replay_renumbers_slots_and_batches(self):
        cached, _ = paired_converters()
        cached.convert(strict_a())
        second = cached.convert(strict_a())
        third = cached.convert(strict_a())      # replayed
        assert cached.cache.hits == 1
        assert third.batch_id == second.batch_id + 1
        offset = len(second.slots)
        assert [s.index for s in third.slots] == [
            s.index + offset for s in second.slots]

    def test_replay_reproduces_connector_rop_side_effect(self):
        """An ROP slot right after the connector appends poll APs to
        the *previous* batch's last slot; a replayed conversion must
        mutate the live connector the same way."""
        cached, fresh = paired_converters()
        rop_aps = [0]
        ap_links = {0: [Link(0, 1)]}
        for _ in range(3):
            a = cached.convert(strict_a(), rop_aps=rop_aps,
                               ap_links=ap_links)
            b = fresh.convert(strict_a(), rop_aps=rop_aps,
                              ap_links=ap_links)
            assert a == b

    def test_replayed_batch_is_not_the_stored_template(self):
        """Callers mutate returned batches (duty synthesis); the cache
        must hand out fresh containers every time."""
        cached, _ = paired_converters()
        cached.convert(strict_a())
        second = cached.convert(strict_a())
        third_expected = clone_batch(second, delta=len(second.slots),
                                     batch_id=second.batch_id + 1)
        second.slots[0].entries.clear()
        second.duties.clear()
        third = cached.convert(strict_a())
        assert third == third_expected


class TestKeysAndInvalidation:
    def test_rekey_invalidates(self):
        cached, _ = paired_converters()
        cached.convert(strict_a())
        cached.cache.set_topology("remeasured")
        cached.convert(strict_a())
        assert cached.cache.hits == 0
        assert cached.cache.misses == 2

    def test_key_distinguishes_strict_and_rop_inputs(self):
        cache = ConversionCache("topo")
        base = cache.key(None, strict_a(), (), None)
        assert cache.key(None, strict_b(), (), None) != base
        assert cache.key(None, strict_a(), (0,), None) != base
        assert cache.key(None, strict_a(), (),
                         {0: [Link(0, 1)]}) != base
        assert cache.key(None, strict_a(), (), None) == base

    def test_topology_key_tracks_control_plane(self):
        topology = fig7_topology()
        imap = topology.interference_map()
        links = list(topology.flows)
        config = ConverterConfig()
        key = conversion_topology_key(imap.rss_dbm, links, config)
        assert key == conversion_topology_key(imap.rss_dbm, links, config)
        assert key != conversion_topology_key(imap.rss_dbm, links[:-1],
                                              config)
        assert key != conversion_topology_key(
            imap.rss_dbm, links, ConverterConfig(insert_fakes=False))

    def test_fifo_bound(self):
        cache = ConversionCache("topo", max_entries=2)
        converter = make_converter(fig7_topology(), cache=cache)
        converter.convert(strict_a())
        converter.convert(strict_b())
        converter.convert(strict_a())
        assert len(cache) <= 2


class TestCloneBatch:
    def test_zero_delta_clone_is_equal_but_independent(self):
        converter = make_converter(fig7_topology())
        batch = converter.convert(strict_a())
        clone = clone_batch(batch)
        assert clone == batch
        clone.slots[0].entries.clear()
        clone.duties.clear()
        assert batch.slots[0].entries
        assert batch.duties

    def test_shifted_clone_moves_every_slot_reference(self):
        converter = make_converter(fig7_topology())
        batch = converter.convert(strict_a())
        delta = 5
        shifted = clone_batch(batch, delta=delta, batch_id=99)
        assert shifted.batch_id == 99
        assert [s.index for s in shifted.slots] == [
            s.index + delta for s in batch.slots]
        assert set(shifted.duties) == {
            (node, slot + delta) for node, slot in batch.duties}
        for (node, slot), duty in shifted.duties.items():
            assert duty.slot == slot
            assert duty.node == node
        assert set(shifted.inbound) == {
            (slot + delta, link) for slot, link in batch.inbound}
        assert set(shifted.rop_polls) == {
            slot + delta for slot in batch.rop_polls}
        assert shifted.untriggerable == [
            (slot + delta, link) for slot, link in batch.untriggerable]


class TestLinkInvalidation:
    """ISSUE 6 satellite: per-link eviction must be surgical.

    Invalidating link *i* evicts exactly the entries that involve it —
    entries over disjoint chains keep their hits.  ``insert_fakes`` /
    ``insert_rop`` are off so each entry's footprint is exactly its
    strict chain (fakes would pull the whole universe into every
    template and make "disjoint" impossible on one topology).
    """

    @staticmethod
    def _bare_converter(cache):
        topology = fig7_topology()
        imap = topology.interference_map()
        universe = list(topology.flows)
        for link in topology.all_association_links():
            if link not in universe:
                universe.append(link)
        graph = build_conflict_graph(imap, universe)
        config = ConverterConfig(insert_fakes=False, insert_rop=False)
        return ScheduleConverter(imap, graph, fake_candidates=universe,
                                 config=config, cache=cache)

    @staticmethod
    def _chain_a():
        strict = StrictSchedule()
        strict.append([Link(0, 1)])
        strict.append([Link(2, 3)])
        return strict

    @staticmethod
    def _chain_b():
        strict = StrictSchedule()
        strict.append([Link(4, 5)])
        strict.append([Link(6, 7)])
        return strict

    def test_invalidating_link_spares_disjoint_chains(self):
        cache = ConversionCache("topo")
        converter = self._bare_converter(cache)
        converter.convert(self._chain_a())
        converter.reset_connector()
        converter.convert(self._chain_b())
        converter.reset_connector()
        assert len(cache) == 2

        evicted = cache.invalidate_link(Link(0, 1))
        assert evicted == 1
        assert len(cache) == 1

        # The disjoint chain still replays from cache...
        converter.convert(self._chain_b())
        converter.reset_connector()
        assert cache.hits == 1
        # ...while the invalidated one reconverts.
        converter.convert(self._chain_a())
        converter.reset_connector()
        assert cache.misses == 3

    def test_invalidation_covers_template_fakes(self):
        """A link absent from the key but accepted into the template
        as a fake must still evict the entry — a replay would re-emit
        it."""
        cache = ConversionCache("topo")
        converter = make_converter(fig7_topology(), cache=cache)
        batch = converter.convert(strict_a())
        fake_links = {e.link for slot in batch.slots
                      for e in slot.entries if e.fake}
        key_only = {Link(l.src, l.dst) for slot in strict_a()
                    for l in slot}
        pure_fakes = fake_links - key_only
        assert pure_fakes, "fig7 strict_a leaves room for fakes"
        assert cache.invalidate_link(next(iter(sorted(pure_fakes)))) == 1
        assert len(cache) == 0

    def test_invalidate_unknown_link_is_noop(self):
        cache = ConversionCache("topo")
        converter = self._bare_converter(cache)
        converter.convert(self._chain_a())
        assert cache.invalidate_link(Link(6, 7)) == 0
        assert len(cache) == 1


class TestRejectAttribution:
    """Revalidation rejections name the soundness rule that fired."""

    def test_counts_start_zeroed(self):
        cache = ConversionCache("topo")
        assert cache.reject_counts == {
            "rule1": 0, "rule2": 0, "rule3": 0, "rule4": 0}

    def test_count_reject_accumulates(self):
        cache = ConversionCache("topo")
        cache.count_reject("rule1")
        cache.count_reject("rule1")
        cache.count_reject("rule4")
        assert cache.reject_counts["rule1"] == 2
        assert cache.reject_counts["rule4"] == 1
        assert cache.reject_counts["rule2"] == 0

    def test_dirty_semantic_link_attributes_rule1(self):
        cache = ConversionCache("topo")
        converter = make_converter(fig7_topology(), cache=cache)
        converter.convert(strict_a())
        dirty = next(Link(l.src, l.dst) for slot in strict_a()
                     for l in slot)
        kept, evicted = converter.revalidate_cache(
            "topo2", [dirty], [dirty.src])
        assert evicted == 1 and kept == 0
        assert cache.reject_counts["rule1"] == 1
        assert cache.reject_counts["rule3"] == 0

    def test_clean_migration_rejects_nothing(self):
        cache = ConversionCache("topo")
        converter = make_converter(fig7_topology(), cache=cache)
        converter.convert(strict_a())
        kept, evicted = converter.revalidate_cache("topo2", [], [])
        assert kept == 1 and evicted == 0
        assert sum(cache.reject_counts.values()) == 0
