"""Unit tests for the propagation models."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.topology.propagation import (NS3_DEFAULT, LogDistanceModel,
                                        matrix_rss_fn)


def test_path_loss_increases_with_distance():
    model = LogDistanceModel(shadowing_sigma_db=0.0)
    losses = [model.path_loss_db(d) for d in (1, 5, 10, 50, 100)]
    assert losses == sorted(losses)
    assert losses[0] == pytest.approx(model.pl0_db)


def test_walls_add_loss():
    model = LogDistanceModel()
    assert model.path_loss_db(10.0, walls=3) == pytest.approx(
        model.path_loss_db(10.0, walls=0) + 3 * model.wall_loss_db)


def test_min_distance_clamps():
    model = LogDistanceModel()
    assert model.path_loss_db(0.0) == model.path_loss_db(model.min_distance_m)


def test_rss_matrix_deterministic_per_seed():
    model = LogDistanceModel()
    positions = [(0.0, 0.0), (10.0, 0.0), (0.0, 20.0)]
    a = model.rss_matrix(positions, 15.0, seed=5)
    b = model.rss_matrix(positions, 15.0, seed=5)
    c = model.rss_matrix(positions, 15.0, seed=6)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_rss_matrix_nearly_reciprocal():
    model = LogDistanceModel(asymmetry_sigma_db=1.0)
    positions = [(0.0, 0.0), (15.0, 0.0), (30.0, 10.0), (5.0, 25.0)]
    matrix = model.rss_matrix(positions, 15.0, seed=2)
    for i in range(4):
        for j in range(4):
            if i != j:
                assert abs(matrix[i, j] - matrix[j, i]) < 4.0


def test_ns3_default_has_no_randomness():
    positions = [(0.0, 0.0), (100.0, 0.0)]
    a = NS3_DEFAULT.rss_matrix(positions, 15.0, seed=1)
    b = NS3_DEFAULT.rss_matrix(positions, 15.0, seed=99)
    assert np.array_equal(a, b)


def test_matrix_rss_fn_adapts_lookup():
    matrix = np.array([[15.0, -60.0], [-62.0, 15.0]])
    rss = matrix_rss_fn(matrix)
    assert rss(0, 1) == -60.0
    assert rss(1, 0) == -62.0


@given(st.floats(min_value=1.0, max_value=500.0),
       st.floats(min_value=1.0, max_value=500.0))
def test_property_farther_is_weaker(d1, d2):
    model = LogDistanceModel(shadowing_sigma_db=0.0)
    lo, hi = min(d1, d2), max(d1, d2)
    assert model.path_loss_db(lo) <= model.path_loss_db(hi)
