"""Slot-level transmission timeline (Fig. 10 / Fig. 11 instrumentation).

Records every DOMINO transmission with its global slot index so the
two timing results can be derived:

* **misalignment per slot** (Fig. 11): the spread of start times of
  the transmissions sharing a slot — the paper shows initial wired-
  jitter misalignment of 10-20 us shrinking to 1-2 us within 4 slots;
* **the microscope view** (Fig. 10): an ASCII rendering of which link
  was active in which slot, which transmissions were fake, and where
  triggers fired.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..topology.links import Link

#: Optional carrier-sense test restricting misalignment to node pairs
#: that actually share a collision domain.
AudibleFn = Callable[[int, int], bool]


@dataclass
class SlotEvent:
    slot: int
    link: Link
    start_us: float
    fake: bool = False
    kind: str = "data"          # data | fake | poll | trigger
    note: str = ""


class TimelineRecorder:
    """Collects slot events; derives misalignment and renders timelines."""

    def __init__(self) -> None:
        self.events: List[SlotEvent] = []

    def record(self, slot: int, link: Link, start_us: float,
               fake: bool = False, kind: str = "data", note: str = "") -> None:
        self.events.append(SlotEvent(slot, link, start_us, fake, kind, note))

    # ------------------------------------------------------------------
    # Fig. 11: misalignment
    # ------------------------------------------------------------------
    def starts_by_slot(self, kind: str = "data") -> Dict[int, List[float]]:
        by_slot: Dict[int, List[float]] = {}
        for event in self.events:
            if kind in (event.kind, "any"):
                by_slot.setdefault(event.slot, []).append(event.start_us)
        return by_slot

    def misalignment_by_slot(
            self, audible: Optional[AudibleFn] = None) -> Dict[int, float]:
        """Max spread (us) of transmission starts within each slot.

        Fake transmissions count: they occupy airtime and pass timing
        along the chain just like real ones.

        ``audible(src_a, src_b) -> bool`` optionally restricts the
        spread to pairs of senders that can carrier-sense each other.
        Chains in disjoint collision domains (e.g. different building
        wings) can hold a constant offset without ever interacting;
        misalignment is only physically meaningful where transmissions
        share a medium, and that is also what the paper's converged
        1-2 us refers to.
        """
        by_slot: Dict[int, List[Tuple[int, float]]] = {}
        for event in self.events:
            if event.kind in ("data", "fake"):
                by_slot.setdefault(event.slot, []).append(
                    (event.link.src, event.start_us))
        out: Dict[int, float] = {}
        for slot, members in by_slot.items():
            if len(members) < 2:
                out[slot] = 0.0
                continue
            if audible is None:
                starts = [t for _, t in members]
                out[slot] = max(starts) - min(starts)
                continue
            worst = 0.0
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    (src_a, ta), (src_b, tb) = members[i], members[j]
                    if audible(src_a, src_b):
                        worst = max(worst, abs(ta - tb))
            out[slot] = worst
        return out

    def misalignment_series(self, n_slots: int,
                            audible: Optional[AudibleFn] = None) -> List[float]:
        """Misalignment for slots 0..n_slots-1 (0 where undefined)."""
        table = self.misalignment_by_slot(audible=audible)
        return [table.get(i, 0.0) for i in range(n_slots)]

    def convergence_slot(self, tolerance_us: float = 2.0) -> Optional[int]:
        """First slot from which misalignment stays within tolerance."""
        table = self.misalignment_by_slot()
        if not table:
            return None
        slots = sorted(table)
        for start in slots:
            if all(table[s] <= tolerance_us for s in slots if s >= start):
                return start
        return None

    # ------------------------------------------------------------------
    # Fig. 10: microscope rendering
    # ------------------------------------------------------------------
    def render(self, first_slot: int = 0, last_slot: Optional[int] = None,
               names: Optional[Dict[int, str]] = None) -> str:
        """ASCII timeline: one row per link, one column per slot."""
        events = [e for e in self.events if e.slot >= first_slot
                  and (last_slot is None or e.slot <= last_slot)]
        if not events:
            return "(empty timeline)"
        links = sorted({e.link for e in events})
        slot_range = range(first_slot,
                           (last_slot if last_slot is not None
                            else max(e.slot for e in events)) + 1)
        cell: Dict[Tuple[Link, int], str] = {}
        for event in events:
            mark = {"data": "D", "fake": "f", "poll": "P"}.get(event.kind, "?")
            cell[(event.link, event.slot)] = mark

        def name(node: int) -> str:
            return names[node] if names and node in names else str(node)

        header = "link \\ slot | " + " ".join(f"{s:>3}" for s in slot_range)
        rows = [header, "-" * len(header)]
        for link in links:
            label = f"{name(link.src)}->{name(link.dst)}"
            marks = " ".join(
                f"{cell.get((link, s), '.'):>3}" for s in slot_range
            )
            rows.append(f"{label:>11} | {marks}")
        return "\n".join(rows)

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)
