"""Paper-reproduction experiments: one module per table/figure.

Every module exposes ``run(...) -> <ResultDataclass>`` and
``report(result) -> str`` printing the same rows/series the paper
reports, plus a ``main()`` CLI entry
(``python -m repro.experiments.<module>``).

=====================  =====================================================
module                 reproduces
=====================  =====================================================
fig02_motivation       Fig. 2 per-link throughput, 3-pair motivating net
fig05_fig06_rop        Fig. 5 subchannel decoding, Fig. 6 guard sweep
fig09_signatures       Fig. 9 signature detection vs combining
tab02_usrp             Table 2 USRP prototype SC/HT/ET
fig10_microscope       Fig. 10 timeline under the microscope
fig11_misalignment     Fig. 11 misalignment convergence
fig12_t10_2            Fig. 12 UDP/TCP throughput, delay, fairness sweeps
tab03_exposed          Table 3 exposed-link topologies (Fig. 13a/b)
fig14_random           Fig. 14 gain CDF over random T(20,3) networks
sec5_polling           Sec. 5 batch-size sweep and light-traffic delay
=====================  =====================================================
"""

from . import (common, fig02_motivation, fig05_fig06_rop, fig09_signatures,
               fig10_microscope, fig11_misalignment, fig12_t10_2,
               fig14_random, sec5_extensions, sec5_polling, tab02_usrp,
               tab03_exposed)

__all__ = [
    "common", "fig02_motivation", "fig05_fig06_rop", "fig09_signatures",
    "fig10_microscope", "fig11_misalignment", "fig12_t10_2", "fig14_random",
    "sec5_extensions", "sec5_polling", "tab02_usrp", "tab03_exposed",
]
