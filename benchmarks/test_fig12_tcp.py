"""Figure 12(d-f) bench: T(10,2) TCP throughput, delay and fairness.

Paper's shape: smaller but positive throughput gain than UDP (+10-15 %
— TCP ACKs burn whole slots), comparable delay, and a solid fairness
advantage (+17-39 %).
"""

from repro.experiments import fig12_t10_2

UPLINK_RATES = (0.0, 10.0)


def test_fig12_tcp(once, sweep_workers):
    result = once(fig12_t10_2.run, "tcp", UPLINK_RATES, 800_000.0,
                  workers=sweep_workers)
    print()
    print(fig12_t10_2.report(result))

    for point in result.points:
        thr = point.throughput_mbps
        # Positive but smaller gain than UDP (paper: 1.10-1.15x).
        assert thr["domino"] > 1.02 * thr["dcf"]
        # Fairness advantage persists under TCP.
        assert point.fairness["domino"] > point.fairness["dcf"]
        # Delay stays same-order (paper: "comparable packet delay").
        # Deviation recorded in EXPERIMENTS.md: our TCP flows ride the
        # batch/polling cadence with small windows, so DOMINO's TCP
        # delay runs a few-x above DCF's rather than matching it.
        assert point.delay_us["domino"] < 6.0 * max(point.delay_us["dcf"],
                                                    1.0)
    # TCP gains are smaller than the UDP gains at the same points.
    udp = fig12_t10_2.run("udp", (0.0,), horizon_us=600_000.0)
    assert result.gain_over_dcf(0.0) < udp.gain_over_dcf(0.0) + 0.25
