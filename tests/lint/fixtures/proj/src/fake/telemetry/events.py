"""Fixture schema registry: one event kind, one defaulted field."""

SCHEMA_VERSION = 1


class TraceEvent:
    t: float


class PingEvent(TraceEvent):
    KIND = "ping"

    node: int
    note: str = ""
