"""Gold-code node signatures (Sec. 3.2).

DOMINO triggers transmissions by detecting per-node signatures, chosen
as Gold codes "because of their outstanding cross correlation
property".  The paper uses a family of 129 codes of length 127; two
are reserved (the START signature S' and the ROP signature), leaving
127 assignable node signatures per collision domain.

Gold codes of length ``2^n - 1`` are built from a *preferred pair* of
maximal-length LFSR sequences (m-sequences) ``u`` and ``v``: the
family is ``{u, v} ∪ {u XOR shift(v, k) : k = 0..2^n-2}``.  For a
preferred pair the periodic cross-correlation between any two family
members takes only three values ``{-1, -t(n), t(n) - 2}`` with
``t(n) = 2^((n+1)/2) + 1`` — for n = 7 that bound is 17, versus the
self-correlation peak of 127, which is the ~18 dB discrimination the
trigger detector relies on.

Sec. 5 ("Number of signatures") also discusses lengths 255 and 511 to
support more nodes; those families are generated here too and tested.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

# Preferred pairs of primitive polynomials, given as tap positions of
# the Fibonacci LFSR x^n + x^t1 + ... + 1 (taps exclude the constant).
# These are classical preferred pairs from the spread-spectrum
# literature; preferredness is verified by the three-valued
# cross-correlation test in the unit tests.
_PREFERRED_TAPS: Dict[int, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {
    # degree: (taps of u, taps of v)
    5: ((5, 2), (5, 4, 3, 2)),
    6: ((6, 1), (6, 5, 2, 1)),
    7: ((7, 3), (7, 3, 2, 1)),
    9: ((9, 4), (9, 6, 4, 3)),
}

START_SIGNATURE_INDEX = 0   # S' in Fig. 8
ROP_SIGNATURE_INDEX = 1     # the "ROP signature" of Sec. 3.3


def lfsr_m_sequence(degree: int, taps: Sequence[int],
                    seed: int = 1) -> np.ndarray:
    """Binary m-sequence of length ``2^degree - 1`` from a Fibonacci LFSR.

    ``taps`` are the exponents of the feedback polynomial (excluding
    the constant term); ``seed`` is the non-zero initial register
    state.  Returns a 0/1 ``np.ndarray``.
    """
    if seed <= 0 or seed >= (1 << degree):
        raise ValueError(f"seed must be a non-zero {degree}-bit state")
    length = (1 << degree) - 1
    state = [(seed >> i) & 1 for i in range(degree)]
    out = np.empty(length, dtype=np.int8)
    tap_idx = [t - 1 for t in taps]
    for i in range(length):
        bit = state[-1]
        out[i] = bit
        feedback = 0
        for t in tap_idx:
            feedback ^= state[t]
        state = [feedback, *state[:-1]]
    if len(set(map(tuple, _state_orbit(degree, taps, seed)))) != length:
        raise ValueError(
            f"taps {taps} are not primitive for degree {degree}"
        )
    return out


def _state_orbit(degree: int, taps: Sequence[int],
                 seed: int) -> Iterator[Tuple[int, ...]]:
    """All register states visited; full period iff taps are primitive."""
    state = [(seed >> i) & 1 for i in range(degree)]
    tap_idx = [t - 1 for t in taps]
    for _ in range((1 << degree) - 1):
        yield tuple(state)
        feedback = 0
        for t in tap_idx:
            feedback ^= state[t]
        state = [feedback, *state[:-1]]


def _to_bipolar(bits: np.ndarray) -> np.ndarray:
    """Map 0/1 chips to +1/-1 floats (BPSK)."""
    return 1.0 - 2.0 * bits.astype(np.float64)


@dataclass(frozen=True)
class GoldFamily:
    """A complete Gold-code family of length ``2^degree - 1``.

    ``codes[i]`` is a bipolar (+1/-1) chip sequence.  ``codes[0]`` and
    ``codes[1]`` are the reserved START and ROP signatures; node
    signatures are handed out from index 2 upward.
    """

    degree: int
    codes: Tuple[Tuple[float, ...], ...]

    def __post_init__(self) -> None:
        # Per-index ndarray templates, built lazily: correlator banks
        # probe the same handful of codes thousands of times per
        # experiment, and rebuilding a 127-chip array from the tuple on
        # every call dominates the detection hot path.  Arrays are
        # handed out read-only so the shared templates cannot be
        # corrupted by a caller.
        object.__setattr__(self, "_templates", {})

    @property
    def length(self) -> int:
        return (1 << self.degree) - 1

    @property
    def family_size(self) -> int:
        return len(self.codes)

    @property
    def assignable(self) -> int:
        """Node signatures available after the two reserved codes."""
        return self.family_size - 2

    def code(self, index: int) -> np.ndarray:
        template = self._templates.get(index)
        if template is None:
            template = np.asarray(self.codes[index], dtype=np.float64)
            template.setflags(write=False)
            self._templates[index] = template
        return template

    @property
    def start_code(self) -> np.ndarray:
        return self.code(START_SIGNATURE_INDEX)

    @property
    def rop_code(self) -> np.ndarray:
        return self.code(ROP_SIGNATURE_INDEX)

    def node_code(self, node_slot: int) -> np.ndarray:
        """Signature for the ``node_slot``-th node (0-based)."""
        if node_slot < 0 or node_slot >= self.assignable:
            raise IndexError(
                f"node slot {node_slot} out of range (max {self.assignable - 1})"
            )
        return self.code(2 + node_slot)

    def correlation_bound(self) -> int:
        """Three-valued cross-correlation bound t(n) for odd n."""
        return (1 << ((self.degree + 1) // 2)) + 1


@lru_cache(maxsize=None)
def gold_family(degree: int = 7) -> GoldFamily:
    """Build the Gold family for ``degree`` (127 chips for degree 7).

    The family has ``2^degree + 1`` members: the two m-sequences plus
    all ``2^degree - 1`` shift-XOR combinations.
    """
    if degree not in _PREFERRED_TAPS:
        raise ValueError(
            f"no preferred pair configured for degree {degree}; "
            f"available: {sorted(_PREFERRED_TAPS)}"
        )
    taps_u, taps_v = _PREFERRED_TAPS[degree]
    u = lfsr_m_sequence(degree, taps_u)
    v = lfsr_m_sequence(degree, taps_v)
    length = (1 << degree) - 1
    members: List[np.ndarray] = [u.copy(), v.copy()]
    for shift in range(length):
        members.append(np.bitwise_xor(u, np.roll(v, -shift)))
    codes = tuple(tuple(_to_bipolar(m)) for m in members)
    return GoldFamily(degree=degree, codes=codes)


def periodic_cross_correlation(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All periodic cross-correlation values of bipolar sequences a, b."""
    n = len(a)
    if len(b) != n:
        raise ValueError("sequences must have equal length")
    # Circular correlation via FFT.
    fa = np.fft.fft(a)
    fb = np.fft.fft(b)
    corr = np.fft.ifft(fa * np.conj(fb)).real
    return np.round(corr).astype(np.int64)


def max_cross_correlation(a: np.ndarray, b: np.ndarray) -> int:
    """Peak |cross-correlation| over all shifts."""
    return int(np.max(np.abs(periodic_cross_correlation(a, b))))


@dataclass(frozen=True)
class SignatureLengthTradeoff:
    """One row of the Sec. 5 signature-length discussion.

    Longer Gold codes support more nodes per collision domain and
    discriminate better (peak-to-cross-correlation grows), but burn
    more airtime per trigger burst.
    """

    degree: int
    length: int
    family_size: int
    assignable_nodes: int
    signature_us: float
    burst_us: float               # combined signatures + START
    slot_overhead_fraction: float
    correlation_bound: int
    discrimination_db: float

    @property
    def supports_paper_claim(self) -> bool:
        """127/255/511 nodes for lengths 127/255/511 (Sec. 5)."""
        return self.assignable_nodes == self.length


def signature_length_tradeoffs(
        degrees: Sequence[int] = (5, 6, 7, 9),
        chip_rate_mhz: float = 20.0,
        slot_payload_airtime_us: float = 448.7,
) -> List["SignatureLengthTradeoff"]:
    """Quantify the Sec. 5 length trade-off for each available family.

    ``slot_payload_airtime_us`` is everything in a slot that is not
    trigger overhead (data + SIFS + ACK + turnaround at the paper's
    evaluation settings); the overhead fraction is the share of the
    resulting slot the two-signature burst consumes.
    """
    import math as _math

    rows: List[SignatureLengthTradeoff] = []
    for degree in degrees:
        family = gold_family(degree)
        signature_us = family.length / chip_rate_mhz
        burst_us = 2.0 * signature_us
        overhead = burst_us / (slot_payload_airtime_us + burst_us)
        discrimination = 20.0 * _math.log10(
            family.length / family.correlation_bound()
        )
        rows.append(SignatureLengthTradeoff(
            degree=degree,
            length=family.length,
            family_size=family.family_size,
            assignable_nodes=family.assignable,
            signature_us=signature_us,
            burst_us=burst_us,
            slot_overhead_fraction=overhead,
            correlation_bound=family.correlation_bound(),
            discrimination_db=discrimination,
        ))
    return rows


@dataclass
class SignatureAssigner:
    """Maps node ids to signature indices within one collision domain.

    The central controller "assigns a unique signature when a node
    joins the network" (Sec. 3.2); signatures may be reused across
    collision domains, which the assigner supports via independent
    instances.
    """

    family: GoldFamily

    def __post_init__(self) -> None:
        self._by_node: Dict[int, int] = {}

    def assign(self, node_id: int) -> int:
        """Idempotently assign a signature slot to ``node_id``."""
        if node_id in self._by_node:
            return self._by_node[node_id]
        slot = len(self._by_node)
        if slot >= self.family.assignable:
            raise RuntimeError(
                f"collision domain full: {self.family.assignable} signatures"
            )
        self._by_node[node_id] = slot
        return slot

    def signature_of(self, node_id: int) -> np.ndarray:
        return self.family.node_code(self.assign(node_id))

    @property
    def assigned(self) -> Dict[int, int]:
        return dict(self._by_node)
