"""Nodes: an AP or a client, binding a radio, a MAC and traffic queues.

Node ids are small integers; the topology layer assigns them.  The
association structure (which client belongs to which AP) lives here
because both the schedulers and the MACs need it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, TYPE_CHECKING

from .medium import Medium
from .radio import Radio

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..mac.base import Mac


class NodeKind(enum.Enum):
    AP = "ap"
    CLIENT = "client"


@dataclass
class Node:
    """A wireless node.

    Attributes
    ----------
    node_id:
        Unique integer id, also the radio's id on the medium.
    kind:
        AP or CLIENT.
    ap_id:
        For clients, the id of the associated AP; ``None`` for APs.
    pos:
        Optional (x, y) metres, for synthetic propagation.
    """

    node_id: int
    kind: NodeKind
    ap_id: Optional[int] = None
    pos: Optional[Tuple[float, float]] = None
    radio: Optional[Radio] = None
    mac: Optional["Mac"] = None

    @property
    def is_ap(self) -> bool:
        return self.kind is NodeKind.AP

    def attach(self, medium: Medium) -> Radio:
        """Create and register this node's radio on ``medium``.

        A node may be re-attached for a fresh run: the topology object
        is a description, so each simulation gets its own radio and
        the stale MAC binding is dropped.  The radio type is the
        medium's choice (``make_radio``) so engine backends stay
        invisible to the node layer.
        """
        self.radio = medium.make_radio(self.node_id)
        self.mac = None
        return self.radio

    def bind_mac(self, mac: "Mac") -> None:
        """Connect a MAC to this node's radio (radio must exist)."""
        if self.radio is None:
            raise RuntimeError(f"node {self.node_id} has no radio")
        self.mac = mac
        self.radio.mac = mac

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.node_id}, {self.kind.value}, ap={self.ap_id})"


class Network:
    """The node population of one simulation run."""

    def __init__(self) -> None:
        self.nodes: Dict[int, Node] = {}

    def add(self, node: Node) -> Node:
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id}")
        self.nodes[node.node_id] = node
        return node

    def add_ap(self, node_id: int, pos: Optional[Tuple[float, float]] = None) -> Node:
        return self.add(Node(node_id, NodeKind.AP, pos=pos))

    def add_client(self, node_id: int, ap_id: int,
                   pos: Optional[Tuple[float, float]] = None) -> Node:
        if ap_id not in self.nodes or not self.nodes[ap_id].is_ap:
            raise ValueError(f"client {node_id} references unknown AP {ap_id}")
        return self.add(Node(node_id, NodeKind.CLIENT, ap_id=ap_id, pos=pos))

    @property
    def aps(self) -> List[Node]:
        return [n for n in self.nodes.values() if n.is_ap]

    @property
    def clients(self) -> List[Node]:
        return [n for n in self.nodes.values() if not n.is_ap]

    def clients_of(self, ap_id: int) -> List[Node]:
        return [n for n in self.clients if n.ap_id == ap_id]

    def ap_of(self, node_id: int) -> int:
        """The AP governing ``node_id`` (itself if it is an AP)."""
        node = self.nodes[node_id]
        return node.node_id if node.is_ap else node.ap_id  # type: ignore[return-value]

    def attach_all(self, medium: Medium) -> None:
        for node in self.nodes.values():
            node.attach(medium)

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes.values())
