"""Sweep tooling CLI.

Usage::

    python -m repro.runner sweep-report sweep.json -o report.html \
        [--title "fig14 nightly"]

``sweep-report`` renders a persisted sweep
(:meth:`~repro.runner.points.SweepResult.save_json`) into one
self-contained HTML page: per-point throughput/fairness/delay, doctor
verdicts, and critical-path rollups when the sweep ran with
``diagnose=True``.

Exit codes match the telemetry CLI: ``0`` on success, ``2`` when the
input cannot be read or parsed.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .points import SweepResult
from .report import write_sweep_report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Sweep persistence and reporting tools.")
    commands = parser.add_subparsers(dest="command", required=True)

    cmd = commands.add_parser(
        "sweep-report",
        help="render a saved sweep (SweepResult.save_json) to HTML")
    cmd.add_argument("sweep", help="sweep JSON file (save_json output)")
    cmd.add_argument("-o", "--output", default="sweep-report.html",
                     help="output HTML path (default: %(default)s)")
    cmd.add_argument("--title", default="DOMINO sweep report",
                     help="report title")

    args = parser.parse_args(argv)
    try:
        sweep = SweepResult.load_json(args.sweep)
    except OSError as exc:
        print(f"error: cannot read {args.sweep}: {exc.strerror or exc}",
              file=sys.stderr)
        return 2
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        print(f"error: {args.sweep} is not a saved sweep "
              f"(SweepResult.save_json): {exc}", file=sys.stderr)
        return 2
    path = write_sweep_report(sweep, args.output, title=args.title)
    print(f"wrote {path} ({len(sweep.points)} points)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
