"""Process-pool layer: under the pool-boundary contract (DOM503)."""
