"""Sec. 5 extension features: signature lengths, coexistence, energy.

The paper's discussion section sketches three mechanisms beyond the
core evaluation; all three are implemented and exercised here:

* **Number of signatures** — longer Gold codes (255/511 chips) support
  more nodes per collision domain and discriminate better, at higher
  per-slot overhead; "an algorithm to estimate the node density is
  required to choose the best signature length".
* **Co-existence** — CFP/CoP time division with NAV reservation and
  occupancy-adaptive CoP sizing (Fig. 15).
* **Energy saving** — the server schedules constrained clients to
  sleep through slots that do not involve them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core import ControllerConfig, build_domino_network
from ..core.coexistence import CoexistenceConfig
from ..core.signatures import (SignatureLengthTradeoff,
                               signature_length_tradeoffs)
from ..metrics.stats import FlowRecorder
from ..sim.engine import Simulator
from ..topology.builder import fig1_topology
from ..topology.links import Link
from ..traffic.udp import SaturatedSource
from .common import format_table


# ----------------------------------------------------------------------
# Signature lengths
# ----------------------------------------------------------------------
def run_signature_lengths() -> List[SignatureLengthTradeoff]:
    return signature_length_tradeoffs()


def report_signature_lengths(rows: List[SignatureLengthTradeoff]) -> str:
    headers = ["chips", "nodes/domain", "signature us", "slot overhead",
               "discrimination dB"]
    table = [
        [str(r.length), str(r.assignable_nodes), f"{r.signature_us:.2f}",
         f"{r.slot_overhead_fraction:.1%}", f"{r.discrimination_db:.1f}"]
        for r in rows
    ]
    lines = ["Sec. 5 — signature length trade-off:",
             format_table(headers, table)]
    lines.append("(paper: 127 chips support 127 nodes; 255/511 support "
                 "255/511 at higher overhead)")
    lines.append("(length 255 omitted: Gold preferred pairs do not exist "
                 "for degree 8 — degrees divisible by 4 have no "
                 "three-valued family, a small oversight in the paper)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Energy saving
# ----------------------------------------------------------------------
@dataclass
class EnergyResult:
    sleep_fraction: float
    baseline_mbps: float
    sleepy_mbps: float


def run_energy(horizon_us: float = 600_000.0, seed: int = 1) -> EnergyResult:
    """Fig. 1 network with C3 idle and energy-constrained."""

    def build(constrained):
        topology = fig1_topology()
        topology.flows = [Link(0, 1), Link(3, 2)]
        sim = Simulator(seed=seed)
        config = ControllerConfig(energy_constrained=frozenset(constrained))
        net = build_domino_network(sim, topology, config=config)
        recorder = FlowRecorder(topology.flows, warmup_us=horizon_us * 0.1)
        recorder.attach_all(net.macs.values())
        for flow in topology.flows:
            SaturatedSource(sim, net.macs[flow.src], flow.dst).start()
        net.controller.start()
        sim.run(until=horizon_us)
        return net, recorder

    baseline_net, baseline_rec = build(())
    sleepy_net, sleepy_rec = build((5,))
    return EnergyResult(
        sleep_fraction=sleepy_net.macs[5].stats.sleep_us / horizon_us,
        baseline_mbps=baseline_rec.aggregate_throughput_mbps(horizon_us),
        sleepy_mbps=sleepy_rec.aggregate_throughput_mbps(horizon_us),
    )


def report_energy(result: EnergyResult) -> str:
    return "\n".join([
        "Sec. 5 — energy saving (idle C3 declared constrained):",
        f"  C3 radio asleep {result.sleep_fraction:.0%} of the run",
        f"  network throughput {result.sleepy_mbps:.2f} Mbps vs "
        f"{result.baseline_mbps:.2f} Mbps without sleeping",
    ])


# ----------------------------------------------------------------------
# Coexistence
# ----------------------------------------------------------------------
@dataclass
class CoexistenceResult:
    internal_mbps: float
    external_mbps: float
    external_mbps_without_cop: float
    mean_cop_us: float


def run_coexistence(horizon_us: float = 800_000.0,
                    seed: int = 1) -> CoexistenceResult:
    """Fig. 1 DOMINO network sharing the air with a foreign DCF pair."""
    import numpy as np

    from repro.mac.dcf import DcfMac
    from repro.sim.node import Node, NodeKind

    def build(coexistence):
        topology = fig1_topology()
        matrix = topology.trace.rss_dbm
        grown = np.full((8, 8), -120.0)
        grown[:6, :6] = matrix[:6, :6]
        for node in range(6):
            grown[6, node] = grown[node, 6] = -70.0
            grown[7, node] = grown[node, 7] = -90.0
        grown[6, 7] = grown[7, 6] = -50.0
        topology.trace.rss_dbm = grown

        sim = Simulator(seed=seed)
        config = ControllerConfig(batch_slots=6, demand_cap=6,
                                  coexistence=coexistence)
        net = build_domino_network(sim, topology, config=config)
        ext_nodes = (Node(6, NodeKind.AP), Node(7, NodeKind.CLIENT, ap_id=6))
        for node in ext_nodes:
            node.attach(net.medium)
        ext_tx = DcfMac(sim, ext_nodes[0], net.medium)
        ext_rx = DcfMac(sim, ext_nodes[1], net.medium)
        recorder = FlowRecorder([*topology.flows, Link(6, 7)],
                                warmup_us=horizon_us * 0.1)
        recorder.attach_all(net.macs.values())
        recorder.attach(ext_rx)
        for flow in topology.flows:
            SaturatedSource(sim, net.macs[flow.src], flow.dst).start()
        SaturatedSource(sim, ext_tx, 7).start()
        net.controller.start()
        sim.run(until=horizon_us)
        return net, recorder

    shared_net, shared_rec = build(CoexistenceConfig(
        initial_cop_us=3_000.0, min_cop_us=1_500.0, max_cop_us=8_000.0))
    greedy_net, greedy_rec = build(None)

    internal = sum(shared_rec.flow_throughput_mbps(f, horizon_us)
                   for f in [Link(0, 1), Link(3, 2), Link(4, 5)])
    windows = shared_net.controller.cop_windows
    mean_cop = (sum(b - a for a, b in windows) / len(windows)
                if windows else 0.0)
    return CoexistenceResult(
        internal_mbps=internal,
        external_mbps=shared_rec.flow_throughput_mbps(Link(6, 7),
                                                      horizon_us),
        external_mbps_without_cop=greedy_rec.flow_throughput_mbps(
            Link(6, 7), horizon_us),
        mean_cop_us=mean_cop,
    )


def report_coexistence(result: CoexistenceResult) -> str:
    return "\n".join([
        "Sec. 5 — coexistence (CFP/CoP with NAV reservation):",
        f"  internal (DOMINO) {result.internal_mbps:.2f} Mbps, "
        f"external (foreign DCF) {result.external_mbps:.2f} Mbps",
        f"  external without CoP gaps: "
        f"{result.external_mbps_without_cop:.2f} Mbps (starved)",
        f"  mean contention period: {result.mean_cop_us / 1000:.1f} ms "
        "(occupancy-adaptive)",
    ])


def main() -> None:  # pragma: no cover - CLI entry
    print(report_signature_lengths(run_signature_lengths()))
    print()
    print(report_energy(run_energy()))
    print()
    print(report_coexistence(run_coexistence()))


if __name__ == "__main__":  # pragma: no cover
    main()
