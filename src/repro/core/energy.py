"""Energy saving (Sec. 5): scheduled sleep for constrained clients.

"It is straightforward to implement [an] energy saving mechanism in
DOMINO: the server can schedule an energy constraint device to sleep
for a duration within which it does not need to send or receive
packets."  Because the controller knows the whole relative schedule,
it knows exactly which slots involve each client:

* slots where the client sends (its own entries);
* slots where it receives (downlink entries to it);
* slots whose end it must hear (trigger duties it holds);
* polling slots of its AP (every client answers ROP).

Everything else is sleepable.  :func:`involvement_slots` computes the
per-client involvement set from a batch; :func:`sleep_windows` turns
the gaps into windows; the DOMINO MAC puts the radio to sleep inside
them, waking one slot early as guard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from .relative_schedule import NodeProgram, RelativeBatch


def involvement_slots(batch: RelativeBatch, client: int,
                      ap_id: int) -> Set[int]:
    """Slot indices during (or right after) which ``client`` must be awake."""
    involved: Set[int] = set()
    for slot in batch.slots:
        for entry in slot.entries:
            if client in (entry.link.src, entry.link.dst):
                involved.add(slot.index)
    for (node, slot_idx), duty in batch.duties.items():
        if node == client and not duty.empty:
            involved.add(slot_idx)
            # The duty fires at the end of the slot; the burst and the
            # turnaround spill toward the next slot boundary.
            involved.add(slot_idx + 1)
        if client in duty.targets:
            involved.add(slot_idx)      # must hear the burst
            involved.add(slot_idx + 1)  # and transmit right after
    for slot_idx, aps in batch.rop_polls.items():
        if ap_id in aps:
            involved.add(slot_idx)      # poll + report ride this gap
            involved.add(slot_idx + 1)
    return involved


def sleep_windows(batch: RelativeBatch, client: int, ap_id: int,
                  min_gap_slots: int = 2) -> List[Tuple[int, int]]:
    """Sleepable slot ranges ``(first, last)`` inclusive, within the batch."""
    if not batch.slots:
        return []
    involved = involvement_slots(batch, client, ap_id)
    first = batch.slots[0].index
    last = batch.slots[-1].index
    windows: List[Tuple[int, int]] = []
    start = None
    for slot in range(first, last + 1):
        if slot in involved:
            if start is not None and slot - start >= min_gap_slots:
                windows.append((start, slot - 1))
            start = None
        elif start is None:
            start = slot
    if start is not None and last - start + 1 >= min_gap_slots:
        windows.append((start, last))
    return windows


@dataclass
class EnergyAccountant:
    """Awake/asleep bookkeeping for a set of constrained clients."""

    horizon_us: float = 0.0
    sleep_us: Dict[int, float] = field(default_factory=dict)

    def record(self, client: int, slept_us: float) -> None:
        self.sleep_us[client] = self.sleep_us.get(client, 0.0) + slept_us

    def sleep_fraction(self, client: int) -> float:
        if self.horizon_us <= 0.0:
            return 0.0
        return min(self.sleep_us.get(client, 0.0) / self.horizon_us, 1.0)


def annotate_programs(batch: RelativeBatch,
                      programs: Dict[int, NodeProgram],
                      constrained: Iterable[int],
                      ap_of: Dict[int, int],
                      min_gap_slots: int = 2) -> None:
    """Attach sleep windows to constrained clients' programs."""
    for client in constrained:
        program = programs.get(client)
        if program is None:
            continue
        program.sleep_windows = sleep_windows(
            batch, client, ap_of.get(client, -1), min_gap_slots
        )
