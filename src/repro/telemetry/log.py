"""Logging for the reproduction: stderr diagnostics, stdout untouched.

Library and experiment *diagnostics* (progress lines, recoverable
oddities) go through here instead of bare ``print``; experiment
*reports* — the paper tables themselves — stay on stdout by design,
so ``python -m repro.experiments > report.txt`` keeps working.

Loggers are namespaced under ``repro`` and write to stderr.  Nothing
is configured at import time beyond attaching one stderr handler to
the ``repro`` root logger (idempotent), so applications embedding the
package can reconfigure freely via the stdlib ``logging`` API.
"""

from __future__ import annotations

import logging
import os
import sys

ROOT = "repro"

#: Environment knob: REPRO_LOG=DEBUG python -m repro.experiments ...
LEVEL_ENV = "REPRO_LOG"


def _root_logger() -> logging.Logger:
    logger = logging.getLogger(ROOT)
    if not logger.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("[%(name)s] %(levelname)s %(message)s"))
        logger.addHandler(handler)
        logger.propagate = False
        level = os.environ.get(LEVEL_ENV, "INFO").upper()
        logger.setLevel(getattr(logging, level, logging.INFO))
    return logger


def get_logger(name: str = "") -> logging.Logger:
    """Namespaced logger: ``get_logger("experiments")`` ->
    ``repro.experiments`` writing to stderr."""
    root = _root_logger()
    if not name:
        return root
    return root.getChild(name)


def set_level(level: int) -> None:
    """Set the verbosity of all ``repro`` loggers at once."""
    _root_logger().setLevel(level)
