"""The blessed wall-clock accessor for instrumented sim code.

Sim-logic layers must not import :mod:`time` (dominolint DOM101): a
wall-clock value that leaks into simulation state or a trace breaks
the byte-identical-per-seed contract everything downstream (conversion
caching, parallel sweeps, causal spans) depends on.  But the engine
still *measures* itself — event-loop throughput, per-callback-site
profiling — and those numbers are genuinely wall-clock quantities.

This module is the one sanctioned route: timing lives in telemetry,
the layer that owns observability, and sim code reaches it through the
already-blessed ``sim -> telemetry`` edge.  The contract for callers:

* readings may feed the **metrics registry** (counters, gauges,
  histograms) — metrics are explicitly non-deterministic run health;
* readings must never feed the **trace**, the simulation clock, the
  RNG, or any scheduling decision.

Keeping the accessor trivial is the point — the value of the module is
where it sits in the layering DAG, not what it computes.
"""

from __future__ import annotations

import time

#: Monotonic wall-clock seconds (``time.perf_counter``): only for
#: measuring elapsed real time around sim work, never for sim state.
perf_counter = time.perf_counter

__all__ = ["perf_counter"]
