"""Tests for nodes and the network container."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.medium import Medium
from repro.sim.node import Network, Node, NodeKind
from repro.sim.phy import DOT11G


def test_network_construction():
    network = Network()
    ap = network.add_ap(0)
    client = network.add_client(1, 0)
    assert ap.is_ap and not client.is_ap
    assert client.ap_id == 0
    assert len(network) == 2
    assert [n.node_id for n in network] == [0, 1]


def test_duplicate_id_rejected():
    network = Network()
    network.add_ap(0)
    with pytest.raises(ValueError):
        network.add_ap(0)


def test_client_requires_existing_ap():
    network = Network()
    with pytest.raises(ValueError):
        network.add_client(1, 0)
    network.add_ap(0)
    network.add_client(1, 0)
    with pytest.raises(ValueError):
        network.add_client(2, 1)  # node 1 is a client, not an AP


def test_clients_of_and_ap_of():
    network = Network()
    network.add_ap(0)
    network.add_ap(10)
    network.add_client(1, 0)
    network.add_client(2, 0)
    network.add_client(11, 10)
    assert {c.node_id for c in network.clients_of(0)} == {1, 2}
    assert network.ap_of(1) == 0
    assert network.ap_of(11) == 10
    assert network.ap_of(0) == 0  # an AP governs itself


def test_aps_and_clients_views():
    network = Network()
    network.add_ap(0)
    network.add_client(1, 0)
    assert [n.node_id for n in network.aps] == [0]
    assert [n.node_id for n in network.clients] == [1]


def test_attach_creates_radio_and_reattach_resets():
    network = Network()
    network.add_ap(0)
    sim = Simulator()
    medium_a = Medium(sim, DOT11G, lambda a, b: -50.0)
    radio_a = network.nodes[0].attach(medium_a)
    assert network.nodes[0].radio is radio_a
    # A fresh run re-attaches without complaint and drops stale MACs.
    sim_b = Simulator()
    medium_b = Medium(sim_b, DOT11G, lambda a, b: -50.0)
    radio_b = network.nodes[0].attach(medium_b)
    assert radio_b is not radio_a
    assert network.nodes[0].mac is None


def test_bind_mac_requires_radio():
    node = Node(0, NodeKind.AP)
    with pytest.raises(RuntimeError):
        node.bind_mac(object())
