"""Sec. 5 discussion experiments: polling frequency and light traffic.

**Batch size (polling frequency).**  DOMINO polls once per batch, so
the batch size is the reciprocal of the polling frequency.  The paper:
under heavy traffic (5 Mbps/link) larger batches slightly *reduce*
delay and *increase* throughput (less polling overhead); under light
traffic (500 Kbps/link) delay *increases* with batch size (queue news
reaches the scheduler late).

**Light traffic.**  T(6, 5) at 6 KBps per flow: DOMINO's control
overhead costs delay when there is nothing to schedule — the paper
measures DOMINO's delay at ~1.14x DCF's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..core import ControllerConfig
from ..runner import ExperimentPoint, TopologySpec, run_sweep
from ..topology.builder import Topology, build_t_topology
from ..topology.trace import two_building_trace
from .common import format_table

# Batch sizes start at 8: below that the per-batch polling slots
# dominate the duty cycle and both load regimes degrade together,
# which is outside the trade-off the paper's sweep examines.
BATCH_SIZES = (8, 12, 16, 32)
HEAVY_MBPS = 5.0
LIGHT_MBPS = 0.25


@dataclass
class BatchSizePoint:
    batch_slots: int
    throughput_mbps: float
    delay_us: float


@dataclass
class BatchSizeResult:
    rate_mbps: float
    points: List[BatchSizePoint] = field(default_factory=list)

    def delay_trend(self) -> float:
        """Delay(largest batch) / delay(smallest batch)."""
        if len(self.points) < 2 or self.points[0].delay_us == 0:
            return 1.0
        return self.points[-1].delay_us / self.points[0].delay_us

    def throughput_trend(self) -> float:
        if len(self.points) < 2 or self.points[0].throughput_mbps == 0:
            return 1.0
        return self.points[-1].throughput_mbps / self.points[0].throughput_mbps


def sweep_topology() -> Topology:
    """The T(10,2) carve the batch-size sweep runs on (picklable)."""
    return build_t_topology(two_building_trace(), 10, 2, seed=3)


def light_topology() -> Topology:
    """T(6,5) needs 36 of the 40 trace nodes; the carve only packs
    with a slightly looser association threshold than the dense
    default (the paper's trace evidently supported it directly)."""
    trace = two_building_trace()
    trace.comm_threshold_dbm = -70.0
    return build_t_topology(trace, 6, 5, seed=5)


def run_batch_size(rate_mbps: float,
                   batch_sizes: Tuple[int, ...] = BATCH_SIZES,
                   horizon_us: float = 1_000_000.0,
                   seed: int = 1, workers: int = 0) -> BatchSizeResult:
    points = [
        ExperimentPoint(
            scheme="domino", topology=TopologySpec(sweep_topology),
            label=str(batch_slots), seed=seed, horizon_us=horizon_us,
            run_kwargs={"downlink_mbps": rate_mbps,
                        "uplink_mbps": rate_mbps,
                        "domino_config": ControllerConfig(
                            batch_slots=batch_slots,
                            demand_cap=batch_slots)})
        for batch_slots in batch_sizes
    ]
    sweep = run_sweep(points, workers=workers)
    result = BatchSizeResult(rate_mbps=rate_mbps)
    for batch_slots, run_result in zip(batch_sizes, sweep.points):
        result.points.append(BatchSizePoint(
            batch_slots=batch_slots,
            throughput_mbps=run_result.aggregate_mbps,
            delay_us=run_result.mean_delay_us,
        ))
    return result


@dataclass
class LightTrafficResult:
    domino_delay_us: float
    dcf_delay_us: float
    domino_mbps: float
    dcf_mbps: float

    @property
    def delay_ratio(self) -> float:
        if self.dcf_delay_us == 0:
            return float("inf")
        return self.domino_delay_us / self.dcf_delay_us


def run_light_traffic(horizon_us: float = 2_000_000.0,
                      seed: int = 1,
                      workers: int = 0) -> LightTrafficResult:
    """T(6,5) at 6 KBps (= 0.048 Mbps) per flow, as in Sec. 5."""
    rate_mbps = 6.0 * 8.0 / 1000.0  # 6 KBps
    points = [
        ExperimentPoint(
            scheme=scheme, topology=TopologySpec(light_topology),
            label=scheme, seed=seed, horizon_us=horizon_us,
            run_kwargs={"downlink_mbps": rate_mbps,
                        "uplink_mbps": rate_mbps})
        for scheme in ("domino", "dcf")
    ]
    results = run_sweep(points, workers=workers).by_label()
    return LightTrafficResult(
        domino_delay_us=results["domino"].mean_delay_us,
        dcf_delay_us=results["dcf"].mean_delay_us,
        domino_mbps=results["domino"].aggregate_mbps,
        dcf_mbps=results["dcf"].aggregate_mbps,
    )


def report_batch_size(heavy: BatchSizeResult,
                      light: BatchSizeResult) -> str:
    lines = ["Sec. 5 — batch size (1/polling frequency) sweep, T(10,2):"]
    headers = ["batch slots", "heavy thr", "heavy delay(ms)",
               "light thr", "light delay(ms)"]
    rows = []
    for hp, lp in zip(heavy.points, light.points):
        rows.append([str(hp.batch_slots),
                     f"{hp.throughput_mbps:.1f}",
                     f"{hp.delay_us / 1000.0:.1f}",
                     f"{lp.throughput_mbps:.2f}",
                     f"{lp.delay_us / 1000.0:.2f}"])
    lines.append(format_table(headers, rows))
    lines.append(f"heavy delay trend (big/small batch): {heavy.delay_trend():.2f}"
                 " (paper: slightly below 1)")
    lines.append(f"light delay trend (big/small batch): {light.delay_trend():.2f}"
                 " (paper: above 1)")
    return "\n".join(lines)


def report_light(result: LightTrafficResult) -> str:
    return "\n".join([
        "Sec. 5 — light traffic, T(6,5) at 6 KBps/flow:",
        f"DOMINO delay {result.domino_delay_us / 1000.0:.2f} ms, "
        f"DCF delay {result.dcf_delay_us / 1000.0:.2f} ms",
        f"ratio {result.delay_ratio:.2f} (paper: ~1.14x)",
    ])


def main() -> None:  # pragma: no cover - CLI entry
    heavy = run_batch_size(HEAVY_MBPS)
    light = run_batch_size(LIGHT_MBPS)
    print(report_batch_size(heavy, light))
    print()
    print(report_light(run_light_traffic()))


if __name__ == "__main__":  # pragma: no cover
    main()
