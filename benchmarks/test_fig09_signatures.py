"""Figure 9 bench: signature detection vs number of combined signatures.

Paper's shape: nearly 100 % detection in every setup while the
combined count stays at or below 4 (DOMINO's outbound cap), clear
degradation beyond, false positives below ~1 %.
"""

from repro.experiments import fig09_signatures


def test_fig09_detection(once):
    result = once(fig09_signatures.run, 300)
    print()
    print(fig09_signatures.report(result))

    # ~100 % at the cap of 4 for every setup.
    for n in (1, 2, 3, 4):
        assert result.worst_at(n) >= 0.90
    # Degradation past the cap (paper: curves fall from 5 onward).
    assert result.worst_at(6) < 0.80
    for setup in fig09_signatures.FIG9_SETUPS:
        assert result.detection(setup, 7) <= \
            result.detection(setup, 3) + 0.02
    # False positives stay low (paper: < 1 %).
    assert result.false_positive_ratio() < 0.015
