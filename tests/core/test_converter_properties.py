"""Property-based tests: converter invariants over random topologies."""

import itertools
import random

from hypothesis import given, settings, strategies as st

from repro.core.converter import ScheduleConverter
from repro.core.relative_schedule import build_programs
from repro.topology.interference_map import InterferenceMap
from repro.sched.rand_scheduler import RandScheduler
from repro.sim.phy import DOT11G
from repro.topology.conflict_graph import build_conflict_graph
from repro.topology.links import Link
from repro.topology.trace import manual_trace


def random_pairs_setup(n_pairs: int, seed: int):
    """Random AP-client pair layout with random hearing structure."""
    rng = random.Random(seed)
    rss = {}
    links = []
    for i in range(n_pairs):
        ap, client = 2 * i, 2 * i + 1
        rss[(ap, client)] = -50.0
        links.append(Link(ap, client))
        links.append(Link(client, ap))
    nodes = list(range(2 * n_pairs))
    for a, b in itertools.combinations(nodes, 2):
        if (a, b) in rss:
            continue
        roll = rng.random()
        if roll < 0.25:
            rss[(a, b)] = -70.0   # carrier-sense coupling
        elif roll < 0.4:
            rss[(a, b)] = -55.0   # reception-breaking interference
    trace = manual_trace(2 * n_pairs, rss)
    imap = InterferenceMap(trace.rss_fn(), DOT11G)
    graph = build_conflict_graph(imap, links)
    return imap, graph, links


@settings(deadline=None, max_examples=25)
@given(st.integers(min_value=2, max_value=5),
       st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=2, max_value=6))
def test_property_converter_invariants(n_pairs, seed, batch_slots):
    imap, graph, links = random_pairs_setup(n_pairs, seed)
    scheduler = RandScheduler(graph, links, set_check=imap.set_survives)
    converter = ScheduleConverter(imap, graph, fake_candidates=links)

    demands = {l: 2 for l in links}
    for batch_round in range(3):
        strict = scheduler.schedule_batch(demands, max_slots=batch_slots)
        while len(strict) < batch_slots:
            strict.append([])
        batch = converter.convert(strict)

        # Slots are conflict-free, node-disjoint and additively safe.
        for slot in batch.slots:
            slot_links = slot.links()
            for l1, l2 in itertools.combinations(slot_links, 2):
                assert not graph.has_edge(l1, l2)
                assert not l1.shares_node(l2)
            assert imap.set_survives(slot_links)

        # Constraint caps.
        for nodes in batch.inbound.values():
            assert 1 <= len(nodes) <= converter.config.max_inbound
            assert len(set(nodes)) == len(nodes)
        for duty in batch.duties.values():
            assert duty.outbound <= converter.config.max_outbound

        # Global slot indices strictly increase across batches.
        indices = [slot.index for slot in batch.slots]
        assert indices == sorted(set(indices))

        # Every surviving non-first-slot entry has a trigger, and every
        # dropped real link is reported.
        first_index = batch.slots[0].index if batch.slots else -1
        for slot in batch.slots:
            if batch.initial and slot.index == first_index:
                continue
            for entry in slot.entries:
                assert (slot.index, entry.link) in batch.inbound
        for slot_idx, link in batch.untriggerable:
            assert (slot_idx, link) not in batch.inbound

        # Programs partition the batch's send entries exactly.
        programs = build_programs(batch)
        program_sends = sorted(
            (slot_idx, entry.link)
            for program in programs.values()
            for slot_idx, entry in program.send_slots.items()
        )
        batch_sends = sorted(
            (slot.index, entry.link)
            for slot in batch.slots for entry in slot.entries
        )
        assert program_sends == batch_sends


@settings(deadline=None, max_examples=15)
@given(st.integers(min_value=2, max_value=4),
       st.integers(min_value=0, max_value=10_000))
def test_property_rop_insertion_constraints(n_pairs, seed):
    imap, graph, links = random_pairs_setup(n_pairs, seed)
    converter = ScheduleConverter(imap, graph, fake_candidates=links)
    ap_ids = [2 * i for i in range(n_pairs)]
    ap_links = {
        ap: [l for l in links if ap in (l.src, l.dst)] for ap in ap_ids
    }
    from repro.sched.strict_schedule import StrictSchedule
    strict = StrictSchedule()
    for _ in range(5):
        strict.append([])
    batch = converter.convert(strict, rop_aps=ap_ids, ap_links=ap_links)

    for slot_idx, aps in batch.rop_polls.items():
        # No duplicate polls in one gap.
        assert len(aps) == len(set(aps))
        # Sharing APs have non-conflicting links and cannot hear each
        # other (reference-broadcast preservation).
        for a, b in itertools.combinations(aps, 2):
            assert not imap.in_cs_range(a, b)
            for la in ap_links[a]:
                for lb in ap_links[b]:
                    assert not graph.has_edge(la, lb)
    # An AP polls at most once per batch.
    all_polls = [ap for aps in batch.rop_polls.values() for ap in aps]
    assert len(all_polls) == len(set(all_polls))
