"""Tests for the RAND-style greedy scheduler."""

import itertools

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.sched.rand_scheduler import RandScheduler
from repro.topology.links import Link


def chain_graph(n):
    """n links in a path-conflict structure: i conflicts with i+1."""
    links = [Link(10 * i, 10 * i + 1) for i in range(n)]
    graph = nx.Graph()
    graph.add_nodes_from(links)
    for a, b in zip(links, links[1:]):
        graph.add_edge(a, b)
    return links, graph


def test_slots_are_independent_sets():
    links, graph = chain_graph(5)
    scheduler = RandScheduler(graph, links)
    schedule = scheduler.schedule_batch({l: 3 for l in links}, max_slots=10)
    for slot in schedule:
        for a, b in itertools.combinations(slot, 2):
            assert not graph.has_edge(a, b)


def test_greedy_packs_alternating_links():
    links, graph = chain_graph(4)
    scheduler = RandScheduler(graph, links)
    schedule = scheduler.schedule_batch({l: 1 for l in links}, max_slots=10)
    # Chain 0-1-2-3: {0,2} then {1,3} serves everything in 2 slots.
    assert len(schedule) == 2
    assert set(schedule[0]) == {links[0], links[2]}
    assert set(schedule[1]) == {links[1], links[3]}


def test_only_backlogged_links_scheduled():
    links, graph = chain_graph(4)
    scheduler = RandScheduler(graph, links)
    schedule = scheduler.schedule_batch({links[1]: 2}, max_slots=10)
    assert len(schedule) == 2
    for slot in schedule:
        assert slot == [links[1]]


def test_demands_dict_not_mutated():
    links, graph = chain_graph(3)
    scheduler = RandScheduler(graph, links)
    demands = {l: 2 for l in links}
    scheduler.schedule_batch(demands, max_slots=10)
    assert all(v == 2 for v in demands.values())


def test_fairness_rotation():
    """Two mutually conflicting links must alternate across batches."""
    links = [Link(0, 1), Link(2, 3)]
    graph = nx.Graph()
    graph.add_nodes_from(links)
    graph.add_edge(*links)
    scheduler = RandScheduler(graph, links)
    first = scheduler.schedule_batch({l: 1 for l in links}, max_slots=1)
    second = scheduler.schedule_batch({l: 1 for l in links}, max_slots=1)
    assert first[0] != second[0]


def test_max_slots_respected():
    links, graph = chain_graph(2)
    scheduler = RandScheduler(graph, links)
    schedule = scheduler.schedule_batch({l: 100 for l in links}, max_slots=7)
    assert len(schedule) == 7


def test_set_check_blocks_additive_sets():
    links, graph = chain_graph(5)  # 0 and 2 and 4 pairwise independent

    def no_triples(slot):
        return len(slot) <= 2

    scheduler = RandScheduler(graph, links, set_check=no_triples)
    schedule = scheduler.schedule_batch({l: 1 for l in links}, max_slots=10)
    for slot in schedule:
        assert len(slot) <= 2


def test_unknown_link_rejected():
    links, graph = chain_graph(2)
    with pytest.raises(ValueError):
        RandScheduler(graph, links + [Link(99, 98)])


def test_unsatisfied_after():
    links, graph = chain_graph(2)
    scheduler = RandScheduler(graph, links)
    demands = {links[0]: 3, links[1]: 1}
    schedule = scheduler.schedule_batch(demands, max_slots=2)
    leftover = scheduler.unsatisfied_after(demands, schedule)
    served = schedule.service_counts()
    for link, want in demands.items():
        assert leftover.get(link, 0) == max(0, want - served.get(link, 0))


@settings(deadline=None, max_examples=30)
@given(st.integers(min_value=1, max_value=8),
       st.dictionaries(st.integers(min_value=0, max_value=7),
                       st.integers(min_value=0, max_value=5), max_size=8))
def test_property_service_never_exceeds_demand(n_links, raw_demands):
    links, graph = chain_graph(8)
    scheduler = RandScheduler(graph, links)
    demands = {links[i]: d for i, d in raw_demands.items() if d > 0}
    schedule = scheduler.schedule_batch(demands, max_slots=30)
    served = schedule.service_counts()
    for link, count in served.items():
        assert count <= demands.get(link, 0)
    # Everything is eventually served within the generous slot budget.
    assert scheduler.unsatisfied_after(demands, schedule) == {}
