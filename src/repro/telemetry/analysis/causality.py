"""Causal trigger-chain analysis: critical paths and latency attribution.

Schema v3 traces carry ``id``/``cause`` pointers that link every event
to the one that triggered it — a signature detection points at the
trigger burst it heard, a slot execution at the detection (or backup
restart) that planned it, a duty burst at the slot that anchored it.
Each event has at most one cause, so the pointers form a *forest* of
trigger trees, one tree per chain restart.

This module reconstructs those trees per controller batch and answers
the question the flat trace cannot: **which link made this batch
slow?**

* :func:`causality_report` — the full analysis: per-batch critical
  path (the cause-chain ending at the batch's last executed slot),
  per-edge waits, per-link/per-step attribution and per-link slack.
* :func:`summarize_causality` — a small plain-dict rollup (makespan
  percentiles, dominant links) cheap enough to ship across a process
  boundary, used by sweep workers and the benchmark trend history.

Conservation: along a critical path the edge waits telescope, so the
attributed waits sum to the batch makespan (terminal time minus chain
root time) up to float summation error — ``BatchChain.attributed_us``
vs. ``BatchChain.makespan_us``, pinned by the causality tests.

Events evicted from the recorder's ring buffer leave dangling
``cause`` pointers; a walk treats the first missing parent as the
chain root, so bounded-buffer traces degrade gracefully (the path is
truncated, never wrong).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

#: Critical-path steps are labelled by the *child* event: what the
#: chain was waiting for during that edge.
Link = Tuple[Optional[int], Optional[int]]


def _percentile(ordered: List[float], q: float) -> float:
    """Nearest-rank percentile over an already-sorted list."""
    if not ordered:
        return 0.0
    rank = max(1, int(round(q / 100.0 * len(ordered) + 0.5)))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass
class ChainEdge:
    """One parent -> child step on a batch's critical path."""

    child_id: int
    parent_id: Optional[int]       # None on the root pseudo-edge
    ev: str                        # child event kind
    t_parent: float
    t_child: float
    #: (acting parent node, acting child node); None side when the
    #: event has no node (controller events) or the parent is missing.
    link: Link = (None, None)
    #: slot_exec reference kind ("primary"/"backup"/...), else None.
    via: Optional[str] = None
    slot: Optional[int] = None

    @property
    def wait_us(self) -> float:
        return self.t_child - self.t_parent

    def step_label(self) -> str:
        label = self.ev
        if self.via:
            label += f"[{self.via}]"
        return label

    def to_json(self) -> dict:
        return {
            "child_id": self.child_id, "parent_id": self.parent_id,
            "ev": self.ev, "via": self.via, "slot": self.slot,
            "link": list(self.link), "t_parent": self.t_parent,
            "t_child": self.t_child, "wait_us": self.wait_us,
        }


@dataclass
class BatchChain:
    """The critical path of one batch's trigger tree."""

    batch: int
    root_id: int
    terminal_id: int               # last executed slot's slot_exec
    terminal_slot: int
    t_root: float
    t_end: float
    #: Root -> terminal, in causal order (first edge leaves the root).
    edges: List[ChainEdge] = field(default_factory=list)
    #: Per-event slack within this batch: how much later the event
    #: could have happened without moving the batch's end (0 on the
    #: critical path).  Keyed by event id.
    slack_us: Dict[int, float] = field(default_factory=dict)

    @property
    def makespan_us(self) -> float:
        return self.t_end - self.t_root

    @property
    def attributed_us(self) -> float:
        """Sum of critical-path waits; telescopes to the makespan."""
        return sum(edge.wait_us for edge in self.edges)

    def wait_by_link(self) -> Dict[Link, float]:
        waits: Dict[Link, float] = {}
        for edge in self.edges:
            waits[edge.link] = waits.get(edge.link, 0.0) + edge.wait_us
        return waits

    def wait_by_step(self) -> Dict[str, float]:
        waits: Dict[str, float] = {}
        for edge in self.edges:
            label = edge.step_label()
            waits[label] = waits.get(label, 0.0) + edge.wait_us
        return waits

    def dominant_link(self) -> Tuple[Optional[Link], float]:
        """The link charged the most critical-path wait."""
        best: Tuple[Optional[Link], float] = (None, 0.0)
        for link, wait in sorted(self.wait_by_link().items(),
                                 key=lambda kv: (-kv[1], str(kv[0]))):
            if link != (None, None):
                return link, wait
            best = (link, wait)
        return best

    def to_json(self) -> dict:
        return {
            "batch": self.batch, "root_id": self.root_id,
            "terminal_id": self.terminal_id,
            "terminal_slot": self.terminal_slot,
            "t_root": self.t_root, "t_end": self.t_end,
            "makespan_us": self.makespan_us,
            "attributed_us": self.attributed_us,
            "edges": [edge.to_json() for edge in self.edges],
        }

    def render(self) -> str:
        lines = [
            f"batch {self.batch} — {self.makespan_us / 1000.0:.3f} ms "
            f"root-to-end, {len(self.edges)} critical steps "
            f"(terminal slot {self.terminal_slot})",
            f"  {'t (us)':>12}  {'wait (us)':>10}  {'step':<22} link",
        ]
        for edge in self.edges:
            lines.append(
                f"  {edge.t_child:>12.2f}  {edge.wait_us:>10.2f}  "
                f"{edge.step_label():<22} {_fmt_link(edge.link)}")
        return "\n".join(lines)


def _fmt_link(link: Link) -> str:
    src, dst = link
    if src is None and dst is None:
        return "(control)"
    return f"{'?' if src is None else src} -> {'?' if dst is None else dst}"


@dataclass
class CausalityReport:
    """Per-batch critical paths plus cross-batch rollups."""

    batches: List[BatchChain] = field(default_factory=list)
    events: int = 0                # records examined
    spanned: int = 0               # records carrying a v3 id

    @property
    def has_spans(self) -> bool:
        return self.spanned > 0

    def makespans_us(self) -> List[float]:
        return [chain.makespan_us for chain in self.batches]

    def makespan_percentile_us(self, q: float) -> float:
        return _percentile(sorted(self.makespans_us()), q)

    def total_wait_by_link(self) -> Dict[Link, float]:
        waits: Dict[Link, float] = {}
        for chain in self.batches:
            for link, wait in chain.wait_by_link().items():
                waits[link] = waits.get(link, 0.0) + wait
        return waits

    def total_wait_by_step(self) -> Dict[str, float]:
        waits: Dict[str, float] = {}
        for chain in self.batches:
            for step, wait in chain.wait_by_step().items():
                waits[step] = waits.get(step, 0.0) + wait
        return waits

    def slowest(self) -> Optional[BatchChain]:
        if not self.batches:
            return None
        return max(self.batches, key=lambda c: (c.makespan_us, -c.batch))

    def top_links(self, n: int = 3) -> List[Tuple[Link, float]]:
        ranked = [(link, wait)
                  for link, wait in self.total_wait_by_link().items()
                  if link != (None, None)]
        ranked.sort(key=lambda kv: (-kv[1], str(kv[0])))
        return ranked[:n]

    def to_json(self) -> dict:
        return {
            "events": self.events,
            "spanned": self.spanned,
            "batches": [chain.to_json() for chain in self.batches],
            "makespan_p50_us": self.makespan_percentile_us(50.0),
            "makespan_p95_us": self.makespan_percentile_us(95.0),
            "wait_by_step_us": dict(sorted(
                self.total_wait_by_step().items())),
            "top_links": [{"link": list(link), "wait_us": wait}
                          for link, wait in self.top_links()],
        }

    def render(self) -> str:
        if not self.has_spans:
            return ("causality: trace carries no causal spans "
                    "(recorded before schema v3) — nothing to attribute")
        lines = [f"causality — {len(self.batches)} batch chains from "
                 f"{self.spanned} spanned events"]
        if self.batches:
            lines.append(
                f"  makespan             p50 "
                f"{self.makespan_percentile_us(50.0) / 1000.0:.3f} ms  "
                f"p95 {self.makespan_percentile_us(95.0) / 1000.0:.3f} ms")
            steps = sorted(self.total_wait_by_step().items(),
                           key=lambda kv: -kv[1])
            total = sum(wait for _, wait in steps) or 1.0
            for step, wait in steps[:4]:
                lines.append(f"  critical wait        {step:<20} "
                             f"{wait / 1000.0:>9.3f} ms "
                             f"({100.0 * wait / total:4.1f} %)")
            for link, wait in self.top_links():
                lines.append(f"  busiest link         {_fmt_link(link):<20} "
                             f"{wait / 1000.0:>9.3f} ms on critical paths")
            slowest = self.slowest()
            if slowest is not None:
                link, wait = slowest.dominant_link()
                culprit = (f"; {wait / 1000.0:.3f} ms of it on link "
                           f"{_fmt_link(link)}" if link is not None else "")
                lines.append(
                    f"  slowest chain        batch {slowest.batch}: "
                    f"{slowest.makespan_us / 1000.0:.3f} ms root-to-end "
                    f"over {len(slowest.edges)} steps{culprit}")
        else:
            lines.append("  (no completed batch chains in trace)")
        return "\n".join(lines)


def _edge_link(parent: Optional[dict], child: dict) -> Link:
    # sig_detect records both ends of the trigger link explicitly;
    # everything else derives from the acting nodes of the two events.
    if child.get("ev") == "sig_detect":
        return (child.get("src"), child.get("node"))
    parent_node = parent.get("node") if parent else None
    return (parent_node, child.get("node"))


def _slot_batch_map(records: List[dict]) -> Dict[int, int]:
    slot_batch: Dict[int, int] = {}
    for record in records:
        if record.get("ev") == "sched_dispatch":
            for slot in range(record["first_slot"],
                              record["last_slot"] + 1):
                slot_batch[slot] = record["batch"]
    return slot_batch


def causality_report(records: Iterable[dict]) -> CausalityReport:
    """Reconstruct per-batch trigger trees and their critical paths.

    Works on live recorder records or loaded JSONL.  Traces without
    v3 spans produce an empty report (``has_spans`` is ``False``)
    rather than an error, so tooling can run on any schema version.
    """
    records = [r for r in records if isinstance(r, dict) and "ev" in r]
    report = CausalityReport(events=len(records))
    by_id: Dict[int, dict] = {}
    for record in records:
        eid = record.get("id")
        if eid is not None:
            by_id[eid] = record
    report.spanned = len(by_id)
    if not by_id:
        return report

    slot_batch = _slot_batch_map(records)

    # Terminal per batch: the last slot_exec (by time, then id) whose
    # slot the batch dispatched — the moment the batch's chain ended.
    terminals: Dict[int, dict] = {}
    for record in records:
        if record.get("ev") != "slot_exec" or record.get("id") is None:
            continue
        batch = slot_batch.get(record.get("slot"))
        if batch is None:
            continue
        best = terminals.get(batch)
        if (best is None
                or (record["t"], record["id"]) > (best["t"], best["id"])):
            terminals[batch] = record

    # Children index for the slack pass.
    children: Dict[int, List[dict]] = {}
    for record in by_id.values():
        cause = record.get("cause")
        if cause is not None and cause in by_id:
            children.setdefault(cause, []).append(record)

    for batch in sorted(terminals):
        terminal = terminals[batch]
        # Walk the cause chain terminal -> root.  A missing parent
        # (evicted from the ring, or a genuine root) ends the walk.
        path: List[dict] = [terminal]
        seen = {terminal["id"]}
        node = terminal
        while True:
            cause = node.get("cause")
            if cause is None or cause not in by_id or cause in seen:
                break
            node = by_id[cause]
            seen.add(cause)
            path.append(node)
        path.reverse()                       # root first
        root = path[0]
        chain = BatchChain(
            batch=batch, root_id=root["id"], terminal_id=terminal["id"],
            terminal_slot=terminal["slot"], t_root=root["t"],
            t_end=terminal["t"])
        for parent, child in zip(path, path[1:]):
            chain.edges.append(ChainEdge(
                child_id=child["id"], parent_id=parent["id"],
                ev=child["ev"], t_parent=parent["t"], t_child=child["t"],
                link=_edge_link(parent, child), via=child.get("via"),
                slot=child.get("slot")))

        # Slack: how late each event in the root's tree runs relative
        # to the batch end, measured at its subtree's latest moment.
        # Iterative post-order (chains run thousands of events deep —
        # recursion would hit the interpreter limit).
        subtree_max: Dict[int, float] = {}
        stack: List[Tuple[dict, bool]] = [(root, False)]
        while stack:
            record, expanded = stack.pop()
            eid = record["id"]
            if expanded:
                latest = record["t"]
                for child in children.get(eid, ()):
                    latest = max(latest, subtree_max[child["id"]])
                subtree_max[eid] = latest
            else:
                stack.append((record, True))
                for child in children.get(eid, ()):
                    if child["id"] not in subtree_max:
                        stack.append((child, False))
        for eid, latest in subtree_max.items():
            chain.slack_us[eid] = max(0.0, chain.t_end - latest)
        report.batches.append(chain)
    return report


def summarize_causality(records: Iterable[dict]) -> Optional[dict]:
    """Small, picklable rollup of :func:`causality_report`.

    Returns ``None`` for traces without causal spans.  Used by sweep
    workers (per-point observability without shipping whole traces)
    and by the benchmark trend history (``critical_makespan_*``).
    """
    report = causality_report(records)
    if not report.has_spans:
        return None
    slowest = report.slowest()
    summary = {
        "batches": len(report.batches),
        "makespan_p50_us": round(report.makespan_percentile_us(50.0), 3),
        "makespan_p95_us": round(report.makespan_percentile_us(95.0), 3),
        "wait_by_step_us": {
            step: round(wait, 3)
            for step, wait in sorted(report.total_wait_by_step().items())},
        "top_links": [
            {"link": list(link), "wait_us": round(wait, 3)}
            for link, wait in report.top_links()],
    }
    if slowest is not None:
        link, wait = slowest.dominant_link()
        summary["slowest"] = {
            "batch": slowest.batch,
            "makespan_us": round(slowest.makespan_us, 3),
            "link": None if link is None else list(link),
            "link_wait_us": round(wait, 3),
        }
    return summary
