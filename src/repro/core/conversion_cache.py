"""Memoization of schedule conversion (the PR-2 profiler's control-
plane hot spot).

The converter's output is a pure function of

* the **control plane**: measured RSS matrix, link universe and
  converter config (together hashed into a *topology key* — rebuilt
  after a measurement campaign, which naturally invalidates every
  prior entry);
* the **backlog-derived inputs** of one call: the padded strict
  schedule, the ROP AP list and the per-AP association links;
* the **connector** retained from the previous batch — only its entry
  structure matters (``polls_after`` and duty bookkeeping are local to
  each call), so it is keyed by ``(src, dst, fake)`` triples.

Everything else the converter touches (``_next_slot_index``,
``_batch_id``) only *renumbers* the output: slot indices shift by a
constant and the batch id is whatever comes next.  A cache hit
therefore replays a stored template by cloning it with shifted
indices, which is exactly equal to running the conversion again
(enforced by ``tests/core/test_conversion_cache.py``).

Steady traffic makes this pay off quickly: under both saturation and
light load the scheduler settles into repeating strict batches (light
load is the extreme case — every padded batch is the same fake/poll
skeleton), so repeated controller epochs skip fake-link insertion and
trigger assignment entirely.

Hit/miss counts are exposed both as plain attributes and, when a
telemetry session is active, as ``converter.cache.hits`` /
``converter.cache.misses`` counters.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry
from ..topology.links import Link
from .relative_schedule import RelativeBatch, RelativeSlot, TriggerDuty

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from typing import Callable, FrozenSet, Iterable

    from ..sched.strict_schedule import StrictSchedule
    from .converter import ConverterConfig

#: Opaque-but-hashable composite cache key (see :meth:`ConversionCache.key`).
CacheKey = Tuple[object, ...]


def key_links(key: CacheKey) -> "FrozenSet[Link]":
    """Every link a cache key references.

    Covers the connector entries, the strict schedule and the per-AP
    association links — the named inputs of the memoized conversion.
    Links that only appear in the *output* template (accepted fake
    links) are not part of the key; see :func:`cached_links`.
    """
    _topology, connector_key, strict_key, _rop_aps, links_key = key
    links = set()
    if connector_key is not None:
        links.update(Link(src, dst) for src, dst, _fake in connector_key)
    for slot in strict_key:
        links.update(Link(src, dst) for src, dst in slot)
    for _ap, ap_link_pairs in links_key:
        links.update(Link(src, dst) for src, dst in ap_link_pairs)
    return frozenset(links)


def key_semantic_links(key: CacheKey) -> "FrozenSet[Link]":
    """The links whose *RSS* the memoized conversion read directly.

    Connector and strict-schedule links feed trigger assignment and
    fake-insertion SINR tests; the per-AP association table
    (``links_key``) by contrast is consulted only through conflict-
    graph edges and ``shares_node`` during ROP sharing, so an RSS
    change on one of *those* links invalidates an entry only if it
    flipped such an edge (see
    :meth:`repro.core.converter.ScheduleConverter.revalidate_cache`).
    """
    _topology, connector_key, strict_key, _rop_aps, _links_key = key
    links = set()
    if connector_key is not None:
        links.update(Link(src, dst) for src, dst, _fake in connector_key)
    for slot in strict_key:
        links.update(Link(src, dst) for src, dst in slot)
    return frozenset(links)


def key_ap_owner(key: CacheKey) -> Dict[Link, int]:
    """Association link -> owning AP, from the key's per-AP table."""
    owner: Dict[Link, int] = {}
    for ap, ap_link_pairs in key[4]:
        for src, dst in ap_link_pairs:
            owner[Link(src, dst)] = ap
    return owner


def key_rop_aps(key: CacheKey) -> "FrozenSet[int]":
    """The ROP AP ids a cache key references."""
    return frozenset(key[3])


def cached_links(entry: CachedConversion) -> "FrozenSet[Link]":
    """Every link appearing in a stored template's slots.

    A superset of the key's strict links: fake links the conversion
    *accepted* live only in the output batch, and a replay re-emits
    them — so invalidation must look here too, not just at the key.
    """
    return frozenset(e.link for slot in entry.batch.slots
                     for e in slot.entries)


def conversion_topology_key(rss_matrix: np.ndarray, links: Sequence[Link],
                            config: "ConverterConfig") -> str:
    """Content hash of the control-plane state conversion depends on.

    Covers the measured RSS matrix (the interference map and the
    conflict graph are deterministic functions of it), the link
    universe (ordering matters: fake candidates are tried in order)
    and the converter knobs.
    """
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(rss_matrix).tobytes())
    for link in links:
        digest.update(b"%d,%d;" % (link.src, link.dst))
    digest.update(repr((
        config.max_inbound, config.max_outbound, config.insert_fakes,
        config.insert_rop, tuple(sorted(config.fake_exclude_nodes)),
    )).encode())
    return digest.hexdigest()


def clone_batch(batch: RelativeBatch, delta: int = 0,
                batch_id: Optional[int] = None) -> RelativeBatch:
    """Deep-enough copy of a batch with every slot index shifted.

    Frozen leaves (:class:`SlotEntry`, link objects, frozensets) are
    shared; every mutable container is fresh, so neither the caller
    nor later converter calls can corrupt a stored template.
    """
    if delta == 0:
        duties = dict(batch.duties)
    else:
        duties = {
            (node, slot + delta): TriggerDuty(
                node=duty.node, slot=duty.slot + delta,
                targets=duty.targets, rop_polls=duty.rop_polls,
                rop_flag=duty.rop_flag)
            for (node, slot), duty in batch.duties.items()
        }
    return RelativeBatch(
        batch_id=batch.batch_id if batch_id is None else batch_id,
        slots=[RelativeSlot(index=slot.index + delta,
                            entries=list(slot.entries),
                            rop_after=list(slot.rop_after))
               for slot in batch.slots],
        duties=duties,
        inbound={(slot + delta, link): list(nodes)
                 for (slot, link), nodes in batch.inbound.items()},
        rop_polls={slot + delta: list(aps)
                   for slot, aps in batch.rop_polls.items()},
        initial=batch.initial,
        untriggerable=[(slot + delta, link)
                       for slot, link in batch.untriggerable],
    )


@dataclass
class CachedConversion:
    """One stored conversion, in the slot numbering of its first run."""

    #: ``_next_slot_index`` when the template was converted; a replay
    #: shifts every index by ``current_next_slot_index - base``.
    base: int
    #: How many new slot indices the conversion consumed.
    n_new_slots: int
    batch: RelativeBatch
    #: AP ids the conversion appended to the *incoming* connector
    #: slot's ``rop_after`` (an ROP slot interposed right after the
    #: connector mutates the previous batch's last slot); a replay
    #: must reproduce that side effect on the live connector.
    connector_rop_append: List[int]


class ConversionCache:
    """Bounded FIFO memo of strict-to-relative conversions.

    One instance is shared across a controller's converter rebuilds;
    :meth:`set_topology` swaps the topology key after a measurement
    campaign so stale entries simply stop matching (and eventually
    fall out of the FIFO bound).
    """

    def __init__(self, topology_key: str = "", max_entries: int = 256):
        self.topology_key = topology_key
        self.max_entries = max_entries
        self._entries: "OrderedDict[CacheKey, CachedConversion]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Revalidation rejections attributed to the soundness rule
        #: that fired (``rule1`` dirty semantic link, ``rule2`` dirty
        #: polled ROP AP, ``rule3`` fake-insertion instability,
        #: ``rule4`` flipped ROP-sharing edge) — the "why is the hit
        #: rate what it is" answer the bare hit/miss counts lack.
        self.reject_counts: Dict[str, int] = {
            "rule1": 0, "rule2": 0, "rule3": 0, "rule4": 0}
        self._trace = telemetry.current()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def count_reject(self, rule: str) -> None:
        """Attribute one revalidation rejection to a soundness rule."""
        self.reject_counts[rule] = self.reject_counts.get(rule, 0) + 1
        if self._trace.enabled:
            self._trace.metrics.counter(
                "converter.cache.reject." + rule).inc()

    def set_topology(self, topology_key: str) -> None:
        """Invalidate by rekeying: entries under the old control-plane
        hash can never match again."""
        self.topology_key = topology_key

    def invalidate_link(self, link: Link) -> int:
        """Evict every entry that involves ``link``; keep the rest.

        "Involves" covers both the key (connector, strict schedule,
        ROP association links) and the stored template (a fake link
        accepted into the output would be re-emitted by a replay).
        Entries over disjoint chains are untouched — the regression
        tests pin that invalidating link *i* never costs unrelated
        conversions their hits.  Returns the number evicted.
        """
        return self.invalidate_links((link,))

    def invalidate_links(self, links: "Iterable[Link]") -> int:
        dirty = frozenset(links)
        if not dirty:
            return 0
        stale = [key for key, entry in self._entries.items()
                 if not dirty.isdisjoint(key_links(key))
                 or not dirty.isdisjoint(cached_links(entry))]
        for key in stale:
            del self._entries[key]
        if stale and self._trace.enabled:
            self._trace.metrics.gauge("converter.cache.entries").set(
                len(self._entries))
        return len(stale)

    def refine_topology(
            self, topology_key: str,
            keep: "Callable[[CacheKey, CachedConversion], bool]",
    ) -> Tuple[int, int]:
        """Partial rekey: migrate still-valid entries, evict the rest.

        The incremental controller's counterpart to
        :meth:`set_topology`.  After a localized control-plane change
        (one node's RSS row, one client joining) the new topology key
        would orphan *every* entry even though most conversions are
        unaffected.  Instead, each entry is offered to ``keep`` —
        the converter's dirty-region judgement — and survivors are
        re-filed under the new key with their FIFO order preserved,
        so untouched chains keep replaying from cache.

        Returns ``(kept, evicted)``.
        """
        migrated: "OrderedDict[CacheKey, CachedConversion]" = OrderedDict()
        kept = evicted = 0
        for key, entry in self._entries.items():
            if keep(key, entry):
                migrated[(topology_key,) + tuple(key[1:])] = entry
                kept += 1
            else:
                evicted += 1
        self._entries = migrated
        self.topology_key = topology_key
        if self._trace.enabled:
            self._trace.metrics.gauge("converter.cache.entries").set(
                len(self._entries))
        return kept, evicted

    def key(self, connector: Optional[RelativeSlot], strict: "StrictSchedule",
            rop_aps: Sequence[int],
            ap_links: Optional[Dict[int, List[Link]]]) -> CacheKey:
        connector_key = None if connector is None else tuple(
            (entry.link.src, entry.link.dst, entry.fake)
            for entry in connector.entries)
        strict_key = tuple(
            tuple((link.src, link.dst) for link in slot) for slot in strict)
        links_key = () if not ap_links else tuple(sorted(
            (ap, tuple((link.src, link.dst) for link in links))
            for ap, links in ap_links.items()))
        return (self.topology_key, connector_key, strict_key,
                tuple(rop_aps), links_key)

    def get(self, key: CacheKey) -> Optional[CachedConversion]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            if self._trace.enabled:
                self._trace.metrics.counter("converter.cache.misses").inc()
            return None
        self.hits += 1
        if self._trace.enabled:
            self._trace.metrics.counter("converter.cache.hits").inc()
        return entry

    def put(self, key: CacheKey, base: int, n_new_slots: int,
            batch: RelativeBatch, connector_rop_append: List[int]) -> None:
        while len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
        self._entries[key] = CachedConversion(
            base=base, n_new_slots=n_new_slots,
            batch=clone_batch(batch),
            connector_rop_append=list(connector_rop_append))
        if self._trace.enabled:
            self._trace.metrics.gauge("converter.cache.entries").set(
                len(self._entries))
