"""The live ops plane: Prometheus exporter, SLO tracking, flight recorder.

Everything post-hoc about the telemetry stack (doctor reports, causal
spans, sweep reports) answers "what happened"; this module answers
"what is happening *right now*" for a long-running controller
(:mod:`repro.service`):

* :func:`render_prometheus` — the metrics registry in Prometheus text
  exposition format (version 0.0.4), so a stock Prometheus scraper or
  a bare ``curl`` can watch live revision-latency histograms;
* :class:`OpsServer` — a stdlib-only asyncio HTTP endpoint serving
  ``/metrics``, ``/healthz`` and ``/statusz`` (JSON run state from a
  caller-supplied status provider);
* :class:`SloTracker` — rolling-window p99 latency target plus an
  oracle-mismatch budget, emitting doctor-style :class:`SloAlert`
  findings to subscribers the moment a budget is burned, not after
  the run ends;
* :class:`FlightRecorder` — dumps the tail of the active trace ring
  to a JSONL file when something goes wrong (oracle mismatch, SLO
  breach), capturing the causal context of an anomaly without tracing
  the whole run.

Layering: this module sits *on* the telemetry substrate (metrics,
jsonl, recorder, wallclock) and knows nothing about the service — the
service hands it callables (a status provider, alert subscribers), so
the ``repro.telemetry.ops -> repro.telemetry`` edge is the only one it
needs (see ``[tool.dominolint.layers]``).

Determinism: nothing here feeds back into simulation or controller
state.  Wall-clock readings come from :mod:`~repro.telemetry.wallclock`
and stay inside metrics, alerts and dump *file names* — never inside
trace records themselves.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from .jsonl import dumps_record, header_record
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, percentile
from .recorder import TraceRecorder
from .wallclock import perf_counter

__all__ = [
    "render_prometheus", "prometheus_name",
    "OpsServer",
    "SloAlert", "SloConfig", "SloTracker",
    "FlightRecorder",
]


# ----------------------------------------------------------------------
# Prometheus text rendering
# ----------------------------------------------------------------------
_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("0.5", 50.0), ("0.95", 95.0), ("0.99", 99.0))


def prometheus_name(name: str) -> str:
    """A registry name as a legal Prometheus metric name.

    Dots (the registry's namespace separator) become underscores;
    anything else outside ``[a-zA-Z0-9_:]`` is squashed to ``_``, and
    a leading digit gets a ``_`` prefix.
    """
    cleaned = _NAME_OK.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def render_prometheus(registry: MetricsRegistry) -> str:
    """The whole registry in Prometheus text exposition format.

    Counters render with the conventional ``_total`` suffix,
    histograms as summaries (p50/p95/p99 quantiles plus ``_count`` /
    ``_sum``).  Output is sorted by registry name, ends with exactly
    one trailing newline, and is valid even for an empty registry.
    """
    lines: List[str] = []
    for name in registry:
        metric = registry._metrics[name]  # registry iteration is sorted
        pname = prometheus_name(name)
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {pname}_total counter")
            lines.append(f"{pname}_total {_fmt(metric.value)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {pname} summary")
            snap = metric.snapshot()
            for label, pct in _QUANTILES:
                lines.append(
                    f'{pname}{{quantile="{label}"}} '
                    f"{_fmt(metric.percentile(pct))}")
            lines.append(f"{pname}_count {_fmt(snap['count'])}")
            lines.append(f"{pname}_sum {_fmt(snap['sum'])}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {_fmt(metric.value)}")
    return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    """A sample value: integers without the trailing ``.0``."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


# ----------------------------------------------------------------------
# SLO tracking
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SloAlert:
    """One live SLO finding, in the doctor's finding idiom.

    ``rule`` is machine-matchable (``slo_p99``, ``oracle_budget``),
    ``severity`` is ``warn`` or ``critical``, and :meth:`render`
    produces the same ``[severity] message`` line style the doctor's
    report uses, so the two read alike in a terminal.
    """

    rule: str
    severity: str
    message: str
    value: float
    threshold: float
    epoch: Optional[int] = None

    def render(self) -> str:
        where = f" (epoch {self.epoch})" if self.epoch is not None else ""
        return f"[{self.severity}] {self.rule}: {self.message}{where}"


@dataclass
class SloConfig:
    """Targets the tracker holds the service to."""

    #: Rolling-window p99 revision latency target, milliseconds.
    p99_target_ms: float = 50.0
    #: Observations the rolling window holds.
    window: int = 512
    #: Samples required before the p99 is judged at all (a p99 of
    #: three samples is noise, not a tail).
    min_samples: int = 32
    #: Oracle mismatches tolerated before the budget alert fires
    #: (0 = the first mismatch is already a breach).
    oracle_budget: int = 0


class SloTracker:
    """Rolling-window SLO judge with a subscribable alert stream.

    Feed it every revision latency (:meth:`observe_latency`) and every
    oracle verdict (:meth:`record_oracle`); it re-judges the rolling
    p99 / mismatch budget on each sample and pushes an
    :class:`SloAlert` to every subscriber on an ok→breach transition.
    Alerts are edge-triggered: a sustained breach alerts once, then
    re-arms only after the window recovers below target.
    """

    def __init__(self, config: Optional[SloConfig] = None):
        self.config = config if config is not None else SloConfig()
        self._window: Deque[float] = deque(maxlen=self.config.window)
        self._subscribers: List[Callable[[SloAlert], None]] = []
        self.alerts: List[SloAlert] = []
        self.samples = 0
        self.oracle_checks = 0
        self.oracle_failures = 0
        self._latency_breached = False

    # -- wiring ---------------------------------------------------------
    def subscribe(self, callback: Callable[[SloAlert], None]) -> None:
        """``callback`` receives every future alert, synchronously."""
        self._subscribers.append(callback)

    def _emit(self, alert: SloAlert) -> None:
        self.alerts.append(alert)
        for callback in self._subscribers:
            callback(alert)

    # -- observations ---------------------------------------------------
    @property
    def rolling_p99_ms(self) -> float:
        return percentile(sorted(self._window), 99.0)

    @property
    def breached(self) -> bool:
        return bool(self.alerts)

    def observe_latency(self, latency_ms: float,
                        epoch: Optional[int] = None) -> Optional[SloAlert]:
        """Fold one revision latency in; returns the alert if one fired."""
        self._window.append(float(latency_ms))
        self.samples += 1
        if len(self._window) < self.config.min_samples:
            return None
        p99 = self.rolling_p99_ms
        target = self.config.p99_target_ms
        if p99 > target:
            if self._latency_breached:
                return None         # edge-triggered: already alerted
            self._latency_breached = True
            alert = SloAlert(
                rule="slo_p99", severity="warn",
                message=(f"rolling p99 revision latency {p99:.3f} ms "
                         f"exceeds the {target:.3f} ms target over the "
                         f"last {len(self._window)} revisions"),
                value=p99, threshold=target, epoch=epoch)
            self._emit(alert)
            return alert
        self._latency_breached = False
        return None

    def record_oracle(self, ok: bool,
                      epoch: Optional[int] = None) -> Optional[SloAlert]:
        """Fold one equality-oracle verdict in."""
        self.oracle_checks += 1
        if ok:
            return None
        self.oracle_failures += 1
        budget = self.config.oracle_budget
        if self.oracle_failures <= budget:
            return None
        alert = SloAlert(
            rule="oracle_budget", severity="critical",
            message=(f"{self.oracle_failures} oracle mismatch(es) exceed "
                     f"the budget of {budget} — incremental revisions "
                     f"are diverging from from-scratch recomputes"),
            value=float(self.oracle_failures), threshold=float(budget),
            epoch=epoch)
        self._emit(alert)
        return alert

    def status(self) -> Dict[str, Any]:
        """JSON-ready summary for ``/statusz``."""
        return {
            "p99_target_ms": self.config.p99_target_ms,
            "rolling_p99_ms": round(self.rolling_p99_ms, 4),
            "window": len(self._window),
            "samples": self.samples,
            "oracle_checks": self.oracle_checks,
            "oracle_failures": self.oracle_failures,
            "breached": self.breached,
            "alerts": [alert.render() for alert in self.alerts],
        }


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
class FlightRecorder:
    """Dump the tail of the live trace when an anomaly fires.

    The trace recorder already *is* a bounded ring of recent raw
    events; the flight recorder's job is to freeze that ring's tail to
    disk at the moment of an anomaly, so the exact causal context (the
    last revisions, the events that fed them) survives without anyone
    having traced the whole run to a file.

    Dumps are JSONL: the standard trace header, one ``__flight__``
    meta record naming the trigger, then the last ``keep_last``
    records of the ring — loadable by every existing trace tool
    (``python -m repro.telemetry doctor dump.jsonl`` works).  File
    names are ``flight-<seq>-<reason>.jsonl``, sequence-numbered per
    recorder so repeated anomalies never overwrite each other.
    """

    #: Key of the dump's meta record (second line, after the header).
    META_KEY = "__flight__"

    def __init__(self, recorder: TraceRecorder, dump_dir: str,
                 keep_last: int = 4096):
        if keep_last <= 0:
            raise ValueError("flight recorder keep_last must be positive")
        self.recorder = recorder
        self.dump_dir = dump_dir
        self.keep_last = keep_last
        self.dumps: List[str] = []

    def dump(self, reason: str,
             detail: Optional[Dict[str, Any]] = None) -> str:
        """Write one dump; returns the file path."""
        os.makedirs(self.dump_dir, exist_ok=True)
        seq = len(self.dumps)
        safe_reason = _NAME_OK.sub("_", reason)
        path = os.path.join(self.dump_dir,
                            f"flight-{seq:04d}-{safe_reason}.jsonl")
        records = self.recorder.records()
        tail = records[-self.keep_last:]
        meta: Dict[str, Any] = {
            self.META_KEY: 1,
            "reason": reason,
            "events": len(tail),
            "evicted_before_dump": self.recorder.evicted,
        }
        if detail:
            meta.update(detail)
        with open(path, "w", encoding="utf-8", newline="\n") as stream:
            stream.write(dumps_record(header_record()) + "\n")
            stream.write(dumps_record(meta) + "\n")
            for record in tail:
                stream.write(dumps_record(record) + "\n")
        self.dumps.append(path)
        return path


# ----------------------------------------------------------------------
# The HTTP ops endpoint
# ----------------------------------------------------------------------
#: ``/statusz`` provider: a callable returning a JSON-serializable dict.
StatusFn = Callable[[], Dict[str, Any]]

_RESPONSE = (
    "HTTP/1.1 {status}\r\n"
    "Content-Type: {ctype}\r\n"
    "Content-Length: {length}\r\n"
    "Connection: close\r\n"
    "\r\n"
)

#: Content type Prometheus scrapers expect from a text exposition.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class OpsServer:
    """Stdlib-only asyncio HTTP endpoint for a live controller.

    Routes:

    * ``GET /metrics``  — :func:`render_prometheus` over ``metrics``;
    * ``GET /healthz``  — ``ok`` (200) while the provider reports
      healthy, ``unhealthy`` (503) otherwise;
    * ``GET /statusz``  — the status provider's dict as pretty JSON,
      with the server's own ``uptime_s`` folded in.

    Only ``GET`` is served (405 otherwise); unknown paths 404.  The
    server binds ``host:port`` (``port=0`` picks a free port, exposed
    as :attr:`port` after :meth:`start` — tests use that).  One
    request per connection: parse the request line, drain headers,
    respond, close — the minimal HTTP/1.x a scraper or curl needs.
    """

    def __init__(self, metrics: MetricsRegistry,
                 status_fn: Optional[StatusFn] = None,
                 healthy_fn: Optional[Callable[[], bool]] = None,
                 host: str = "127.0.0.1", port: int = 0):
        self.metrics = metrics
        self.status_fn = status_fn
        self.healthy_fn = healthy_fn
        self.host = host
        self.port = port
        self.requests = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._started_at = perf_counter()

    @property
    def uptime_s(self) -> float:
        return perf_counter() - self._started_at

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> int:
        """Bind and serve in the running loop; returns the bound port."""
        if self._server is not None:
            raise RuntimeError("ops server already started")
        self._started_at = perf_counter()
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port)
        sockets = self._server.sockets or ()
        for sock in sockets:
            self.port = sock.getsockname()[1]
            break
        return self.port

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    # -- request handling -----------------------------------------------
    def _respond(self, path: str) -> Tuple[str, str, str]:
        """(status line, content type, body) for one GET path."""
        if path == "/metrics":
            return ("200 OK", METRICS_CONTENT_TYPE,
                    render_prometheus(self.metrics))
        if path == "/healthz":
            healthy = self.healthy_fn() if self.healthy_fn else True
            if healthy:
                return ("200 OK", "text/plain; charset=utf-8", "ok\n")
            return ("503 Service Unavailable",
                    "text/plain; charset=utf-8", "unhealthy\n")
        if path == "/statusz":
            status = dict(self.status_fn()) if self.status_fn else {}
            status.setdefault("uptime_s", round(self.uptime_s, 3))
            body = json.dumps(status, indent=2, sort_keys=True) + "\n"
            return ("200 OK", "application/json; charset=utf-8", body)
        return ("404 Not Found", "text/plain; charset=utf-8",
                "not found; routes: /metrics /healthz /statusz\n")

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            # Drain headers up to the blank line; nothing in them
            # matters for these routes.
            while True:
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            if len(parts) < 2:
                status, ctype, body = ("400 Bad Request",
                                       "text/plain; charset=utf-8",
                                       "bad request\n")
            elif parts[0] != "GET":
                status, ctype, body = ("405 Method Not Allowed",
                                       "text/plain; charset=utf-8",
                                       "only GET is served\n")
            else:
                path = parts[1].split("?", 1)[0]
                status, ctype, body = self._respond(path)
            payload = body.encode("utf-8")
            head = _RESPONSE.format(status=status, ctype=ctype,
                                    length=len(payload))
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
            self.requests += 1
        except (ConnectionError, asyncio.IncompleteReadError):
            pass                      # a dropped scraper is not our problem
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
