"""Metrics: throughput/delay/fairness accounting and slot timelines."""

from .stats import FlowRecord, FlowRecorder, jain_index
from .timeline import SlotEvent, TimelineRecorder

__all__ = ["FlowRecord", "FlowRecorder", "SlotEvent", "TimelineRecorder",
           "jain_index"]
