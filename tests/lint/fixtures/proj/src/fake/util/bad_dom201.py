"""DOM201 fixture: util reaches up into the sim layer."""

from fake.sim import good
from ..sim.good import due


def wrapper(now, deadline):
    _ = good
    return due(now, deadline)
