"""Tests for topology construction — canonical figures and T(m, n)."""

import pytest

from repro.sim.phy import USRP
from repro.topology.builder import (TopologyError, build_t_topology,
                                    fig1_topology, fig7_topology,
                                    fig13a_topology, fig13b_topology,
                                    random_t_topology, usrp_pair_topology)
from repro.topology.links import Link
from repro.topology.trace import two_building_trace


# ----------------------------------------------------------------------
# Fig. 1: the semantics the paper states, verified via the maps
# ----------------------------------------------------------------------
class TestFig1:
    def setup_method(self):
        self.topo = fig1_topology()
        self.imap = self.topo.interference_map()

    def test_flows(self):
        assert self.topo.flows == [Link(0, 1), Link(3, 2), Link(4, 5)]

    def test_ap1_hidden_to_ap3(self):
        """AP1 and AP3 cannot hear each other, yet AP1 destroys C3's
        reception — the links form a hidden pair."""
        assert not self.imap.in_cs_range(0, 4)
        assert self.imap.classify_pair(Link(0, 1), Link(4, 5)) == "hidden"

    def test_c2_and_ap1_exposed(self):
        """C2 and AP1 carrier-sense each other but both receptions
        survive concurrency — an exposed pair."""
        assert self.imap.in_cs_range(0, 3)
        assert self.imap.classify_pair(Link(0, 1), Link(3, 2)) == "exposed"

    def test_uplink_compatible_with_both_downlinks(self):
        assert not self.imap.conflicts(Link(3, 2), Link(0, 1))
        assert not self.imap.conflicts(Link(3, 2), Link(4, 5))


class TestFig7:
    def setup_method(self):
        self.topo = fig7_topology()
        self.imap = self.topo.interference_map()

    def test_downlink_conflict_graph_matches_fig7b(self):
        """Pairs (1,2) and (3,4) conflict; everything else is free."""
        downlinks = [Link(2 * i, 2 * i + 1) for i in range(4)]
        conflicts = {
            frozenset((a, b))
            for a in downlinks for b in downlinks
            if a != b and self.imap.conflicts(a, b)
        }
        assert conflicts == {
            frozenset((Link(0, 1), Link(2, 3))),
            frozenset((Link(4, 5), Link(6, 7))),
        }

    def test_ap3_ap4_hidden(self):
        assert not self.imap.in_cs_range(4, 6)

    def test_c4_can_trigger_ap3(self):
        """Point 1 of Fig. 10: the receiver C4 wakes hidden AP3."""
        assert self.imap.node_can_trigger(7, 4)

    def test_ap2_and_ap3_audible_at_ap1(self):
        assert self.imap.in_cs_range(2, 0)
        assert self.imap.in_cs_range(4, 0)

    def test_uplinks_flag(self):
        topo = fig7_topology(uplinks=True)
        assert len(topo.flows) == 8


class TestFig13:
    def test_13a_all_links_mutually_exposed(self):
        topo = fig13a_topology()
        imap = topo.interference_map()
        links = topo.flows
        for i, a in enumerate(links):
            for b in links[i + 1:]:
                assert imap.classify_pair(a, b) == "exposed"

    def test_13b_three_senders_mutually_silent(self):
        topo = fig13b_topology()
        imap = topo.interference_map()
        # AP1..AP3 out of range of each other.
        for a in (0, 2):
            for b in (2, 4):
                if a != b:
                    assert not imap.in_cs_range(a, b)
        # AP4 hears all three.
        for other in (0, 2, 4):
            assert imap.in_cs_range(6, other)
        # Still no actual conflicts anywhere.
        for i, a in enumerate(topo.flows):
            for b in topo.flows[i + 1:]:
                assert not imap.conflicts(a, b)


class TestUsrpScenarios:
    def test_profiles_and_flows(self):
        for scenario in ("SC", "HT", "ET"):
            topo = usrp_pair_topology(scenario)
            assert topo.profile is USRP
            assert topo.flows == [Link(0, 1), Link(2, 3)]

    def test_sc_conflicting_and_sensing(self):
        imap = usrp_pair_topology("SC").interference_map()
        assert imap.conflicts(Link(0, 1), Link(2, 3))
        assert imap.in_cs_range(0, 2)

    def test_ht_hidden(self):
        imap = usrp_pair_topology("HT").interference_map()
        assert imap.classify_pair(Link(0, 1), Link(2, 3)) == "hidden"

    def test_et_exposed(self):
        imap = usrp_pair_topology("ET").interference_map()
        assert imap.classify_pair(Link(0, 1), Link(2, 3)) == "exposed"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            usrp_pair_topology("XX")


# ----------------------------------------------------------------------
# T(m, n)
# ----------------------------------------------------------------------
class TestTmn:
    def test_shape_and_flows(self):
        trace = two_building_trace()
        topo = build_t_topology(trace, 10, 2, seed=3)
        assert len(topo.network.aps) == 10
        assert len(topo.network.clients) == 20
        assert len(topo.flows) == 40  # up + down per client
        for ap in topo.network.aps:
            assert len(topo.network.clients_of(ap.node_id)) == 2

    def test_clients_in_comm_range_of_their_ap(self):
        trace = two_building_trace()
        topo = build_t_topology(trace, 10, 2, seed=3)
        for client in topo.network.clients:
            assert trace.can_communicate(client.node_id, client.ap_id)

    def test_deterministic_per_seed(self):
        trace = two_building_trace()
        a = build_t_topology(trace, 6, 2, seed=1)
        b = build_t_topology(trace, 6, 2, seed=1)
        assert a.flows == b.flows
        c = build_t_topology(trace, 6, 2, seed=2)
        assert a.flows != c.flows

    def test_nodes_never_reused(self):
        trace = two_building_trace()
        topo = build_t_topology(trace, 10, 2, seed=3)
        ids = [n.node_id for n in topo.network]
        assert len(ids) == len(set(ids)) == 30

    def test_impossible_shape_raises(self):
        trace = two_building_trace()
        with pytest.raises(TopologyError):
            build_t_topology(trace, 15, 10, seed=0)  # needs 165 nodes

    def test_random_topology_builds(self):
        topo = random_t_topology(5, 2, seed=42)
        assert len(topo.network.aps) == 5
        assert len(topo.flows) == 20


def test_association_links_cover_both_directions():
    topo = fig1_topology()
    links = topo.all_association_links()
    assert Link(0, 1) in links and Link(1, 0) in links
    assert len(links) == 6


def test_downlinks_uplinks_partition():
    topo = fig1_topology()
    assert set(topo.downlinks()) == {Link(0, 1), Link(4, 5)}
    assert set(topo.uplinks()) == {Link(3, 2)}
