"""DOM301 fixture: emissions naming an unregistered event kind."""


def raw(rec):
    rec._append(("pong", 0.0, 1))


def record(tel):
    tel.emit({"ev": "pong", "t": 0.0})
