"""The shared wireless medium.

The medium knows the RSS between every pair of nodes (from a measured
or synthetic trace, Sec. 4.2.1 of the paper) and fans transmissions
out to every radio that can hear them.  Radios then track per-frame
SINR and decide reception; the medium itself is purely a broadcast
fabric.

Energy below ``energy_floor_dbm`` (well under the noise floor) is
dropped at the medium to keep the event count proportional to the
number of *audible* neighbours rather than the network size.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from .. import telemetry
from .engine import Simulator
from .packet import Frame
from .phy import PhyProfile, dbm_to_mw

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .radio import Radio

RssFn = Callable[[int, int], float]

_tx_ids = itertools.count(1)


@dataclass
class Transmission:
    """One frame in flight."""

    frame: Frame
    src: int
    start: float
    end: float
    tx_power_dbm: float
    uid: int = field(default_factory=lambda: next(_tx_ids))

    @property
    def airtime_us(self) -> float:
        return self.end - self.start

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Transmission) and other.uid == self.uid


class Medium:
    """Broadcast fabric connecting all radios through an RSS matrix.

    Parameters
    ----------
    sim:
        The simulation engine.
    profile:
        PHY profile shared by every node on this channel.
    rss_dbm:
        ``rss_dbm(tx_id, rx_id)`` returns the received signal strength
        in dBm at ``rx_id`` when ``tx_id`` transmits at the profile's
        nominal power.  Return ``-inf`` (or anything below the energy
        floor) for unreachable pairs.
    """

    def __init__(self, sim: Simulator, profile: PhyProfile, rss_dbm: RssFn,
                 energy_floor_dbm: float = -105.0):
        self.sim = sim
        self.profile = profile
        self._rss_dbm = rss_dbm
        self.energy_floor_dbm = energy_floor_dbm
        self._radios: Dict[int, "Radio"] = {}
        self._reach_cache: Dict[int, List[Tuple["Radio", float, float]]] = {}
        self.active: Dict[int, Transmission] = {}
        self._trace = telemetry.current()

    # ------------------------------------------------------------------
    # Registration / topology
    # ------------------------------------------------------------------
    def make_radio(self, node_id: int) -> "Radio":
        """Build (and register) this medium's radio implementation.

        The factory counterpart of ``Simulator.make_medium``: nodes
        attach through it so a matrix medium can hand out its own
        radio type without the node layer knowing backends exist.
        """
        from .radio import Radio
        return Radio(node_id, self)

    def register(self, radio: "Radio") -> None:
        if radio.node_id in self._radios:
            raise ValueError(f"duplicate radio for node {radio.node_id}")
        self._radios[radio.node_id] = radio
        self._reach_cache.clear()

    def rss_dbm(self, tx_id: int, rx_id: int) -> float:
        """RSS at ``rx_id`` for a transmission from ``tx_id``."""
        return self._rss_dbm(tx_id, rx_id)

    def invalidate_topology(self) -> None:
        """Drop cached reachability after the RSS ground truth changed
        (node mobility)."""
        self._reach_cache.clear()

    def audible(self, tx_id: int) -> List[Tuple["Radio", float, float]]:
        """Radios that hear ``tx_id`` above the energy floor.

        Returns ``(radio, rss_dbm, rss_mw)`` triples; cached because
        the RSS matrix is static between mobility events (call
        :meth:`invalidate_topology` after one).
        """
        cached = self._reach_cache.get(tx_id)
        if cached is not None:
            return cached
        reach = []
        for node_id, radio in self._radios.items():
            if node_id == tx_id:
                continue
            rss = self._rss_dbm(tx_id, node_id)
            if rss >= self.energy_floor_dbm:
                reach.append((radio, rss, dbm_to_mw(rss)))
        self._reach_cache[tx_id] = reach
        return reach

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def transmit(self, src_id: int, frame: Frame) -> Transmission:
        """Put ``frame`` on the air from node ``src_id``.

        Every audible radio sees the energy immediately; the end of the
        transmission is scheduled after the frame's airtime.  Returns
        the :class:`Transmission` so the caller (the source radio) can
        observe its own airtime.
        """
        airtime = self.profile.frame_airtime_us(frame)
        tx = Transmission(
            frame=frame,
            src=src_id,
            start=self.sim.now,
            end=self.sim.now + airtime,
            tx_power_dbm=self.profile.tx_power_dbm,
        )
        self.active[tx.uid] = tx
        tel = self._trace
        if tel.enabled:
            # The frame_tx event reads the frame's causal origin from
            # meta; its own id rides back on the frame so receivers
            # (frame_rx/drop, detections, ACKs) can point at it.
            frame.meta[telemetry.TX_META_KEY] = tel.frame_tx(
                self.sim.now, src_id, frame, airtime)
            metrics = tel.metrics
            metrics.counter("medium.tx_frames").inc()
            metrics.counter("medium.airtime_us").inc(airtime)
        reach = self.audible(src_id)
        for radio, rss_dbm, rss_mw in reach:
            radio.on_energy_start(tx, rss_dbm, rss_mw)
        # The reach list captured at transmit time rides along with the
        # end-of-frame event: a mid-flight invalidate_topology() must
        # not make the end fan-out disagree with the start fan-out.
        self.sim.schedule(airtime, self._finish, tx, reach)
        return tx

    def _finish(self, tx: Transmission,
                reach: Optional[List[Tuple["Radio", float, float]]] = None) -> None:
        del self.active[tx.uid]
        if reach is None:  # pragma: no cover - legacy direct callers
            reach = self.audible(tx.src)
        for radio, rss_dbm, rss_mw in reach:
            radio.on_energy_end(tx, rss_dbm, rss_mw)
        src_radio = self._radios.get(tx.src)
        if src_radio is not None:
            src_radio.on_own_tx_end(tx)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def radios(self) -> Dict[int, "Radio"]:
        return dict(self._radios)

    def radio(self, node_id: int) -> "Radio":
        return self._radios[node_id]
