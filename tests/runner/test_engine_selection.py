"""Per-point engine selection and cross-backend validation in sweeps."""

import pytest

from repro.runner import (EngineDivergence, ExperimentPoint, PointResult,
                          TopologySpec, run_point, run_sweep, scheme_sweep)
from repro.topology.builder import random_t_topology

HORIZON_US = 60_000.0


def _point(engine, scheme="dcf"):
    return ExperimentPoint(
        scheme=scheme, seed=100,
        topology=TopologySpec(random_t_topology, (4, 2), {"seed": 100}),
        label=f"{scheme}:{engine}", horizon_us=HORIZON_US,
        warmup_us=10_000.0, engine=engine,
        run_kwargs={"downlink_mbps": 8.0, "uplink_mbps": 2.0})


def test_engines_produce_identical_point_results():
    event = run_point(_point("event"), trace=True)
    matrix = run_point(_point("matrix"), trace=True)
    assert event.engine == "event" and matrix.engine == "matrix"
    assert event.trace_digest == matrix.trace_digest
    assert event.aggregate_mbps == matrix.aggregate_mbps
    assert event.events_processed == matrix.events_processed


def test_cross_check_passes_and_requires_trace():
    result = run_point(_point("matrix"), trace=True, cross_check=True)
    assert result.trace_digest is not None
    with pytest.raises(ValueError, match="trace=True"):
        run_point(_point("matrix"), cross_check=True)


def test_sweep_mixes_engines_and_cross_checks():
    points = [_point("event"), _point("matrix")]
    sweep = run_sweep(points, workers=0, trace=True, cross_check=True)
    assert [p.engine for p in sweep.points] == ["event", "matrix"]
    digests = sweep.digests()
    assert digests[0] == digests[1]


def test_cross_check_raises_on_forged_divergence(monkeypatch):
    """A digest mismatch must fail loudly with a located divergence."""
    from repro.runner import sweep as sweep_mod

    # Backends genuinely agree, so force the mismatch at the digest
    # seam: the shadow digest becomes "forged", the expected one isn't.
    monkeypatch.setattr(sweep_mod, "trace_digest",
                        lambda records: "forged")
    point = _point("event")
    with pytest.raises(EngineDivergence, match=point.label):
        sweep_mod._cross_check(point, [], "not-the-forged-digest")


def test_scheme_sweep_threads_engine():
    points = scheme_sweep(
        ["dcf", "domino"],
        TopologySpec(random_t_topology, (4, 2), {"seed": 100}),
        horizon_us=HORIZON_US, engine="matrix")
    assert all(p.engine == "matrix" for p in points)


def test_point_result_engine_roundtrips():
    point = run_point(_point("matrix"), trace=True)
    clone = PointResult.from_json(point.to_json())
    assert clone.engine == "matrix"
    # Legacy payloads without the field default to the event engine.
    legacy = point.to_json()
    del legacy["engine"]
    assert PointResult.from_json(legacy).engine == "event"
