"""Compliant pool hand-off: a module-level, picklable entry point."""

from concurrent.futures import ProcessPoolExecutor


def _work(point):
    return point * 2


def run_all(points):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(_work, points))
