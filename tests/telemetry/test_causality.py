"""Critical-path attribution over v3 causal spans.

Acceptance tests for :mod:`repro.telemetry.analysis.causality`:

* **conservation** — per-edge critical waits telescope, so their sum
  equals each batch's root-to-end makespan exactly (fig12 reference
  run and a fig14-style random placement);
* **attribution** — deafen one node's trigger detection (its
  signatures are "dropped") and the report must *re-attribute* that
  node's slots: the signature-detection edges on links into it vanish
  from critical paths, its recovery shifts to poll/self resync, and
  its per-slot critical wait grows.
"""

from collections import Counter

import pytest

from repro import telemetry
from repro.core import TriggerDetectionModel, build_domino_network
from repro.experiments.common import run_scheme
from repro.experiments.fig12_t10_2 import default_topology
from repro.metrics.stats import FlowRecorder
from repro.sim.engine import Simulator
from repro.telemetry.analysis import causality_report, summarize_causality
from repro.topology.builder import random_t_topology
from repro.traffic.udp import SaturatedSource

HORIZON_US = 120_000.0
WARMUP_US = 20_000.0

#: The node whose trigger detection the lossy fixture silences.  A
#: mid-chain AP of the fig12 T(10, 2) reference placement: it executes
#: both primary-triggered and poll-resynced slots when healthy, so the
#: deaf run has something to re-attribute.
VICTIM = 34


def _manual_run(deaf_node=None, seed=1):
    """fig12 reference network, optionally with one deaf node.

    Built by hand (instead of ``run_scheme``) so one MAC's trigger
    model can be swapped after construction, before the run.
    """
    recorder = telemetry.TraceRecorder()
    telemetry.activate(recorder)
    try:
        sim = Simulator(seed=seed)
        topology = default_topology()
        domino = build_domino_network(sim, topology)
        if deaf_node is not None:
            domino.macs[deaf_node].trigger_model = TriggerDetectionModel(
                detection_by_combined={i: 0.0 for i in range(1, 13)})
        flow_recorder = FlowRecorder(topology.flows, warmup_us=WARMUP_US)
        flow_recorder.attach_all(domino.macs.values())
        for flow in topology.flows:
            SaturatedSource(sim, domino.macs[flow.src], flow.dst,
                            payload_bytes=512).start()
        domino.controller.start()
        for mac in domino.macs.values():
            mac.start()
        sim.run(until=HORIZON_US)
    finally:
        telemetry.deactivate()
    return recorder.records()


@pytest.fixture(scope="module")
def healthy_records():
    return _manual_run()


@pytest.fixture(scope="module")
def deaf_records():
    return _manual_run(deaf_node=VICTIM)


@pytest.fixture(scope="module")
def healthy_report(healthy_records):
    return causality_report(healthy_records)


def _assert_conserved(report):
    assert report.batches, "run produced no batch chains"
    for chain in report.batches:
        assert chain.attributed_us == pytest.approx(
            chain.makespan_us, rel=1e-9), (
            f"batch {chain.batch}: attributed waits "
            f"{chain.attributed_us} != makespan {chain.makespan_us}")


class TestConservation:
    def test_fig12_attributed_waits_sum_to_makespan(self, healthy_report):
        _assert_conserved(healthy_report)

    def test_fig14_style_random_placement_conserved(self):
        result = run_scheme(
            "domino", random_t_topology(6, 2, seed=7),
            horizon_us=100_000.0, warmup_us=WARMUP_US,
            downlink_mbps=10.0, uplink_mbps=4.0, seed=7, trace=True)
        report = causality_report(result.trace.records())
        _assert_conserved(report)

    def test_edges_are_time_ordered_root_to_terminal(self, healthy_report):
        for chain in healthy_report.batches:
            times = [edge.t_child for edge in chain.edges]
            assert times == sorted(times)
            assert chain.edges[0].parent_id == chain.root_id
            assert chain.edges[-1].child_id == chain.terminal_id
            assert chain.edges[-1].ev == "slot_exec"

    def test_waits_and_slack_nonnegative(self, healthy_report):
        for chain in healthy_report.batches:
            assert all(edge.wait_us >= 0.0 for edge in chain.edges)
            assert chain.slack_us
            assert all(s >= 0.0 for s in chain.slack_us.values())
            # The terminal defines the batch end: zero slack there.
            assert chain.slack_us[chain.terminal_id] == pytest.approx(0.0)

    def test_link_rollup_matches_edge_sum(self, healthy_report):
        total_edges = sum(e.wait_us for c in healthy_report.batches
                          for e in c.edges)
        total_links = sum(healthy_report.total_wait_by_link().values())
        total_steps = sum(healthy_report.total_wait_by_step().values())
        assert total_links == pytest.approx(total_edges)
        assert total_steps == pytest.approx(total_edges)


class TestLossyAttribution:
    """Silencing one node's detections must move the charge, not just
    shrink the report."""

    def _victim_slot_edges(self, report):
        return [e for c in report.batches for e in c.edges
                if e.ev == "slot_exec" and e.link[1] == VICTIM]

    def test_healthy_run_charges_signature_links_into_victim(
            self, healthy_report):
        sig_edges = [e for c in healthy_report.batches for e in c.edges
                     if e.ev == "sig_detect" and e.link[1] == VICTIM]
        assert sig_edges, "victim never primary-triggered when healthy"
        # sig_detect edges carry the dropped link explicitly:
        # (triggering sender -> victim).
        assert all(e.link[0] != VICTIM for e in sig_edges)
        via = Counter(e.via for e in self._victim_slot_edges(healthy_report))
        assert via["primary"] > 0

    def test_deaf_victim_loses_its_signature_links(self, deaf_records):
        report = causality_report(deaf_records)
        _assert_conserved(report)        # attribution stays conserved
        sig_edges = [e for c in report.batches for e in c.edges
                     if e.ev == "sig_detect" and e.link[1] == VICTIM]
        assert sig_edges == []
        via = Counter(e.via for e in self._victim_slot_edges(report))
        assert via["primary"] == 0
        # The slots still run — recovered by poll resync / self chains.
        assert via["poll"] + via["self"] > 0

    def test_slowdown_charged_to_victims_recovery_edges(
            self, healthy_report, deaf_records):
        deaf_report = causality_report(deaf_records)
        healthy = self._victim_slot_edges(healthy_report)
        deaf = self._victim_slot_edges(deaf_report)
        assert healthy and deaf
        healthy_mean = sum(e.wait_us for e in healthy) / len(healthy)
        deaf_mean = sum(e.wait_us for e in deaf) / len(deaf)
        # Losing the primary trigger makes every one of the victim's
        # critical slots wait for the slower resync path.
        assert deaf_mean > 1.3 * healthy_mean


class TestReportShape:
    def test_json_round_trips(self, healthy_report):
        import json
        data = json.loads(json.dumps(healthy_report.to_json(),
                                     sort_keys=True))
        assert data["batches"]
        first = data["batches"][0]
        assert first["attributed_us"] == pytest.approx(
            first["makespan_us"], rel=1e-9)
        assert data["makespan_p95_us"] >= data["makespan_p50_us"]

    def test_render_mentions_critical_waits_and_links(
            self, healthy_report):
        text = healthy_report.render()
        assert "batch chains" in text
        assert "critical wait" in text
        assert "slowest chain" in text

    def test_batch_render_lists_every_edge(self, healthy_report):
        chain = healthy_report.slowest()
        text = chain.render()
        assert f"batch {chain.batch}" in text
        assert len(text.splitlines()) == len(chain.edges) + 2

    def test_summary_is_plain_picklable_data(self, healthy_records):
        import pickle
        summary = summarize_causality(healthy_records)
        assert summary is not None
        assert pickle.loads(pickle.dumps(summary)) == summary
        assert summary["batches"] > 0
        assert summary["makespan_p95_us"] >= summary["makespan_p50_us"]
        assert summary["slowest"]["batch"] >= 0

    def test_spanless_records_summarize_to_none(self):
        records = [{"ev": "slot_exec", "t": 1.0, "node": 1, "slot": 0,
                    "dst": 2, "fake": False}]
        assert summarize_causality(records) is None
        report = causality_report(records)
        assert not report.has_spans
        assert "no causal spans" in report.render()

    def test_doctor_attaches_causality_section(self, healthy_records):
        from repro.telemetry.analysis import diagnose
        report = diagnose(healthy_records)
        assert report.causality is not None
        assert report.causality.batches
        assert "causality" in report.render()
        assert report.to_json()["causality"]["batches"]
