"""DOM501 fixture: guarded state mutated across an await boundary."""

import asyncio


class Controller:
    def __init__(self):
        self.registry = {}
        self._revision_lock = asyncio.Lock()

    async def apply(self, key):
        staged = await self.compute(key)
        self.registry[key] = staged
        self.registry.update({key: staged})
        return staged

    async def compute(self, key):
        await asyncio.sleep(0)
        return key
