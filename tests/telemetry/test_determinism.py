"""Two same-seed runs must export byte-identical traces.

This is the regression gate on the schema's determinism contract (see
``repro.telemetry.events``): records may contain only sim-derived
values — no wall clock, no process-global counters, no unsorted set
iteration.  Any instrumentation change that leaks one of those shows
up here as a byte diff.
"""

import io

from repro.experiments.common import run_scheme
from repro.topology.builder import fig7_topology


def traced_run():
    result = run_scheme("domino", fig7_topology(uplinks=True),
                        horizon_us=40_000.0, warmup_us=0.0,
                        saturated=True, seed=11, trace=True)
    stream = io.StringIO()
    result.trace.write_jsonl(stream)
    return result.trace, stream.getvalue()


def test_same_seed_runs_export_identical_bytes():
    rec_a, text_a = traced_run()
    rec_b, text_b = traced_run()
    # Sanity: the runs actually traced the chain machinery.
    assert len(rec_a) > 100
    kinds = {r["ev"] for r in rec_a.records()}
    assert {"frame_tx", "slot_exec", "trigger_fire", "sig_detect"} <= kinds
    assert text_a.encode("utf-8") == text_b.encode("utf-8")


def test_different_seeds_diverge():
    # The flip side: if traces were insensitive to the seed the byte
    # equality above would be vacuous.
    _, text_a = traced_run()
    result = run_scheme("domino", fig7_topology(uplinks=True),
                        horizon_us=40_000.0, warmup_us=0.0,
                        saturated=True, seed=12, trace=True)
    stream = io.StringIO()
    result.trace.write_jsonl(stream)
    assert text_a != stream.getvalue()


def test_file_export_matches_stream_export(tmp_path):
    rec, text = traced_run()
    path = tmp_path / "trace.jsonl"
    rec.export_jsonl(str(path))
    assert path.read_bytes() == text.encode("utf-8")
