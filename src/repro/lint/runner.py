"""dominolint's CLI: discovery, the two lint phases, output, exit codes.

v2 runs in two phases:

1. **Per-file** — the syntactic rule families (DOM1xx determinism,
   DOM2xx direct layering, DOM3xx telemetry, DOM4xx deps, DOM5xx
   async/pool) plus extraction of the module's cross-file facts.
   This phase is pure per file, so its output is cached by content
   hash (:mod:`repro.lint.cache`).
2. **Whole-program** — the dataflow rules (DOM105/DOM106 taint,
   DOM203 transitive layering) over the :class:`ProgramIndex` built
   from *every* module under ``src-root``, regardless of which paths
   were requested; findings are then filtered down to the requested
   paths so ``python -m repro.lint src/repro/sim`` still sees taint
   arriving from a helper in another package.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import (Dict, Iterable, Iterator, List, Optional, Set,
                    TextIO, Tuple)

from .cache import LintCache, file_digest, open_cache
from .callgraph import ModuleFacts, ProgramIndex, build_index, extract_facts
from .config import Config, ConfigError, load_config
from .deps import check_dependencies
from .determinism import check_determinism
from .findings import Finding, Suppressions
from .layering import check_layering
from .rules_async import check_async
from .sarif import render_sarif
from .schema import (SchemaError, SchemaRegistry, check_baseline,
                     check_emissions, load_registry, write_baseline)
from .taint import check_taint
from .transitive import check_transitive

#: Exit codes, matching the doctor CLI convention.
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_BAD_INPUT = 2

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """All ``.py`` files under ``paths``, deterministically ordered."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
        else:
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    yield candidate


def _relpath(path: Path, root: Path) -> str:
    try:
        return str(path.resolve().relative_to(root.resolve()))
    except ValueError:
        return str(path)


def analyze_source(source: str, path: Path, config: Config,
                   registry: Optional[SchemaRegistry],
                   ) -> Tuple[List[Finding], Optional[ModuleFacts]]:
    """Phase-1 output for one file: findings + cross-file facts.

    Findings come back post-suppression; facts carry the suppression
    table so phase 2 can honour inline disables without re-reading
    the source.  Raises ``SyntaxError`` upward.
    """
    tree = ast.parse(source, filename=str(path))
    rel = _relpath(path, config.root)
    module = config.module_name(path)
    suppressions = Suppressions(source)
    findings: List[Finding] = []
    facts: Optional[ModuleFacts] = None
    if module is not None:
        is_package = path.name == "__init__.py"
        if config.in_sim_packages(module):
            findings.extend(check_determinism(tree, rel))
            findings.extend(check_dependencies(tree, rel, module, config))
        findings.extend(check_layering(
            tree, rel, module, is_package=is_package, config=config))
        if registry is not None:
            findings.extend(check_emissions(tree, rel, registry))
        findings.extend(check_async(tree, module, rel, config))
        facts = extract_facts(tree, module, rel, is_package,
                              suppressions.by_line())
    return suppressions.filter(findings), facts


def lint_file(path: Path, config: Config,
              registry: Optional[SchemaRegistry]) -> List[Finding]:
    """Per-file findings only (suppressions applied) — phase 1's view.

    Raises ``SyntaxError``/``OSError`` upward — unparseable input is
    the caller's exit-2 case, not a finding.
    """
    findings, _ = analyze_source(path.read_text(), path, config, registry)
    return findings


def _whole_program_findings(index: ProgramIndex, config: Config,
                            target_rels: Set[str]) -> List[Finding]:
    """Phase 2, filtered to the requested paths + inline suppressions."""
    facts_by_path: Dict[str, ModuleFacts] = {
        facts.path: facts for facts in index.modules.values()
    }
    out: List[Finding] = []
    for finding in [*check_taint(index, config),
                    *check_transitive(index, config)]:
        if finding.path not in target_rels:
            continue
        facts = facts_by_path.get(finding.path)
        if facts is not None:
            rules = facts.suppressions.get(finding.line, [])
            if finding.rule in rules or "ALL" in rules:
                continue
        out.append(finding)
    return out


def lint_paths(paths: List[Path], config: Config,
               update_baseline: bool = False,
               stderr: Optional[TextIO] = None,
               cache: Optional[LintCache] = None,
               output_format: str = "text",
               stdout: Optional[TextIO] = None) -> int:
    """Lint ``paths``; print findings; return exit code.

    Human output goes to ``stderr`` (the default format); with
    ``output_format="sarif"`` the findings render as one SARIF 2.1.0
    document on ``stdout`` instead, while diagnostics stay on stderr.
    """
    if stderr is None:  # bind at call time so capture/redirection works
        stderr = sys.stderr
    if stdout is None:
        stdout = sys.stdout
    missing = [p for p in paths if not p.exists()]
    if missing:
        for path in missing:
            print(f"dominolint: no such path: {path}", file=stderr)
        return EXIT_BAD_INPUT

    try:
        registry: Optional[SchemaRegistry] = load_registry(config)
    except SchemaError as exc:
        print(f"dominolint: {exc}", file=stderr)
        return EXIT_BAD_INPUT

    # Phase-1 worklist: requested files first, then the rest of the
    # src tree (facts only — the dataflow phase needs the whole view).
    target_files = list(iter_python_files(paths))
    target_rels = {_relpath(p, config.root) for p in target_files}
    seen: Set[Path] = set()
    worklist: List[Tuple[Path, bool]] = []
    for path in target_files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            worklist.append((path, True))
    if config.src_root.is_dir():
        for path in iter_python_files([config.src_root]):
            resolved = path.resolve()
            if resolved not in seen:
                seen.add(resolved)
                worklist.append((path, False))

    findings: List[Finding] = []
    facts_list: List[ModuleFacts] = []
    bad_input = False
    for path, is_target in worklist:
        try:
            data = path.read_bytes()
        except OSError as exc:
            if is_target:
                print(f"dominolint: cannot read {path}: {exc}",
                      file=stderr)
                bad_input = True
            continue
        sha = file_digest(data)
        rel = _relpath(path, config.root)
        cached = cache.get(rel, sha) if cache is not None else None
        if cached is not None:
            file_findings, facts = cached
        else:
            try:
                file_findings, facts = analyze_source(
                    data.decode(), path, config, registry)
            except (SyntaxError, UnicodeDecodeError) as exc:
                if is_target:
                    lineno = getattr(exc, "lineno", None) or 0
                    msg = getattr(exc, "msg", None) or str(exc)
                    print(f"dominolint: cannot parse {rel}:"
                          f"{lineno}: {msg}", file=stderr)
                    bad_input = True
                continue
            if cache is not None:
                cache.put(rel, sha, file_findings, facts)
        if facts is not None:
            facts_list.append(facts)
        if is_target:
            findings.extend(file_findings)

    findings.extend(_whole_program_findings(
        build_index(facts_list), config, target_rels))

    if update_baseline:
        write_baseline(registry, config)
    else:
        rel_events = _relpath(config.schema_events, config.root)
        baseline_findings = check_baseline(registry, config, rel_events)
        events_suppressions = Suppressions(config.schema_events.read_text())
        findings.extend(events_suppressions.filter(baseline_findings))

    if cache is not None:
        cache.save()

    final = sorted(set(findings))
    if output_format == "sarif":
        print(render_sarif(final), file=stdout)
    else:
        for finding in final:
            print(finding.render(), file=stderr)
    if bad_input:
        return EXIT_BAD_INPUT
    return EXIT_FINDINGS if final else EXIT_CLEAN


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "dominolint: determinism, layering, telemetry-schema and "
            "async-safety checks for the DOMINO reproduction"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)")
    parser.add_argument(
        "--format", choices=("text", "sarif"), default="text",
        help="findings output: human text on stderr (default) or one "
             "SARIF 2.1.0 document on stdout")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore and don't write the content-hash result cache "
             "(.dominolint-cache.json)")
    parser.add_argument(
        "--update-schema-baseline", action="store_true",
        help="rewrite the committed schema fingerprint from the live "
             "events.py registry (run after a deliberate schema change)")
    args = parser.parse_args(argv)
    try:
        config = load_config()
    except ConfigError as exc:
        print(f"dominolint: {exc}", file=sys.stderr)
        return EXIT_BAD_INPUT
    paths = [Path(p) for p in args.paths]
    cache = None if args.no_cache else open_cache(config)
    return lint_paths(paths, config,
                      update_baseline=args.update_schema_baseline,
                      cache=cache, output_format=args.format)
