"""Trace analysis: summaries, filters and trigger-chain reconstruction.

Works on the plain record dicts produced by
:class:`~repro.telemetry.recorder.TraceRecorder` (live) or loaded
from JSONL (offline) — the CLI in ``python -m repro.telemetry`` is a
thin wrapper over these functions.

The centrepiece is :func:`trigger_chain_timeline`: given a trace it
rebuilds, slot by slot, *who* transmitted, *which* duty burst
triggered them, whether the signature detection draw succeeded, and
whether a backup path (watchdog / initial self-start) had to restart
the chain — the paper's Sec. 3 debugging story as a table instead of
prints in the MAC.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


@dataclass
class SlotChainEntry:
    """One slot of the reconstructed trigger chain."""

    slot: int
    #: (node, fake) pairs that executed the slot, in execution order.
    senders: List[tuple] = field(default_factory=list)
    #: first execution time of the slot (us), if any.
    start_us: Optional[float] = None
    #: node whose duty burst covered this slot (fired at slot - 1).
    trigger_node: Optional[int] = None
    #: per executing node: did its signature-detection draw succeed?
    detected: Dict[int, bool] = field(default_factory=dict)
    #: nodes that reached this slot through a backup path, with reason.
    fallback: Dict[int, str] = field(default_factory=dict)
    #: APs that ran an ROP polling round in this slot.
    polls: List[int] = field(default_factory=list)

    @property
    def signature_detected(self) -> Optional[bool]:
        """Slot-level verdict: True if every executing sender that had
        a detection draw succeeded, False if any failed, None if the
        slot ran without any draw on record (self-timed)."""
        if not self.detected:
            return None
        return all(self.detected.values())

    @property
    def fallback_used(self) -> bool:
        return bool(self.fallback)


def trigger_chain_timeline(records: Iterable[dict]) -> List[SlotChainEntry]:
    """Rebuild the per-slot trigger-chain timeline from a trace."""
    entries: Dict[int, SlotChainEntry] = {}

    def entry(slot: int) -> SlotChainEntry:
        item = entries.get(slot)
        if item is None:
            item = entries[slot] = SlotChainEntry(slot=slot)
        return item

    for record in records:
        kind = record.get("ev")
        if kind == "slot_exec":
            item = entry(record["slot"])
            item.senders.append((record["node"], record["fake"]))
            if item.start_us is None:
                item.start_us = record["t"]
        elif kind == "sig_detect":
            # A burst for slot s targets the senders of slot s + 1.
            item = entry(record["slot"] + 1)
            previous = item.detected.get(record["node"])
            # A node may get several draws (replanning); success wins.
            item.detected[record["node"]] = bool(previous) or record["detected"]
        elif kind == "trigger_fire":
            entry(record["slot"] + 1).trigger_node = record["node"]
        elif kind == "backup_trigger":
            entry(record["slot"]).fallback[record["node"]] = record["reason"]
        elif kind == "rop_poll":
            entry(record["slot"]).polls.append(record["node"])
    return [entries[slot] for slot in sorted(entries)]


def render_timeline(timeline: List[SlotChainEntry],
                    names: Optional[Dict[int, str]] = None) -> str:
    """The trigger-chain timeline as a fixed-width table."""
    if not timeline:
        return "(no slotted events in trace)"

    def name(node: int) -> str:
        return names[node] if names and node in names else str(node)

    headers = ("slot", "t_us", "senders", "trigger", "sig", "fallback",
               "polls")
    rows = []
    for item in timeline:
        senders = ",".join(f"{name(n)}{'(fake)' if fake else ''}"
                           for n, fake in item.senders) or "-"
        verdict = {True: "y", False: "MISS", None: "-"}[
            item.signature_detected]
        fallback = ",".join(f"{name(n)}:{reason}"
                            for n, reason in sorted(item.fallback.items())) \
            or "n"
        trigger = name(item.trigger_node) \
            if item.trigger_node is not None else "-"
        start = f"{item.start_us:.1f}" if item.start_us is not None else "-"
        polls = ",".join(name(n) for n in item.polls) or "-"
        rows.append((str(item.slot), start, senders, trigger, verdict,
                     fallback, polls))
    widths = [max(len(headers[i]), max(len(r[i]) for r in rows))
              for i in range(len(headers))]
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)),
             "-+-".join("-" * w for w in widths)]
    lines.extend(" | ".join(c.ljust(w) for c, w in zip(row, widths))
                 for row in rows)
    return "\n".join(lines)


def filter_records(records: Iterable[dict],
                   kind: Optional[str] = None,
                   node: Optional[int] = None,
                   t0: Optional[float] = None,
                   t1: Optional[float] = None,
                   slot: Optional[int] = None) -> Iterable[dict]:
    """Lazy record filter mirroring ``TraceRecorder.events``."""
    for record in records:
        if kind is not None and record.get("ev") != kind:
            continue
        if node is not None and record.get("node") != node:
            continue
        if slot is not None and record.get("slot") != slot:
            continue
        t = record.get("t", 0.0)
        if t0 is not None and t < t0:
            continue
        if t1 is not None and t > t1:
            continue
        yield record


def summarize(records: List[dict],
              names: Optional[Dict[int, str]] = None) -> str:
    """Headline statistics plus the reconstructed chain timeline."""
    if not records:
        return "(empty trace)"
    kinds = TallyCounter(r.get("ev", "?") for r in records)
    t_lo = min(r.get("t", 0.0) for r in records)
    t_hi = max(r.get("t", 0.0) for r in records)
    detects = [r for r in records if r.get("ev") == "sig_detect"]
    hits = sum(1 for r in detects if r["detected"])
    fallbacks = kinds.get("backup_trigger", 0)
    airtime = sum(r.get("airtime_us", 0.0) for r in records
                  if r.get("ev") == "frame_tx")
    lines = [
        f"{len(records)} events over "
        f"{(t_hi - t_lo) / 1000.0:.3f} ms "
        f"(t = {t_lo:.1f} .. {t_hi:.1f} us)",
        "",
        "events by kind:",
    ]
    lines.extend(f"  {kind:<16} {count}"
                 for kind, count in sorted(kinds.items()))
    lines.append("")
    if detects:
        lines.append(
            f"signature detections: {hits}/{len(detects)} "
            f"({100.0 * hits / len(detects):.1f} % of draws)")
    if fallbacks:
        lines.append(f"backup-trigger fallbacks: {fallbacks}")
    if airtime:
        lines.append(f"airtime on the medium: {airtime / 1000.0:.3f} ms")
    lines.append("")
    lines.append("trigger-chain timeline "
                 "(sig: y = detected, MISS = draw failed, - = self-timed):")
    lines.append(render_timeline(trigger_chain_timeline(records),
                                 names=names))
    return "\n".join(lines)
