"""Tests for the strict-to-relative schedule converter (Sec. 3.3)."""

import itertools


from repro.core.converter import ConverterConfig, ScheduleConverter
from repro.core.relative_schedule import build_programs
from repro.sched.strict_schedule import StrictSchedule
from repro.topology.builder import fig1_topology, fig7_topology
from repro.topology.conflict_graph import build_conflict_graph
from repro.topology.links import Link


def make_converter(topology, config=None):
    imap = topology.interference_map()
    universe = list(topology.flows)
    for link in topology.all_association_links():
        if link not in universe:
            universe.append(link)
    graph = build_conflict_graph(imap, universe)
    converter = ScheduleConverter(imap, graph, fake_candidates=universe,
                                  config=config)
    return converter, imap, graph, universe


def fig7_strict():
    """The Fig. 7(c) alternating schedule."""
    strict = StrictSchedule()
    strict.append([Link(0, 1), Link(6, 7)])
    strict.append([Link(2, 3), Link(4, 5)])
    strict.append([Link(0, 1), Link(6, 7)])
    strict.append([Link(2, 3), Link(4, 5)])
    return strict


class TestFakeInsertion:
    def test_slots_extended_with_fakes(self):
        converter, imap, graph, universe = make_converter(fig7_topology())
        batch = converter.convert(fig7_strict())
        for slot in batch.slots:
            fakes = [e for e in slot.entries if e.fake]
            reals = [e for e in slot.entries if not e.fake]
            assert len(reals) == 2
            assert fakes  # something was inserted

    def test_extended_slots_remain_conflict_free(self):
        converter, imap, graph, universe = make_converter(fig7_topology())
        batch = converter.convert(fig7_strict())
        for slot in batch.slots:
            links = slot.links()
            for a, b in itertools.combinations(links, 2):
                assert not graph.has_edge(a, b)
                assert not a.shares_node(b)
            assert imap.set_survives(links)

    def test_fakes_disabled_by_config(self):
        config = ConverterConfig(insert_fakes=False)
        converter, *_ = make_converter(fig7_topology(), config)
        batch = converter.convert(fig7_strict())
        assert all(not e.fake for s in batch.slots for e in s.entries)


class TestTriggerAssignment:
    def test_every_nonfirst_slot_link_has_a_trigger(self):
        converter, *_ = make_converter(fig7_topology())
        batch = converter.convert(fig7_strict())
        for slot in batch.slots[1:]:
            for entry in slot.entries:
                inbound = batch.inbound.get((slot.index, entry.link))
                assert inbound, f"{entry.link} in slot {slot.index}"

    def test_inbound_capped_at_two(self):
        converter, *_ = make_converter(fig7_topology())
        batch = converter.convert(fig7_strict())
        for nodes in batch.inbound.values():
            assert 1 <= len(nodes) <= 2
            assert len(set(nodes)) == len(nodes)

    def test_outbound_capped_at_four(self):
        converter, *_ = make_converter(fig7_topology())
        batch = converter.convert(fig7_strict())
        for duty in batch.duties.values():
            assert duty.outbound <= 4

    def test_trigger_sources_participated_in_previous_slot(self):
        converter, *_ = make_converter(fig7_topology())
        batch = converter.convert(fig7_strict())
        by_index = {s.index: s for s in batch.slots}
        for (slot_idx, link), nodes in batch.inbound.items():
            prev = by_index.get(slot_idx - 1)
            if prev is None:
                continue  # triggered from the connector slot
            for node in nodes:
                assert node in prev.participants() | {link.src}

    def test_backup_trigger_prefers_foreign_chain(self):
        converter, imap, *_ = make_converter(fig7_topology())
        batch = converter.convert(fig7_strict())
        foreign_backups = 0
        for (slot_idx, link), nodes in batch.inbound.items():
            if len(nodes) == 2:
                endpoint_set = {link.src, link.dst}
                if nodes[1] not in endpoint_set:
                    foreign_backups += 1
        assert foreign_backups > 0

    def test_untriggerable_real_link_reported(self):
        """A link whose sender nobody can reach must be reported for
        rescheduling, not silently scheduled."""
        topology = fig1_topology()
        # No fakes (so AP3 is absent from slot 0) and a crippled map:
        # no over-the-air trigger can reach anyone.
        converter, imap, graph, universe = make_converter(
            topology, ConverterConfig(insert_fakes=False))
        imap._trigger_cache.clear()
        imap.node_can_trigger = lambda src, dst: False
        strict = StrictSchedule()
        strict.append([Link(0, 1)])
        strict.append([Link(4, 5)])  # AP3 unreachable from slot 0
        batch = converter.convert(strict)
        assert (batch.slots[1].index, Link(4, 5)) not in batch.inbound
        assert any(link == Link(4, 5) for _, link in batch.untriggerable)


class TestBatchConnection:
    def test_global_slot_indices_continuous(self):
        converter, *_ = make_converter(fig7_topology())
        first = converter.convert(fig7_strict())
        second = converter.convert(fig7_strict())
        assert first.slots[0].index == 0
        assert second.slots[0].index == first.slots[-1].index + 1

    def test_first_batch_is_initial(self):
        converter, *_ = make_converter(fig7_topology())
        assert converter.convert(fig7_strict()).initial
        assert not converter.convert(fig7_strict()).initial

    def test_second_batch_carries_connector_duties(self):
        converter, *_ = make_converter(fig7_topology())
        first = converter.convert(fig7_strict())
        second = converter.convert(fig7_strict())
        connector_index = first.slots[-1].index
        connector_duties = [d for (node, slot), d in second.duties.items()
                            if slot == connector_index]
        assert connector_duties or any(
            (connector_index + 1, e.link) in second.inbound
            for e in second.slots[0].entries
        )


class TestRopInsertion:
    def ap_links(self, topology):
        links = {}
        for ap in topology.network.aps:
            links[ap.node_id] = [
                l for l in topology.all_association_links()
                if topology.network.ap_of(l.src) == ap.node_id
            ]
        return links

    def test_all_aps_polled(self):
        topology = fig7_topology()
        converter, *_ = make_converter(topology)
        rop_aps = [ap.node_id for ap in topology.network.aps]
        batch = converter.convert(fig7_strict(), rop_aps=rop_aps,
                                  ap_links=self.ap_links(topology))
        polled = {ap for aps in batch.rop_polls.values() for ap in aps}
        assert polled == set(rop_aps)

    def test_at_most_one_rop_slot_per_gap(self):
        topology = fig7_topology()
        converter, *_ = make_converter(topology)
        rop_aps = [ap.node_id for ap in topology.network.aps]
        batch = converter.convert(fig7_strict(), rop_aps=rop_aps,
                                  ap_links=self.ap_links(topology))
        for slot_idx, aps in batch.rop_polls.items():
            assert len(aps) == len(set(aps))

    def test_sharing_requires_nonconflicting_links(self):
        topology = fig7_topology()
        converter, imap, graph, _ = make_converter(topology)
        rop_aps = [ap.node_id for ap in topology.network.aps]
        ap_links = self.ap_links(topology)
        batch = converter.convert(fig7_strict(), rop_aps=rop_aps,
                                  ap_links=ap_links)
        for aps in batch.rop_polls.values():
            for a, b in itertools.combinations(aps, 2):
                for la in ap_links[a]:
                    for lb in ap_links[b]:
                        assert not graph.has_edge(la, lb)

    def test_rop_flag_set_on_duties(self):
        topology = fig7_topology()
        converter, *_ = make_converter(topology)
        rop_aps = [ap.node_id for ap in topology.network.aps]
        batch = converter.convert(fig7_strict(), rop_aps=rop_aps,
                                  ap_links=self.ap_links(topology))
        flagged_slots = {slot for slot in batch.rop_polls}
        for (node, slot_idx), duty in batch.duties.items():
            if slot_idx in flagged_slots and not duty.empty:
                assert duty.rop_flag

    def test_rop_disabled_by_config(self):
        topology = fig7_topology()
        config = ConverterConfig(insert_rop=False)
        converter, *_ = make_converter(topology, config)
        batch = converter.convert(fig7_strict(), rop_aps=[0, 2],
                                  ap_links=self.ap_links(topology))
        assert batch.rop_polls == {}


class TestPrograms:
    def test_programs_partition_batch(self):
        topology = fig7_topology()
        converter, *_ = make_converter(topology)
        rop_aps = [ap.node_id for ap in topology.network.aps]
        ap_links = TestRopInsertion().ap_links(topology)
        batch = converter.convert(fig7_strict(), rop_aps=rop_aps,
                                  ap_links=ap_links)
        programs = build_programs(batch)
        total_sends = sum(len(p.send_slots) for p in programs.values())
        total_entries = sum(len(s.entries) for s in batch.slots)
        assert total_sends == total_entries
        for program in programs.values():
            for slot, entry in program.send_slots.items():
                assert entry.link.src == program.node

    def test_rop_wait_slots_follow_polls(self):
        topology = fig7_topology()
        converter, *_ = make_converter(topology)
        rop_aps = [ap.node_id for ap in topology.network.aps]
        ap_links = TestRopInsertion().ap_links(topology)
        batch = converter.convert(fig7_strict(), rop_aps=rop_aps,
                                  ap_links=ap_links)
        programs = build_programs(batch)
        for slot_idx in batch.rop_polls:
            following = batch.slot_by_index(slot_idx + 1)
            if following is None:
                continue
            for entry in following.entries:
                program = programs[entry.link.src]
                assert slot_idx + 1 in program.rop_wait_slots

    def test_self_trigger_slots_recorded(self):
        topology = fig1_topology()
        converter, *_ = make_converter(topology)
        strict = StrictSchedule()
        # Same link in consecutive slots -> self-trigger.
        strict.append([Link(3, 2)])
        strict.append([Link(3, 2)])
        batch = converter.convert(strict)
        programs = build_programs(batch)
        assert batch.slots[1].index in programs[3].self_trigger_slots
