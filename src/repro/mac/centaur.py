"""CENTAUR: the hybrid centralized/distributed baseline (Sec. 1, 4.2).

CENTAUR (Shrivastava et al., MobiCom'09) centrally schedules the
**downlink** through the wired backbone while the uplink stays plain
DCF.  The model here captures the three behaviours the paper's
evaluation leans on:

* conflicting (hidden-terminal) downlinks are placed in different
  epochs, so CENTAUR has essentially zero downlink ACK timeouts;
* exposed downlinks share an epoch and are *aligned* with carrier
  sensing plus a **fixed** backoff: after every busy period each
  waiting AP restarts the same fixed count, so APs that hear each
  other fire simultaneously;
* epochs are released with a **batch barrier**: the controller
  dispatches epoch ``k+1`` only after every AP reports epoch ``k``
  complete.  When the schedulable links cannot actually align
  (Fig. 13b: senders out of mutual carrier-sense range starving a
  common exposed link), the barrier makes CENTAUR *worse* than DCF —
  Table 3's headline pathology.

Uplink clients run unmodified :class:`~repro.mac.dcf.DcfMac` and
disturb the downlink schedule exactly as Sec. 1 describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..sched.rand_scheduler import RandScheduler
from ..sim.engine import Simulator
from ..sim.medium import Medium
from ..sim.node import Node
from ..sim.packet import Frame
from ..sim.wire import WiredBackbone
from ..traffic.queueing import MacQueue
from ..topology.builder import Topology
from ..topology.conflict_graph import build_conflict_graph
from ..topology.links import Link
from .dcf import DcfMac

DEFAULT_FIXED_BACKOFF = 4


class CentaurApMac(DcfMac):
    """An AP whose downlink transmissions are gated by central grants."""

    def __init__(self, sim: Simulator, node: Node, medium: Medium,
                 queue_capacity: int = 100,
                 fixed_backoff: int = DEFAULT_FIXED_BACKOFF,
                 seed: Optional[int] = None):
        super().__init__(sim, node, medium, queue_capacity,
                         fixed_backoff=fixed_backoff, seed=seed)
        self._credits: Dict[int, int] = {}
        self._grant_id: Optional[int] = None
        self._grant_reported = True
        self.send_to_controller = None  # set by the controller

    # ------------------------------------------------------------------
    # Grants
    # ------------------------------------------------------------------
    def grant(self, grant_id: int, credits: Dict[int, int]) -> None:
        """Authorize sending ``credits[dst]`` packets per destination."""
        self._grant_id = grant_id
        self._grant_reported = False
        self._credits = dict(credits)
        if self._phase == self.IDLE and self._current is None:
            self._start_service()

    def _grantable_queue(self) -> Optional[MacQueue]:
        for dst, credit in self._credits.items():
            if credit > 0 and self.queues.backlog_for(dst) > 0:
                return self.queues.queue_for(dst)
        return None

    def _grant_exhausted(self) -> bool:
        """Nothing more can be sent under the current grant."""
        return self._grantable_queue() is None

    def _report_done(self) -> None:
        if self._grant_reported or self.send_to_controller is None:
            return
        self._grant_reported = True
        self.send_to_controller({
            "type": "epoch_done",
            "ap": self.node.node_id,
            "grant": self._grant_id,
        })

    # ------------------------------------------------------------------
    # DCF service loop overrides
    # ------------------------------------------------------------------
    def _on_enqueue(self, frame: Frame) -> None:
        # New downlink data helps only if a grant covers it.
        if self._phase == self.IDLE and self._current is None:
            self._start_service()

    def _start_service(self) -> None:
        queue = self._grantable_queue()
        if queue is None:
            self._phase = self.IDLE
            if self._grant_id is not None and self._grant_exhausted():
                self._report_done()
            return
        self._current = queue.pop()
        self._retries = 0
        self._begin_access()

    def _finish_current(self, success: bool) -> None:
        frame = self._current
        if frame is not None and frame.dst in self._credits:
            self._credits[frame.dst] -= 1
        super()._finish_current(success)


@dataclass
class EpochRecord:
    grant_id: int
    links: List[Link]
    dispatched_at: float
    completed_at: Optional[float] = None


class CentaurController:
    """Epoch scheduler with batch barrier over the wired backbone."""

    def __init__(self, sim: Simulator, topology: Topology,
                 wire: WiredBackbone, ap_macs: Dict[int, CentaurApMac],
                 epoch_packets: int = 5):
        self.sim = sim
        self.topology = topology
        self.wire = wire
        self.ap_macs = ap_macs
        self.epoch_packets = epoch_packets
        imap = topology.interference_map()
        self.downlinks = topology.downlinks()
        self.graph = build_conflict_graph(imap, self.downlinks)
        self.scheduler = RandScheduler(self.graph, self.downlinks)
        self._grant_counter = 0
        self._outstanding: Dict[int, set] = {}
        self.epochs: List[EpochRecord] = []
        self.IDLE_POLL_US = 200.0

        wire.register(WiredBackbone.SERVER_ID, self._on_wire_message)
        for ap_id, mac in ap_macs.items():
            wire.register(
                ap_id,
                lambda src, msg, ap=ap_id: self._on_ap_delivery(ap, msg),
            )
            mac.send_to_controller = (
                lambda msg, ap=ap_id:
                self.wire.send(ap, WiredBackbone.SERVER_ID, msg)
            )

    def start(self) -> None:
        self.sim.schedule(0.0, self._dispatch_epoch)

    # ------------------------------------------------------------------
    def _demands(self) -> Dict[Link, int]:
        """CENTAUR's data path runs through the controller, so downlink
        queue state is known exactly."""
        demands = {}
        for link in self.downlinks:
            backlog = self.ap_macs[link.src].queues.backlog_for(link.dst)
            if backlog > 0:
                demands[link] = min(backlog, self.epoch_packets)
        return demands

    def _dispatch_epoch(self) -> None:
        demands = self._demands()
        if not demands:
            self.sim.schedule(self.IDLE_POLL_US, self._dispatch_epoch)
            return
        schedule = self.scheduler.schedule_batch(demands, max_slots=1)
        if not len(schedule):
            self.sim.schedule(self.IDLE_POLL_US, self._dispatch_epoch)
            return
        links = schedule[0]
        self._grant_counter += 1
        grant_id = self._grant_counter
        self._outstanding[grant_id] = {link.src for link in links}
        self.epochs.append(EpochRecord(grant_id=grant_id, links=list(links),
                                       dispatched_at=self.sim.now))
        per_ap: Dict[int, Dict[int, int]] = {}
        for link in links:
            per_ap.setdefault(link.src, {})[link.dst] = min(
                demands.get(link, self.epoch_packets), self.epoch_packets
            )
        for ap_id, credits in per_ap.items():
            self.wire.send(WiredBackbone.SERVER_ID, ap_id,
                           {"type": "grant", "grant": grant_id,
                            "credits": credits})

    def _on_ap_delivery(self, ap_id: int, message: Any) -> None:
        """Wire delivery at an AP: hand the grant to its MAC."""
        if message.get("type") != "grant":
            return
        self.ap_macs[ap_id].grant(message["grant"], message["credits"])

    def _on_wire_message(self, src_id: int, message: Any) -> None:
        if message.get("type") != "epoch_done":
            return
        grant_id = message["grant"]
        waiting = self._outstanding.get(grant_id)
        if waiting is None:
            return
        waiting.discard(message["ap"])
        if not waiting:
            del self._outstanding[grant_id]
            for record in self.epochs:
                if record.grant_id == grant_id:
                    record.completed_at = self.sim.now
            # Batch barrier released: next epoch.
            self._dispatch_epoch()


def build_centaur_network(sim: Simulator, topology: Topology,
                          queue_capacity: int = 100,
                          epoch_packets: int = 5,
                          fixed_backoff: int = DEFAULT_FIXED_BACKOFF,
                          wire_mean_us: float = 285.0,
                          wire_std_us: float = 22.0,
                          ) -> Tuple[Medium, Dict[int, DcfMac],
                                     "CentaurController"]:
    """Medium, AP/client MACs, wire and controller in one call.

    APs get :class:`CentaurApMac` (granted, fixed backoff); clients get
    plain :class:`DcfMac` for the unscheduled uplink.
    """
    medium = topology.build_medium(sim)
    macs: Dict[int, DcfMac] = {}
    ap_macs: Dict[int, CentaurApMac] = {}
    for node in topology.network:
        if node.is_ap:
            mac = CentaurApMac(sim, node, medium,
                               queue_capacity=queue_capacity,
                               fixed_backoff=fixed_backoff)
            ap_macs[node.node_id] = mac
        else:
            mac = DcfMac(sim, node, medium, queue_capacity=queue_capacity)
        macs[node.node_id] = mac
    wire = WiredBackbone(sim, mean_us=wire_mean_us, std_us=wire_std_us)
    controller = CentaurController(sim, topology, wire, ap_macs,
                                   epoch_packets=epoch_packets)
    return medium, macs, controller
