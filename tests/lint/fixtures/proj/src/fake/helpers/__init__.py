"""Helper layer for the taint fixtures: below fake.sim, above nothing."""
