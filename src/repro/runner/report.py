"""Self-contained HTML sweep reports (``sweep-report``).

:func:`render_sweep_report` turns a completed
:class:`~repro.runner.points.SweepResult` into one HTML page — inline
CSS, no scripts, no external references — so CI can attach it as a
build artifact and it still renders offline years later.

Sections:

* headline numbers (points, workers, wall time, events/sec);
* a per-point table: throughput, fairness, mean delay, events, wall
  time, doctor verdict, critical-path makespan p50/p95 (the last two
  only for ``diagnose=True`` sweeps);
* critical-path rollups across the whole sweep — total attributed
  wait per chain step and the busiest links, summed over the
  per-point :func:`~repro.telemetry.analysis.summarize_causality`
  summaries;
* every doctor finding, grouped by point.
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional, Tuple

from .points import PointResult, SweepResult

__all__ = ["render_sweep_report", "write_sweep_report"]

_STYLE = """
body { font-family: -apple-system, "Segoe UI", Roboto, sans-serif;
       margin: 2rem auto; max-width: 70rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; font-size: 0.85rem; }
th, td { border: 1px solid #d0d0dc; padding: 0.3rem 0.55rem;
         text-align: right; }
th { background: #eef0f6; } td.label, th.label { text-align: left; }
tr:nth-child(even) td { background: #f7f8fb; }
.ok { color: #1d7a33; } .warn { color: #a15c00; }
.meta { color: #666; font-size: 0.8rem; }
ul.findings { font-size: 0.85rem; }
"""


def _esc(value: object) -> str:
    return html.escape(str(value))


def _fmt(value: Optional[float], digits: int = 3) -> str:
    return "—" if value is None else f"{value:.{digits}f}"


def _doctor_cell(point: PointResult) -> str:
    if point.doctor_findings is None:
        return '<td class="meta">n/a</td>'
    if not point.doctor_findings:
        return '<td class="ok">ok</td>'
    return f'<td class="warn">{len(point.doctor_findings)} finding(s)</td>'


def _causality_cells(point: PointResult) -> str:
    summary = point.causality
    if not summary:
        return '<td class="meta">—</td><td class="meta">—</td>'
    p50 = summary.get("makespan_p50_us")
    p95 = summary.get("makespan_p95_us")
    return (f"<td>{_fmt(p50 / 1000.0 if p50 is not None else None)}</td>"
            f"<td>{_fmt(p95 / 1000.0 if p95 is not None else None)}</td>")


def _point_rows(points: List[PointResult]) -> str:
    rows = []
    for point in points:
        rows.append(
            "<tr>"
            f'<td class="label">{_esc(point.label or point.scheme)}</td>'
            f'<td class="label">{_esc(point.scheme)}</td>'
            f"<td>{point.seed}</td>"
            f"<td>{_fmt(point.aggregate_mbps)}</td>"
            f"<td>{_fmt(point.fairness)}</td>"
            f"<td>{_fmt(point.mean_delay_us / 1000.0)}</td>"
            f"<td>{point.events_processed}</td>"
            f"<td>{_fmt(point.wall_s, 2)}</td>"
            f"{_doctor_cell(point)}"
            f"{_causality_cells(point)}"
            "</tr>")
    return "\n".join(rows)


def _rollup_waits(points: List[PointResult]
                  ) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Sum critical-path wait by step and by link across all points."""
    by_step: Dict[str, float] = {}
    by_link: Dict[str, float] = {}
    for point in points:
        summary = point.causality or {}
        for step, wait in (summary.get("wait_by_step_us") or {}).items():
            by_step[step] = by_step.get(step, 0.0) + wait
        for entry in summary.get("top_links") or []:
            src, dst = entry["link"]
            key = f"{src} → {dst}"
            by_link[key] = by_link.get(key, 0.0) + entry["wait_us"]
    return by_step, by_link


def _rollup_section(points: List[PointResult]) -> str:
    by_step, by_link = _rollup_waits(points)
    if not by_step and not by_link:
        return ('<p class="meta">No causal spans in this sweep — run with '
                "<code>trace=True, diagnose=True</code> on a schema v3 "
                "build to populate critical-path rollups.</p>")
    blocks = []
    if by_step:
        total = sum(by_step.values()) or 1.0
        rows = "\n".join(
            f'<tr><td class="label">{_esc(step)}</td>'
            f"<td>{wait / 1000.0:.3f}</td>"
            f"<td>{100.0 * wait / total:.1f}</td></tr>"
            for step, wait in sorted(by_step.items(),
                                     key=lambda kv: -kv[1]))
        blocks.append(
            "<h2>Critical-path wait by chain step</h2>\n"
            '<table><tr><th class="label">step</th><th>wait (ms)</th>'
            "<th>share (%)</th></tr>\n" + rows + "</table>")
    if by_link:
        rows = "\n".join(
            f'<tr><td class="label">{_esc(link)}</td>'
            f"<td>{wait / 1000.0:.3f}</td></tr>"
            for link, wait in sorted(by_link.items(),
                                     key=lambda kv: -kv[1])[:10])
        blocks.append(
            "<h2>Busiest links on critical paths</h2>\n"
            '<table><tr><th class="label">link</th>'
            "<th>critical wait (ms)</th></tr>\n" + rows + "</table>")
    return "\n".join(blocks)


def _findings_section(points: List[PointResult]) -> str:
    flagged = [p for p in points if p.doctor_findings]
    if not flagged:
        return ""
    items = []
    for point in flagged:
        findings = "".join(f"<li>{_esc(f)}</li>"
                           for f in point.doctor_findings)
        items.append(f'<h2>Doctor findings — {_esc(point.label)}</h2>'
                     f'<ul class="findings">{findings}</ul>')
    return "\n".join(items)


def render_sweep_report(sweep: SweepResult,
                        title: str = "DOMINO sweep report") -> str:
    """Render one self-contained HTML page for a completed sweep."""
    fairness = [p.fairness for p in sweep.points]
    summary = (
        f"<p class=\"meta\">{len(sweep.points)} points · "
        f"{sweep.workers} workers · wall {sweep.wall_s:.2f} s · "
        f"{sweep.total_events} events "
        f"({sweep.events_per_sec / 1000.0:.0f}k ev/s) · "
        f"fairness min {_fmt(min(fairness) if fairness else None, 3)} "
        f"mean {_fmt(sum(fairness) / len(fairness) if fairness else None, 3)}"
        "</p>")
    table = (
        '<table>\n<tr><th class="label">point</th>'
        '<th class="label">scheme</th><th>seed</th><th>Mb/s</th>'
        "<th>fairness</th><th>delay (ms)</th><th>events</th>"
        "<th>wall (s)</th><th>doctor</th>"
        "<th>critical p50 (ms)</th><th>critical p95 (ms)</th></tr>\n"
        + _point_rows(sweep.points) + "\n</table>")
    return (
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
        "<meta charset=\"utf-8\">\n"
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_STYLE}</style>\n</head>\n<body>\n"
        f"<h1>{_esc(title)}</h1>\n"
        f"{summary}\n"
        "<h2>Per-point results</h2>\n"
        f"{table}\n"
        f"{_rollup_section(sweep.points)}\n"
        f"{_findings_section(sweep.points)}\n"
        "</body>\n</html>\n")


def write_sweep_report(sweep: SweepResult, path: str,
                       title: str = "DOMINO sweep report") -> str:
    """Write :func:`render_sweep_report` output to ``path``."""
    with open(path, "w") as handle:
        handle.write(render_sweep_report(sweep, title=title))
    return path
