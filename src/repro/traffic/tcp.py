"""TCP-Reno-lite over the simulated MACs.

The paper's Fig. 12(d-f) runs TCP flows over all three MACs and notes
two TCP-specific effects we need to reproduce:

* "we treat the TCP ACK packet as a regular data packet and it takes
  one whole slot" — ACKs here are ordinary DATA frames enqueued into
  the reverse MAC queue, so they consume channel/slot resources like
  everything else;
* congestion control throttles the MAC queue, so TCP delay behaves
  very differently from saturated UDP (Fig. 12e).

The implementation is a compact Reno: slow start, congestion
avoidance, triple-duplicate fast retransmit, and an RTO with Karn-
style exponential backoff.  SACK/NewReno partial-ack subtleties are
out of scope — MAC-level ARQ already repairs most losses, so the
congestion picture matches the paper's setting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple, TYPE_CHECKING

from ..sim.engine import Event, Simulator
from ..sim.packet import Frame, data_frame

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..mac.base import Mac

TCP_ACK_BYTES = 40


@dataclass
class TcpStats:
    sent: int = 0
    retransmits: int = 0
    fast_retransmits: int = 0
    timeouts: int = 0
    delivered: int = 0
    acked: int = 0


class TcpFlow:
    """One unidirectional TCP flow ``src -> dst`` with its ACK stream.

    Parameters
    ----------
    src_mac, dst_mac:
        The MACs of the two endpoints.  The flow subscribes to their
        delivery handlers for data (at ``dst``) and ACKs (at ``src``).
    app_rate_mbps:
        Application offered load.  ``None`` means an infinite backlog
        (file transfer); otherwise data becomes available at this rate
        and the sender can go idle, as in the Fig. 12 rate sweeps.
    """

    INITIAL_RTO_US = 200_000.0
    MIN_RTO_US = 20_000.0
    MAX_RTO_US = 4_000_000.0
    MAX_CWND = 64.0
    #: Delayed-ACK policy (RFC 1122): acknowledge every second
    #: in-order segment, or after this timer, whichever first.
    #: Out-of-order and duplicate segments are ACKed immediately.
    DELAYED_ACK_US = 10_000.0

    def __init__(self, sim: Simulator, src_mac: "Mac", dst_mac: "Mac",
                 payload_bytes: int = 512,
                 app_rate_mbps: Optional[float] = None,
                 start_us: float = 0.0):
        self.sim = sim
        self.src_mac = src_mac
        self.dst_mac = dst_mac
        self.src = src_mac.node.node_id
        self.dst = dst_mac.node.node_id
        self.flow: Tuple[int, int] = (self.src, self.dst)
        self.ack_flow: Tuple[int, int] = (self.dst, self.src)
        self.payload_bytes = payload_bytes
        self.app_rate_mbps = app_rate_mbps
        self.start_us = start_us
        self.stats = TcpStats()

        # Sender state.
        self.cwnd = 2.0
        self.ssthresh = 32.0
        self.next_seq = 0
        self.send_base = 0
        self._app_available = 0          # packets the app has produced
        self._send_times: Dict[int, float] = {}
        self._retransmitted: Set[int] = set()
        self._dup_acks = 0
        self._rto_us = self.INITIAL_RTO_US
        self._srtt: Optional[float] = None
        self._rttvar = 0.0
        self._rto_timer: Optional[Event] = None

        # Receiver state.
        self._expected = 0
        self._out_of_order: Set[int] = set()
        self._unacked_in_order = 0
        self._delayed_ack_timer: Optional[Event] = None

        # MAC-level duplicates are filtered below us (802.11 SN dedup);
        # what still reaches these handlers includes *transport*
        # retransmissions, whose duplicate transport seq is exactly the
        # dup-ACK signal the sender's fast retransmit needs.
        src_mac.add_delivery_handler(self._on_src_delivery)
        dst_mac.add_delivery_handler(self._on_dst_delivery)

    # ------------------------------------------------------------------
    # Application layer
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.app_rate_mbps is None:
            self.sim.schedule(self.start_us, self._pump)
            return
        if self.app_rate_mbps <= 0:
            return
        interval = self.payload_bytes * 8.0 / self.app_rate_mbps
        self.sim.schedule(self.start_us + interval, self._app_tick, interval)

    def _app_tick(self, interval: float) -> None:
        self._app_available += 1
        self._pump()
        self.sim.schedule(interval, self._app_tick, interval)

    def _app_has_data(self) -> bool:
        if self.app_rate_mbps is None:
            return True
        return self._app_available > 0

    def _consume_app(self) -> None:
        if self.app_rate_mbps is not None:
            self._app_available -= 1

    # ------------------------------------------------------------------
    # Sender
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return self.next_seq - self.send_base

    def _pump(self) -> None:
        """Send new segments while the window and the app allow."""
        while self.in_flight < int(self.cwnd) and self._app_has_data():
            self._send_segment(self.next_seq, new=True)
            self._consume_app()
            self.next_seq += 1

    def _send_segment(self, seq: int, new: bool) -> None:
        frame = data_frame(self.src, self.dst, self.payload_bytes,
                           seq=seq, enqueued_at=self.sim.now, flow=self.flow)
        self.stats.sent += 1
        if not new:
            self.stats.retransmits += 1
            self._retransmitted.add(seq)
        else:
            self._send_times[seq] = self.sim.now
        self.src_mac.enqueue(frame)
        self._arm_rto()

    def _arm_rto(self) -> None:
        if self._rto_timer is not None:
            self._rto_timer.cancel()
        self._rto_timer = self.sim.schedule(self._rto_us, self._on_rto)

    def _on_rto(self) -> None:
        self._rto_timer = None
        if self.send_base >= self.next_seq:
            return  # nothing outstanding
        self.stats.timeouts += 1
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = 1.0
        self._dup_acks = 0
        self._rto_us = min(self._rto_us * 2.0, self.MAX_RTO_US)
        self._send_segment(self.send_base, new=False)

    def _on_src_delivery(self, frame: Frame, now: float) -> None:
        """ACK segments arriving back at the sender."""
        if frame.flow != self.ack_flow or "tcp_ack" not in frame.meta:
            return
        ack = frame.meta["tcp_ack"]
        if ack > self.send_base:
            self._handle_new_ack(ack, now)
        elif ack == self.send_base:
            self._handle_dup_ack()

    def _handle_new_ack(self, ack: int, now: float) -> None:
        newly_acked = ack - self.send_base
        self.stats.acked += newly_acked
        # RTT sample from the highest newly acked, Karn's rule: skip
        # retransmitted segments.
        sample_seq = ack - 1
        if sample_seq in self._send_times and sample_seq not in self._retransmitted:
            self._update_rtt(now - self._send_times[sample_seq])
        for seq in range(self.send_base, ack):
            self._send_times.pop(seq, None)
            self._retransmitted.discard(seq)
        self.send_base = ack
        self._dup_acks = 0
        for _ in range(newly_acked):
            if self.cwnd < self.ssthresh:
                self.cwnd += 1.0          # slow start
            else:
                self.cwnd += 1.0 / self.cwnd  # congestion avoidance
        self.cwnd = min(self.cwnd, self.MAX_CWND)
        if self.send_base >= self.next_seq and self._rto_timer is not None:
            self._rto_timer.cancel()
            self._rto_timer = None
        elif self.send_base < self.next_seq:
            self._arm_rto()
        self._pump()

    def _handle_dup_ack(self) -> None:
        self._dup_acks += 1
        if self._dup_acks == 3:
            self.stats.fast_retransmits += 1
            self.ssthresh = max(self.cwnd / 2.0, 2.0)
            self.cwnd = self.ssthresh
            self._send_segment(self.send_base, new=False)

    def _update_rtt(self, sample_us: float) -> None:
        if self._srtt is None:
            self._srtt = sample_us
            self._rttvar = sample_us / 2.0
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - sample_us)
            self._srtt = 0.875 * self._srtt + 0.125 * sample_us
        self._rto_us = max(self.MIN_RTO_US,
                           min(self._srtt + 4.0 * self._rttvar, self.MAX_RTO_US))

    # ------------------------------------------------------------------
    # Receiver
    # ------------------------------------------------------------------
    def _on_dst_delivery(self, frame: Frame, now: float) -> None:
        if frame.flow != self.flow:
            return
        if "tcp_ack" in frame.meta:
            # Not ours: with bidirectional TCP over one association,
            # the reverse flow's ACK segments share this (src, dst)
            # tuple with our data segments.
            return
        seq = frame.seq
        is_new = seq >= self._expected and seq not in self._out_of_order
        if is_new:
            self.stats.delivered += 1
        in_order = seq == self._expected
        if in_order:
            self._expected += 1
            while self._expected in self._out_of_order:
                self._out_of_order.discard(self._expected)
                self._expected += 1
        elif seq > self._expected:
            self._out_of_order.add(seq)
        if not in_order:
            # Out-of-order or duplicate: ACK immediately — dup ACKs
            # are the loss signal the sender's fast retransmit needs.
            self._send_ack()
            return
        self._unacked_in_order += 1
        if self._unacked_in_order >= 2:
            self._send_ack()
        elif self._delayed_ack_timer is None:
            self._delayed_ack_timer = self.sim.schedule(
                self.DELAYED_ACK_US, self._delayed_ack_fire)

    def _delayed_ack_fire(self) -> None:
        self._delayed_ack_timer = None
        if self._unacked_in_order > 0:
            self._send_ack()

    def _send_ack(self) -> None:
        self._unacked_in_order = 0
        if self._delayed_ack_timer is not None:
            self._delayed_ack_timer.cancel()
            self._delayed_ack_timer = None
        ack = data_frame(self.dst, self.src, TCP_ACK_BYTES,
                         seq=self._next_ack_uid(), enqueued_at=self.sim.now,
                         flow=self.ack_flow)
        ack.meta["tcp_ack"] = self._expected
        self.dst_mac.enqueue(ack)

    def _next_ack_uid(self) -> int:
        # ACK segments need seq numbers that cannot collide with the
        # reverse flow's data seqs under the MAC's (flow, seq) dedup
        # key, so they come from one counter shared by every flow in
        # the simulation.  Per-simulation (not a class global): a
        # fresh run must count from zero again or back-to-back runs
        # in one process produce different traces.
        return self.sim.serial("tcp_ack_uid")
