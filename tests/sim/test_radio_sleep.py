"""Tests for the radio power-save path (Sec. 5 energy saving)."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.medium import Medium
from repro.sim.packet import data_frame
from repro.sim.phy import DOT11G
from repro.sim.radio import Radio


class SinkMac:
    def __init__(self):
        self.received = []

    def on_receive(self, frame, rss_dbm):
        self.received.append(frame)

    def on_receive_failed(self, frame, rss_dbm):
        pass

    def on_trigger(self, *args):
        pass

    def on_queue_report(self, *args):
        pass

    def on_channel_busy(self):
        pass

    def on_channel_idle(self):
        pass

    def on_tx_end(self, frame):
        pass


def build():
    sim = Simulator(seed=1)
    medium = Medium(sim, DOT11G, lambda a, b: -50.0)
    tx = Radio(0, medium)
    rx = Radio(1, medium)
    mac = SinkMac()
    rx.mac = mac
    return sim, tx, rx, mac


def test_sleeping_radio_hears_nothing():
    sim, tx, rx, mac = build()
    rx.sleep_until(1_000.0)
    tx.transmit(data_frame(0, 1, 512, 0, 0.0))
    sim.run(until=2_000.0)
    assert mac.received == []


def test_awake_after_wake_time():
    sim, tx, rx, mac = build()
    rx.sleep_until(100.0)
    sim.run(until=150.0)
    assert not rx.asleep
    tx.transmit(data_frame(0, 1, 512, 0, 0.0))
    sim.run(until=1_000.0)
    assert len(mac.received) == 1


def test_sleep_accounting_accumulates():
    sim, tx, rx, mac = build()
    assert rx.sleep_until(100.0) == pytest.approx(100.0)
    # Extending the same nap only grants the extension.
    assert rx.sleep_until(150.0) == pytest.approx(50.0)
    # Shrinking grants nothing.
    assert rx.sleep_until(120.0) == 0.0
    assert rx.total_sleep_us == pytest.approx(150.0)


def test_transmitting_radio_refuses_sleep():
    sim, tx, rx, mac = build()
    tx.transmit(data_frame(0, 1, 512, 0, 0.0))
    assert tx.sleep_until(1_000.0) == 0.0
    assert not tx.asleep


def test_sleep_abandons_ongoing_reception():
    sim, tx, rx, mac = build()
    tx.transmit(data_frame(0, 1, 512, 0, 0.0))
    sim.run(until=50.0)  # mid-frame
    rx.sleep_until(5_000.0)
    sim.run(until=6_000.0)
    assert mac.received == []
