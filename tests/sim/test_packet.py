"""Unit tests for frames."""

from repro.sim.packet import (ACK_BYTES, MAC_HEADER_BYTES, POLL_BYTES, Frame,
                              FrameKind, ack_frame, data_frame, fake_frame)


def test_data_frame_bytes_include_header():
    frame = data_frame(1, 2, payload_bytes=512, seq=7, enqueued_at=3.0)
    assert frame.mac_bytes() == 512 + MAC_HEADER_BYTES
    assert frame.flow == (1, 2)
    assert frame.seq == 7
    assert frame.enqueued_at == 3.0
    assert not frame.is_broadcast


def test_control_frame_sizes():
    assert ack_frame(2, 1, 0).mac_bytes() == ACK_BYTES
    assert Frame(kind=FrameKind.POLL, src=1, dst=None).mac_bytes() == POLL_BYTES
    assert fake_frame(1, 2, 0).mac_bytes() == MAC_HEADER_BYTES


def test_trigger_and_report_have_no_rate_bytes():
    trigger = Frame(kind=FrameKind.TRIGGER, src=1, dst=None)
    report = Frame(kind=FrameKind.QUEUE_REPORT, src=1, dst=2)
    assert trigger.mac_bytes() == 0
    assert report.mac_bytes() == 0
    assert trigger.is_broadcast


def test_frame_uids_are_unique():
    frames = [data_frame(1, 2, 10, i, 0.0) for i in range(100)]
    assert len({f.uid for f in frames}) == 100


def test_trigger_targets_default_empty():
    trigger = Frame(kind=FrameKind.TRIGGER, src=1, dst=None)
    assert trigger.trigger_targets() == frozenset()
    trigger.meta["targets"] = frozenset({4, 5})
    assert trigger.trigger_targets() == frozenset({4, 5})


def test_clone_for_retry_preserves_identity_but_not_uid():
    frame = data_frame(1, 2, 512, seq=9, enqueued_at=4.5)
    frame.meta["slot"] = 12
    clone = frame.clone_for_retry()
    assert clone.uid != frame.uid
    assert clone.seq == frame.seq
    assert clone.enqueued_at == frame.enqueued_at
    assert clone.retries == frame.retries + 1
    assert clone.meta == frame.meta
    assert clone.meta is not frame.meta  # independent copy


def test_fake_frame_marks_itself():
    fake = fake_frame(3, 4, slot=17)
    assert fake.kind is FrameKind.FAKE
    assert fake.meta["slot"] == 17
    assert fake.meta["fake"] is True
