"""Table 3 bench: exposed-link topologies (Fig. 13a / 13b).

Paper's shape (Mbps — DOMINO / CENTAUR / DCF):
  Fig. 13a: 32.72 / 28.60 /  9.97  — both centralized schemes ~3x DCF
  Fig. 13b: 33.85 / 18.35 / 22.13  — CENTAUR falls BELOW DCF
and DOMINO delivers the same throughput on both.
"""

from repro.experiments import tab03_exposed


def test_tab03_exposed(once, sweep_workers):
    result = once(tab03_exposed.run, 800_000.0, workers=sweep_workers)
    print()
    print(tab03_exposed.report(result))

    a = result.mbps["fig13a"]
    b = result.mbps["fig13b"]
    # 13a: DCF serializes; the centralized schemes exploit exposure.
    assert a["domino"] > 2.8 * a["dcf"]
    assert a["centaur"] > 1.6 * a["dcf"]
    assert a["domino"] > a["centaur"] > a["dcf"]
    # 13b: the alignment assumption collapses — CENTAUR under DCF.
    assert b["centaur"] < b["dcf"]
    # DCF itself does fine on 13b (senders do not hear each other).
    assert b["dcf"] > 1.8 * a["dcf"]
    # DOMINO is topology-blind across the two (paper: ~3 % apart).
    assert abs(a["domino"] - b["domino"]) / a["domino"] < 0.05
