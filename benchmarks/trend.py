"""Benchmark trend tracking: history file + regression gate.

Every bench run appends one JSON line to ``BENCH_history.jsonl`` at
the repo root::

    {"bench": "telemetry_overhead", "metrics": {...}, "ts": ...}

so performance history accumulates *in the repo* instead of dying with
each CI container.  :func:`check` then compares the newest entry of
each bench against the median of its recorded predecessors and flags
any gated metric that regressed by more than 15 %.

Two kinds of metrics deliberately get different treatment:

* **gated** (:data:`GATED_METRICS`) — ratios and deterministic
  simulation outputs (runtime *ratio* enabled/disabled, estimated
  disabled overhead fraction, seeded fig12 throughput).  These are
  machine-independent enough that a 15 % move means the *code*
  changed, so CI fails on them.
* everything else — raw wall-clock seconds and similar
  machine-dependent numbers.  They ride along in the history and the
  report for humans, but never block.

CLI::

    python benchmarks/trend.py check            # report, always exit 0
    python benchmarks/trend.py check --strict   # exit 1 on regression
    python benchmarks/trend.py show             # dump the history
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

HISTORY_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_history.jsonl")

#: Maximum tolerated regression of a gated metric against the median
#: of its recorded history.
REGRESSION_THRESHOLD = 0.15

#: Metric name -> direction ("lower" = smaller is better).  Only
#: metrics listed here participate in the blocking gate.
GATED_METRICS: Dict[str, str] = {
    "enabled_runtime_ratio": "lower",
    "disabled_overhead_fraction": "lower",
    "domino_mbps": "higher",
    "sweep_events_per_sec": "higher",
    # Matrix-engine throughput on the fig14 workload and its ratio
    # over the reference engine (benchmarks/test_matrix_speedup.py):
    # a drop means the vectorized medium regressed.
    "matrix_events_per_sec": "higher",
    "matrix_speedup": "higher",
    # Critical-path makespan percentiles of the seeded fig12 reference
    # run (schema v3 causal spans) — deterministic simulation outputs,
    # so a move means the protocol/scheduling code changed.
    "critical_makespan_p50_ms": "lower",
    "critical_makespan_p95_ms": "lower",
    # Online-controller loadtest: revision latency must stay flat and
    # the conversion-cache hit rate is a deterministic output of the
    # seeded workload — a drop means cache revalidation regressed.
    "revision_p99_ms": "lower",
    "incremental_hit_rate": "higher",
    # Live ops plane: the exporter + phase timing must stay near-free
    # on the loadtest (the bench itself hard-fails at 3 %; the gate
    # catches slow creep below that), and the per-phase p99 rides the
    # same flat-latency expectation as revision_p99_ms.
    "export_overhead_pct": "lower",
    "revision_phase_p99_ms": "lower",
    # Warm whole-tree dominolint wall time (benchmarks/test_lint_speed):
    # the content-hash cache keeps the dataflow phases out of the edit
    # loop, and this gate keeps them out for good.
    "lint_wall_s": "lower",
}

#: History below this many prior entries is not gated — a median of
#: one sample is just that sample.
MIN_HISTORY = 2


def append(bench: str, metrics: Dict[str, float],
           history_path: Optional[str] = None) -> dict:
    """Record one bench run.  Returns the appended entry."""
    entry = {"bench": bench, "ts": round(time.time(), 3),
             "metrics": {k: metrics[k] for k in sorted(metrics)}}
    path = history_path or HISTORY_PATH
    with open(path, "a") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def load_history(history_path: Optional[str] = None) -> List[dict]:
    path = history_path or HISTORY_PATH
    if not os.path.exists(path):
        return []
    entries = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


@dataclass
class MetricVerdict:
    """Latest-vs-history comparison of one bench metric."""

    bench: str
    metric: str
    latest: float
    median: float
    samples: int                  # prior entries backing the median
    gated: bool
    #: Signed relative change, positive = worse (direction-adjusted).
    regression: float

    @property
    def failed(self) -> bool:
        return self.gated and self.regression > REGRESSION_THRESHOLD

    def describe(self) -> str:
        flag = ("FAIL" if self.failed
                else "gate" if self.gated else "info")
        return (f"[{flag}] {self.bench}.{self.metric}: "
                f"{self.latest:.4f} vs. median {self.median:.4f} "
                f"over {self.samples} runs "
                f"({100.0 * self.regression:+.1f} % "
                f"{'worse' if self.regression > 0 else 'better'})")


def check(history_path: Optional[str] = None) -> List[MetricVerdict]:
    """Compare each bench's newest entry against its history.

    Returns one verdict per (bench, metric) with enough history;
    callers decide whether only gated failures block (``--strict``).
    """
    by_bench: Dict[str, List[dict]] = {}
    for entry in load_history(history_path):
        by_bench.setdefault(entry["bench"], []).append(entry)

    verdicts: List[MetricVerdict] = []
    for bench, entries in sorted(by_bench.items()):
        *history, latest = entries
        for metric, value in sorted(latest["metrics"].items()):
            priors = [e["metrics"][metric] for e in history
                      if metric in e["metrics"]]
            if len(priors) < MIN_HISTORY:
                continue
            median = _median(priors)
            direction = GATED_METRICS.get(metric)
            if median == 0.0:
                relative = 0.0
            else:
                relative = (value - median) / abs(median)
            if direction == "higher":
                relative = -relative
            verdicts.append(MetricVerdict(
                bench=bench, metric=metric, latest=value, median=median,
                samples=len(priors), gated=direction is not None,
                regression=relative))
    return verdicts


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/trend.py",
        description="Benchmark history trend gate.")
    commands = parser.add_subparsers(dest="command", required=True)
    cmd = commands.add_parser("check", help="compare latest runs vs. history")
    cmd.add_argument("--strict", action="store_true",
                     help="exit 1 if any gated metric regressed > "
                          f"{100 * REGRESSION_THRESHOLD:.0f} %")
    cmd.add_argument("--history", default=None, help="history file path")
    cmd = commands.add_parser("show", help="dump the recorded history")
    cmd.add_argument("--history", default=None, help="history file path")

    args = parser.parse_args(argv)
    history = load_history(args.history)
    if args.command == "show":
        for entry in history:
            print(json.dumps(entry, sort_keys=True))
        return 0

    if not history:
        print("no benchmark history recorded yet "
              f"({args.history or HISTORY_PATH})")
        return 0
    verdicts = check(args.history)
    if not verdicts:
        print(f"{len(history)} history entries, none with enough prior "
              f"runs to gate (need {MIN_HISTORY})")
        return 0
    for verdict in verdicts:
        print(verdict.describe())
    failures = [v for v in verdicts if v.failed]
    if failures:
        print(f"{len(failures)} gated metric(s) regressed beyond "
              f"{100 * REGRESSION_THRESHOLD:.0f} % of the recorded median")
        return 1 if args.strict else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
