"""Diagnosis layer over traces and metrics — "the doctor".

Four entry points:

* :func:`diagnose` — one pass over a trace, out comes a typed
  :class:`HealthReport` (trigger reliability, ROP decode health,
  airtime accounting, per-flow fairness, plain-language findings);
* :func:`diff_traces` — align two traces slot-by-slot and report the
  first divergence (:class:`TraceDiff`);
* :func:`causality_report` — reconstruct per-batch trigger trees from
  the v3 ``id``/``cause`` spans, compute each batch's critical path
  and attribute its makespan to individual links/decisions
  (:class:`CausalityReport`; :func:`summarize_causality` is the
  picklable rollup sweep workers ship);
* the report/section dataclasses themselves, for tooling that wants
  the numbers rather than the rendered text.

Also reachable as ``RunResult.doctor()`` on a traced experiment run
and as ``python -m repro.telemetry doctor / diff`` on exported JSONL.
"""

from .causality import (BatchChain, CausalityReport, ChainEdge,
                        causality_report, summarize_causality)
from .diff import SlotDivergence, TraceDiff, diff_traces
from .doctor import diagnose
from .reports import (AirtimeBucket, AirtimeReport, FlowHealth, FlowStats,
                      HealthReport, LinkTriggerStats, RopHealth,
                      TriggerHealth)

__all__ = [
    "AirtimeBucket",
    "AirtimeReport",
    "BatchChain",
    "CausalityReport",
    "ChainEdge",
    "FlowHealth",
    "FlowStats",
    "HealthReport",
    "LinkTriggerStats",
    "RopHealth",
    "SlotDivergence",
    "TraceDiff",
    "TriggerHealth",
    "causality_report",
    "diagnose",
    "diff_traces",
    "summarize_causality",
]
