#!/usr/bin/env python3
"""A tour of relative scheduling's machinery on the Fig. 7 network.

Walks through what the DOMINO controller does to a strict schedule:

1. build the link conflict graph from the interference map;
2. produce the Fig. 7(c) strict schedule with the RAND scheduler;
3. convert it: fake-link insertion, trigger assignment (inbound <= 2,
   outbound <= 4), ROP slot insertion;
4. execute the relative schedule over the simulated medium and render
   the Fig. 10-style timeline, including the misalignment healing;
5. optionally re-run on a 10-node T(5, 1) network with telemetry
   enabled and export the structured trace.

Run:  python examples/relative_scheduling_tour.py [--trace out.jsonl]

then inspect the trace with

    python -m repro.telemetry summarize out.jsonl
"""

import argparse

from repro import telemetry
from repro.core import build_domino_network
from repro.core.converter import ScheduleConverter
from repro.metrics.stats import FlowRecorder
from repro.sched.rand_scheduler import RandScheduler
from repro.sim.engine import Simulator
from repro.topology.builder import build_t_topology, fig7_topology
from repro.topology.conflict_graph import build_conflict_graph
from repro.topology.trace import two_building_trace
from repro.traffic.udp import SaturatedSource

NAMES = {0: "AP1", 1: "C1", 2: "AP2", 3: "C2",
         4: "AP3", 5: "C3", 6: "AP4", 7: "C4"}


def name(node_id):
    return NAMES.get(node_id, str(node_id))


def show_conversion():
    topology = fig7_topology()
    imap = topology.interference_map()
    universe = list(topology.flows)
    for link in topology.all_association_links():
        if link not in universe:
            universe.append(link)
    graph = build_conflict_graph(imap, universe)

    print("conflict graph edges over the downlinks:")
    for a, b in graph.edges:
        if a in topology.flows and b in topology.flows:
            print(f"  {name(a.src)}->{name(a.dst)}  x  "
                  f"{name(b.src)}->{name(b.dst)}")

    scheduler = RandScheduler(graph, universe,
                              set_check=imap.set_survives)
    strict = scheduler.schedule_batch({l: 2 for l in topology.flows},
                                      max_slots=4)
    print("\nstrict schedule (RAND):")
    for i, slot in enumerate(strict):
        print(f"  slot {i}: "
              + ", ".join(f"{name(l.src)}->{name(l.dst)}" for l in slot))

    converter = ScheduleConverter(imap, graph, fake_candidates=universe)
    ap_links = {ap.node_id: [l for l in universe
                             if topology.network.ap_of(l.src) == ap.node_id]
                for ap in topology.network.aps}
    batch = converter.convert(strict,
                              rop_aps=[ap.node_id
                                       for ap in topology.network.aps],
                              ap_links=ap_links)
    print("\nrelative schedule after conversion:")
    for slot in batch.slots:
        entries = ", ".join(
            f"{name(e.link.src)}->{name(e.link.dst)}"
            + ("(fake)" if e.fake else "")
            for e in slot.entries
        )
        rop = (f"   [ROP after: "
               f"{', '.join(name(a) for a in slot.rop_after)}]"
               if slot.rop_after else "")
        print(f"  slot {slot.index}: {entries}{rop}")
    print("\ntrigger duties (who broadcasts whose signature):")
    for (node, slot_idx), duty in sorted(batch.duties.items(),
                                         key=lambda kv: (kv[0][1], kv[0][0])):
        targets = ", ".join(name(t) for t in sorted(duty.targets))
        extras = []
        if duty.rop_polls:
            extras.append("polls: "
                          + ", ".join(name(a)
                                      for a in sorted(duty.rop_polls)))
        if duty.rop_flag:
            extras.append("ROP signature")
        suffix = f"  ({'; '.join(extras)})" if extras else ""
        print(f"  slot {slot_idx}: {name(node)} -> [{targets}]{suffix}")


def show_execution():
    topology = fig7_topology(uplinks=True)
    sim = Simulator(seed=5)
    net = build_domino_network(sim, topology)
    recorder = FlowRecorder(topology.flows)
    recorder.attach_all(net.macs.values())
    for flow in topology.flows:
        SaturatedSource(sim, net.macs[flow.src], flow.dst).start()
    net.controller.start()
    sim.run(until=60_000.0)

    print("\nexecution timeline (D=data, f=fake, P=poll):\n")
    print(net.timeline.render(0, 12, names=NAMES))
    table = net.timeline.misalignment_by_slot()
    shown = [f"{table.get(i, 0.0):.1f}" for i in range(8)]
    print(f"\nmax misalignment per slot (us): {' '.join(shown)}")
    print("(wired jitter desynchronizes slot 0; triggers and the ROP "
          "reference broadcasts\nre-align everything within a few slots; "
          "clusters that barely interfere may keep\na constant offset "
          "until a poll gets through, which is harmless)")


def show_traced_run(trace_path):
    """Run a 10-node T(5, 1) network with telemetry on and export the
    structured trace for ``python -m repro.telemetry summarize``."""
    topology = build_t_topology(two_building_trace(), 5, 1, seed=3)
    recorder = telemetry.activate()
    try:
        sim = Simulator(seed=5)
        net = build_domino_network(sim, topology)
        for flow in topology.flows:
            SaturatedSource(sim, net.macs[flow.src], flow.dst).start()
        net.controller.start()
        sim.run(until=60_000.0)
    finally:
        telemetry.deactivate()
    recorder.export_jsonl(trace_path)
    print(f"\ntelemetry: {len(recorder)} events from a 10-node T(5,1) run "
          f"written to {trace_path}")
    print(f"  inspect with: python -m repro.telemetry summarize {trace_path}")
    print("\nmetrics registry for the traced run:")
    print(recorder.metrics.render())


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="also run a 10-node network with telemetry "
                             "and write the JSONL trace here")
    args = parser.parse_args()
    show_conversion()
    show_execution()
    if args.trace:
        show_traced_run(args.trace)
