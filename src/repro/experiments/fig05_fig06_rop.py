"""Figures 5 and 6: ROP subchannel interference vs guard subcarriers.

Fig. 5 shows decoded subcarrier magnitudes for two clients on
adjacent subchannels — (a) equal power, no guards; (b) 30 dB apart,
no guards (the weak client's first few subcarriers get swamped);
(c) 30 dB apart with 3 guard subcarriers (clean).

Fig. 6 sweeps the RSS difference from 15 to 40 dB for 0-4 guard
subcarriers and shows 3 guards tolerating up to ~38 dB.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List

from ..core.ofdm import (MAX_QUEUE_REPORT, ClientSignal, OfdmParams,
                         RopSymbolDecoder, aggregate_at_ap,
                         rss_difference_tolerance_experiment)
from .common import format_table

GUARD_COUNTS = (0, 1, 2, 3, 4)
RSS_DIFFS_DB = (15.0, 20.0, 25.0, 30.0, 35.0, 38.0, 40.0)


@dataclass
class Fig5Panel:
    """One panel of Fig. 5: per-subcarrier magnitudes for both clients."""

    label: str
    guard_subcarriers: int
    rss_difference_db: float
    strong_magnitudes: List[float] = field(default_factory=list)
    weak_magnitudes: List[float] = field(default_factory=list)
    weak_decoded: int = -1
    weak_truth: int = -1

    @property
    def weak_correct(self) -> bool:
        return self.weak_decoded == self.weak_truth

    def corrupted_weak_bits(self) -> int:
        """Bits of the weak client flipped by the strong neighbour."""
        diff = self.weak_decoded ^ self.weak_truth
        return bin(diff).count("1")


def _panel(label: str, guard: int, diff_db: float, seed: int = 3) -> Fig5Panel:
    params = OfdmParams(guard_subcarriers=guard)
    decoder = RopSymbolDecoder(params)
    rng = random.Random(seed)
    strong_amp = 10.0 ** (diff_db / 20.0)
    # Paper setup (Fig. 5a): the weak client sends 011111 — the first
    # bit is 0 precisely "to show the interference between different
    # subchannels"; a leaking strong neighbour flips it to 1.
    weak_bits = 0b011111
    strong = ClientSignal(subchannel=0, queue_len=MAX_QUEUE_REPORT,
                          amplitude=strong_amp,
                          cfo_fraction=rng.uniform(-0.005, 0.005),
                          timing_offset_samples=rng.randint(0, 20),
                          phase=rng.uniform(0, 2 * math.pi),
                          skirt_seed=rng.getrandbits(32))
    weak = ClientSignal(subchannel=1, queue_len=weak_bits, amplitude=1.0,
                        cfo_fraction=rng.uniform(-0.005, 0.005),
                        timing_offset_samples=rng.randint(0, 20),
                        phase=rng.uniform(0, 2 * math.pi),
                        skirt_seed=rng.getrandbits(32))
    received = aggregate_at_ap([strong, weak], params)
    strong_out = decoder.decode_subchannel(received, 0, strong_amp,
                                           MAX_QUEUE_REPORT)
    weak_out = decoder.decode_subchannel(received, 1, 1.0, weak_bits)
    return Fig5Panel(
        label=label, guard_subcarriers=guard, rss_difference_db=diff_db,
        strong_magnitudes=strong_out.bin_magnitudes,
        weak_magnitudes=weak_out.bin_magnitudes,
        weak_decoded=weak_out.queue_len, weak_truth=weak_bits,
    )


def run_fig5(seed: int = 3) -> List[Fig5Panel]:
    return [
        _panel("(a) equal RSS, no guards", 0, 0.0, seed),
        _panel("(b) 30 dB apart, no guards", 0, 30.0, seed),
        _panel("(c) 30 dB apart, 3 guards", 3, 30.0, seed),
    ]


@dataclass
class Fig6Result:
    #: guard count -> {rss diff -> correct decoding ratio}
    curves: Dict[int, Dict[float, float]] = field(default_factory=dict)

    def tolerance_db(self, guard: int, level: float = 0.95) -> float:
        """Largest swept RSS difference still decoded at >= level."""
        best = 0.0
        for diff, ratio in sorted(self.curves[guard].items()):
            if ratio >= level:
                best = diff
        return best


def run_fig6(runs: int = 100, seed: int = 5) -> Fig6Result:
    result = Fig6Result()
    for guard in GUARD_COUNTS:
        result.curves[guard] = {
            diff: rss_difference_tolerance_experiment(
                guard, diff, runs=runs, seed=seed)
            for diff in RSS_DIFFS_DB
        }
    return result


def report(panels: List[Fig5Panel], fig6: Fig6Result) -> str:
    lines = ["Fig. 5 — adjacent-subchannel decoding:"]
    for panel in panels:
        mags = " ".join(f"{m:.2f}" for m in panel.weak_magnitudes)
        lines.append(
            f"  {panel.label}: weak bins [{mags}] "
            f"decoded={'OK' if panel.weak_correct else 'CORRUPT'} "
            f"({panel.corrupted_weak_bits()} bits flipped)"
        )
    lines.append("")
    lines.append("Fig. 6 — correct decoding ratio vs RSS difference:")
    headers = ["guards", *(f"{d:.0f} dB" for d in RSS_DIFFS_DB)]
    rows = [
        [str(g), *(f"{fig6.curves[g][d]:.2f}" for d in RSS_DIFFS_DB)]
        for g in GUARD_COUNTS
    ]
    lines.append(format_table(headers, rows))
    lines.append(
        f"3-guard tolerance: {fig6.tolerance_db(3):.0f} dB (paper: ~38 dB)"
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run_fig5(), run_fig6()))


if __name__ == "__main__":  # pragma: no cover
    main()
