"""Sweep execution: serial in-process or fan-out over a process pool.

``run_sweep(points, workers=N)`` executes every
:class:`~repro.runner.points.ExperimentPoint` and returns a
:class:`~repro.runner.points.SweepResult` in submission order.
``workers=0`` (the default) runs in-process; ``workers >= 1`` fans out
over a ``ProcessPoolExecutor`` using the ``fork`` start method where
available (simulation state is rebuilt per point either way, so fork
inherits nothing that matters).

Each worker reduces its run to plain data (:class:`PointResult`)
because ``RunResult`` holds live MACs and the simulator.  Per-point
telemetry is recorded *inside* the worker — recorders are
process-local, so no cross-process merging of live objects is needed;
the registry snapshot and canonical-trace digest come back with the
point and :meth:`SweepResult.merged_metrics` recombines them.

Two opt-in observability layers ride on top (see
:mod:`repro.runner.progress`):

* ``progress=`` — workers post start/finish heartbeats over a queue;
  the parent renders per-point one-liners, events/sec, an ETA, and
  stall warnings while the sweep is still running.
* ``diagnose=True`` — workers also run the doctor and the causal
  critical-path rollup over their own trace and ship only the plain
  findings/summary (never the trace), populating
  ``PointResult.doctor_findings`` / ``PointResult.causality``.

Neither layer touches what gets recorded, so trace digests stay
byte-identical with them on or off.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import queue as queue_mod
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Sequence, Union

from ..telemetry.jsonl import dumps_record
from .points import (ExperimentPoint, FlowSummary, PointResult, SweepResult,
                     TopologySpec)
from .progress import SweepMonitor, finish_record, start_record

__all__ = ["EngineDivergence", "run_point", "run_sweep", "trace_digest"]

#: How often the parent polls the heartbeat queue / stall detector.
_POLL_S = 0.2


def trace_digest(records: Iterable[dict]) -> str:
    """sha256 over the canonical JSONL serialization of a trace."""
    digest = hashlib.sha256()
    for record in records:
        digest.update(dumps_record(record).encode())
        digest.update(b"\n")
    return digest.hexdigest()


class EngineDivergence(AssertionError):
    """A cross-checked point's matrix and event traces differ.

    Raised by ``run_point(..., cross_check=True)``; the message embeds
    the first diverging record index and slot from
    :func:`repro.telemetry.analysis.diff_traces` so a failing CI run
    points straight at the offending event.
    """


def _reduce(point: ExperimentPoint, result: Any, wall_s: float,
            keep_trace: bool, diagnose: bool = False) -> PointResult:
    """Collapse a live ``RunResult`` into a picklable ``PointResult``."""
    from ..telemetry.analysis import summarize_causality
    from ..telemetry.analysis.doctor import diagnose as run_doctor

    flows = [
        FlowSummary(flow=flow, packets=record.packets,
                    payload_bytes=record.payload_bytes,
                    total_delay_us=record.total_delay_us,
                    delays_us=list(record.delays_us),
                    mbps=result.recorder.flow_throughput_mbps(
                        flow, point.horizon_us))
        for flow, record in result.recorder.records.items()
    ]
    sim = next(iter(result.macs.values())).sim
    cache = getattr(result.controller, "conversion_cache", None)
    digest = None
    metrics = None
    records = None
    findings = None
    causality = None
    if result.trace is not None:
        records = result.trace.records()
        digest = trace_digest(records)
        metrics = result.trace.metrics.snapshot()
        if diagnose:
            findings = run_doctor(records,
                                  horizon_us=point.horizon_us).findings
            causality = summarize_causality(records)
        if not keep_trace:
            records = None
    return PointResult(
        label=point.label, scheme=point.scheme, seed=point.seed,
        horizon_us=point.horizon_us, warmup_us=point.warmup_us,
        aggregate_mbps=result.aggregate_mbps,
        mean_delay_us=result.mean_delay_us,
        fairness=result.fairness,
        flows=flows,
        events_processed=sim.events_processed,
        wall_s=wall_s,
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
        trace_digest=digest, metrics=metrics,
        doctor_findings=findings, causality=causality,
        trace_records=records)


def run_point(point: ExperimentPoint, trace: bool = False,
              keep_trace: bool = False,
              diagnose: bool = False,
              cross_check: bool = False) -> PointResult:
    """Execute one point in this process (the pool worker entry).

    ``cross_check=True`` (needs ``trace=True``) re-runs the point on
    the *other* simulation backend from a freshly built topology and
    raises :class:`EngineDivergence` unless the two canonical traces
    are byte-identical — the sweep-level enforcement of the engine
    contract (:mod:`repro.sim.protocol`).  The shadow run is excluded
    from the point's ``wall_s``/phase timings.
    """
    # Imported here, not at module top: the experiment modules import
    # repro.runner to build their sweeps, so a top-level import of
    # repro.experiments.common would be circular.
    from ..experiments.common import run_scheme

    if cross_check and not trace:
        raise ValueError("cross_check compares trace digests: "
                         "run the sweep with trace=True")
    started = time.perf_counter()
    topology = point.topology.build()
    built = time.perf_counter()
    result = run_scheme(
        point.scheme, topology,
        horizon_us=point.horizon_us, warmup_us=point.warmup_us,
        seed=point.seed, trace=True if trace else None,
        engine=point.engine,
        **point.run_kwargs)
    ran = time.perf_counter()
    reduced = _reduce(point, result, time.perf_counter() - started,
                      keep_trace, diagnose)
    reduced.engine = point.engine
    if point.phase_timing:
        reduced.phases = {
            "build_ms": (built - started) * 1_000.0,
            "run_ms": (ran - built) * 1_000.0,
            "reduce_ms": (time.perf_counter() - ran) * 1_000.0,
        }
    if cross_check:
        _cross_check(point, result.trace.records(), reduced.trace_digest)
    return reduced


def _cross_check(point: ExperimentPoint, records: List[dict],
                 digest: Optional[str]) -> None:
    """Shadow-run ``point`` on the other backend; demand the same trace."""
    from ..experiments.common import run_scheme
    from ..telemetry.analysis import diff_traces

    other = "event" if point.engine == "matrix" else "matrix"
    shadow = run_scheme(
        point.scheme, point.topology.build(),
        horizon_us=point.horizon_us, warmup_us=point.warmup_us,
        seed=point.seed, trace=True, engine=other,
        **point.run_kwargs)
    shadow_records = shadow.trace.records()
    if trace_digest(shadow_records) == digest:
        return
    diff = diff_traces(records, shadow_records)
    raise EngineDivergence(
        f"point {point.label!r}: {point.engine} (A) and {other} (B) "
        f"backends diverge\n{diff.render()}")


# -- heartbeat plumbing (parallel path) ----------------------------------

#: Worker-side heartbeat queue (a manager-proxy queue, typed loosely
#: because the proxy class is synthesized at runtime), installed by
#: the pool initializer.  ``None`` means "sweep not being watched"
#: and costs one ``if``.
_HEARTBEATS: Optional[Any] = None


def _pool_init(heartbeats: Any) -> None:
    global _HEARTBEATS
    _HEARTBEATS = heartbeats


def _post(record: dict) -> None:
    if _HEARTBEATS is not None:
        try:
            _HEARTBEATS.put(record)
        except Exception:      # a dead monitor must never kill the point
            pass


def _pool_run_point(index: int, point: ExperimentPoint, trace: bool,
                    keep_trace: bool, diagnose: bool,
                    cross_check: bool) -> PointResult:
    """Worker entry: run one point, bracketed by heartbeats."""
    _post(start_record(index, point.label))
    result = run_point(point, trace=trace, keep_trace=keep_trace,
                       diagnose=diagnose, cross_check=cross_check)
    _post(finish_record(index, point.label, result.wall_s,
                        result.events_processed,
                        findings=result.doctor_findings,
                        causality=result.causality))
    return result


def _pool_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0])


def _resolve_emit(progress: Union[None, bool, Callable[[str], None]],
                  ) -> Optional[Callable[[str], None]]:
    if progress is None or progress is False:
        return None
    if progress is True:
        return lambda line: print(line, file=sys.stderr, flush=True)
    return progress


def run_sweep(points: Sequence[ExperimentPoint], workers: int = 0,
              trace: bool = False, keep_traces: bool = False,
              diagnose: bool = False,
              cross_check: bool = False,
              progress: Union[None, bool, Callable[[str], None]] = None,
              stall_timeout_s: float = 60.0) -> SweepResult:
    """Run every point; ``workers=0`` serial, else a pool of that size.

    Results come back in submission order regardless of which worker
    finished first, and are bit-identical to a serial run of the same
    points (same seeds, same topology specs — see the determinism
    contract in :mod:`repro.runner.points`).

    ``progress`` turns on live observability: ``True`` prints
    heartbeat one-liners to stderr, a callable receives them instead.
    ``diagnose=True`` (needs ``trace=True``) makes each worker run the
    doctor and critical-path rollup over its own trace so heartbeats
    and :class:`PointResult` carry health verdicts without shipping
    traces across the pipe.  Points running longer than
    ``stall_timeout_s`` without finishing are flagged once as stalled.

    ``cross_check=True`` (needs ``trace=True``) shadow-runs every
    point on the other simulation backend inside its worker and fails
    the sweep with :class:`EngineDivergence` on the first trace
    mismatch — roughly doubles the sweep's cost, so it is a CI/debug
    switch, not a default.
    """
    points = list(points)
    emit = _resolve_emit(progress)
    monitor = (SweepMonitor(len(points), workers, emit,
                            stall_timeout_s=stall_timeout_s)
               if emit is not None else None)
    started = time.perf_counter()
    if workers <= 0:
        results = []
        for index, point in enumerate(points):
            if monitor is not None:
                monitor.note(start_record(index, point.label))
            result = run_point(point, trace=trace, keep_trace=keep_traces,
                               diagnose=diagnose, cross_check=cross_check)
            if monitor is not None:
                monitor.note(finish_record(
                    index, point.label, result.wall_s,
                    result.events_processed,
                    findings=result.doctor_findings,
                    causality=result.causality))
            results.append(result)
    else:
        results = _run_pool(points, workers, trace, keep_traces, diagnose,
                            cross_check, monitor)
    return SweepResult(points=results, workers=workers,
                       wall_s=time.perf_counter() - started)


def _run_pool(points: Sequence[ExperimentPoint], workers: int, trace: bool,
              keep_traces: bool, diagnose: bool, cross_check: bool,
              monitor: Optional[SweepMonitor]) -> List[PointResult]:
    """Fan out over a process pool, draining heartbeats while we wait.

    The heartbeat queue is a manager proxy so it survives any start
    method; it exists only when someone is watching (``progress=``) —
    unwatched sweeps take the exact pre-observability fast path.
    """
    context = _pool_context()
    manager = context.Manager() if monitor is not None else None
    heartbeats = manager.Queue() if manager is not None else None
    try:
        with ProcessPoolExecutor(
                max_workers=workers, mp_context=context,
                initializer=_pool_init if heartbeats is not None else None,
                initargs=(heartbeats,) if heartbeats is not None else ()
        ) as pool:
            futures = [
                pool.submit(_pool_run_point, index, point, trace,
                            keep_traces, diagnose, cross_check)
                for index, point in enumerate(points)
            ]
            if monitor is not None:
                pending = set(futures)
                while pending:
                    try:
                        monitor.note(heartbeats.get(timeout=_POLL_S))
                    except queue_mod.Empty:
                        monitor.check_stalls()
                    pending = {f for f in pending if not f.done()}
                while True:         # late heartbeats from the last points
                    try:
                        monitor.note(heartbeats.get_nowait())
                    except queue_mod.Empty:
                        break
            return [future.result() for future in futures]
    finally:
        if manager is not None:
            manager.shutdown()


def scheme_sweep(schemes: Sequence[str], topology: TopologySpec, *,
                 horizon_us: float, warmup_us: float = 100_000.0,
                 seed: int = 1, label_prefix: str = "",
                 engine: str = "event",
                 **run_kwargs: Any) -> List[ExperimentPoint]:
    """Convenience: the same topology/traffic across several schemes."""
    return [
        ExperimentPoint(
            scheme=scheme, topology=topology,
            label=f"{label_prefix}{scheme}", seed=seed,
            horizon_us=horizon_us, warmup_us=warmup_us,
            engine=engine, run_kwargs=dict(run_kwargs))
        for scheme in schemes
    ]
