"""Memoization of schedule conversion (the PR-2 profiler's control-
plane hot spot).

The converter's output is a pure function of

* the **control plane**: measured RSS matrix, link universe and
  converter config (together hashed into a *topology key* — rebuilt
  after a measurement campaign, which naturally invalidates every
  prior entry);
* the **backlog-derived inputs** of one call: the padded strict
  schedule, the ROP AP list and the per-AP association links;
* the **connector** retained from the previous batch — only its entry
  structure matters (``polls_after`` and duty bookkeeping are local to
  each call), so it is keyed by ``(src, dst, fake)`` triples.

Everything else the converter touches (``_next_slot_index``,
``_batch_id``) only *renumbers* the output: slot indices shift by a
constant and the batch id is whatever comes next.  A cache hit
therefore replays a stored template by cloning it with shifted
indices, which is exactly equal to running the conversion again
(enforced by ``tests/core/test_conversion_cache.py``).

Steady traffic makes this pay off quickly: under both saturation and
light load the scheduler settles into repeating strict batches (light
load is the extreme case — every padded batch is the same fake/poll
skeleton), so repeated controller epochs skip fake-link insertion and
trigger assignment entirely.

Hit/miss counts are exposed both as plain attributes and, when a
telemetry session is active, as ``converter.cache.hits`` /
``converter.cache.misses`` counters.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry
from ..topology.links import Link
from .relative_schedule import RelativeBatch, RelativeSlot, TriggerDuty

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sched.strict_schedule import StrictSchedule
    from .converter import ConverterConfig

#: Opaque-but-hashable composite cache key (see :meth:`ConversionCache.key`).
CacheKey = Tuple[object, ...]


def conversion_topology_key(rss_matrix: np.ndarray, links: Sequence[Link],
                            config: "ConverterConfig") -> str:
    """Content hash of the control-plane state conversion depends on.

    Covers the measured RSS matrix (the interference map and the
    conflict graph are deterministic functions of it), the link
    universe (ordering matters: fake candidates are tried in order)
    and the converter knobs.
    """
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(rss_matrix).tobytes())
    for link in links:
        digest.update(b"%d,%d;" % (link.src, link.dst))
    digest.update(repr((
        config.max_inbound, config.max_outbound, config.insert_fakes,
        config.insert_rop, tuple(sorted(config.fake_exclude_nodes)),
    )).encode())
    return digest.hexdigest()


def clone_batch(batch: RelativeBatch, delta: int = 0,
                batch_id: Optional[int] = None) -> RelativeBatch:
    """Deep-enough copy of a batch with every slot index shifted.

    Frozen leaves (:class:`SlotEntry`, link objects, frozensets) are
    shared; every mutable container is fresh, so neither the caller
    nor later converter calls can corrupt a stored template.
    """
    if delta == 0:
        duties = dict(batch.duties)
    else:
        duties = {
            (node, slot + delta): TriggerDuty(
                node=duty.node, slot=duty.slot + delta,
                targets=duty.targets, rop_polls=duty.rop_polls,
                rop_flag=duty.rop_flag)
            for (node, slot), duty in batch.duties.items()
        }
    return RelativeBatch(
        batch_id=batch.batch_id if batch_id is None else batch_id,
        slots=[RelativeSlot(index=slot.index + delta,
                            entries=list(slot.entries),
                            rop_after=list(slot.rop_after))
               for slot in batch.slots],
        duties=duties,
        inbound={(slot + delta, link): list(nodes)
                 for (slot, link), nodes in batch.inbound.items()},
        rop_polls={slot + delta: list(aps)
                   for slot, aps in batch.rop_polls.items()},
        initial=batch.initial,
        untriggerable=[(slot + delta, link)
                       for slot, link in batch.untriggerable],
    )


@dataclass
class CachedConversion:
    """One stored conversion, in the slot numbering of its first run."""

    #: ``_next_slot_index`` when the template was converted; a replay
    #: shifts every index by ``current_next_slot_index - base``.
    base: int
    #: How many new slot indices the conversion consumed.
    n_new_slots: int
    batch: RelativeBatch
    #: AP ids the conversion appended to the *incoming* connector
    #: slot's ``rop_after`` (an ROP slot interposed right after the
    #: connector mutates the previous batch's last slot); a replay
    #: must reproduce that side effect on the live connector.
    connector_rop_append: List[int]


class ConversionCache:
    """Bounded FIFO memo of strict-to-relative conversions.

    One instance is shared across a controller's converter rebuilds;
    :meth:`set_topology` swaps the topology key after a measurement
    campaign so stale entries simply stop matching (and eventually
    fall out of the FIFO bound).
    """

    def __init__(self, topology_key: str = "", max_entries: int = 256):
        self.topology_key = topology_key
        self.max_entries = max_entries
        self._entries: "OrderedDict[CacheKey, CachedConversion]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self._trace = telemetry.current()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def set_topology(self, topology_key: str) -> None:
        """Invalidate by rekeying: entries under the old control-plane
        hash can never match again."""
        self.topology_key = topology_key

    def key(self, connector: Optional[RelativeSlot], strict: "StrictSchedule",
            rop_aps: Sequence[int],
            ap_links: Optional[Dict[int, List[Link]]]) -> CacheKey:
        connector_key = None if connector is None else tuple(
            (entry.link.src, entry.link.dst, entry.fake)
            for entry in connector.entries)
        strict_key = tuple(
            tuple((link.src, link.dst) for link in slot) for slot in strict)
        links_key = () if not ap_links else tuple(sorted(
            (ap, tuple((link.src, link.dst) for link in links))
            for ap, links in ap_links.items()))
        return (self.topology_key, connector_key, strict_key,
                tuple(rop_aps), links_key)

    def get(self, key: CacheKey) -> Optional[CachedConversion]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            if self._trace.enabled:
                self._trace.metrics.counter("converter.cache.misses").inc()
            return None
        self.hits += 1
        if self._trace.enabled:
            self._trace.metrics.counter("converter.cache.hits").inc()
        return entry

    def put(self, key: CacheKey, base: int, n_new_slots: int,
            batch: RelativeBatch, connector_rop_append: List[int]) -> None:
        while len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
        self._entries[key] = CachedConversion(
            base=base, n_new_slots=n_new_slots,
            batch=clone_batch(batch),
            connector_rop_append=list(connector_rop_append))
        if self._trace.enabled:
            self._trace.metrics.gauge("converter.cache.entries").set(
                len(self._entries))
