"""Metrics registry: counters, gauges and percentile histograms.

The metrics layer is the *aggregate* half of the telemetry subsystem
(the :mod:`~repro.telemetry.recorder` trace is the per-event half).
Metrics are cheap to record, bounded in memory, and are the numbers
the perf work reports against: airtime, per-chain trigger latency,
collision counts, event-loop throughput.

Unlike trace events, metrics may legitimately contain wall-clock
quantities (the event-loop throughput histogram does); they are never
part of an exported trace, so they do not participate in the
byte-identical determinism guarantee.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional, Type, Union

Number = Union[int, float]


class Counter:
    """Monotonically increasing count (frames sent, airtime burned)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """Last-write-wins instantaneous value (queue depth, batch id)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: Number) -> None:
        self.value = float(value)

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount

    def snapshot(self) -> float:
        return self.value


def percentile(sorted_values: List[float], pct: float) -> float:
    """Nearest-rank percentile over an already-sorted sample list.

    ``pct`` is in [0, 100].  The nearest-rank definition (ceil(p/100*n),
    1-indexed) matches what the flow recorder uses for delay tails, so
    the two layers quote comparable numbers.
    """
    if not sorted_values:
        return 0.0
    if pct <= 0.0:
        return sorted_values[0]
    rank = int(math.ceil(pct / 100.0 * len(sorted_values)))
    return sorted_values[min(max(rank, 1), len(sorted_values)) - 1]


class Histogram:
    """Sliding-window percentile histogram.

    Keeps the most recent ``window`` observations in a ring buffer
    (same bounded-memory policy as the trace recorder) and summarizes
    them with count/min/max/mean and p50/p95/p99.  The total
    count/sum keep accumulating past the window so rates stay honest
    even after eviction begins.
    """

    __slots__ = ("name", "_samples", "count", "total")

    def __init__(self, name: str, window: int = 65536):
        if window <= 0:
            raise ValueError("histogram window must be positive")
        self.name = name
        self._samples: Deque[float] = deque(maxlen=window)
        self.count: int = 0
        self.total: float = 0.0

    def observe(self, value: Number) -> None:
        self._samples.append(float(value))
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, pct: float) -> float:
        return percentile(sorted(self._samples), pct)

    def snapshot(self) -> Dict[str, float]:
        ordered = sorted(self._samples)
        return {
            "count": float(self.count),
            "sum": self.total,
            "mean": self.mean,
            "min": ordered[0] if ordered else 0.0,
            "max": ordered[-1] if ordered else 0.0,
            "p50": percentile(ordered, 50.0),
            "p95": percentile(ordered, 95.0),
            "p99": percentile(ordered, 99.0),
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named metric store, one per telemetry session.

    ``registry.counter("medium.airtime_us")`` creates on first use and
    returns the same object afterwards; asking for an existing name
    with a different metric type is an error (it would silently fork
    the data).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, cls: Type[Metric], **kwargs: Any) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, window: Optional[int] = None) -> Histogram:
        if window is None:
            return self._get(name, Histogram)
        return self._get(name, Histogram, window=window)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._metrics))

    def snapshot(self) -> Dict[str, Union[float, Dict[str, float]]]:
        """All metrics as plain JSON-serializable values."""
        return {name: self._metrics[name].snapshot() for name in self}

    def render(self) -> str:
        """Human-readable dump, one metric per line (histograms show
        their percentile summary)."""
        lines = []
        for name in self:
            snap = self._metrics[name].snapshot()
            if isinstance(snap, dict):
                detail = (f"count={snap['count']:.0f} mean={snap['mean']:.3f} "
                          f"p50={snap['p50']:.3f} p95={snap['p95']:.3f} "
                          f"p99={snap['p99']:.3f} max={snap['max']:.3f}")
                lines.append(f"{name:<40} {detail}")
            else:
                lines.append(f"{name:<40} {snap:.3f}")
        return "\n".join(lines) if lines else "(no metrics recorded)"
