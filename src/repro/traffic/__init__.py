"""Traffic: MAC queues, CBR/saturated UDP sources, TCP-Reno-lite."""

from .queueing import ROP_MAX_REPORT, MacQueue, QueueSet
from .tcp import TCP_ACK_BYTES, TcpFlow, TcpStats
from .udp import DEFAULT_PAYLOAD_BYTES, CbrSource, SaturatedSource
from .virtual_packets import (Reassembler, ReassembledPacket,
                              VirtualPacketizer)

__all__ = [
    "CbrSource", "DEFAULT_PAYLOAD_BYTES", "MacQueue", "QueueSet",
    "ROP_MAX_REPORT", "Reassembler", "ReassembledPacket",
    "SaturatedSource", "TCP_ACK_BYTES", "TcpFlow", "TcpStats",
    "VirtualPacketizer",
]
