"""Tests for the ROP control OFDM symbol (Table 1, Fig. 5/6 substrate)."""

import math
import random

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.ofdm import (DEFAULT_PARAMS, MAX_QUEUE_REPORT, ClientSignal,
                             OfdmParams, RopSymbolDecoder, aggregate_at_ap,
                             bits_to_queue_len, build_client_waveform,
                             queue_len_to_bits,
                             rss_difference_tolerance_experiment,
                             snr_floor_experiment)


def test_table1_constants():
    params = DEFAULT_PARAMS
    assert params.n_subcarriers == 256
    assert params.subcarriers_per_subchannel == 6
    assert params.guard_subcarriers == 3
    assert params.n_subchannels == 24
    assert params.cp_us == pytest.approx(3.2)
    assert params.symbol_us == pytest.approx(16.0)
    assert params.cp_samples == 64
    assert params.subcarrier_spacing_khz == pytest.approx(78.125)


def test_guard_band_is_39_subcarriers():
    """Sec. 3.1: 'The remaining 39 subcarriers are used as guard band'."""
    assert DEFAULT_PARAMS.guard_band_subcarriers() == 39


def test_subchannels_disjoint_and_avoid_dc():
    used = set()
    for k in range(24):
        bins = DEFAULT_PARAMS.subchannel_bins(k)
        assert len(bins) == 6
        assert 0 not in bins  # DC unused (Fig. 3)
        assert not (set(bins) & used)
        used.update(bins)
    assert len(used) == 144


def test_subchannel_halves_mirror():
    positive = DEFAULT_PARAMS.subchannel_bins(0)
    negative = DEFAULT_PARAMS.subchannel_bins(12)
    assert all(b < 128 for b in positive)
    assert all(b > 128 for b in negative)


def test_subchannel_bounds():
    with pytest.raises(ValueError):
        DEFAULT_PARAMS.subchannel_bins(24)


@given(st.integers(min_value=0, max_value=63))
def test_property_bits_roundtrip(value):
    assert bits_to_queue_len(queue_len_to_bits(value)) == value


def test_queue_len_clamped():
    assert bits_to_queue_len(queue_len_to_bits(200)) == MAX_QUEUE_REPORT
    assert bits_to_queue_len(queue_len_to_bits(-5)) == 0


def test_clean_decode_exact():
    decoder = RopSymbolDecoder()
    client = ClientSignal(subchannel=5, queue_len=0b110010, amplitude=1.0)
    received = aggregate_at_ap([client])
    outcome = decoder.decode_subchannel(received, 5, 1.0, 0b110010)
    assert outcome.queue_len == 0b110010
    assert outcome.correct_bits == 6


def test_timing_offset_within_cp_is_harmless():
    decoder = RopSymbolDecoder()
    for offset in (0, 13, 40, 63):
        client = ClientSignal(subchannel=2, queue_len=0b101010,
                              amplitude=1.0, timing_offset_samples=offset)
        received = aggregate_at_ap([client])
        assert decoder.decode_subchannel(
            received, 2, 1.0).queue_len == 0b101010


def test_offset_beyond_cp_rejected():
    client = ClientSignal(subchannel=2, queue_len=1, amplitude=1.0,
                          timing_offset_samples=64)
    with pytest.raises(ValueError):
        aggregate_at_ap([client])


def test_many_clients_decode_simultaneously():
    """The whole point of ROP: 24 queue lengths from one symbol."""
    rng = random.Random(1)
    decoder = RopSymbolDecoder()
    clients = [
        ClientSignal(subchannel=k, queue_len=rng.randint(0, 63),
                     amplitude=1.0,
                     cfo_fraction=rng.uniform(-0.005, 0.005),
                     timing_offset_samples=rng.randint(0, 32),
                     phase=rng.uniform(0, 2 * math.pi),
                     skirt_seed=rng.getrandbits(32))
        for k in range(24)
    ]
    received = aggregate_at_ap(clients)
    results = decoder.decode_all(received, clients)
    correct = sum(results[c.subchannel].queue_len == c.queue_len
                  for c in clients)
    assert correct >= 23  # equal powers: essentially error-free


def test_guard_tolerance_monotone_in_guard_count():
    ratios = [
        rss_difference_tolerance_experiment(g, 30.0, runs=40, seed=3)
        for g in (0, 2, 4)
    ]
    assert ratios[0] <= ratios[1] <= ratios[2]
    assert ratios[2] >= 0.95


def test_three_guards_tolerate_30db():
    assert rss_difference_tolerance_experiment(3, 30.0, runs=40,
                                               seed=3) >= 0.95


def test_no_guards_fail_at_30db():
    assert rss_difference_tolerance_experiment(0, 30.0, runs=40,
                                               seed=3) <= 0.5


def test_snr_floor_reliable_at_paper_threshold():
    """Sec. 3.1: reliable decoding above ~4 dB wideband SNR."""
    assert snr_floor_experiment(4.0, runs=40, seed=1) >= 0.95
    assert snr_floor_experiment(10.0, runs=40, seed=1) >= 0.95


def test_snr_floor_degrades_deep_below():
    assert snr_floor_experiment(-14.0, runs=40, seed=1) < 0.9


def test_adc_clipping_mild_is_survivable():
    decoder = RopSymbolDecoder()
    client = ClientSignal(subchannel=4, queue_len=0b011011, amplitude=1.0)
    waveform = build_client_waveform(client)
    clip = float(np.max(np.abs(waveform.real))) * 1.5
    received = aggregate_at_ap([client], adc_clip=clip)
    assert decoder.decode_subchannel(received, 4, 1.0).queue_len == 0b011011


def test_custom_guard_params_shift_bins():
    wide = OfdmParams(guard_subcarriers=5)
    assert wide.stride == 11
    bins0 = wide.subchannel_bins(0)
    bins1 = wide.subchannel_bins(1)
    assert min(bins1) - max(bins0) == 6  # 5 guards + 1
