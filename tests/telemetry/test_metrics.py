"""Metrics registry: counters, gauges, histogram percentile math."""

import pytest

from repro.telemetry.metrics import (Counter, Gauge, Histogram,
                                     MetricsRegistry, percentile)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("c")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("g")
        g.set(7)
        g.set(3.5)
        assert g.value == 3.5

    def test_inc_dec(self):
        g = Gauge("g")
        g.inc(4)
        g.dec(1)
        assert g.value == 3.0


class TestPercentile:
    def test_nearest_rank_definition(self):
        values = sorted(float(v) for v in range(1, 101))  # 1..100
        assert percentile(values, 50.0) == 50.0
        assert percentile(values, 95.0) == 95.0
        assert percentile(values, 99.0) == 99.0
        assert percentile(values, 100.0) == 100.0
        assert percentile(values, 0.0) == 1.0

    def test_small_samples(self):
        assert percentile([], 50.0) == 0.0
        assert percentile([42.0], 50.0) == 42.0
        assert percentile([42.0], 99.0) == 42.0
        # n=4: p50 -> ceil(2)=2nd, p95 -> ceil(3.8)=4th.
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == 2.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 95.0) == 4.0

    def test_extreme_percentiles(self):
        # pct=0 is the minimum, pct=100 the maximum — including for a
        # single-sample list, where every percentile is that sample.
        assert percentile([7.0], 0.0) == 7.0
        assert percentile([7.0], 100.0) == 7.0
        many = [1.0, 5.0, 9.0]
        assert percentile(many, 0.0) == 1.0
        assert percentile(many, 100.0) == 9.0
        # Out-of-range pct clamps to the ends instead of indexing off
        # the list.
        assert percentile(many, -5.0) == 1.0
        assert percentile(many, 250.0) == 9.0


class TestHistogram:
    def test_summary_quantiles(self):
        h = Histogram("h")
        for v in range(1, 1001):        # 1..1000, uniform
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 1000
        assert snap["min"] == 1.0 and snap["max"] == 1000.0
        assert snap["p50"] == 500.0
        assert snap["p95"] == 950.0
        assert snap["p99"] == 990.0
        assert snap["mean"] == pytest.approx(500.5)

    def test_insertion_order_irrelevant(self):
        a, b = Histogram("a"), Histogram("b")
        values = [5.0, 1.0, 9.0, 3.0, 7.0]
        for v in values:
            a.observe(v)
        for v in sorted(values):
            b.observe(v)
        assert a.snapshot() == b.snapshot()

    def test_window_keeps_most_recent(self):
        h = Histogram("h", window=10)
        for v in range(100):
            h.observe(v)
        # Percentiles see only the last 10 observations (90..99);
        # nearest-rank p50 of 10 values is the 5th.
        assert h.snapshot()["min"] == 90.0
        assert h.snapshot()["p50"] == 94.0
        # ...but the lifetime count/sum keep accumulating.
        assert h.count == 100
        assert h.total == sum(range(100))

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            Histogram("h", window=0)

    def test_empty_snapshot(self):
        snap = Histogram("h").snapshot()
        assert snap["count"] == 0.0
        assert snap["p99"] == 0.0


class TestRegistry:
    def test_same_name_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("h") is reg.histogram("h")

    def test_type_conflict_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_is_json_shaped(self):
        reg = MetricsRegistry()
        reg.counter("frames").inc(3)
        reg.gauge("depth").set(1.5)
        reg.histogram("lat").observe(10.0)
        snap = reg.snapshot()
        assert snap["frames"] == 3.0
        assert snap["depth"] == 1.5
        assert snap["lat"]["count"] == 1.0
        import json
        json.dumps(snap)  # must serialize cleanly

    def test_iteration_sorted_and_render(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc()
        reg.histogram("c").observe(1.0)
        assert list(reg) == ["a", "b", "c"]
        text = reg.render()
        assert "a" in text and "p95" in text
        assert MetricsRegistry().render() == "(no metrics recorded)"
