"""Topologies: placement, propagation, synthetic traces, conflict graphs.

Substitutes the paper's measured 40-node two-building RSS trace with a
synthetic one (:func:`two_building_trace`) and encodes the canonical
figure topologies (Fig. 1, Fig. 7, Fig. 13a/b, the USRP scenarios)
whose hearing/conflict semantics the paper specifies exactly.
"""

from .builder import (Topology, TopologyError, build_t_topology,
                      fig1_topology, fig7_topology, fig13a_topology,
                      fig13b_topology, random_t_topology, usrp_pair_topology)
from .interference_map import InterferenceMap
from .conflict_graph import (ConflictGraphUpdateCost, build_conflict_graph,
                             greedy_maximal_extension, hearing_graph,
                             is_independent_set)
from .links import Link
from .measurement import (ObservationStore, beacon_rounds,
                          campaign_overhead_fraction, two_hop_graph,
                          validate_rounds)
from .mobility import move_node, place_near
from .placement import (Building, TwoBuildingLayout, grid_placement,
                        random_placement, two_building_placement)
from .propagation import NS3_DEFAULT, LogDistanceModel, matrix_rss_fn
from .trace import (ROP_TOLERANCE_DB, SyntheticTrace, manual_trace,
                    two_building_trace)

__all__ = [
    "Building", "ConflictGraphUpdateCost", "Link", "LogDistanceModel",
    "NS3_DEFAULT", "ObservationStore", "ROP_TOLERANCE_DB",
    "SyntheticTrace", "Topology", "TopologyError", "TwoBuildingLayout",
    "beacon_rounds", "build_conflict_graph", "build_t_topology",
    "campaign_overhead_fraction", "fig13a_topology", "fig13b_topology",
    "fig1_topology", "fig7_topology", "greedy_maximal_extension",
    "grid_placement", "hearing_graph", "InterferenceMap", "is_independent_set",
    "manual_trace", "matrix_rss_fn", "move_node", "place_near",
    "random_placement", "random_t_topology", "two_building_placement",
    "two_building_trace", "two_hop_graph", "usrp_pair_topology",
    "validate_rounds",
]
