"""Shared plumbing for the dominolint test suite.

The linter itself is pure stdlib, but its config loader needs
``tomllib`` (Python >= 3.11) — on older interpreters the whole
directory skips, mirroring the CI lint job's 3.12 pin.
"""

import io
from pathlib import Path
from typing import List, Tuple

import pytest

pytest.importorskip("tomllib", reason="dominolint reads pyproject.toml "
                                      "via tomllib (Python >= 3.11)")

from repro.lint import Config, lint_paths, load_config  # noqa: E402

FIXTURES = Path(__file__).resolve().parent / "fixtures"
PROJ = FIXTURES / "proj"
PROJ_STALE = FIXTURES / "proj_stale"
REPO_ROOT = Path(__file__).resolve().parents[2]


def run_lint(paths: List[Path], config: Config,
             update_baseline: bool = False) -> Tuple[int, str]:
    """Run the linter in-process; return (exit_code, stderr_text)."""
    stream = io.StringIO()
    code = lint_paths([Path(p) for p in paths], config,
                      update_baseline=update_baseline, stderr=stream)
    return code, stream.getvalue()


@pytest.fixture(scope="session")
def proj_config() -> Config:
    return load_config(PROJ)


@pytest.fixture(scope="session")
def stale_config() -> Config:
    return load_config(PROJ_STALE)
