#!/usr/bin/env python3
"""Quickstart: DOMINO vs DCF on the paper's motivating network.

Builds the Fig. 1 topology (one hidden-terminal pair, one exposed
pair), saturates all three flows, and runs one simulated second under
plain 802.11 DCF and under DOMINO's relative scheduling.

Run:  python examples/quickstart.py
"""

from repro.core import build_domino_network
from repro.mac.dcf import DcfMac
from repro.metrics.stats import FlowRecorder
from repro.sim.engine import Simulator
from repro.topology.builder import fig1_topology
from repro.traffic.udp import SaturatedSource

HORIZON_US = 1_000_000.0  # one simulated second
NAMES = {0: "AP1", 1: "C1", 2: "AP2", 3: "C2", 4: "AP3", 5: "C3"}


def run_dcf():
    topology = fig1_topology()
    sim = Simulator(seed=1)
    medium = topology.build_medium(sim)
    macs = {node.node_id: DcfMac(sim, node, medium)
            for node in topology.network}
    recorder = FlowRecorder(topology.flows)
    recorder.attach_all(macs.values())
    for flow in topology.flows:
        SaturatedSource(sim, macs[flow.src], flow.dst).start()
    sim.run(until=HORIZON_US)
    return topology, recorder


def run_domino():
    topology = fig1_topology()
    sim = Simulator(seed=1)
    net = build_domino_network(sim, topology)
    recorder = FlowRecorder(topology.flows)
    recorder.attach_all(net.macs.values())
    for flow in topology.flows:
        SaturatedSource(sim, net.macs[flow.src], flow.dst).start()
    net.controller.start()
    sim.run(until=HORIZON_US)
    return topology, recorder


def main():
    print("Fig. 1 network: AP1 hidden to AP3, C2/AP1 exposed; all "
          "flows saturated.\n")
    results = {"DCF": run_dcf(), "DOMINO": run_domino()}
    for name, (topology, recorder) in results.items():
        print(f"{name}:")
        for flow in topology.flows:
            throughput = recorder.flow_throughput_mbps(flow, HORIZON_US)
            print(f"  {NAMES[flow.src]}->{NAMES[flow.dst]}: "
                  f"{throughput:5.2f} Mbps")
        print(f"  overall: "
              f"{recorder.aggregate_throughput_mbps(HORIZON_US):5.2f} Mbps\n")
    dcf = results["DCF"][1].aggregate_throughput_mbps(HORIZON_US)
    domino = results["DOMINO"][1].aggregate_throughput_mbps(HORIZON_US)
    print(f"DOMINO/DCF gain: {domino / dcf:.2f}x "
          "(the paper reports up to 1.96x on larger networks)")
    print("Note how DCF starves the hidden link AP3->C3 and serializes "
          "the exposed uplink,\nwhile DOMINO alternates the conflicting "
          "downlinks and runs C2->AP2 in every slot.")


if __name__ == "__main__":
    main()
