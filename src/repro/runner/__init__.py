"""repro.runner — sweep engine for paper-scale experiment fan-out.

Experiments are sweeps over independent points — (scheme, topology,
traffic, seed, horizon) tuples — and pure-Python event simulation
makes each point expensive.  This package turns a list of
:class:`~repro.runner.points.ExperimentPoint`\\ s into a typed
:class:`~repro.runner.points.SweepResult`, either serially or across
a process pool, with the guarantee that both modes produce
byte-identical per-point results (seeds live on the points; trace
digests prove it).

Typical use::

    from repro.runner import ExperimentPoint, TopologySpec, run_sweep
    from repro.topology.builder import random_t_topology

    points = [
        ExperimentPoint(scheme=s, seed=100 + i,
                        topology=TopologySpec(random_t_topology, (20, 3),
                                              {"seed": 100 + i}),
                        label=f"{s}:{i}", horizon_us=600_000.0)
        for i in range(50) for s in ("dcf", "domino")
    ]
    sweep = run_sweep(points, workers=4)
    gains = [...]

The experiment modules (``repro.experiments.fig12_t10_2`` etc.) build
their point lists this way and accept ``workers=`` to opt into the
pool.
"""

from .points import (ExperimentPoint, FlowSummary, PointResult, SweepResult,
                     TopologySpec)
from .progress import SweepMonitor
from .report import render_sweep_report, write_sweep_report
from .sweep import (EngineDivergence, run_point, run_sweep, scheme_sweep,
                    trace_digest)

__all__ = [
    "EngineDivergence", "ExperimentPoint", "FlowSummary", "PointResult",
    "SweepMonitor", "SweepResult", "TopologySpec",
    "render_sweep_report", "run_point", "run_sweep", "scheme_sweep",
    "trace_digest", "write_sweep_report",
]
