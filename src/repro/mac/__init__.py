"""MAC protocols: the DCF / CENTAUR / omniscient baselines.

DOMINO's MAC lives in :mod:`repro.core.domino_mac` because it is the
paper's contribution rather than a baseline.
"""

from .base import Mac
from .centaur import (CentaurApMac, CentaurController,
                      build_centaur_network)
from .dcf import DcfMac, DcfStats
from .omniscient import (OmniscientCoordinator, OmniscientMac,
                         build_omniscient_network)

__all__ = [
    "CentaurApMac", "CentaurController", "DcfMac", "DcfStats", "Mac",
    "OmniscientCoordinator", "OmniscientMac", "build_centaur_network",
    "build_omniscient_network",
]
