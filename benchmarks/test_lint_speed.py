"""Lint-speed guard: the dataflow engine must not tax the edit loop.

dominolint v2 parses the *whole* src tree on every run (the taint and
transitive phases need the full program view), which without care
would turn a sub-second pre-commit check into a multi-second stall.
The content-hash cache (:mod:`repro.lint.cache`) is the fix: a warm
run re-parses nothing and only replays serialized facts.

Budget (asserted): a warm whole-tree run completes in under 2 s.
The measured wall time lands in ``BENCH_lint.json`` and the trend
history, where ``lint_wall_s`` is gated — a 15 % creep over the
recorded median fails CI before the edit loop feels it.
"""

from __future__ import annotations

import io
import json
import os
import time
from pathlib import Path

from repro.lint import load_config
from repro.lint.cache import LintCache, cache_salt
from repro.lint.runner import lint_paths

import trend

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = os.path.join(str(REPO_ROOT), "BENCH_lint.json")

MAX_WARM_WALL_S = 2.0


def _lint_tree(cache: LintCache) -> int:
    config = load_config(REPO_ROOT)
    stream = io.StringIO()
    code = lint_paths([REPO_ROOT / "src"], config, stderr=stream,
                      cache=cache)
    assert code == 0, f"live tree has findings:\n{stream.getvalue()}"
    return code


def test_lint_whole_tree_warm_under_budget(once, tmp_path):
    config = load_config(REPO_ROOT)
    salt = cache_salt(config)
    cache_path = tmp_path / "lint-cache.json"

    started = time.perf_counter()
    cold_cache = LintCache(cache_path, salt)
    _lint_tree(cold_cache)
    cold_cache.save()
    cold_s = time.perf_counter() - started

    def warm_run():
        begun = time.perf_counter()
        _lint_tree(LintCache(cache_path, salt))
        return time.perf_counter() - begun

    warm_s = once(warm_run)

    assert warm_s < MAX_WARM_WALL_S, (
        f"warm whole-tree lint took {warm_s:.2f}s "
        f"(budget {MAX_WARM_WALL_S}s)")

    payload = {
        "bench": "lint_speed",
        "lint_wall_s": round(warm_s, 4),
        "lint_wall_cold_s": round(cold_s, 4),
        "budget_s": MAX_WARM_WALL_S,
    }
    with open(RESULT_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    trend.append("lint_speed", {
        "lint_wall_s": payload["lint_wall_s"],
        "lint_wall_cold_s": payload["lint_wall_cold_s"],
    })
