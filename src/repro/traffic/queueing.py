"""Per-destination MAC transmit queues.

Every MAC owns one FIFO per destination.  Queue lengths are what ROP
reports back to the controller, clamped to the 6-bit field of the
queue-report OFDM symbol (Sec. 3.1: "a maximum queue size of 63 ...
we can report 63 first packets and keep track of the number of
unreported packets").

Virtual packets (Sec. 3.5, "Different packet sizes and data rates"):
DOMINO assumes fixed-airtime slots, so nodes report queue backlog in
*virtual packets* — payload bytes divided by the nominal slot payload,
rounded up.  With the evaluation's fixed 512 B packets a virtual
packet equals a real packet, but the accounting is implemented and
tested for mixed sizes.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional

from ..sim.packet import Frame

ROP_MAX_REPORT = 63  # 2^6 - 1, one ROP subchannel carries 6 bits


@dataclass
class QueueStats:
    enqueued: int = 0
    dropped: int = 0
    dequeued: int = 0


class MacQueue:
    """Drop-tail FIFO of DATA frames bound for one destination."""

    def __init__(self, capacity: int = 100):
        self.capacity = capacity
        self._frames: Deque[Frame] = deque()
        self.stats = QueueStats()

    def push(self, frame: Frame) -> bool:
        """Enqueue; returns False (and counts a drop) when full."""
        if len(self._frames) >= self.capacity:
            self.stats.dropped += 1
            return False
        self._frames.append(frame)
        self.stats.enqueued += 1
        return True

    def pop(self) -> Frame:
        self.stats.dequeued += 1
        return self._frames.popleft()

    def peek(self) -> Optional[Frame]:
        return self._frames[0] if self._frames else None

    def requeue_front(self, frame: Frame) -> None:
        """Put a frame back at the head (failed transmission retry)."""
        self._frames.appendleft(frame)
        self.stats.dequeued -= 1

    def __len__(self) -> int:
        return len(self._frames)

    def __bool__(self) -> bool:
        return bool(self._frames)

    def virtual_packets(self, slot_payload_bytes: int) -> int:
        """Backlog in fixed-airtime virtual packets (Sec. 3.5)."""
        if slot_payload_bytes <= 0:
            raise ValueError("slot payload must be positive")
        total = 0
        for frame in self._frames:
            total += max(1, math.ceil(frame.payload_bytes / slot_payload_bytes))
        return total

    def rop_report(self, slot_payload_bytes: int) -> int:
        """The 6-bit value a client puts on its ROP subchannel."""
        return min(ROP_MAX_REPORT, self.virtual_packets(slot_payload_bytes))


class QueueSet:
    """All transmit queues of one node, keyed by destination."""

    def __init__(self, capacity: int = 100):
        self.capacity = capacity
        self._queues: Dict[int, MacQueue] = {}

    def queue_for(self, dst: int) -> MacQueue:
        queue = self._queues.get(dst)
        if queue is None:
            queue = MacQueue(self.capacity)
            self._queues[dst] = queue
        return queue

    def push(self, frame: Frame) -> bool:
        if frame.dst is None:
            raise ValueError("cannot queue a broadcast frame")
        return self.queue_for(frame.dst).push(frame)

    def total_backlog(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def backlog_for(self, dst: int) -> int:
        queue = self._queues.get(dst)
        return len(queue) if queue else 0

    def destinations_with_data(self) -> List[int]:
        return [dst for dst, q in self._queues.items() if q]

    def next_nonempty(self) -> Optional[MacQueue]:
        """Any non-empty queue, round-robin over destinations."""
        with_data = self.destinations_with_data()
        if not with_data:
            return None
        return self._queues[with_data[0]]

    def items(self) -> Iterable:
        return self._queues.items()
