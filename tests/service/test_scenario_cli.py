"""Scenario loading and the ``python -m repro.service`` CLI."""

import json
import os

import pytest

from repro.service import build_scenario, load_scenario
from repro.service.__main__ import main

_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
EXAMPLE = os.path.join(_ROOT, "examples", "service_churn.json")


def small_scenario_dict():
    return {
        "name": "tiny",
        "topology": {"kind": "fig7"},
        "config": {"batch_slots": 6, "epoch_gap_us": 1000.0},
        "sources": [
            {"kind": "churn", "updates": 60, "seed": 4},
            {"kind": "events", "events": [
                {"kind": "queue_update", "t_us": 10.0,
                 "src": 0, "dst": 1, "backlog": 4},
            ]},
        ],
    }


class TestScenarioBuilding:
    def test_build_merges_and_sorts_sources(self):
        scenario = build_scenario(small_scenario_dict())
        assert scenario.name == "tiny"
        assert scenario.config.batch_slots == 6
        assert len(scenario.events) == 61
        times = [e.t_us for e in scenario.events]
        assert times == sorted(times)

    def test_build_is_deterministic(self):
        a = build_scenario(small_scenario_dict())
        b = build_scenario(small_scenario_dict())
        assert a.events == b.events

    def test_unknown_topology_kind(self):
        with pytest.raises(ValueError):
            build_scenario({"topology": {"kind": "moebius"}})

    def test_unknown_source_kind(self):
        with pytest.raises(ValueError):
            build_scenario({"topology": {"kind": "fig7"},
                            "sources": [{"kind": "quantum"}]})

    def test_example_scenario_loads(self):
        scenario = load_scenario(EXAMPLE)
        assert scenario.name == "forty-node-churn"
        assert scenario.make_state().n_nodes == 40
        assert len(scenario.events) > 2_000


class TestCli:
    def run_cli(self, tmp_path, extra):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(small_scenario_dict()))
        return main(["--scenario", str(path)] + extra)

    def test_json_summary(self, tmp_path, capsys):
        code = self.run_cli(tmp_path, ["--check-every", "2", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "tiny"
        assert payload["events"] == 61
        assert payload["revisions"] >= 1
        assert payload["oracle_checks"] >= 1
        assert len(payload["last_digest"]) == 64

    def test_text_summary(self, tmp_path, capsys):
        assert self.run_cli(tmp_path, []) == 0
        out = capsys.readouterr().out
        assert "revision p99" in out
        assert "tiny" in out

    def test_trace_output(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        code = self.run_cli(tmp_path, ["--trace", str(trace_path),
                                       "--quiet"])
        assert code == 0
        lines = [json.loads(line)
                 for line in trace_path.read_text().splitlines() if line]
        revisions = [r for r in lines if r.get("ev") == "sched_revision"]
        assert revisions
        assert all(len(r["digest"]) == 12 for r in revisions)

    def test_clean_exit_summary_line_on_stderr(self, tmp_path, capsys):
        assert self.run_cli(tmp_path, ["--check-every", "2",
                                       "--quiet"]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""       # --quiet keeps stdout silent
        assert "clean exit: revision version" in captured.err
        assert "oracle check" in captured.err

    def test_clean_exit_line_does_not_pollute_json(self, tmp_path, capsys):
        assert self.run_cli(tmp_path, ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "tiny"

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["--help"])
        assert err.value.code == 0
        out = capsys.readouterr().out
        assert "exit codes:" in out
        assert "oracle" in out and "scenario" in out

    def test_phase_timing_flag_traces_phases(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        code = self.run_cli(tmp_path, ["--trace", str(trace_path),
                                       "--phase-timing", "--quiet"])
        assert code == 0
        lines = [json.loads(line)
                 for line in trace_path.read_text().splitlines() if line]
        revisions = [r for r in lines if r.get("ev") == "sched_revision"]
        phases = [r for r in lines if r.get("ev") == "revision_phases"]
        assert len(phases) == len(revisions) > 0

    def test_flight_dir_without_mismatch_stays_empty(self, tmp_path,
                                                     capsys):
        dump_dir = tmp_path / "flight"
        code = self.run_cli(tmp_path, ["--check-every", "4", "--quiet",
                                       "--flight-dump-dir",
                                       str(dump_dir)])
        assert code == 0
        assert not dump_dir.exists() or not list(dump_dir.iterdir())

    def test_missing_scenario_exits_2(self, capsys):
        assert main(["--scenario", "/nonexistent/nope.json"]) == 2

    def test_invalid_scenario_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"topology": {"kind": "moebius"}}))
        assert main(["--scenario", str(path)]) == 2
