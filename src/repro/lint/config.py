"""dominolint configuration: the ``[tool.dominolint]`` pyproject table.

The config is declarative on purpose — the layering DAG especially is
a *reviewed artifact*: adding an edge means editing ``pyproject.toml``
in the same diff as the import that needs it, which is exactly the
conversation a layering violation should force.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

try:  # Python >= 3.11; the lint gate runs on 3.12 in CI.
    import tomllib
except ImportError:  # pragma: no cover - 3.10 fallback path
    tomllib = None  # type: ignore[assignment]


class ConfigError(RuntimeError):
    """Raised for a missing or malformed ``[tool.dominolint]`` table."""


@dataclass(frozen=True)
class Config:
    """Parsed ``[tool.dominolint]`` settings.

    Attributes
    ----------
    root:
        Repository root (the directory holding ``pyproject.toml``);
        every other path below is resolved against it.
    src_root:
        Import root — file paths under it map to dotted module names.
    sim_packages:
        Packages under the determinism contract (DOM1xx applies).
        Everything else — runner progress bars, benchmarks, telemetry's
        own wall-clock plumbing — is exempt by omission.
    layers:
        Allowed-dependency DAG: package -> packages it may import.
        ``"*"`` marks a top layer that may import anything.
    schema_events / schema_recorder / schema_baseline:
        The telemetry schema's source of truth, the typed-helper
        signatures, and the committed shape fingerprint for DOM303.
    declared_deps:
        Canonicalized distribution names from ``[project]
        dependencies`` in the same ``pyproject.toml`` — the dependency
        floor DOM401 holds sim packages to.
    async_packages:
        Packages under the async-state contract (DOM501/DOM502):
        long-running asyncio services whose shared controller/registry
        state must only mutate inside the synchronous epoch guard.
    async_guarded_attrs:
        ``self.<attr>`` roots DOM501 treats as shared controller or
        registry state (the default names the conventional roles).
    pool_packages:
        Packages that hand work to a process pool (DOM503): callables
        crossing the pool boundary must be picklable module-level
        functions, not closures over mutable parent state.
    taint_sanitizers:
        Modules whose calls are *blessed* wall-clock/RNG boundaries —
        taint (DOM105/DOM106) does not propagate through them.  The
        repo's one sanctioned example is ``repro.telemetry.wallclock``.
    transitive_waivers:
        ``"pkg.a -> pkg.b"`` edges the transitive layering check
        (DOM203) ignores.  Each waiver is a reviewed artifact, exactly
        like a layers-table row.
    """

    root: Path
    src_root: Path
    sim_packages: Tuple[str, ...]
    layers: Dict[str, Tuple[str, ...]]
    schema_events: Path
    schema_recorder: Path
    schema_baseline: Path
    declared_deps: Tuple[str, ...] = ()
    async_packages: Tuple[str, ...] = ()
    async_guarded_attrs: Tuple[str, ...] = (
        "engine", "registry", "state", "controller", "cache")
    pool_packages: Tuple[str, ...] = ()
    taint_sanitizers: Tuple[str, ...] = ()
    transitive_waivers: Tuple[Tuple[str, str], ...] = ()

    def dep_declared(self, top_module: str) -> bool:
        """Is the top-level import name covered by a declared dep?

        Distribution names are matched case-insensitively with ``-``
        and ``.`` folded to ``_`` (the import-name convention); close
        enough for the scientific stack this repo draws on, where
        distribution and import names coincide.
        """
        return _canonical_dep(top_module) in self.declared_deps

    def module_name(self, path: Path) -> Optional[str]:
        """Dotted module for ``path``, or ``None`` if outside src_root."""
        try:
            rel = path.resolve().relative_to(self.src_root.resolve())
        except ValueError:
            return None
        parts = list(rel.with_suffix("").parts)
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts) if parts else None

    def package_of(self, module: str) -> str:
        """The layering unit a module belongs to (longest table match)."""
        best = ""
        for package in self.layers:
            if module == package or module.startswith(package + "."):
                if len(package) > len(best):
                    best = package
        if best:
            return best
        # Fall back to the top two dotted components so DOM202 can name
        # the package that needs a table row.
        parts = module.split(".")
        return ".".join(parts[:2])

    def in_sim_packages(self, module: str) -> bool:
        return _in_any(module, self.sim_packages)

    def in_async_packages(self, module: str) -> bool:
        return _in_any(module, self.async_packages)

    def in_pool_packages(self, module: str) -> bool:
        return _in_any(module, self.pool_packages)

    def is_sanitizer(self, module: str) -> bool:
        return _in_any(module, self.taint_sanitizers)


def _in_any(module: str, packages: Tuple[str, ...]) -> bool:
    return any(
        module == pkg or module.startswith(pkg + ".")
        for pkg in packages
    )


def _canonical_dep(name: str) -> str:
    """Fold a distribution/import name to a comparable key."""
    return name.lower().replace("-", "_").replace(".", "_")


def _requirement_name(spec: str) -> Optional[str]:
    """Distribution name of one PEP 508 requirement string.

    ``"numpy>=1.24"`` -> ``"numpy"``; extras, version specifiers and
    environment markers are irrelevant to the import check.
    """
    match = re.match(r"\s*([A-Za-z0-9][A-Za-z0-9._-]*)", spec)
    return match.group(1) if match else None


def find_pyproject(start: Path) -> Path:
    """Walk up from ``start`` to the nearest ``pyproject.toml``."""
    current = start.resolve()
    for candidate in (current, *current.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    raise ConfigError(f"no pyproject.toml above {start}")


def load_config(start: Optional[Path] = None) -> Config:
    """Load ``[tool.dominolint]`` from the nearest ``pyproject.toml``."""
    if tomllib is None:
        raise ConfigError(
            "dominolint needs tomllib (Python >= 3.11) to read its "
            "pyproject.toml configuration"
        )
    pyproject = find_pyproject(start if start is not None else Path.cwd())
    root = pyproject.parent
    with open(pyproject, "rb") as fh:
        try:
            data = tomllib.load(fh)
        except tomllib.TOMLDecodeError as exc:
            raise ConfigError(f"{pyproject}: {exc}") from exc
    table = data.get("tool", {}).get("dominolint")
    if table is None:
        raise ConfigError(f"{pyproject} has no [tool.dominolint] table")

    def _strings(key: str) -> List[str]:
        value = table.get(key, [])
        if not isinstance(value, list) or not all(
            isinstance(item, str) for item in value
        ):
            raise ConfigError(f"[tool.dominolint] {key} must be a string list")
        return value

    def _path(key: str, default: str) -> Path:
        value = table.get(key, default)
        if not isinstance(value, str):
            raise ConfigError(f"[tool.dominolint] {key} must be a string")
        return root / value

    layers_raw = table.get("layers", {})
    if not isinstance(layers_raw, dict):
        raise ConfigError("[tool.dominolint] layers must be a table")
    layers: Dict[str, Tuple[str, ...]] = {}
    for package, allowed in layers_raw.items():
        if not isinstance(allowed, list) or not all(
            isinstance(item, str) for item in allowed
        ):
            raise ConfigError(
                f"[tool.dominolint.layers] {package} must be a string list"
            )
        layers[str(package)] = tuple(allowed)

    waivers = []
    for entry in _strings("transitive-waivers"):
        parts = [part.strip() for part in entry.split("->")]
        if len(parts) != 2 or not all(parts):
            raise ConfigError(
                "[tool.dominolint] transitive-waivers entries must look "
                f"like 'pkg.a -> pkg.b' (got {entry!r})"
            )
        waivers.append((parts[0], parts[1]))

    guarded = _strings("async-guarded-attrs")

    requirements = data.get("project", {}).get("dependencies", [])
    if not isinstance(requirements, list) or not all(
        isinstance(item, str) for item in requirements
    ):
        raise ConfigError("[project] dependencies must be a string list")
    declared = []
    for spec in requirements:
        name = _requirement_name(spec)
        if name is not None:
            declared.append(_canonical_dep(name))

    return Config(
        root=root,
        src_root=_path("src-root", "src"),
        sim_packages=tuple(_strings("sim-packages")),
        layers=layers,
        schema_events=_path(
            "schema-events", "src/repro/telemetry/events.py"),
        schema_recorder=_path(
            "schema-recorder", "src/repro/telemetry/recorder.py"),
        schema_baseline=_path(
            "schema-baseline", "src/repro/lint/schema_baseline.json"),
        declared_deps=tuple(declared),
        async_packages=tuple(_strings("async-packages")),
        async_guarded_attrs=(tuple(guarded) if guarded
                             else Config.async_guarded_attrs),
        pool_packages=tuple(_strings("pool-packages")),
        taint_sanitizers=tuple(_strings("taint-sanitizers")),
        transitive_waivers=tuple(waivers),
    )
