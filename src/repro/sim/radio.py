"""Per-node radio: carrier sensing, frame locking, SINR tracking.

The radio is the boundary between the analogue world (energy arriving
from the medium) and the MAC.  It implements:

* **Carrier sense** — the channel is busy when the summed incoming
  power crosses the profile's CS threshold, or while transmitting.
  MACs get edge-triggered ``on_channel_busy`` / ``on_channel_idle``
  callbacks (DCF freezes its backoff on these).

* **Frame locking** — an idle radio locks onto the first frame whose
  RSS clears the sensitivity floor.  While locked, the minimum SINR
  over the frame's airtime is tracked; at the end the frame is
  delivered iff that minimum stays above the rate's threshold.  A much
  stronger frame arriving during the locked frame's preamble steals
  the lock (preamble capture), which is how real 802.11 radios behave
  and matters for DCF collision outcomes.

* **Signature correlation path** — TRIGGER and QUEUE_REPORT frames
  bypass locking entirely.  Real DOMINO nodes run a continuous
  correlator bank for their own Gold-code signature (Sec. 3.2), which
  detects signatures through collisions that destroy packets, and the
  ROP queue reports are *designed* to overlap at the AP (Fig. 4).  The
  radio therefore tracks these frames' SINR separately and hands them
  to the MAC with their interference context; detection is decided by
  the MAC's calibrated models.

Half duplex: a transmitting radio hears nothing, including triggers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, TYPE_CHECKING

from .. import telemetry
from .medium import Medium, Transmission
from .packet import Frame, FrameKind
from .phy import PhyProfile, dbm_to_mw, mw_to_dbm

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..mac.base import Mac


@dataclass
class Reception:
    """Book-keeping for one frame being tracked at this radio."""

    tx: Transmission
    rss_dbm: float
    rss_mw: float
    min_sinr_db: float = float("inf")
    # Largest number of signature waveforms overlapping this frame at
    # any point in its airtime (TRIGGER frames only).  The trigger
    # detection model degrades with this count (Fig. 9).
    max_overlapping_signatures: int = 0
    interrupted_by_tx: bool = False
    # Running maximum of the interference power (total incoming minus
    # this frame, noise excluded) seen over the airtime.  min SINR is
    # derived from it once at delivery — log10 is monotone, so the
    # worst step in mW is the worst step in dB — instead of paying two
    # log10 calls per tracked frame on every energy edge.  Negative
    # means "never refreshed" and leaves ``min_sinr_db`` at +inf.
    max_interference_mw: float = -1.0
    # Cached signature count of a TRIGGER frame (targets + ROP polls),
    # so overlap accounting does not re-walk frame metadata per edge.
    n_signatures: int = 0


class Radio:
    """Half-duplex radio attached to one node."""

    def __init__(self, node_id: int, medium: Medium):
        self.node_id = node_id
        self.medium = medium
        self.profile: PhyProfile = medium.profile
        self.mac: Optional["Mac"] = None
        # All energy currently arriving, keyed by transmission uid.
        self._incoming: Dict[int, Reception] = {}
        self._lock: Optional[Reception] = None
        self._own_tx: Optional[Transmission] = None
        self._cs_busy = False
        # Number of TRIGGER receptions currently in ``_incoming`` —
        # lets the SINR refresh skip signature-overlap accounting
        # entirely for the (common) trigger-free energy edges.
        self._trigger_count = 0
        self._noise_mw = self.profile.noise_mw()
        self._cs_mw = dbm_to_mw(self.profile.cs_threshold_dbm)
        # Power save (Sec. 5 energy saving): while asleep the radio
        # hears nothing; the MAC schedules sleep windows it knows are
        # free of involvement.
        self._sleep_until = 0.0
        self.total_sleep_us = 0.0
        self._trace = telemetry.current()
        medium.register(self)

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    @property
    def transmitting(self) -> bool:
        return self._own_tx is not None

    @property
    def asleep(self) -> bool:
        return self.medium.sim.now < self._sleep_until

    def sleep_until(self, wake_time: float) -> float:
        """Power the receiver down until ``wake_time``.

        Returns the additional sleep time granted.  Sleeping while
        transmitting is refused (zero granted).
        """
        if self._own_tx is not None:
            return 0.0
        now = self.medium.sim.now
        previous = max(self._sleep_until, now)
        if wake_time <= previous:
            return 0.0
        granted = wake_time - previous
        self._sleep_until = wake_time
        self.total_sleep_us += granted
        if self._lock is not None:
            self._lock.interrupted_by_tx = True  # reception abandoned
            self._lock = None
        return granted

    @property
    def receiving(self) -> bool:
        return self._lock is not None

    def total_incoming_mw(self) -> float:
        return sum(r.rss_mw for r in self._incoming.values())

    def channel_busy(self) -> bool:
        """Carrier-sense verdict right now."""
        if self._own_tx is not None:
            return True
        return self.total_incoming_mw() >= self._cs_mw

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------
    def transmit(self, frame: Frame) -> Transmission:
        """Start transmitting ``frame``.  Aborts any ongoing reception."""
        if self._own_tx is not None:
            raise RuntimeError(f"node {self.node_id} is already transmitting")
        if self._lock is not None:
            # Switching to TX mid-reception destroys the reception.
            self._lock.interrupted_by_tx = True
            self._lock = None
        for rec in self._incoming.values():
            # Anything arriving while we transmit is unhearable.
            rec.interrupted_by_tx = True
        tx = self.medium.transmit(self.node_id, frame)
        self._own_tx = tx
        self._update_cs()
        return tx

    def on_own_tx_end(self, tx: Transmission) -> None:
        self._own_tx = None
        self._update_cs()
        if self.mac is not None:
            self.mac.on_tx_end(tx.frame)

    # ------------------------------------------------------------------
    # Energy events from the medium
    # ------------------------------------------------------------------
    def on_energy_start(self, tx: Transmission, rss_dbm: float, rss_mw: float) -> None:
        rec = Reception(tx=tx, rss_dbm=rss_dbm, rss_mw=rss_mw)
        if self._own_tx is not None or self.asleep:
            rec.interrupted_by_tx = True
        frame = tx.frame
        if frame.kind is FrameKind.TRIGGER:
            rec.n_signatures = max(
                1, len(frame.trigger_targets())
                + len(frame.meta.get("rop_polls", ())))
            self._trigger_count += 1
        self._incoming[tx.uid] = rec
        self._maybe_lock(rec)
        total = sum(r.rss_mw for r in self._incoming.values())
        self._refresh_sinrs(total)
        self._update_cs(total)

    def on_energy_end(self, tx: Transmission, rss_dbm: float, rss_mw: float) -> None:
        rec = self._incoming.pop(tx.uid, None)
        if rec is None:  # registered after our TX started; still tracked
            return
        if rec.n_signatures:
            self._trigger_count -= 1
        total = sum(r.rss_mw for r in self._incoming.values())
        self._refresh_sinrs(total)
        self._update_cs(total)
        self._deliver(rec)

    # ------------------------------------------------------------------
    # Locking and SINR
    # ------------------------------------------------------------------
    def _maybe_lock(self, rec: Reception) -> None:
        frame = rec.tx.frame
        if frame.kind in (FrameKind.TRIGGER, FrameKind.QUEUE_REPORT):
            return  # correlation path, never locked
        if rec.interrupted_by_tx or rec.rss_dbm < self.profile.sensitivity_dbm:
            return
        if self._lock is None:
            self._lock = rec
            return
        # Preamble capture: a much stronger frame arriving while the
        # current lock is still in its preamble steals the receiver.
        in_preamble = (
            self.medium.sim.now - self._lock.tx.start <= self.profile.preamble_us
        )
        margin_mw = self._lock.rss_mw * dbm_to_mw(self.profile.capture_margin_db) / 1.0
        if in_preamble and rec.rss_mw >= margin_mw:
            self._lock.interrupted_by_tx = True  # old frame is lost
            self._lock = rec

    def _refresh_sinrs(self, total: Optional[float] = None) -> None:
        """Update the running worst-case interference of every tracked
        frame (``total`` is the pre-summed incoming power, recomputed
        here when the caller has none at hand).

        Only the interference *power* is tracked per edge; the dB-space
        minimum SINR is finalised once at delivery.  log10 is strictly
        monotone, so the step with the largest interference is exactly
        the step with the smallest SINR — same result, two log10 calls
        per frame instead of two per frame per energy edge.
        """
        incoming = self._incoming
        if not incoming:
            return
        if total is None:
            total = sum(r.rss_mw for r in incoming.values())
        recs = incoming.values()
        if not self._trigger_count:
            for rec in recs:
                interference = total - rec.rss_mw
                if interference > rec.max_interference_mw:
                    rec.max_interference_mw = interference
            return
        trigger_recs = [r for r in recs if r.n_signatures]
        for rec in recs:
            interference = total - rec.rss_mw
            if interference > rec.max_interference_mw:
                rec.max_interference_mw = interference
            if rec.n_signatures:
                # Signatures that matter to the correlator are those of
                # comparable power: bursts more than 10 dB below this
                # one are negligible interference (Fig. 9's combining
                # limit is about same-order waveforms).
                floor_mw = rec.rss_mw / 10.0
                signatures = 0
                for other in trigger_recs:
                    if other.rss_mw >= floor_mw:
                        signatures += other.n_signatures
                if signatures > rec.max_overlapping_signatures:
                    rec.max_overlapping_signatures = signatures

    def _deliver(self, rec: Reception) -> None:
        if self.mac is None:
            return
        if rec.max_interference_mw >= 0.0:
            # Finalise the minimum SINR from the tracked worst-case
            # interference (see _refresh_sinrs).
            rec.min_sinr_db = mw_to_dbm(rec.rss_mw) - mw_to_dbm(
                rec.max_interference_mw + self._noise_mw)
        frame = rec.tx.frame
        if frame.kind is FrameKind.TRIGGER:
            if not rec.interrupted_by_tx:
                self.mac.on_trigger(frame, rec.min_sinr_db, rec.rss_dbm,
                                    rec.max_overlapping_signatures)
            return
        if frame.kind is FrameKind.QUEUE_REPORT:
            if not rec.interrupted_by_tx:
                self.mac.on_queue_report(frame, rec.rss_dbm)
            return
        if self._lock is not None and self._lock.tx.uid == rec.tx.uid:
            self._lock = None
            threshold = self.profile.frame_sinr_threshold_db(frame)
            ok = (not rec.interrupted_by_tx) and rec.min_sinr_db >= threshold
            tel = self._trace
            if tel.enabled:
                now = self.medium.sim.now
                if ok:
                    tel.frame_rx(now, self.node_id, frame)
                else:
                    reason = ("tx_busy" if rec.interrupted_by_tx else "sinr")
                    tel.frame_drop(now, self.node_id, frame, reason)
                    if reason == "sinr":
                        # A locked frame whose SINR dipped below
                        # threshold is the simulator's collision.
                        tel.metrics.counter("radio.collisions").inc()
            if ok:
                self.mac.on_receive(frame, rec.rss_dbm)
            else:
                self.mac.on_receive_failed(frame, rec.rss_dbm)

    # ------------------------------------------------------------------
    # Carrier sense edge detection
    # ------------------------------------------------------------------
    def _update_cs(self, total: Optional[float] = None) -> None:
        if self._own_tx is not None:
            busy = True
        else:
            if total is None:
                total = sum(r.rss_mw for r in self._incoming.values())
            busy = total >= self._cs_mw
        if busy == self._cs_busy:
            return
        self._cs_busy = busy
        if self.mac is None:
            return
        if busy:
            self.mac.on_channel_busy()
        else:
            self.mac.on_channel_idle()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "tx" if self.transmitting else ("rx" if self.receiving else "idle")
        return f"Radio(node={self.node_id}, {state}, incoming={len(self._incoming)})"
