"""Unit tests for the DOMINO MAC's timing and bookkeeping."""

import pytest

from repro.core.domino_mac import DominoMac, SlotTiming
from repro.core.relative_schedule import NodeProgram, SlotEntry
from repro.sim.engine import Simulator
from repro.sim.medium import Medium
from repro.sim.node import Network
from repro.sim.packet import data_frame
from repro.sim.phy import DOT11G
from repro.topology.links import Link


def test_slot_timing_layout():
    timing = SlotTiming.from_profile(DOT11G, payload_bytes=512)
    data = DOT11G.bytes_airtime_us(540, 12.0)
    assert timing.data_airtime_us == pytest.approx(data)
    assert timing.trigger_offset_us == pytest.approx(
        data + 10.0 + DOT11G.ack_airtime_us() + 9.0)
    assert timing.slot_duration_us == pytest.approx(
        timing.trigger_offset_us + 2 * 6.35 + 9.0)
    assert timing.rop_slot_us > 70.0


def build_mac(seed=1):
    sim = Simulator(seed=seed)
    network = Network()
    network.add_ap(0)
    network.add_client(1, 0)
    medium = Medium(sim, DOT11G, lambda a, b: -50.0)
    network.attach_all(medium)
    mac = DominoMac(sim, network.nodes[0], medium)
    client = DominoMac(sim, network.nodes[1], medium)
    return sim, mac, client


def test_plan_merge_within_window():
    """Two nearby time references average (estimation refinement)."""
    sim, mac, _ = build_mac()
    mac._send_entries[5] = SlotEntry(link=Link(0, 1))
    mac._plan_send(5, 1000.0)
    mac._plan_send(5, 1002.0)
    assert mac._planned[5].time == pytest.approx(1001.0)


def test_plan_replace_beyond_window():
    """A far-off reference is a different chain: last trigger wins."""
    sim, mac, _ = build_mac()
    mac._send_entries[5] = SlotEntry(link=Link(0, 1))
    mac._plan_send(5, 1000.0)
    mac._plan_send(5, 1020.0)
    assert mac._planned[5].time == pytest.approx(1020.0)


def test_executed_slot_not_replanned():
    sim, mac, _ = build_mac()
    mac._send_entries[5] = SlotEntry(link=Link(0, 1))
    mac._executed.add(5)
    mac._plan_send(5, 1000.0)
    assert 5 not in mac._planned


def test_fake_sent_when_queue_empty():
    sim, mac, client = build_mac()
    mac._send_entries[0] = SlotEntry(link=Link(0, 1))
    mac._plan_send(0, 10.0)
    sim.run(until=2_000.0)
    assert mac.stats.fake_tx == 1
    assert mac.stats.data_tx == 0


def test_real_data_preferred_over_fake():
    sim, mac, client = build_mac()
    delivered = []
    client.add_delivery_handler(lambda f, t: delivered.append(f))
    mac.enqueue(data_frame(0, 1, 512, 0, 0.0))
    mac._send_entries[0] = SlotEntry(link=Link(0, 1), fake=True)
    mac._plan_send(0, 10.0)
    sim.run(until=2_000.0)
    assert mac.stats.data_tx == 1
    assert mac.stats.fake_tx == 0
    assert len(delivered) == 1
    assert mac.stats.successes == 1  # client ACKed


def test_missed_ack_requeues_at_head():
    """Sec. 3.5: the unACKed packet is retransmitted by the next
    trigger for the same destination."""
    sim, mac, client = build_mac()
    client.radio.mac = None  # client deaf: ACK will never come
    mac.enqueue(data_frame(0, 1, 512, 7, 0.0))
    mac.enqueue(data_frame(0, 1, 512, 8, 0.0))
    mac._send_entries[0] = SlotEntry(link=Link(0, 1))
    mac._plan_send(0, 10.0)
    sim.run(until=2_000.0)
    assert mac.stats.ack_timeouts == 1
    head = mac.queues.queue_for(1).peek()
    assert head.seq == 7  # retry goes in front of seq 8
    assert head.retries == 1


def test_program_prune_bounds_state():
    sim, mac, _ = build_mac()
    for slot in range(500):
        mac._send_entries[slot] = SlotEntry(link=Link(0, 1))
        mac._executed.add(slot)
    program = NodeProgram(node=0, batch_id=40, initial=False,
                          first_slot_index=500, last_slot_index=511)
    mac.load_program(program)
    assert min(mac._send_entries) >= 511 - 200
    assert min(mac._executed) >= 511 - 200


def test_initial_program_self_starts_downlink():
    sim, mac, client = build_mac()
    program = NodeProgram(node=0, batch_id=0, initial=True,
                          first_slot_index=0, last_slot_index=3)
    program.send_slots[0] = SlotEntry(link=Link(0, 1))
    mac.load_program(program)
    sim.run(until=5_000.0)
    assert 0 in mac._executed
    assert mac.stats.fake_tx + mac.stats.data_tx == 1


def test_poll_resync_replans_next_slot():
    sim, mac, client = build_mac()
    # The client has a send entry for slot 8 planned off-time.
    client._send_entries[8] = SlotEntry(link=Link(1, 0))
    client._plan_send(8, 3_000.0)
    from repro.sim.packet import Frame, FrameKind
    poll = Frame(kind=FrameKind.POLL, src=0, dst=None,
                 meta={"ap": 0, "slot": 7})
    mac.radio.transmit(poll)
    poll_airtime = DOT11G.frame_airtime_us(poll)
    sim.run(until=poll_airtime + 10.0)  # poll decoded, slot 8 not yet due
    # Replanned to poll end + slot + symbol + slot (reference broadcast).
    assert client._planned[8].time == pytest.approx(
        poll_airtime + 9.0 + 16.0 + 9.0, abs=0.1)
