"""Unit tests for PHY profiles, airtimes and reception thresholds."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim.packet import (ACK_BYTES, MAC_HEADER_BYTES, Frame, FrameKind,
                              ack_frame, data_frame)
from repro.sim.phy import (DOT11G, MAX_NODES_PER_DOMAIN,
                           SIGNATURE_CORRELATION_GAIN_DB, SIGNATURE_US, USRP,
                           dbm_to_mw, mw_to_dbm, profile_by_name)


def test_dot11g_timing_constants():
    assert DOT11G.slot_us == 9.0
    assert DOT11G.sifs_us == 10.0
    assert DOT11G.difs_us == 28.0  # SIFS + 2 slots
    assert DOT11G.data_rate_mbps == 12.0  # paper Sec. 4.2.1


def test_signature_constants_match_paper():
    # 127 chips at 20 MHz BPSK = 6.35 us (Sec. 3.2).
    assert SIGNATURE_US == pytest.approx(6.35)
    # 129 Gold codes minus START and ROP = 127 nodes per domain.
    assert MAX_NODES_PER_DOMAIN == 127
    assert SIGNATURE_CORRELATION_GAIN_DB == pytest.approx(
        10 * math.log10(127))


def test_data_frame_airtime():
    frame = data_frame(1, 2, payload_bytes=512, seq=0, enqueued_at=0.0)
    airtime = DOT11G.frame_airtime_us(frame)
    expected = 20.0 + (512 + MAC_HEADER_BYTES) * 8 / 12.0
    assert airtime == pytest.approx(expected)


def test_ack_airtime_uses_basic_rate():
    ack = ack_frame(1, 2, seq=0)
    assert DOT11G.frame_airtime_us(ack) == pytest.approx(
        20.0 + ACK_BYTES * 8 / 6.0)
    assert DOT11G.ack_airtime_us() == DOT11G.frame_airtime_us(ack)


def test_trigger_airtime_is_two_signatures():
    trigger = Frame(kind=FrameKind.TRIGGER, src=1, dst=None)
    assert DOT11G.frame_airtime_us(trigger) == pytest.approx(2 * SIGNATURE_US)


def test_queue_report_airtime_is_rop_symbol():
    report = Frame(kind=FrameKind.QUEUE_REPORT, src=1, dst=2)
    assert DOT11G.frame_airtime_us(report) == pytest.approx(16.0)


def test_fake_frame_is_header_only_and_shorter():
    from repro.sim.packet import fake_frame
    fake = fake_frame(1, 2, slot=0)
    data = data_frame(1, 2, payload_bytes=512, seq=0, enqueued_at=0.0)
    assert DOT11G.frame_airtime_us(fake) < DOT11G.frame_airtime_us(data) / 4


def test_sinr_threshold_lookup_and_fallback():
    assert DOT11G.sinr_threshold_db(12.0) == 8.0
    # Unknown rate falls back to the nearest configured at/above.
    assert DOT11G.sinr_threshold_db(10.0) == 8.0
    assert DOT11G.sinr_threshold_db(100.0) == max(
        DOT11G.sinr_thresholds_db.values())


def test_trigger_threshold_gets_correlation_gain():
    trigger = Frame(kind=FrameKind.TRIGGER, src=1, dst=None)
    data = data_frame(1, 2, 512, 0, 0.0)
    assert DOT11G.frame_sinr_threshold_db(trigger) < \
        DOT11G.frame_sinr_threshold_db(data) - 15.0


def test_ack_timeout_covers_sifs_plus_ack():
    assert DOT11G.ack_timeout_us() > DOT11G.sifs_us + DOT11G.ack_airtime_us()


def test_usrp_profile_is_slow():
    frame = data_frame(1, 2, 512, 0, 0.0)
    assert USRP.frame_airtime_us(frame) > 100 * DOT11G.frame_airtime_us(frame)


def test_profile_by_name():
    assert profile_by_name("802.11g") is DOT11G
    assert profile_by_name("usrp-gnuradio") is USRP
    with pytest.raises(KeyError):
        profile_by_name("nonexistent")


def test_dbm_mw_known_values():
    assert dbm_to_mw(0.0) == pytest.approx(1.0)
    assert dbm_to_mw(10.0) == pytest.approx(10.0)
    assert mw_to_dbm(1.0) == pytest.approx(0.0)
    assert mw_to_dbm(0.0) == -200.0  # floor sentinel


@given(st.floats(min_value=-150.0, max_value=50.0))
def test_property_dbm_mw_roundtrip(dbm):
    assert mw_to_dbm(dbm_to_mw(dbm)) == pytest.approx(dbm, abs=1e-9)


@given(st.integers(min_value=1, max_value=4096),
       st.sampled_from([6.0, 12.0, 24.0, 54.0]))
def test_property_airtime_monotone_in_size(nbytes, rate):
    smaller = DOT11G.bytes_airtime_us(nbytes, rate)
    larger = DOT11G.bytes_airtime_us(nbytes + 1, rate)
    assert larger > smaller
    assert smaller > DOT11G.preamble_us
