"""Tests for the sample-level signature detector (Fig. 9 substrate)."""

import random

import numpy as np
import pytest

from repro.core.correlator import (FIG9_SETUPS, ChannelConfig,
                                   SignatureDetector, detection_curve,
                                   run_detection_experiment,
                                   synthesize_burst)
from repro.core.signatures import gold_family

RUNS = 60  # keep unit tests fast; the bench runs the full experiment


@pytest.fixture(scope="module")
def family():
    return gold_family(7)


@pytest.fixture(scope="module")
def detector(family):
    return SignatureDetector(family)


def test_clean_single_signature_detected(family, detector):
    rng = random.Random(0)
    config = ChannelConfig()
    for trial in range(20):
        burst = synthesize_burst(family, [[5]], config, rng)
        assert detector.detect(burst, family.code(5))


def test_absent_signature_rejected(family, detector):
    rng = random.Random(1)
    config = ChannelConfig()
    false_alarms = sum(
        detector.detect(synthesize_burst(family, [[5, 9]], config, rng),
                        family.code(30))
        for _ in range(60)
    )
    assert false_alarms <= 2


def test_noise_only_never_detects(family, detector):
    rng = random.Random(2)
    noise = np.array([complex(rng.gauss(0, 1), rng.gauss(0, 1))
                      for _ in range(250)]) * 0.25
    detections = sum(detector.detect(noise, family.code(i))
                     for i in range(2, 22))
    assert detections == 0


def test_correlate_finds_delay(family, detector):
    rng = random.Random(3)
    config = ChannelConfig(max_delay_chips=4)
    burst = synthesize_burst(family, [[7]], config, rng)
    peak, delay = detector.correlate(burst, family.code(7))
    assert peak > 0.5
    assert 0 <= delay <= 4


@pytest.mark.parametrize("setup", FIG9_SETUPS)
def test_high_detection_at_four_combined(setup):
    result = run_detection_experiment(setup, 4, runs=RUNS, seed=9)
    assert result.detection_ratio >= 0.88


@pytest.mark.parametrize("setup", ("1", "2diff", "3diff"))
def test_detection_degrades_beyond_limit(setup):
    at4 = run_detection_experiment(setup, 4, runs=RUNS, seed=5)
    at7 = run_detection_experiment(setup, 7, runs=RUNS, seed=5)
    assert at7.detection_ratio <= at4.detection_ratio + 0.05


def test_same_signature_setups_degrade_fastest():
    same = run_detection_experiment("3same", 6, runs=RUNS, seed=7)
    diff = run_detection_experiment("3diff", 6, runs=RUNS, seed=7)
    assert same.detection_ratio <= diff.detection_ratio + 0.05


def test_false_positive_ratio_low():
    total_fp = 0
    total_runs = 0
    for setup in FIG9_SETUPS:
        result = run_detection_experiment(setup, 4, runs=RUNS, seed=3)
        total_fp += result.false_positives
        total_runs += result.runs
    assert total_fp / total_runs < 0.03  # paper: < 1 % at 1000 runs


def test_detection_curve_shape():
    curve = detection_curve("2diff", max_combined=5, runs=40, seed=1)
    assert len(curve) == 5
    assert curve[0].n_combined == 1
    assert all(r.setup == "2diff" for r in curve)


def test_invalid_setup_rejected():
    with pytest.raises(ValueError):
        run_detection_experiment("4same", 3, runs=5)


def test_burst_is_complex_and_padded(family):
    rng = random.Random(4)
    config = ChannelConfig(max_delay_chips=4)
    burst = synthesize_burst(family, [[2], [3]], config, rng)
    assert burst.dtype == np.complex128
    assert len(burst) == family.length + 4 + 80
