"""The wall clock may inform metrics, never the trace.

These tests pin the determinism fixes surfaced by dominolint (DOM101
in the engine): all wall-clock reads in the event loop go through
``repro.telemetry.wallclock``, and their values must be unable to
perturb simulation state or the exported trace.  If a future change
routes a wall-clock reading back into scheduling or event payloads,
the byte comparison here diverges immediately.
"""

import io
import itertools

from repro.experiments.common import run_scheme
from repro.runner.sweep import trace_digest
from repro.telemetry import wallclock
from repro.topology.builder import fig7_topology


def _traced_run():
    result = run_scheme("domino", fig7_topology(uplinks=True),
                        horizon_us=20_000.0, warmup_us=0.0,
                        saturated=True, seed=7, trace=True)
    stream = io.StringIO()
    result.trace.write_jsonl(stream)
    return result, stream.getvalue()


def test_wall_clock_cannot_perturb_the_trace(monkeypatch):
    _, baseline = _traced_run()
    # A hostile clock: huge values, irregular steps.  The engine reads
    # it for run-wall-time metrics; the trace must not notice.
    ticks = itertools.count(start=1.0e9, step=987.654321)
    monkeypatch.setattr(wallclock, "perf_counter", lambda: next(ticks))
    _, perturbed = _traced_run()
    assert perturbed == baseline


def test_trace_digest_is_stable_across_runs():
    result_a, _ = _traced_run()
    result_b, _ = _traced_run()
    digest_a = trace_digest(result_a.trace.records())
    digest_b = trace_digest(result_b.trace.records())
    assert digest_a == digest_b


def test_profiled_event_loop_emits_identical_trace():
    """``profile=True`` wraps the drain loop in wall-clock timing; the
    instrumentation must be observationally transparent to the trace."""
    def run(profile: bool) -> str:
        result = run_scheme("domino", fig7_topology(uplinks=True),
                            horizon_us=20_000.0, warmup_us=0.0,
                            saturated=True, seed=7, trace=True,
                            profile=profile)
        stream = io.StringIO()
        result.trace.write_jsonl(stream)
        return stream.getvalue()

    assert run(profile=True) == run(profile=False)
