"""Overhead guard: telemetry must stay cheap, off *and* on.

Budgets (asserted against the reference fig12-style UDP workload):

* **disabled** < 5 % runtime — the path everyone pays.  One attribute
  load plus one ``enabled`` branch per site (components capture the
  NULL recorder at construction); measured as guard micro-cost times
  the run's actual instrumentation hit count, because a single
  off-vs-off wall-clock pair is noisier than the effect itself.
* **enabled** < 20 % runtime — the path a traced run pays.  The
  recorder appends one raw tuple per event and defers all dict
  building / set sorting / float rounding to read time, which is what
  brought this under budget.  Measured end to end, interleaved
  base/enabled pairs, best-of-N on each side so scheduler noise
  cancels instead of accumulating.

The verdict plus raw numbers land in ``BENCH_telemetry.json``
(latest-run snapshot) and are appended to ``BENCH_history.jsonl``
via :mod:`trend`, whose CI gate fails the build if a gated ratio
regresses more than 15 % against the recorded median.
"""

from __future__ import annotations

import json
import os
import time
import timeit

from repro import telemetry
from repro.experiments.common import run_scheme
from repro.experiments.fig12_t10_2 import default_topology
from repro.telemetry.analysis import summarize_causality

import trend

RESULT_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "BENCH_telemetry.json")

HORIZON_US = 120_000.0
MAX_DISABLED_OVERHEAD = 0.05      # the original 5 % budget
MAX_ENABLED_OVERHEAD = 0.20       # this PR's enabled-path budget
REPEATS = 3                       # interleaved base/enabled pairs


def reference_run(trace):
    return run_scheme("domino", default_topology(), horizon_us=HORIZON_US,
                      warmup_us=20_000.0, uplink_mbps=4.0, seed=1,
                      trace=trace)


def timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def guard_cost_seconds():
    """Per-site cost of the disabled path: load ``self._trace`` off a
    component and branch on ``enabled`` — exactly what every
    instrumented hot path does when telemetry is off."""

    class Component:
        def __init__(self):
            self._trace = telemetry.current()

        def hot_path(self):
            tel = self._trace
            if tel.enabled:
                tel.emit({"ev": "x", "t": 0.0})

    component = Component()
    assert not component._trace.enabled
    loops = 200_000
    # Best-of-N, like the wall-clock pairs above: a single timeit
    # sample of a ~60 ns operation swings 3x under scheduler noise;
    # the minimum is the undisturbed cost.
    return min(timeit.repeat(component.hot_path, number=loops,
                             repeat=5)) / loops


def measure_interleaved(repeats=REPEATS):
    """Alternate base/enabled runs and keep the best of each side.

    Interleaving means thermal or scheduler drift hits both sides
    alike; taking the min discards the noisy outliers (the minimum of
    a deterministic workload's wall time is its least-disturbed run).
    """
    base_times, enabled_times = [], []
    enabled_result = None
    for _ in range(repeats):
        _, base_s = timed(lambda: reference_run(trace=None))
        base_times.append(base_s)
        enabled_result, enabled_s = timed(lambda: reference_run(
            trace=telemetry.TraceRecorder(capacity=1 << 20)))
        enabled_times.append(enabled_s)
    return min(base_times), min(enabled_times), enabled_result


def test_telemetry_overhead_under_budget():
    # Warm caches/allocator with a throwaway run, then measure.
    reference_run(trace=None)
    base_s, enabled_s, enabled_result = measure_interleaved()
    enabled_fraction = enabled_s / base_s - 1.0

    hits = enabled_result.trace.emitted
    assert hits > 1000, "reference run barely exercised the instrumentation"

    # Estimated cost the *disabled* run pays for instrumentation: every
    # site that fired when enabled ran its guard when disabled too.
    per_site_s = guard_cost_seconds()
    disabled_overhead_s = per_site_s * hits
    disabled_fraction = disabled_overhead_s / base_s

    report = {
        "workload": "fig12 T(10,2) UDP, domino, "
                    f"horizon={HORIZON_US / 1000.0:.0f} ms",
        "baseline_s": round(base_s, 4),
        "enabled_s": round(enabled_s, 4),
        "enabled_overhead_fraction": round(enabled_fraction, 4),
        "enabled_budget_fraction": MAX_ENABLED_OVERHEAD,
        "instrumentation_hits": hits,
        "guard_cost_ns": round(per_site_s * 1e9, 2),
        "disabled_overhead_s_estimate": round(disabled_overhead_s, 6),
        "disabled_overhead_fraction": round(disabled_fraction, 6),
        "budget_fraction": MAX_DISABLED_OVERHEAD,
        "pass": (disabled_fraction < MAX_DISABLED_OVERHEAD
                 and enabled_fraction < MAX_ENABLED_OVERHEAD),
    }
    with open(RESULT_PATH, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # Critical-path percentiles of the same deterministic traced run:
    # seeded, so they gate like domino_mbps (a move = code change).
    causality = summarize_causality(enabled_result.trace.records()) or {}
    metrics = {
        "baseline_s": round(base_s, 4),
        "enabled_s": round(enabled_s, 4),
        "enabled_runtime_ratio": round(enabled_s / base_s, 4),
        "disabled_overhead_fraction": round(disabled_fraction, 6),
        "guard_cost_ns": round(per_site_s * 1e9, 2),
        "domino_mbps": round(enabled_result.aggregate_mbps, 4),
        "trace_events_emitted": hits,
    }
    if causality:
        metrics["critical_makespan_p50_ms"] = round(
            causality["makespan_p50_us"] / 1000.0, 4)
        metrics["critical_makespan_p95_ms"] = round(
            causality["makespan_p95_us"] / 1000.0, 4)
    trend.append("telemetry_overhead", metrics)

    assert disabled_fraction < MAX_DISABLED_OVERHEAD, report
    assert enabled_fraction < MAX_ENABLED_OVERHEAD, report
