"""Sweep-engine speedup bench: serial vs. process-pool fan-out.

Runs the fig14 random-network sweep (the runner's target shape: many
independent mid-sized points) once serially and once across a worker
pool, then asserts the engine's two promises:

* **identity** — per-point canonical-trace digests are byte-identical
  between the two runs, always, on any machine;
* **speedup** — with >= 4 workers on a >= 4-core box the parallel run
  finishes >= 2.5x faster.  A smaller box cannot physically show a
  speedup, so there the ratio is neither asserted nor published — the
  snapshot records ``"skipped_reason": "cores<4"`` and the trend entry
  carries the serial throughput — but identity is still checked.

The worker count follows ``SWEEP_BENCH_WORKERS`` (default: 4 capped
to the core count) so CI can pin a reproducible pool size.  Numbers
land in ``BENCH_sweep.json`` (latest snapshot) and the
``sweep_events_per_sec`` throughput metric joins the
``BENCH_history.jsonl`` trend gate — a > 15 % drop against the
recorded median fails the build.
"""

from __future__ import annotations

import json
import os

from repro.experiments.fig14_random import sweep_points
from repro.runner import run_sweep, write_sweep_report

import trend

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULT_PATH = os.path.join(_ROOT, "BENCH_sweep.json")
REPORT_HTML_PATH = os.path.join(_ROOT, "BENCH_sweep_report.html")
SWEEP_JSON_PATH = os.path.join(_ROOT, "BENCH_sweep_points.json")

N_RUNS = 4                        # placements; two points (dcf+domino) each
M, N = 8, 2                       # T(8,2) keeps one point mid-sized
HORIZON_US = 250_000.0
MIN_SPEEDUP = 2.5
SPEEDUP_WORKERS = 4               # the floor only applies at this scale


def bench_points():
    return sweep_points(n_runs=N_RUNS, m=M, n=N, horizon_us=HORIZON_US)


def test_sweep_speedup_and_identity():
    cores = os.cpu_count() or 1
    workers = int(os.environ.get("SWEEP_BENCH_WORKERS",
                                 min(SPEEDUP_WORKERS, cores)))
    points = bench_points()

    serial = run_sweep(points, workers=0, trace=True)
    parallel = run_sweep(points, workers=workers, trace=True)

    digests_identical = serial.digests() == parallel.digests()
    # A sub-SPEEDUP_WORKERS box cannot show a speedup, only pool
    # overhead: publishing its sub-1x ratio as "the speedup" would
    # poison the snapshot and the trend history, so the ratio is
    # withheld and the snapshot says why instead.
    measurable = workers >= SPEEDUP_WORKERS and cores >= SPEEDUP_WORKERS
    speedup = (serial.wall_s / parallel.wall_s
               if measurable and parallel.wall_s else None)

    report = {
        "workload": f"fig14 random T({M},{N}) x {N_RUNS} placements, "
                    f"dcf+domino, horizon={HORIZON_US / 1000.0:.0f} ms",
        "points": len(points),
        "workers": workers,
        "cores": cores,
        "serial_s": round(serial.wall_s, 4),
        "parallel_s": round(parallel.wall_s, 4),
        "speedup": round(speedup, 4) if speedup is not None else None,
        "skipped_reason": None if measurable
        else f"cores<{SPEEDUP_WORKERS}",
        "total_events": serial.total_events,
        "serial_events_per_sec": round(serial.events_per_sec, 1),
        "parallel_events_per_sec": round(parallel.events_per_sec, 1),
        "digests_identical": digests_identical,
        "speedup_floor": MIN_SPEEDUP if measurable else None,
    }
    with open(RESULT_PATH, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    metrics = {
        "serial_s": round(serial.wall_s, 4),
        "parallel_s": round(parallel.wall_s, 4),
        # Throughput stays honest either way: on a measurable box the
        # pool's rate is the bench's product; below that the serial
        # rate is the only meaningful one.
        "sweep_events_per_sec": round(
            (parallel if measurable else serial).events_per_sec, 1),
        "total_events": serial.total_events,
    }
    if speedup is not None:
        metrics["speedup"] = round(speedup, 4)
    trend.append("sweep_speedup", metrics)

    # Untimed third pass with worker-side diagnosis for the HTML
    # artifact CI uploads — kept out of the timed runs above so the
    # doctor/causality cost never skews the gated throughput metric.
    diagnosed = run_sweep(points, workers=workers, trace=True,
                          diagnose=True)
    diagnosed.save_json(SWEEP_JSON_PATH)
    write_sweep_report(
        diagnosed, REPORT_HTML_PATH,
        title=f"sweep-speedup bench — {report['workload']}")

    assert digests_identical, (
        "parallel sweep diverged from serial", serial.digests(),
        parallel.digests())
    assert serial.total_events == parallel.total_events
    # Observability must not perturb the simulation: same digests with
    # diagnosis on.
    assert diagnosed.digests() == serial.digests()
    if measurable:
        assert speedup >= MIN_SPEEDUP, report
