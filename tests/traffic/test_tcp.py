"""Tests for the TCP-Reno-lite implementation."""

import pytest

from repro.mac.dcf import DcfMac
from repro.sim.engine import Simulator
from repro.sim.medium import Medium
from repro.sim.node import Network
from repro.sim.phy import DOT11G
from repro.traffic.tcp import TCP_ACK_BYTES, TcpFlow


def tcp_pair(seed=1, rss=-50.0):
    sim = Simulator(seed=seed)
    network = Network()
    network.add_ap(0)
    network.add_client(1, 0)
    medium = Medium(sim, DOT11G, lambda a, b: rss)
    network.attach_all(medium)
    macs = {n.node_id: DcfMac(sim, n, medium) for n in network}
    return sim, macs


def test_saturated_flow_transfers_in_order():
    sim, macs = tcp_pair()
    flow = TcpFlow(sim, macs[0], macs[1])
    flow.start()
    sim.run(until=500_000.0)
    assert flow.stats.delivered > 200
    assert flow._expected == flow.stats.delivered  # in-order, no gaps
    assert flow.send_base > 200


def test_cwnd_grows_from_slow_start():
    sim, macs = tcp_pair()
    flow = TcpFlow(sim, macs[0], macs[1])
    flow.start()
    assert flow.cwnd == 2.0
    sim.run(until=300_000.0)
    assert flow.cwnd > 8.0


def test_rate_limited_app_throttles():
    sim, macs = tcp_pair()
    # ~1 Mbps application on a ~9 Mbps link.
    flow = TcpFlow(sim, macs[0], macs[1], app_rate_mbps=1.0)
    flow.start()
    sim.run(until=1_000_000.0)
    delivered_mbps = flow.stats.delivered * 512 * 8 / 1_000_000.0
    assert delivered_mbps == pytest.approx(1.0, rel=0.15)


def test_acks_ride_as_data_frames():
    """Paper Sec. 4.2.3: TCP ACKs are regular packets on the reverse
    path and consume channel time."""
    sim, macs = tcp_pair()
    reverse = []
    macs[0].add_delivery_handler(lambda f, t: reverse.append(f))
    flow = TcpFlow(sim, macs[0], macs[1])
    flow.start()
    sim.run(until=200_000.0)
    assert len(reverse) > 50
    assert all(f.payload_bytes == TCP_ACK_BYTES for f in reverse)
    assert all(f.meta.get("tcp_ack") is not None for f in reverse)


def test_rto_recovers_from_jamming_blackout():
    """A hidden jammer destroys every frame for a while: the MAC's
    retries exhaust and drop packets, TCP times out, then recovers
    once the jammer stops."""
    sim = Simulator(seed=3)
    network = Network()
    network.add_ap(0)
    network.add_client(1, 0)
    network.add_client(2, 0)  # the jammer

    def rss(a, b):
        if 2 in (a, b):
            # The jammer is loud at both endpoints (they defer and any
            # overlapped reception dies); it hears nothing itself.
            return -48.0 if a == 2 else -200.0
        return -50.0

    medium = Medium(sim, DOT11G, rss)
    network.attach_all(medium)
    macs = {n.node_id: DcfMac(sim, n, medium) for n in network.nodes.values()
            if n.node_id != 2}
    jammer_radio = network.nodes[2].radio

    def jam():
        if sim.now < 900_000.0:
            if not jammer_radio.transmitting:
                from repro.sim.packet import data_frame
                jammer_radio.transmit(data_frame(2, 9, 1500, 0, 0.0))
            # Re-arm fast enough that no idle gap fits a whole data
            # exchange: anything started in a gap dies mid-air.
            sim.schedule(200.0, jam)

    flow = TcpFlow(sim, macs[0], macs[1])
    flow.start()
    sim.run(until=100_000.0)
    delivered_before = flow.stats.delivered
    sim.schedule(0.0, jam)
    sim.run(until=900_000.0)
    # Leave room for the (exponentially backed-off) RTO to fire after
    # the jam clears and for the window to regrow.
    sim.run(until=5_000_000.0)
    assert flow.stats.timeouts >= 1
    assert flow.stats.delivered > delivered_before + 100  # recovered


def test_dup_acks_trigger_fast_retransmit():
    sim, macs = tcp_pair()
    flow = TcpFlow(sim, macs[0], macs[1])
    flow.cwnd = 8.0
    flow.next_seq = 8
    flow._send_times = {i: 0.0 for i in range(8)}
    before = flow.stats.sent
    for _ in range(3):
        flow._handle_dup_ack()
    assert flow.stats.fast_retransmits == 1
    assert flow.stats.sent == before + 1
    assert flow.cwnd == pytest.approx(4.0)


def test_new_ack_advances_window():
    sim, macs = tcp_pair()
    flow = TcpFlow(sim, macs[0], macs[1])
    flow.cwnd = 4.0
    flow.next_seq = 4
    flow._send_times = {i: 0.0 for i in range(4)}
    sim.run(until=1.0)
    flow._handle_new_ack(3, now=sim.now)
    assert flow.send_base == 3
    assert flow.cwnd > 4.0


def test_rtt_estimator_sets_rto():
    sim, macs = tcp_pair()
    flow = TcpFlow(sim, macs[0], macs[1])
    flow._update_rtt(10_000.0)
    assert flow._srtt == pytest.approx(10_000.0)
    first_rto = flow._rto_us
    assert first_rto >= flow.MIN_RTO_US
    flow._update_rtt(10_000.0)
    assert flow._rto_us <= first_rto
