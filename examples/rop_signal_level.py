#!/usr/bin/env python3
"""Signal-level tour: Gold-code triggers and the ROP control symbol.

Everything in this example runs at complex baseband, no event
simulation involved:

1. generate the 129-code Gold family the paper uses for node
   signatures; show the correlation properties that make triggering
   through collisions possible;
2. combine several signatures into one burst (what a trigger broadcast
   is) and detect one of them with the sliding correlator;
3. build one ROP OFDM symbol carrying six clients' queue lengths and
   decode all of them at the AP — including a deliberately 30 dB
   weaker client saved by the guard subcarriers.

Run:  python examples/rop_signal_level.py
"""

import random

from repro.core.correlator import (ChannelConfig, SignatureDetector,
                                   synthesize_burst)
from repro.core.ofdm import (ClientSignal, RopSymbolDecoder,
                             aggregate_at_ap)
from repro.core.signatures import gold_family, max_cross_correlation


def tour_signatures():
    family = gold_family(7)
    print(f"Gold family: {family.family_size} codes of length "
          f"{family.length}")
    print(f"  self-correlation peak: {family.length}")
    print(f"  worst cross-correlation (sampled): "
          f"{max(max_cross_correlation(family.code(i), family.code(j)) for i, j in [(2, 3), (4, 40), (7, 100)])}"
          f"  (theory bound: {family.correlation_bound()})")

    detector = SignatureDetector(family)
    rng = random.Random(7)
    config = ChannelConfig(snr_db=12.0)
    combined = [10, 11, 12, 13]  # one burst carrying four signatures
    burst = synthesize_burst(family, [combined], config, rng)
    print(f"\none burst combining signatures {combined}:")
    for probe in (10, 13, 77):
        hit = detector.detect(burst, family.code(probe))
        present = probe in combined
        print(f"  probe code {probe:>3}: detected={hit!s:<5} "
              f"(transmitted={present})")


def tour_rop():
    rng = random.Random(3)
    queue_lengths = {k: rng.randint(0, 63) for k in range(6)}
    clients = []
    for subchannel, queue_len in queue_lengths.items():
        amplitude = 10.0 ** (-30.0 / 20.0) if subchannel == 2 else 1.0
        clients.append(ClientSignal(
            subchannel=subchannel, queue_len=queue_len,
            amplitude=amplitude,
            cfo_fraction=rng.uniform(-0.005, 0.005),
            timing_offset_samples=rng.randint(0, 30),
            phase=rng.uniform(0, 6.28),
            skirt_seed=rng.getrandbits(32),
        ))
    received = aggregate_at_ap(clients)
    decoder = RopSymbolDecoder()
    results = decoder.decode_all(received, clients)

    print("\nROP: six clients answer one poll with one OFDM symbol")
    print("(client on subchannel 2 is 30 dB weaker than its neighbours)")
    print(f"  {'subchannel':>10} {'sent':>5} {'decoded':>8}")
    for client in clients:
        outcome = results[client.subchannel]
        mark = "ok" if outcome.queue_len == client.queue_len else "BAD"
        print(f"  {client.subchannel:>10} {client.queue_len:>5} "
              f"{outcome.queue_len:>8}  {mark}")


if __name__ == "__main__":
    tour_signatures()
    tour_rop()
