"""PHY profiles: timing constants, airtimes and SINR reception thresholds.

Two profiles are provided:

``DOT11G``
    An 802.11g OFDM PHY matching the paper's large-scale evaluation
    (Sec. 4.2.1): 9 us slots, 12 Mbps data rate, 512 B packets.
    Reception is threshold-based: a frame is delivered iff its SINR
    stays above the rate's threshold for its entire airtime.  The
    threshold table is in the spirit of the ns-3 OFDM error model the
    paper cites (Pei & Henderson): about 5 dB for 6 Mbps BPSK-1/2 up
    to 25 dB for 54 Mbps.

``USRP``
    A deliberately slow profile reproducing the *shape* of the USRP
    prototype numbers in Table 2.  GNURadio USRP MACs are dominated by
    host-USB turnaround latency (tens of milliseconds per MAC
    operation), which is why the paper's testbed throughput is in the
    single-digit Kbps.  The profile scales every MAC timing constant
    by roughly the measured USRP turnaround so that contention /
    backoff overhead ratios — the quantity Table 2 actually probes —
    are preserved.

Signature (trigger) frames get a correlation-gain bonus on top of the
data threshold: a 127-chip Gold code correlator achieves a processing
gain of ``10*log10(127) ~= 21 dB``, which is what lets DOMINO detect a
trigger through a collision that destroys the packet itself (Sec. 3.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from .packet import Frame, FrameKind

# Paper constants (Sec. 3.1 / 3.2 / Table 1).
SIGNATURE_LENGTH_CHIPS = 127
SIGNATURE_US = 6.35            # 127 chips at 20 MHz, BPSK
ROP_SYMBOL_US = 16.0           # 256-subcarrier OFDM symbol
ROP_CP_US = 3.2
GOLD_FAMILY_SIZE = 129         # 2^7 + 1 codes of length 127
RESERVED_SIGNATURES = 2        # START and ROP signatures
MAX_NODES_PER_DOMAIN = GOLD_FAMILY_SIZE - RESERVED_SIGNATURES

# Correlation (processing) gain of a length-127 signature in dB.
SIGNATURE_CORRELATION_GAIN_DB = 10.0 * math.log10(SIGNATURE_LENGTH_CHIPS)


def dbm_to_mw(dbm: float) -> float:
    """Convert power in dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert power in milliwatts to dBm (-inf mW maps to -200 dBm)."""
    if mw <= 0.0:
        return -200.0
    return 10.0 * math.log10(mw)


@dataclass(frozen=True)
class PhyProfile:
    """Bundle of PHY/MAC timing and reception constants.

    All times are microseconds, powers dBm, rates Mbps.
    """

    name: str
    slot_us: float
    sifs_us: float
    preamble_us: float          # PLCP preamble + header airtime
    cw_min: int                 # DCF minimum contention window (slots)
    cw_max: int
    retry_limit: int
    noise_dbm: float            # thermal noise floor over the channel
    cs_threshold_dbm: float     # energy level that marks the channel busy
    sensitivity_dbm: float      # minimum RSS to lock onto a frame
    tx_power_dbm: float
    data_rate_mbps: float       # rate used for DATA frames
    basic_rate_mbps: float      # rate used for ACK / POLL / FAKE frames
    sinr_thresholds_db: Dict[float, float] = field(default_factory=dict)
    capture_margin_db: float = 10.0   # preamble capture: relock threshold
    signature_us: float = SIGNATURE_US
    rop_symbol_us: float = ROP_SYMBOL_US
    ack_timeout_extra_us: float = 20.0  # grace beyond SIFS+ACK airtime

    @property
    def difs_us(self) -> float:
        """DIFS = SIFS + 2 slots (802.11)."""
        return self.sifs_us + 2.0 * self.slot_us

    # ------------------------------------------------------------------
    # Airtimes
    # ------------------------------------------------------------------
    def bytes_airtime_us(self, nbytes: int, rate_mbps: float) -> float:
        """Airtime of ``nbytes`` at ``rate_mbps``, preamble included."""
        return self.preamble_us + (nbytes * 8.0) / rate_mbps

    def frame_rate_mbps(self, frame: Frame) -> float:
        """PHY rate a frame kind is sent at."""
        if frame.kind is FrameKind.DATA:
            return self.data_rate_mbps
        return self.basic_rate_mbps

    def frame_airtime_us(self, frame: Frame) -> float:
        """Total channel occupation of ``frame`` in microseconds."""
        if frame.kind is FrameKind.TRIGGER:
            # Combined signatures are *added* sample-wise, so a burst is
            # one signature duration followed by the START signature.
            return 2.0 * self.signature_us
        if frame.kind is FrameKind.QUEUE_REPORT:
            return self.rop_symbol_us
        return self.bytes_airtime_us(frame.mac_bytes(), self.frame_rate_mbps(frame))

    def ack_airtime_us(self) -> float:
        from .packet import ACK_BYTES
        return self.bytes_airtime_us(ACK_BYTES, self.basic_rate_mbps)

    def ack_timeout_us(self) -> float:
        """How long a sender waits for an ACK before declaring loss."""
        return self.sifs_us + self.ack_airtime_us() + self.ack_timeout_extra_us

    # ------------------------------------------------------------------
    # Reception
    # ------------------------------------------------------------------
    def sinr_threshold_db(self, rate_mbps: float) -> float:
        """Minimum SINR (dB) to decode a frame at ``rate_mbps``."""
        if rate_mbps in self.sinr_thresholds_db:
            return self.sinr_thresholds_db[rate_mbps]
        # Fall back to the nearest configured rate at or above the
        # requested one; conservative for unconfigured rates.
        higher = [r for r in self.sinr_thresholds_db if r >= rate_mbps]
        if higher:
            return self.sinr_thresholds_db[min(higher)]
        return max(self.sinr_thresholds_db.values())

    def frame_sinr_threshold_db(self, frame: Frame) -> float:
        """Decode threshold for a frame, with correlation gain for triggers."""
        base = self.sinr_threshold_db(self.frame_rate_mbps(frame))
        if frame.kind is FrameKind.TRIGGER:
            return base - SIGNATURE_CORRELATION_GAIN_DB
        return base

    def noise_mw(self) -> float:
        return dbm_to_mw(self.noise_dbm)


# 802.11g OFDM SINR thresholds (dB), per-rate, in the spirit of the
# ns-3 NIST/YANS error models evaluated by Pei & Henderson.
_DOT11G_THRESHOLDS = {
    6.0: 5.0,
    9.0: 6.0,
    12.0: 8.0,
    18.0: 10.5,
    24.0: 13.5,
    36.0: 17.5,
    48.0: 21.5,
    54.0: 24.0,
}

DOT11G = PhyProfile(
    name="802.11g",
    slot_us=9.0,
    sifs_us=10.0,
    preamble_us=20.0,
    cw_min=15,
    cw_max=1023,
    retry_limit=7,
    noise_dbm=-94.0,           # -101 dBm thermal over 20 MHz + 7 dB NF
    cs_threshold_dbm=-82.0,    # 802.11 energy-detect / preamble CS level
    sensitivity_dbm=-88.0,
    tx_power_dbm=15.0,
    data_rate_mbps=12.0,       # paper Sec. 4.2.1
    basic_rate_mbps=6.0,
    sinr_thresholds_db=dict(_DOT11G_THRESHOLDS),
)

# USRP/GNURadio profile: the dominant cost on the testbed is the
# host<->USB<->USRP turnaround (every MAC action crosses user space),
# modelled as a very large preamble and slot time; rates are the
# effective throughput of the GNURadio BPSK PHY with its software
# framing.  Constants are calibrated so saturated DCF lands in the
# single-digit-Kbps regime of Table 2.
USRP = PhyProfile(
    name="usrp-gnuradio",
    slot_us=20_000.0,          # host-limited CSMA slot (20 ms)
    sifs_us=20_000.0,
    preamble_us=150_000.0,     # per-frame host + USB + framing latency
    cw_min=31,
    cw_max=255,
    retry_limit=5,
    noise_dbm=-90.0,
    cs_threshold_dbm=-80.0,
    sensitivity_dbm=-85.0,
    tx_power_dbm=10.0,
    data_rate_mbps=0.02,
    basic_rate_mbps=0.01,
    sinr_thresholds_db={0.01: 4.0, 0.02: 6.0},
    signature_us=2_000.0,      # 127 chips at the USRP's low chip rate
    ack_timeout_extra_us=40_000.0,
)


# The paper's large-scale substrate is ns-3; its YansWifiPhy declares
# the channel busy on *energy detection* near the noise floor
# (CcaMode1Threshold default -99 dBm), a far bigger carrier-sense
# footprint than the -82 dBm preamble-detect level of commodity
# hardware.  The Fig. 14 random experiment uses this profile to match
# the substrate the paper ran on; -96 dBm accounts for our medium's
# energy floor while keeping the wide ns-3-style footprint.
import dataclasses as _dataclasses

DOT11G_NS3 = _dataclasses.replace(
    DOT11G, name="802.11g-ns3", cs_threshold_dbm=-96.0,
)


def profile_by_name(name: str) -> PhyProfile:
    """Look up a built-in profile (``802.11g`` or ``usrp-gnuradio``)."""
    for profile in (DOT11G, USRP):
        if profile.name == name:
            return profile
    raise KeyError(f"unknown PHY profile {name!r}")
