"""Beacon-based interference measurement (Sec. 5 discussion).

The central server's RSS map has to come from somewhere, and under
mobility it has to be refreshed.  The paper adopts the
measurement-campaign idea it cites (Kashyap et al.): every node
broadcasts a beacon while the others record its RSS.  Done naively
this costs ``N`` beacon slots; "since non-interfering nodes could
send the beacons concurrently, the time complexity could be reduced
to t(delta + 1), where delta is the maximum degree of the two-hop
connected graph".

:func:`beacon_rounds` implements exactly that: greedy colouring of
the two-hop hearing graph, one colour class (a set of mutually
non-conflicting beaconers) per round.  Two nodes may share a round
only if no third node hears both — otherwise their beacons collide at
the common observer and the measurement is lost.

:func:`campaign_overhead_fraction` reproduces the paper's arithmetic:
with delta = 40 and 40 µs beacons against the 125.1 ms walking
coherence time, the overhead is ~1.3 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

import networkx as nx
import numpy as np


def two_hop_graph(hearing: nx.Graph) -> nx.Graph:
    """Connect any two vertices within two hops of ``hearing``."""
    expanded = nx.Graph()
    expanded.add_nodes_from(hearing.nodes)
    for node in hearing.nodes:
        reach: Set = set(hearing.neighbors(node))
        for neighbour in list(reach):
            reach.update(hearing.neighbors(neighbour))
        reach.discard(node)
        for other in reach:
            expanded.add_edge(node, other)
    return expanded


def beacon_rounds(hearing: nx.Graph) -> List[List[int]]:
    """Greedy-colour the two-hop graph into concurrent beacon rounds.

    Returns rounds in colour order; every node appears exactly once.
    The number of rounds is at most ``delta + 1`` (greedy colouring
    bound), matching the paper's ``t(delta + 1)`` campaign length.
    """
    expanded = two_hop_graph(hearing)
    colouring = nx.coloring.greedy_color(expanded, strategy="largest_first")
    n_rounds = max(colouring.values(), default=-1) + 1
    rounds: List[List[int]] = [[] for _ in range(n_rounds)]
    for node, colour in colouring.items():
        rounds[colour].append(node)
    for round_nodes in rounds:
        round_nodes.sort()
    return rounds


def validate_rounds(hearing: nx.Graph, rounds: Sequence[Sequence[int]]) -> None:
    """Raise ``ValueError`` if any round risks beacon collisions."""
    expanded = two_hop_graph(hearing)
    seen: Set = set()
    for index, round_nodes in enumerate(rounds):
        for i, a in enumerate(round_nodes):
            if a in seen:
                raise ValueError(f"node {a} beacons twice")
            seen.add(a)
            for b in round_nodes[i + 1:]:
                if expanded.has_edge(a, b):
                    raise ValueError(
                        f"round {index}: {a} and {b} share an observer"
                    )
    missing = set(hearing.nodes) - seen
    if missing:
        raise ValueError(f"nodes never beacon: {sorted(missing)}")


def campaign_overhead_fraction(hearing: nx.Graph,
                               beacon_us: float = 40.0,
                               coherence_us: float = 125_100.0) -> float:
    """Fraction of airtime a periodic refresh campaign costs.

    The paper computes 1.3 % for delta = 40 at walking coherence.
    """
    rounds = beacon_rounds(hearing)
    return len(rounds) * beacon_us / coherence_us


@dataclass
class ObservationStore:
    """Accumulates (tx, rx) -> RSS observations from one campaign."""

    observations: Dict[int, Dict[int, float]] = field(default_factory=dict)

    def record(self, observer: int, beaconer: int, rss_dbm: float) -> None:
        self.observations.setdefault(observer, {})[beaconer] = rss_dbm

    def count(self) -> int:
        return sum(len(v) for v in self.observations.values())

    def apply_to_matrix(self, matrix: "np.ndarray") -> int:
        """Write observations into an RSS matrix (tx row, rx column).

        Pairs never observed keep their previous value.  Returns the
        number of entries updated.
        """
        updated = 0
        for observer, heard in self.observations.items():
            for beaconer, rss in heard.items():
                matrix[beaconer][observer] = rss
                updated += 1
        return updated
