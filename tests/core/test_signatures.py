"""Tests for Gold-code signature generation."""

import numpy as np
import pytest

from repro.core.signatures import (SignatureAssigner, gold_family,
                                   lfsr_m_sequence, max_cross_correlation,
                                   periodic_cross_correlation)


@pytest.fixture(scope="module")
def family():
    return gold_family(7)


def test_family_size_matches_paper(family):
    """129 codes of length 127; two reserved; 127 assignable."""
    assert family.family_size == 129
    assert family.length == 127
    assert family.assignable == 127


def test_codes_are_bipolar(family):
    for index in (0, 1, 64, 128):
        code = family.code(index)
        assert set(np.unique(code)) <= {-1.0, 1.0}
        assert len(code) == 127


def test_codes_are_distinct(family):
    seen = {tuple(family.code(i)) for i in range(family.family_size)}
    assert len(seen) == family.family_size


def test_autocorrelation_peak(family):
    code = family.code(10)
    corr = periodic_cross_correlation(code, code)
    assert corr[0] == 127
    assert np.max(np.abs(corr[1:])) <= family.correlation_bound()


def test_three_valued_cross_correlation_bound(family):
    """The preferred-pair property: |cross-corr| <= t(7) = 17."""
    assert family.correlation_bound() == 17
    for a, b in ((0, 1), (2, 77), (5, 128), (40, 41), (1, 100)):
        assert max_cross_correlation(family.code(a), family.code(b)) <= 17


def test_cross_correlation_values_are_three_valued(family):
    values = set(periodic_cross_correlation(family.code(3),
                                            family.code(9)).tolist())
    assert values <= {-1, -17, 15}


def test_other_degrees_available():
    for degree, length in ((5, 31), (6, 63), (9, 511)):
        fam = gold_family(degree)
        assert fam.length == length
        assert fam.family_size == length + 2
        bound = fam.correlation_bound()
        assert max_cross_correlation(fam.code(0), fam.code(1)) <= bound + 16
        # (even-degree families are not strictly three-valued; the
        #  odd-degree ones must meet the bound exactly)
        if degree % 2 == 1:
            assert max_cross_correlation(fam.code(0), fam.code(1)) <= bound


def test_unknown_degree_rejected():
    with pytest.raises(ValueError):
        gold_family(8)


def test_lfsr_bad_seed_rejected():
    with pytest.raises(ValueError):
        lfsr_m_sequence(7, (7, 3), seed=0)
    with pytest.raises(ValueError):
        lfsr_m_sequence(7, (7, 3), seed=1 << 7)


def test_lfsr_nonprimitive_taps_rejected():
    # x^7 + x^1 + ... pick taps known not to be primitive: (7, 2) is
    # not a primitive trinomial exponent pair for degree 7.
    with pytest.raises(ValueError):
        lfsr_m_sequence(7, (7, 2))


def test_m_sequence_balance(family):
    """An m-sequence of length 2^n - 1 has one more 1 than 0."""
    seq = lfsr_m_sequence(7, (7, 3))
    assert int(seq.sum()) in (63, 64)


def test_reserved_codes(family):
    assert np.array_equal(family.start_code, family.code(0))
    assert np.array_equal(family.rop_code, family.code(1))
    assert np.array_equal(family.node_code(0), family.code(2))


def test_node_code_bounds(family):
    with pytest.raises(IndexError):
        family.node_code(127)
    with pytest.raises(IndexError):
        family.node_code(-1)


class TestAssigner:
    def test_idempotent_assignment(self, family):
        assigner = SignatureAssigner(family)
        slot_a = assigner.assign(42)
        slot_b = assigner.assign(42)
        assert slot_a == slot_b
        assert assigner.assign(43) != slot_a

    def test_signature_of_returns_node_code(self, family):
        assigner = SignatureAssigner(family)
        sig = assigner.signature_of(10)
        assert np.array_equal(sig, family.node_code(assigner.assigned[10]))

    def test_domain_capacity(self, family):
        assigner = SignatureAssigner(family)
        for node in range(127):
            assigner.assign(node)
        with pytest.raises(RuntimeError):
            assigner.assign(999)
