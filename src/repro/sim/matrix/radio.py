"""Matrix-backend radio: per-node state over medium-owned matrices.

The reference :class:`~repro.sim.radio.Radio` owns a reception dict
and does all SINR/carrier-sense bookkeeping itself.  Here that
bookkeeping lives in the :class:`~repro.sim.matrix.medium.MatrixMedium`
matrices; the radio keeps only what is genuinely per-node and
order-observable — the frame lock, the carrier-sense edge detector,
the own-transmission handle and the sleep window — and exposes the
same MAC-facing API (``transmit``, ``channel_busy``, ``sleep_until``,
``total_incoming_mw``, the state properties).

``edge_lock`` / ``edge_cs`` / ``edge_deliver`` are the medium's
per-radio entry points during an energy edge; each replicates the
corresponding branch of the reference radio verbatim, including the
float arithmetic and the telemetry calls.
"""

from __future__ import annotations

from typing import Optional, Tuple, TYPE_CHECKING

from ..medium import Transmission
from ..packet import Frame
from ..phy import dbm_to_mw, mw_to_dbm
from ..radio import Radio

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .medium import MatrixMedium


class MatrixRadio(Radio):
    """Half-duplex radio whose energy bookkeeping is medium-batched."""

    def __init__(self, node_id: int, medium: "MatrixMedium"):
        # (transmission, rss_mw) of the frame the receiver is locked
        # onto; the medium matrices hold everything else about it.
        self._mx_lock: Optional[Tuple[Transmission, float]] = None
        #: Column index in the medium's matrices (assigned on build).
        self.col = -1
        self._mx_med = medium
        super().__init__(node_id, medium)
        self._capture_factor = dbm_to_mw(self.profile.capture_margin_db)

    # ------------------------------------------------------------------
    # State queries (MAC-facing API of the reference radio)
    # ------------------------------------------------------------------
    @property
    def receiving(self) -> bool:
        return self._mx_lock is not None

    @property
    def mx_lock(self) -> Optional[Tuple[Transmission, float]]:
        """Current (transmission, rss_mw) lock, for the medium's
        delivery walk."""
        return self._mx_lock

    @property
    def cs_busy(self) -> bool:
        """Maintained carrier-sense verdict (for the medium's mirror)."""
        return self._cs_busy

    @property
    def sleep_deadline(self) -> float:
        return self._sleep_until

    def total_incoming_mw(self) -> float:
        return self._mx_med.total_at(self.col)

    def channel_busy(self) -> bool:
        # ``_cs_busy`` is re-derived on every energy edge and own-TX
        # transition, so between events it *is* the reference verdict
        # ``own or total >= cs`` — an O(1) read instead of the
        # reference engine's reception-dict scan.  This is what keeps
        # per-slot DCF backoff ticks cheap on this backend.
        if self._own_tx is not None:
            return True
        return self._cs_busy

    def sleep_until(self, wake_time: float) -> float:
        if self._own_tx is not None:
            return 0.0
        med = self._mx_med
        now = med.sim.now
        previous = max(self._sleep_until, now)
        if wake_time <= previous:
            return 0.0
        granted = wake_time - previous
        self._sleep_until = wake_time
        self.total_sleep_us += granted
        med.total_at(self.col)  # force a build so the column is valid
        med.note_sleep(self.col, wake_time)
        if self._mx_lock is not None:
            med.mark_reception_lost(self._mx_lock[0].uid, self.col)
            self._mx_lock = None
        return granted

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------
    def transmit(self, frame: Frame) -> Transmission:
        if self._own_tx is not None:
            raise RuntimeError(f"node {self.node_id} is already transmitting")
        med = self._mx_med
        med.total_at(self.col)  # force a build so the column is valid
        if self._mx_lock is not None:
            # Switching to TX mid-reception destroys the reception.
            med.mark_reception_lost(self._mx_lock[0].uid, self.col)
            self._mx_lock = None
        # Anything arriving while we transmit is unhearable.
        med.mark_all_receptions_lost(self.col)
        tx = med.transmit(self.node_id, frame)
        self._own_tx = tx
        med.note_transmitting(self.col, True)
        self.edge_cs(0.0)  # transmitting forces busy regardless of total
        return tx

    def on_own_tx_end(self, tx: Transmission) -> None:
        self._own_tx = None
        med = self._mx_med
        med.note_transmitting(self.col, False)
        self.edge_cs(med.total_at(self.col))
        if self.mac is not None:
            self.mac.on_tx_end(tx.frame)

    # ------------------------------------------------------------------
    # Energy edges (driven by MatrixMedium; the reference entry points
    # must never be reached on this backend)
    # ------------------------------------------------------------------
    def on_energy_start(self, tx: Transmission, rss_dbm: float,
                        rss_mw: float) -> None:  # pragma: no cover
        raise RuntimeError("matrix radios receive energy via edge_* hooks")

    def on_energy_end(self, tx: Transmission, rss_dbm: float,
                      rss_mw: float) -> None:  # pragma: no cover
        raise RuntimeError("matrix radios receive energy via edge_* hooks")

    def edge_lock(self, tx: Transmission, rss_dbm: float,
                  rss_mw: float) -> None:
        """Lock attempt at a start edge (``Radio._maybe_lock``).

        The medium pre-filters what the reference radio re-checks per
        frame: only non-interrupted receivers on the static
        RSS >= sensitivity sublist get here.
        """
        lock = self._mx_lock
        if lock is None:
            self._mx_lock = (tx, rss_mw)
            return
        locked_tx, locked_rss_mw = lock
        in_preamble = (
            self._mx_med.sim.now - locked_tx.start <= self.profile.preamble_us
        )
        if in_preamble and rss_mw >= locked_rss_mw * self._capture_factor:
            # Preamble capture: the old frame is lost.
            self._mx_med.mark_reception_lost(locked_tx.uid, self.col)
            self._mx_lock = (tx, rss_mw)

    def edge_cs(self, total_mw: float) -> None:
        """Carrier-sense edge detection (``Radio._update_cs``)."""
        if self._own_tx is not None:
            busy = True
        else:
            busy = total_mw >= self._cs_mw
        if busy == self._cs_busy:
            return
        self._cs_busy = busy
        self._mx_med.note_cs(self.col, busy)
        mac = self.mac
        if mac is None:
            return
        if busy:
            mac.on_channel_busy()
        else:
            mac.on_channel_idle()

    def edge_deliver(self, tx: Transmission, rss_dbm: float, rss_mw: float,
                     interrupted: bool, max_interference_mw: float) -> None:
        """Locked-frame delivery at an end edge (``Radio._deliver``).

        TRIGGER / QUEUE_REPORT dispatch happens in the medium (those
        frames are never locked); everything else is observable only
        through the lock, so unlocked receivers return immediately.
        """
        if self.mac is None:
            # Reference quirk preserved: a MAC-less radio's _deliver
            # returns before clearing the lock or touching telemetry.
            return
        lock = self._mx_lock
        if lock is None or lock[0].uid != tx.uid:
            return
        self._mx_lock = None
        frame = tx.frame
        if max_interference_mw >= 0.0:
            min_sinr_db = mw_to_dbm(rss_mw) - mw_to_dbm(
                max_interference_mw + self._noise_mw)
        else:
            min_sinr_db = float("inf")
        threshold = self.profile.frame_sinr_threshold_db(frame)
        ok = (not interrupted) and min_sinr_db >= threshold
        tel = self._trace
        if tel.enabled:
            now = self._mx_med.sim.now
            if ok:
                tel.frame_rx(now, self.node_id, frame)
            else:
                reason = "tx_busy" if interrupted else "sinr"
                tel.frame_drop(now, self.node_id, frame, reason)
                if reason == "sinr":
                    # A locked frame whose SINR dipped below threshold
                    # is the simulator's collision.
                    tel.metrics.counter("radio.collisions").inc()
        mac = self.mac
        if mac is None:  # pragma: no cover - medium already filtered
            return
        if ok:
            mac.on_receive(frame, rss_dbm)
        else:
            mac.on_receive_failed(frame, rss_dbm)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "tx" if self.transmitting else (
            "rx" if self.receiving else "idle")
        return f"MatrixRadio(node={self.node_id}, col={self.col}, {state})"
