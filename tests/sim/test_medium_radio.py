"""Integration tests for the medium + radio reception model."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.medium import Medium
from repro.sim.packet import Frame, FrameKind, data_frame
from repro.sim.phy import DOT11G
from repro.sim.radio import Radio


class RecordingMac:
    """Minimal MAC stub recording every radio callback."""

    def __init__(self):
        self.received = []
        self.failed = []
        self.triggers = []
        self.reports = []
        self.busy_edges = 0
        self.idle_edges = 0
        self.tx_done = []

    def on_receive(self, frame, rss_dbm):
        self.received.append((frame, rss_dbm))

    def on_receive_failed(self, frame, rss_dbm):
        self.failed.append((frame, rss_dbm))

    def on_trigger(self, frame, sinr_db, rss_dbm, overlapping):
        self.triggers.append((frame, sinr_db, overlapping))

    def on_queue_report(self, frame, rss_dbm):
        self.reports.append((frame, rss_dbm))

    def on_channel_busy(self):
        self.busy_edges += 1

    def on_channel_idle(self):
        self.idle_edges += 1

    def on_tx_end(self, frame):
        self.tx_done.append(frame)


def build(rss_pairs, n_nodes=3, profile=DOT11G):
    """Medium with explicit pairwise RSS (default: unreachable)."""
    sim = Simulator(seed=1)

    def rss(tx, rx):
        return rss_pairs.get((tx, rx), rss_pairs.get((rx, tx), -200.0))

    medium = Medium(sim, profile, rss)
    radios = {}
    macs = {}
    for node in range(n_nodes):
        radio = Radio(node, medium)
        mac = RecordingMac()
        radio.mac = mac
        radios[node] = radio
        macs[node] = mac
    return sim, medium, radios, macs


def test_clean_reception_succeeds():
    sim, medium, radios, macs = build({(0, 1): -50.0})
    frame = data_frame(0, 1, 512, 0, 0.0)
    radios[0].transmit(frame)
    sim.run(until=1_000.0)
    assert [f for f, _ in macs[1].received] == [frame]
    assert macs[1].failed == []
    assert macs[0].tx_done == [frame]


def test_below_sensitivity_not_locked():
    sim, medium, radios, macs = build({(0, 1): -92.0})  # < -88 sensitivity
    radios[0].transmit(data_frame(0, 1, 512, 0, 0.0))
    sim.run(until=1_000.0)
    assert macs[1].received == []
    assert macs[1].failed == []


def test_collision_destroys_comparable_frames():
    # Both senders at similar power at the receiver: neither decodes.
    sim, medium, radios, macs = build({(0, 2): -60.0, (1, 2): -58.0})
    radios[0].transmit(data_frame(0, 2, 512, 0, 0.0))
    radios[1].transmit(data_frame(1, 2, 512, 0, 0.0))
    sim.run(until=1_000.0)
    assert macs[2].received == []
    assert len(macs[2].failed) == 1  # the locked one reports failure


def test_strong_interferer_mid_frame_kills_reception():
    sim, medium, radios, macs = build({(0, 1): -60.0, (2, 1): -55.0})
    radios[0].transmit(data_frame(0, 1, 512, 0, 0.0))
    # Interferer starts mid-frame (hidden terminal behaviour).
    sim.schedule(100.0, radios[2].transmit, data_frame(2, 0, 512, 1, 0.0))
    sim.run(until=2_000.0)
    assert macs[1].received == []
    assert len(macs[1].failed) == 1


def test_weak_interferer_is_survived():
    sim, medium, radios, macs = build({(0, 1): -50.0, (2, 1): -75.0})
    radios[0].transmit(data_frame(0, 1, 512, 0, 0.0))
    sim.schedule(50.0, radios[2].transmit, data_frame(2, 0, 512, 1, 0.0))
    sim.run(until=2_000.0)
    assert len(macs[1].received) == 1


def test_preamble_capture_steals_lock():
    import dataclasses
    profile = dataclasses.replace(DOT11G, capture_margin_db=10.0)
    sim, medium, radios, macs = build(
        {(0, 2): -70.0, (1, 2): -50.0}, profile=profile)
    radios[0].transmit(data_frame(0, 2, 512, 0, 0.0))
    # Much stronger frame arrives within the first frame's preamble.
    sim.schedule(5.0, radios[1].transmit, data_frame(1, 2, 512, 1, 0.0))
    sim.run(until=2_000.0)
    received = [f.src for f, _ in macs[2].received]
    assert received == [1]


def test_half_duplex_transmitter_hears_nothing():
    sim, medium, radios, macs = build({(0, 1): -50.0, (1, 0): -50.0})
    radios[0].transmit(data_frame(0, 1, 512, 0, 0.0))
    sim.schedule(10.0, radios[1].transmit, data_frame(1, 0, 512, 1, 0.0))
    sim.run(until=2_000.0)
    # Node 1 was transmitting while node 0's frame was on air -> lost.
    assert macs[1].received == []


def test_carrier_sense_edges():
    sim, medium, radios, macs = build({(0, 1): -70.0})  # above CS -82
    radios[0].transmit(data_frame(0, 9, 512, 0, 0.0))
    sim.run(until=2_000.0)
    assert macs[1].busy_edges == 1
    assert macs[1].idle_edges == 1
    assert not radios[1].channel_busy()


def test_energy_below_cs_threshold_not_busy():
    sim, medium, radios, macs = build({(0, 1): -86.0})  # < -82 CS
    radios[0].transmit(data_frame(0, 9, 512, 0, 0.0))
    sim.run(until=2_000.0)
    assert macs[1].busy_edges == 0


def test_trigger_detected_through_data_collision():
    # A trigger frame 20 dB below a data frame still reaches the MAC
    # with its SINR (correlation gain is applied by the model layer).
    sim, medium, radios, macs = build({(0, 1): -50.0, (2, 1): -70.0})
    radios[0].transmit(data_frame(0, 1, 512, 0, 0.0))
    trigger = Frame(kind=FrameKind.TRIGGER, src=2, dst=None,
                    meta={"targets": frozenset({1}), "slot": 0})
    sim.schedule(50.0, radios[2].transmit, trigger)
    sim.run(until=2_000.0)
    assert len(macs[1].triggers) == 1
    _, sinr, _ = macs[1].triggers[0]
    assert sinr == pytest.approx(-20.0, abs=1.0)
    # The data frame still decodes (trigger is 20 dB down).
    assert len(macs[1].received) == 1


def test_overlapping_signature_count():
    sim, medium, radios, macs = build(
        {(0, 2): -60.0, (1, 2): -62.0}, n_nodes=3)
    t1 = Frame(kind=FrameKind.TRIGGER, src=0, dst=None,
               meta={"targets": frozenset({5, 6}), "slot": 0})
    t2 = Frame(kind=FrameKind.TRIGGER, src=1, dst=None,
               meta={"targets": frozenset({7, 8, 9}), "slot": 0})
    radios[0].transmit(t1)
    radios[1].transmit(t2)
    sim.run(until=100.0)
    assert len(macs[2].triggers) == 2
    counts = {f.src: overlap for f, _, overlap in macs[2].triggers}
    assert counts[0] == 5  # 2 + 3 comparable-power signatures
    assert counts[1] == 5


def test_far_weaker_trigger_not_counted_in_overlap():
    sim, medium, radios, macs = build(
        {(0, 2): -50.0, (1, 2): -75.0}, n_nodes=3)  # 25 dB apart
    t1 = Frame(kind=FrameKind.TRIGGER, src=0, dst=None,
               meta={"targets": frozenset({5}), "slot": 0})
    t2 = Frame(kind=FrameKind.TRIGGER, src=1, dst=None,
               meta={"targets": frozenset({6}), "slot": 0})
    radios[0].transmit(t1)
    radios[1].transmit(t2)
    sim.run(until=100.0)
    counts = {f.src: overlap for f, _, overlap in macs[2].triggers}
    assert counts[0] == 1  # the weak one is negligible to the strong
    assert counts[1] == 2  # the strong one dominates the weak


def test_queue_reports_delivered_concurrently():
    sim, medium, radios, macs = build(
        {(0, 2): -50.0, (1, 2): -55.0}, n_nodes=3)
    for src, sub in ((0, 0), (1, 1)):
        report = Frame(kind=FrameKind.QUEUE_REPORT, src=src, dst=2,
                       meta={"queue_len": 5, "subchannel": sub})
        radios[src].transmit(report)
    sim.run(until=100.0)
    assert len(macs[2].reports) == 2


def test_transmit_while_transmitting_raises():
    sim, medium, radios, macs = build({(0, 1): -50.0})
    radios[0].transmit(data_frame(0, 1, 512, 0, 0.0))
    with pytest.raises(RuntimeError):
        radios[0].transmit(data_frame(0, 1, 512, 1, 0.0))


def test_duplicate_radio_registration_rejected():
    sim, medium, radios, macs = build({})
    with pytest.raises(ValueError):
        Radio(0, medium)
