"""DOM2xx — the import-contract checker.

The allowed-dependency DAG between ``repro.*`` packages lives in
``[tool.dominolint.layers]`` in ``pyproject.toml``; DESIGN.md explains
why each edge exists.  An import edge missing from the table is DOM201;
a package missing from the table entirely is DOM202 (new packages must
declare their layer in the same diff that creates them).

``if TYPE_CHECKING:`` imports are exempt — they never execute, so they
cannot create a runtime dependency cycle or layering leak; they exist
precisely so annotations can reference upper-layer types.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from .config import Config
from .findings import Finding


def _is_type_checking_test(test: ast.AST) -> bool:
    """``TYPE_CHECKING`` or ``typing.TYPE_CHECKING`` as an if-test."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _resolve_relative(module: str, is_package: bool, level: int,
                      target: Optional[str]) -> Optional[str]:
    """Absolute module for a ``from ... import`` with ``level`` dots.

    ``module`` is the importing module's dotted name (``__init__``
    already stripped, so a package's ``__init__`` carries the package
    name itself — hence ``is_package``).  Returns ``None`` when the
    relative import escapes the tree.
    """
    if level == 0:
        return target
    # Relative imports resolve against the importer's __package__: the
    # module's own package for one dot, one component up per extra dot.
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    for _ in range(level - 1):
        if not parts:
            return None
        parts = parts[:-1]
    if target:
        parts = [*parts, *target.split(".")]
    return ".".join(parts) if parts else None


class _LayeringVisitor(ast.NodeVisitor):
    def __init__(self, config: Config, path: str, module: str,
                 is_package: bool):
        self.config = config
        self.path = path
        self.module = module
        self.is_package = is_package
        self.package = config.package_of(module)
        allowed = config.layers.get(self.package, ())
        self.allow_all = "*" in allowed
        # A package may always import itself and the distribution root
        # (the bare ``repro`` namespace re-exports nothing heavy).
        self.allowed = {*allowed, self.package, module.split(".")[0]}
        self.findings: List[Finding] = []
        self._type_checking_depth = 0

    # -- TYPE_CHECKING exemption ----------------------------------------
    def visit_If(self, node: ast.If) -> None:
        if _is_type_checking_test(node.test):
            self._type_checking_depth += 1
            for child in node.body:
                self.visit(child)
            self._type_checking_depth -= 1
            for child in node.orelse:
                self.visit(child)
        else:
            self.generic_visit(node)

    # -- imports ---------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check_target(node, alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = _resolve_relative(self.module, self.is_package,
                                 node.level, node.module)
        if base is None:
            return
        root = self.module.split(".")[0]
        if base != root and not base.startswith(root + "."):
            return  # external dependency; not a layering question
        for alias in node.names:
            # ``from repro import telemetry`` imports a *subpackage*:
            # resolving ``base.name`` instead of the bare base catches
            # the real edge.  For attribute imports
            # (``from .engine import Simulator``) the extra leaf is
            # harmless — the package mapping is prefix-based.
            self._check_target(node, f"{base}.{alias.name}")

    def _check_target(self, node: ast.AST, target: str) -> None:
        root = self.module.split(".")[0]
        if target != root and not target.startswith(root + "."):
            return
        if self._type_checking_depth > 0:
            return
        if target == root:
            return  # the bare namespace package
        target_pkg = self.config.package_of(target)
        if target_pkg == self.package or self.allow_all:
            return
        if target_pkg not in self.allowed:
            self.findings.append(Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule="DOM201",
                message=(
                    f"layering violation: {self.package} may not import "
                    f"{target_pkg} (allowed: "
                    f"{', '.join(sorted(self.allowed - {self.package, root})) or 'nothing'}); "
                    f"add the edge to [tool.dominolint.layers] only with "
                    f"a DESIGN.md rationale"
                ),
            ))


def check_layering(tree: ast.AST, path: str, module: str,
                   is_package: bool, config: Config) -> List[Finding]:
    """All DOM2xx findings for one first-party module."""
    package = config.package_of(module)
    if package not in config.layers:
        return [Finding(
            path=path, line=1, col=0, rule="DOM202",
            message=(
                f"package {package} is not declared in "
                f"[tool.dominolint.layers]; every repro package must "
                f"state which layers it may depend on"
            ),
        )]
    visitor = _LayeringVisitor(config, path, module, is_package)
    visitor.visit(tree)
    return visitor.findings
