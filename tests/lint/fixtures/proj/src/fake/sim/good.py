"""Compliant sim-layer module: every determinism rule satisfied."""

import random


def pick(rng: random.Random, values):
    return rng.choice(sorted(values))


def drain(members: set):
    return [item for item in sorted(members)]


def due(now: float, deadline: float, eps: float = 1e-9) -> bool:
    return abs(now - deadline) <= eps
