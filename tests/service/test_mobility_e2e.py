"""Mobility end to end: drifting node -> conflict delta -> revision.

A node walking across a T(10, 3) deployment perturbs its RSS row and
column step by step; each step must surface as a conflict-graph delta
confined to the node's links and a fresh ``sched_revision`` trace
event, with the incrementally maintained graph staying equal to a
from-scratch rebuild (and every revision digest oracle-checked).
"""

from repro import telemetry
from repro.service import (ControllerService, IncrementalController,
                           NetworkState, ServiceConfig, mobility_events)
from repro.topology.builder import random_t_topology
from repro.topology.conflict_graph import build_conflict_graph
from repro.topology.mobility import linear_drift


class TestLinearDrift:
    def test_drift_moves_node_and_refreshes_matrix(self):
        topology = random_t_topology(4, 2, seed=0)
        trace = topology.trace
        before = trace.rss_dbm.copy()
        start = trace.positions[1]
        steps = list(linear_drift(trace, 1, (start[0] + 100.0, start[1]),
                                  steps=4))
        assert [s for s, _ in steps] == [1, 2, 3, 4]
        assert trace.positions[1][0] != start[0]
        assert (trace.rss_dbm[1, :] != before[1, :]).any()
        assert (trace.rss_dbm[:, 1] != before[:, 1]).any()
        # Rows of nodes that did not move only change toward node 1.
        untouched = [i for i in range(trace.n_nodes) if i != 1]
        for i in untouched:
            for j in untouched:
                assert trace.rss_dbm[i, j] == before[i, j]


class TestMobilityPipeline:
    def test_drift_to_revision_with_trace_events(self):
        topology = random_t_topology(10, 3, seed=2)
        events = mobility_events(topology.trace, node=1,
                                 to_pos=(400.0, 400.0), steps=10,
                                 interval_us=4_000.0)
        assert len(events) == 10

        recorder = telemetry.activate()
        try:
            engine = IncrementalController(
                NetworkState.from_topology(topology), ServiceConfig())
            service = ControllerService(engine, check_every=1)
            stats = service.run_events(events)
        finally:
            telemetry.deactivate()

        # One epoch per step (4 ms gaps > the 2 ms debounce window).
        assert stats.revisions == 10
        assert stats.oracle_checks == 10

        # Every epoch's dirty region is exactly the drifting node's
        # links, and the drift genuinely flipped conflict edges at
        # some point along the walk.
        assert all(r.dirty_links == 2 for r in service.revisions)
        fresh = build_conflict_graph(engine.imap, engine.state.links)
        assert (set(map(frozenset, engine.graph.edges))
                == set(map(frozenset, fresh.edges)))
        assert engine.conflict_checks > 0

        # sched_revision trace events came out with the right shape.
        records = [r for r in recorder.records()
                   if r["ev"] == "sched_revision"]
        assert len(records) == 10
        versions = [r["version"] for r in records]
        assert versions == sorted(versions)
        by_version = {r.version: r for r in service.revisions}
        for record in records:
            revision = by_version[record["version"]]
            assert record["digest"] == revision.trace_digest
            assert record["dirty"] == revision.dirty_links == 2
            assert record["events"] == 1
            assert record["full"] is False
            assert record["t"] == revision.t_us

    def test_mobility_does_not_perturb_caller_trace(self):
        topology = random_t_topology(4, 2, seed=0)
        before = topology.trace.rss_dbm.copy()
        mobility_events(topology.trace, node=1, to_pos=(0.0, 0.0),
                        steps=3, interval_us=1_000.0)
        assert (topology.trace.rss_dbm == before).all()
