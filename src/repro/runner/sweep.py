"""Sweep execution: serial in-process or fan-out over a process pool.

``run_sweep(points, workers=N)`` executes every
:class:`~repro.runner.points.ExperimentPoint` and returns a
:class:`~repro.runner.points.SweepResult` in submission order.
``workers=0`` (the default) runs in-process; ``workers >= 1`` fans out
over a ``ProcessPoolExecutor`` using the ``fork`` start method where
available (simulation state is rebuilt per point either way, so fork
inherits nothing that matters).

Each worker reduces its run to plain data (:class:`PointResult`)
because ``RunResult`` holds live MACs and the simulator.  Per-point
telemetry is recorded *inside* the worker — recorders are
process-local, so no cross-process merging of live objects is needed;
the registry snapshot and canonical-trace digest come back with the
point and :meth:`SweepResult.merged_metrics` recombines them.
"""

from __future__ import annotations

import functools
import hashlib
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, List, Sequence

from ..telemetry.jsonl import dumps_record
from .points import (ExperimentPoint, FlowSummary, PointResult, SweepResult,
                     TopologySpec)

__all__ = ["run_point", "run_sweep", "trace_digest"]


def trace_digest(records: Iterable[dict]) -> str:
    """sha256 over the canonical JSONL serialization of a trace."""
    digest = hashlib.sha256()
    for record in records:
        digest.update(dumps_record(record).encode())
        digest.update(b"\n")
    return digest.hexdigest()


def _reduce(point: ExperimentPoint, result, wall_s: float,
            keep_trace: bool) -> PointResult:
    """Collapse a live ``RunResult`` into a picklable ``PointResult``."""
    flows = [
        FlowSummary(flow=flow, packets=record.packets,
                    payload_bytes=record.payload_bytes,
                    total_delay_us=record.total_delay_us,
                    delays_us=list(record.delays_us),
                    mbps=result.recorder.flow_throughput_mbps(
                        flow, point.horizon_us))
        for flow, record in result.recorder.records.items()
    ]
    sim = next(iter(result.macs.values())).sim
    cache = getattr(result.controller, "conversion_cache", None)
    digest = None
    metrics = None
    records = None
    if result.trace is not None:
        records = result.trace.records()
        digest = trace_digest(records)
        metrics = result.trace.metrics.snapshot()
        if not keep_trace:
            records = None
    return PointResult(
        label=point.label, scheme=point.scheme, seed=point.seed,
        horizon_us=point.horizon_us, warmup_us=point.warmup_us,
        aggregate_mbps=result.aggregate_mbps,
        mean_delay_us=result.mean_delay_us,
        fairness=result.fairness,
        flows=flows,
        events_processed=sim.events_processed,
        wall_s=wall_s,
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
        trace_digest=digest, metrics=metrics, trace_records=records)


def run_point(point: ExperimentPoint, trace: bool = False,
              keep_trace: bool = False) -> PointResult:
    """Execute one point in this process (the pool worker entry)."""
    # Imported here, not at module top: the experiment modules import
    # repro.runner to build their sweeps, so a top-level import of
    # repro.experiments.common would be circular.
    from ..experiments.common import run_scheme

    started = time.perf_counter()
    topology = point.topology.build()
    result = run_scheme(
        point.scheme, topology,
        horizon_us=point.horizon_us, warmup_us=point.warmup_us,
        seed=point.seed, trace=True if trace else None,
        **point.run_kwargs)
    return _reduce(point, result, time.perf_counter() - started, keep_trace)


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0])


def run_sweep(points: Sequence[ExperimentPoint], workers: int = 0,
              trace: bool = False, keep_traces: bool = False) -> SweepResult:
    """Run every point; ``workers=0`` serial, else a pool of that size.

    Results come back in submission order regardless of which worker
    finished first, and are bit-identical to a serial run of the same
    points (same seeds, same topology specs — see the determinism
    contract in :mod:`repro.runner.points`).
    """
    points = list(points)
    started = time.perf_counter()
    if workers <= 0:
        results = [run_point(p, trace=trace, keep_trace=keep_traces)
                   for p in points]
    else:
        task = functools.partial(run_point, trace=trace,
                                 keep_trace=keep_traces)
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=_pool_context()) as pool:
            results = list(pool.map(task, points, chunksize=1))
    return SweepResult(points=results, workers=workers,
                       wall_s=time.perf_counter() - started)


def scheme_sweep(schemes: Sequence[str], topology: TopologySpec, *,
                 horizon_us: float, warmup_us: float = 100_000.0,
                 seed: int = 1, label_prefix: str = "",
                 **run_kwargs) -> List[ExperimentPoint]:
    """Convenience: the same topology/traffic across several schemes."""
    return [
        ExperimentPoint(
            scheme=scheme, topology=topology,
            label=f"{label_prefix}{scheme}", seed=seed,
            horizon_us=horizon_us, warmup_us=warmup_us,
            run_kwargs=dict(run_kwargs))
        for scheme in schemes
    ]
