"""Tests for CFP/CoP coexistence (Sec. 5)."""

import pytest

from repro.core import ControllerConfig, build_domino_network
from repro.core.coexistence import (CoexistenceConfig, CoexistencePlanner,
                                    CopOccupancyMeter)
from repro.mac.dcf import DcfMac
from repro.metrics.stats import FlowRecorder
from repro.sim.engine import Simulator
from repro.topology.builder import fig1_topology
from repro.topology.links import Link
from repro.topology.trace import manual_trace
from repro.traffic.udp import SaturatedSource


class TestPlanner:
    def test_cop_grows_with_external_occupancy(self):
        planner = CoexistencePlanner(CoexistenceConfig())
        for _ in range(10):
            planner.observe_cop_busy_fraction(1.0)
        busy_cop = planner.next_cop_us(cfp_us=10_000.0)
        planner2 = CoexistencePlanner(CoexistenceConfig())
        for _ in range(10):
            planner2.observe_cop_busy_fraction(0.0)
        idle_cop = planner2.next_cop_us(cfp_us=10_000.0)
        assert busy_cop > idle_cop
        assert idle_cop == planner2.config.min_cop_us

    def test_cop_bounded(self):
        config = CoexistenceConfig(min_cop_us=500.0, max_cop_us=5_000.0)
        planner = CoexistencePlanner(config)
        planner.observe_cop_busy_fraction(1.0)
        planner.external_occupancy = 1.0
        assert planner.next_cop_us(cfp_us=1e9) == 5_000.0
        planner.external_occupancy = 0.0
        assert planner.next_cop_us(cfp_us=1e9) == 500.0

    def test_smoothing(self):
        planner = CoexistencePlanner(CoexistenceConfig(smoothing=0.5))
        planner.observe_cop_busy_fraction(1.0)
        assert planner.external_occupancy == pytest.approx(0.5)
        planner.observe_cop_busy_fraction(1.0)
        assert planner.external_occupancy == pytest.approx(0.75)

    def test_cfp_off_under_light_traffic(self):
        planner = CoexistencePlanner(CoexistenceConfig(
            light_traffic_demand=3))
        assert not planner.cfp_enabled(0)
        assert not planner.cfp_enabled(3)
        assert planner.cfp_enabled(4)

    def test_disabled_config(self):
        planner = CoexistencePlanner(CoexistenceConfig(enabled=False))
        assert not planner.cfp_enabled(1000)


class TestOccupancyMeter:
    def test_busy_fraction_accounting(self):
        meter = CopOccupancyMeter()
        meter.open(0.0, busy_now=False)
        meter.on_busy(20.0)
        meter.on_idle(60.0)
        meter.on_busy(80.0)
        assert meter.close(100.0) == pytest.approx(0.6)

    def test_opens_busy(self):
        meter = CopOccupancyMeter()
        meter.open(0.0, busy_now=True)
        meter.on_idle(30.0)
        assert meter.close(100.0) == pytest.approx(0.3)

    def test_unopened_is_zero(self):
        assert CopOccupancyMeter().close(10.0) == 0.0

    def test_edges_outside_window_ignored(self):
        meter = CopOccupancyMeter()
        meter.on_busy(5.0)
        meter.on_idle(9.0)
        meter.open(10.0, busy_now=False)
        assert meter.close(20.0) == 0.0


def coexistence_run(horizon_us=600_000.0, seed=1):
    """Fig. 1 DOMINO network plus one external DCF pair in range."""
    topology = fig1_topology()
    # External pair: nodes 6 (sender) / 7 (receiver), audible to all —
    # grow the RSS matrix before any medium is built.
    matrix = topology.trace.rss_dbm
    import numpy as np
    grown = np.full((8, 8), -120.0)
    grown[:6, :6] = matrix[:6, :6]
    for node in range(6):
        grown[6, node] = grown[node, 6] = -70.0   # external CS-couples all
        grown[7, node] = grown[node, 7] = -90.0
    grown[6, 7] = grown[7, 6] = -50.0
    topology.trace.rss_dbm = grown

    sim = Simulator(seed=seed)
    config = ControllerConfig(
        batch_slots=6, demand_cap=6,
        coexistence=CoexistenceConfig(initial_cop_us=3_000.0,
                                      min_cop_us=1_500.0,
                                      max_cop_us=8_000.0),
    )
    net = build_domino_network(sim, topology, config=config)
    # The external pair lives OUTSIDE the DOMINO topology (it is a
    # foreign network): standalone nodes, attached to the same medium,
    # running plain DCF.
    from repro.sim.node import Node, NodeKind
    ext_nodes = (Node(6, NodeKind.AP), Node(7, NodeKind.CLIENT, ap_id=6))
    for node in ext_nodes:
        node.attach(net.medium)
    ext_tx = DcfMac(sim, ext_nodes[0], net.medium)
    ext_rx = DcfMac(sim, ext_nodes[1], net.medium)
    recorder = FlowRecorder(topology.flows + [Link(6, 7)])
    recorder.attach_all(net.macs.values())
    recorder.attach(ext_rx)
    for flow in topology.flows:
        SaturatedSource(sim, net.macs[flow.src], flow.dst).start()
    SaturatedSource(sim, ext_tx, 7).start()
    net.controller.start()
    sim.run(until=horizon_us)
    return net, recorder, ext_tx, horizon_us


def test_coexistence_shares_airtime():
    net, recorder, ext_tx, horizon = coexistence_run()
    external = recorder.flow_throughput_mbps(Link(6, 7), horizon)
    internal = sum(recorder.flow_throughput_mbps(f, horizon)
                   for f in [Link(0, 1), Link(3, 2), Link(4, 5)])
    # The external network gets real service (it would starve to ~0
    # against back-to-back batches) while DOMINO keeps the majority.
    assert external > 0.5
    assert internal > 6.0
    assert len(net.controller.cop_windows) > 5


def test_external_transmissions_mostly_inside_cop():
    net, recorder, ext_tx, horizon = coexistence_run()
    windows = net.controller.cop_windows
    # NAV-stamped DOMINO frames make the external sender defer during
    # CFPs, so its successes concentrate in CoP windows.  We check the
    # controller measured nonzero external occupancy of its CoPs.
    assert net.controller.planner is not None
    assert net.controller.planner.external_occupancy > 0.1


def test_cop_reports_adapt_planner():
    net, recorder, ext_tx, horizon = coexistence_run()
    planner = net.controller.planner
    assert len(planner.history) > 3
    # A saturated external sender keeps the CoP well above its floor.
    assert planner.cop_us > planner.config.min_cop_us


def test_nav_meta_honoured_by_dcf():
    """A DCF station overhearing a NAV-stamped frame defers past the
    frame's own ACK window, to the stamped horizon."""
    trace = manual_trace(3, {(0, 1): -50.0, (0, 2): -70.0, (2, 1): -120.0})
    from repro.sim.medium import Medium
    from repro.sim.node import Network
    from repro.sim.phy import DOT11G
    from repro.sim.packet import data_frame

    sim = Simulator(seed=1)
    network = Network()
    network.add_ap(0)
    network.add_client(1, 0)
    network.add_ap(2)
    medium = Medium(sim, DOT11G, trace.rss_fn())
    network.attach_all(medium)
    listener = DcfMac(sim, network.nodes[2], medium)
    receiver = DcfMac(sim, network.nodes[1], medium)
    frame = data_frame(0, 1, 512, 0, 0.0)
    frame.meta["nav_until"] = 5_000.0
    network.nodes[0].radio.transmit(frame)
    # Give the listener traffic; it must hold until the NAV expires.
    listener.enqueue(data_frame(2, 9, 512, 0, 0.0))
    sim.run(until=4_900.0)
    assert listener.stats.data_tx == 0
    sim.run(until=6_000.0)
    assert listener.stats.data_tx >= 1  # released once the NAV expired
