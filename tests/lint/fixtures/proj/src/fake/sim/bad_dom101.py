"""DOM101 fixture: wall-clock reads inside sim logic."""

import time


def stamp() -> float:
    return time.time()
