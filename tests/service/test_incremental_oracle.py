"""The equality oracle: every incremental revision == from-scratch.

The churn harness drives the online controller through seeded event
streams with ``check_every=1``, so *every* epoch's incremental
revision digest is compared against a full recompute of the same
state.  A single mismatch raises :class:`OracleMismatch` and fails
the test — this is the subsystem's core acceptance criterion.
"""

import networkx as nx
import pytest

from repro.service import (Associate, ChurnConfig, ControllerService,
                           Disassociate, IncrementalController,
                           NetworkState, QueueUpdate, ServiceConfig,
                           churn_events)
from repro.topology.builder import fig7_topology, random_t_topology
from repro.topology.conflict_graph import build_conflict_graph


def run_checked(topology, updates, seed):
    state = NetworkState.from_topology(topology)
    events = churn_events(NetworkState.from_topology(topology),
                          ChurnConfig(updates=updates, seed=seed))
    engine = IncrementalController(state, ServiceConfig())
    service = ControllerService(engine, check_every=1)
    stats = service.run_events(events)
    assert stats.oracle_checks == stats.revisions > 0
    return engine, service, stats


def assert_graph_fresh(engine):
    """The incrementally maintained conflict graph must equal a
    from-scratch build over the final state."""
    fresh = build_conflict_graph(engine.imap, engine.state.links)
    assert set(engine.graph.nodes) == set(fresh.nodes)
    assert (set(map(frozenset, engine.graph.edges))
            == set(map(frozenset, fresh.edges)))


class TestChurnOracle:
    def test_fig7_churn_every_epoch_checked(self):
        engine, service, stats = run_checked(fig7_topology(),
                                             updates=500, seed=3)
        assert stats.events == 500
        assert_graph_fresh(engine)
        versions = [r.version for r in service.revisions]
        assert versions == list(range(1, len(versions) + 1))

    def test_forty_node_churn_every_epoch_checked(self):
        engine, service, stats = run_checked(random_t_topology(10, 3, seed=2),
                                             updates=1500, seed=11)
        assert engine.state.n_nodes == 40
        assert stats.events == 1500
        assert_graph_fresh(engine)
        # Churn actually exercised every event kind.
        assert stats.ignored_events < stats.events

    def test_incremental_conflict_checks_stay_sublinear(self):
        """The whole point: per-epoch pair tests must be far below the
        full-rebuild count."""
        engine, service, stats = run_checked(random_t_topology(10, 3, seed=0),
                                             updates=800, seed=5)
        n_links = len(engine.state.links)
        full_per_epoch = n_links * (n_links - 1) // 2
        assert stats.revisions > 0
        # ~50 mixed events per epoch (incl. membership churn dirtying
        # whole clients) still re-tests well under half the pairs a
        # from-scratch rebuild would.
        assert (engine.conflict_checks
                < full_per_epoch * stats.revisions / 2)


class TestMembershipEdgeCases:
    @staticmethod
    def service_for(topology):
        engine = IncrementalController(NetworkState.from_topology(topology),
                                       ServiceConfig())
        return engine, ControllerService(engine, check_every=1)

    def test_leave_and_rejoin_in_one_epoch(self):
        engine, service = self.service_for(fig7_topology())
        service.run_events([
            Disassociate(t_us=0.0, client=1),
            Associate(t_us=10.0, client=1, ap=0,
                      rss_to={0: -40.0}, rss_from={0: -41.0}),
        ])
        assert 1 in engine.state.clients
        assert_graph_fresh(engine)

    def test_join_and_leave_in_one_epoch(self):
        """Net-removal within one debounce window: the links must not
        linger in the scheduler or the graph (regression: the removed
        list used to be replayed before the added list without
        reconciling)."""
        engine, service = self.service_for(fig7_topology())
        # Empty the cell first (separate epoch), then join+leave at once.
        service.run_events([Disassociate(t_us=0.0, client=1)])
        service.run_events([
            Associate(t_us=10_000.0, client=1, ap=0,
                      rss_to={0: -40.0}, rss_from={0: -41.0}),
            Disassociate(t_us=10_010.0, client=1),
        ])
        assert 1 not in engine.state.clients
        assert all(1 not in (l.src, l.dst) for l in engine.state.links)
        assert all(1 not in (l.src, l.dst) for l in engine.scheduler.queue)
        assert all(1 not in (l.src, l.dst) for l in engine.graph.nodes)
        assert_graph_fresh(engine)
        # And the network keeps scheduling correctly afterwards.
        service.run_events([QueueUpdate(t_us=20_000.0, src=2, dst=3,
                                        backlog=4.0)])

    def test_stale_queue_report_ignored(self):
        engine, service = self.service_for(fig7_topology())
        stats = service.run_events([
            Disassociate(t_us=0.0, client=1),
            QueueUpdate(t_us=5_000.0, src=0, dst=1, backlog=4.0),
        ])
        assert stats.ignored_events == 1

    def test_associate_to_unknown_ap_ignored(self):
        engine, service = self.service_for(fig7_topology())
        stats = service.run_events([
            Associate(t_us=0.0, client=1, ap=99, rss_to={}, rss_from={}),
        ])
        assert stats.ignored_events == 1
        assert engine.state.clients[1] == 0  # untouched


class TestRevisionBookkeeping:
    def test_queue_backlog_drains_across_revisions(self):
        """Optimistic decrement: scheduling a backlogged link reduces
        its queue picture, so the strict schedule eventually empties."""
        topology = fig7_topology()
        engine = IncrementalController(NetworkState.from_topology(topology),
                                       ServiceConfig())
        service = ControllerService(engine, check_every=1)
        link = engine.state.links[0]
        service.run_events([QueueUpdate(t_us=0.0, src=link.src,
                                        dst=link.dst, backlog=2.0)])
        assert engine.state.queues[link] < 2.0
        for step in range(1, 5):
            service.run_events([QueueUpdate(
                t_us=step * 10_000.0, src=engine.state.links[1].src,
                dst=engine.state.links[1].dst, backlog=0.0)])
        assert engine.state.queues[link] == 0.0

    def test_oracle_mismatch_raises(self):
        """Corrupting live state between apply and revise must trip
        the oracle (proves the check has teeth)."""
        from repro.service.service import OracleMismatch

        topology = fig7_topology()
        engine = IncrementalController(NetworkState.from_topology(topology),
                                       ServiceConfig())
        service = ControllerService(engine, check_every=1)
        service.run_events([QueueUpdate(t_us=0.0, src=0, dst=1,
                                        backlog=3.0)])

        original = engine.preview_digest

        def corrupted():
            digest = original()
            # Sabotage: inject demand the preview never saw.
            engine.state.queues[engine.state.links[2]] = 6.0
            return digest

        engine.preview_digest = corrupted
        with pytest.raises(OracleMismatch):
            service.run_events([QueueUpdate(t_us=10_000.0, src=2, dst=3,
                                            backlog=5.0)])
