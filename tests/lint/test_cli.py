"""CLI behavior: golden stderr, exit codes 0/1/2, and the meta-test
that the live tree lints clean."""

from pathlib import Path

from repro.lint import load_config, main

from .conftest import FIXTURES, PROJ, REPO_ROOT, run_lint


def test_golden_stderr_over_fixture_tree(proj_config):
    code, err = run_lint([PROJ / "src"], proj_config)
    assert code == 1
    golden = (FIXTURES / "golden" / "proj_bad.txt").read_text()
    assert err == golden


def test_exit_zero_on_clean_subtree(proj_config):
    code, err = run_lint([PROJ / "src/fake/telemetry"], proj_config)
    assert code == 0, err


def test_exit_two_on_missing_path(proj_config):
    code, err = run_lint([PROJ / "no_such_file.py"], proj_config)
    assert code == 2
    assert "no such path" in err


def test_exit_two_on_syntax_error(proj_config, tmp_path):
    broken = tmp_path / "broken.py"
    broken.write_text("def (:\n")
    code, err = run_lint([broken], proj_config)
    assert code == 2
    assert "cannot parse" in err


def test_exit_two_on_missing_config_table(tmp_path, monkeypatch, capsys):
    (tmp_path / "pyproject.toml").write_text("[tool.other]\nx = 1\n")
    monkeypatch.chdir(tmp_path)
    assert main(["src"]) == 2
    assert "[tool.dominolint]" in capsys.readouterr().err


def test_main_resolves_config_from_cwd(monkeypatch, capsys):
    monkeypatch.chdir(PROJ)
    assert main(["src/fake/sim/bad_dom101.py"]) == 1
    err = capsys.readouterr().err
    assert "DOM101" in err
    assert main(["src/fake/sim/good.py"]) == 0


def test_findings_are_sorted_and_deduplicated(proj_config):
    # Passing overlapping paths must not double-report findings.
    target = PROJ / "src/fake/sim/bad_dom101.py"
    code, err = run_lint([target, PROJ / "src/fake/sim"], proj_config)
    assert code == 1
    lines = [l for l in err.splitlines() if "bad_dom101" in l]
    assert lines == sorted(lines)
    assert len(lines) == len(set(lines))


def test_live_tree_lints_clean():
    """The meta-test: the repository's own src/ and tests/ carry no
    unsuppressed dominolint findings."""
    config = load_config(REPO_ROOT)
    code, err = run_lint([REPO_ROOT / "src", REPO_ROOT / "tests"], config)
    assert code == 0, f"live tree has findings:\n{err}"


def test_live_schema_baseline_is_fresh():
    """The committed schema baseline matches the live events.py."""
    import json

    from repro.lint.schema import load_registry

    config = load_config(REPO_ROOT)
    registry = load_registry(config)
    baseline = json.loads(Path(config.schema_baseline).read_text())
    assert registry.fingerprint() == baseline
