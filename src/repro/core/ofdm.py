"""ROP's control OFDM symbol at sample level (Table 1, Fig. 3/5/6).

ROP packs every client's 6-bit queue length into **one** OFDM symbol:
the 20 MHz channel is split into 256 subcarriers; each client owns a
subchannel of 6 data subcarriers separated from its neighbours by 3
guard subcarriers; 2-ASK (on/off) modulation per subcarrier; a 3.2 us
cyclic prefix absorbs turnaround-propagation spread (up to 2 us for a
300 m cell).

This module reproduces the paper's USRP measurements:

* Fig. 5 — decoded subcarrier magnitudes for two clients on adjacent
  subchannels, equal power / 30 dB apart without guards / 30 dB apart
  with 3 guards;
* Fig. 6 — correct-decoding ratio vs RSS difference for 0-4 guard
  subcarriers (3 guards tolerate ~38 dB);
* the SNR floor (~4 dB) for reliable decoding.

Physics modelled: per-client residual carrier-frequency offset (the
polling preamble lets clients tune their CFO, but a residual fraction
of the 78.125 kHz subcarrier spacing remains and leaks energy into
neighbouring subcarriers — this is the inter-subchannel interference
the guard subcarriers fight), per-client timing offsets inside the CP
(harmless to 2-ASK by design), AWGN, and ADC clipping at the receiver
front end.
"""

from __future__ import annotations

import cmath
import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

QUEUE_BITS = 6
MAX_QUEUE_REPORT = (1 << QUEUE_BITS) - 1  # 63


@dataclass(frozen=True)
class OfdmParams:
    """Table 1 constants for the ROP control symbol."""

    n_subcarriers: int = 256
    subcarriers_per_subchannel: int = QUEUE_BITS
    guard_subcarriers: int = 3
    n_subchannels: int = 24
    sample_rate_mhz: float = 20.0
    cp_us: float = 3.2
    first_subcarrier: int = 3     # Fig. 3: subchannel 0 starts at +3

    @property
    def cp_samples(self) -> int:
        return int(round(self.cp_us * self.sample_rate_mhz))  # 64

    @property
    def symbol_samples(self) -> int:
        return self.n_subcarriers + self.cp_samples  # 320 = 16 us

    @property
    def symbol_us(self) -> float:
        return self.symbol_samples / self.sample_rate_mhz

    @property
    def subcarrier_spacing_khz(self) -> float:
        return self.sample_rate_mhz * 1000.0 / self.n_subcarriers  # 78.125

    @property
    def stride(self) -> int:
        """Subcarriers consumed per subchannel (data + guards)."""
        return self.subcarriers_per_subchannel + self.guard_subcarriers

    def subchannel_bins(self, subchannel: int) -> List[int]:
        """FFT bin indices (0..N-1, negative wrapped) of a subchannel.

        Per Fig. 3, subchannels 0..11 sit on positive frequencies
        starting at subcarrier ``first_subcarrier`` and 12..23 mirror
        on negative frequencies; DC and the band edges stay clear as
        guard band.
        """
        if not 0 <= subchannel < self.n_subchannels:
            raise ValueError(f"subchannel {subchannel} out of range")
        half = self.n_subchannels // 2
        if subchannel < half:
            start = self.first_subcarrier + subchannel * self.stride
            bins = [start + i for i in range(self.subcarriers_per_subchannel)]
        else:
            start = self.first_subcarrier + (subchannel - half) * self.stride
            bins = [-(start + i)
                    for i in range(self.subcarriers_per_subchannel)]
        return [b % self.n_subcarriers for b in bins]

    def guard_band_subcarriers(self) -> int:
        """Subcarriers left unused at band edges + DC (paper: 39)."""
        used = set()
        for k in range(self.n_subchannels):
            used.update(self.subchannel_bins(k))
            # guard subcarriers between subchannels are also "used"
            # in the sense of being reserved, so count only edges:
        half = self.n_subchannels // 2
        span = self.first_subcarrier + half * self.stride
        per_side = self.n_subcarriers // 2 - span
        # positive side + negative side + DC + the first_subcarrier
        # offsets next to DC on both sides
        return 2 * per_side + 1 + 2 * (self.first_subcarrier - 1)


DEFAULT_PARAMS = OfdmParams()


def queue_len_to_bits(queue_len: int) -> List[int]:
    """6-bit big-endian encoding of a (clamped) queue length."""
    clamped = max(0, min(MAX_QUEUE_REPORT, queue_len))
    return [(clamped >> (QUEUE_BITS - 1 - i)) & 1 for i in range(QUEUE_BITS)]


def bits_to_queue_len(bits: Sequence[int]) -> int:
    value = 0
    for bit in bits:
        value = (value << 1) | (1 if bit else 0)
    return value


#: Transmitter spectral skirt: leakage (dBc relative to an active
#: subcarrier) injected into bins at the given distance.  This is the
#: near-in phase-noise/DAC skirt of the USRP front end, calibrated so
#: the model reproduces the paper's two measurements simultaneously:
#: a 30 dB stronger neighbour corrupts about the first three
#: subcarriers of the adjacent subchannel (Fig. 5b), while three guard
#: subcarriers tolerate a 38 dB mismatch (Fig. 6) — i.e. the skirt
#: dies into the ~-48 dBc transmitter noise floor past 3 bins.
TX_SKIRT_DBC: Dict[int, float] = {1: -26.0, 2: -31.0, 3: -36.0, 4: -52.0}
TX_NOISE_FLOOR_DBC = -55.0
TX_SKIRT_REACH = 8


def tx_skirt_dbc(distance: int) -> float:
    """Skirt level at ``distance`` bins from an active subcarrier."""
    if distance <= 0:
        return 0.0
    return TX_SKIRT_DBC.get(distance, TX_NOISE_FLOOR_DBC)


@dataclass
class ClientSignal:
    """One client's contribution to the aggregate ROP symbol."""

    subchannel: int
    queue_len: int
    amplitude: float = 1.0          # linear; encodes the client's RSS
    cfo_fraction: float = 0.0       # CFO as fraction of subcarrier spacing
    timing_offset_samples: int = 0  # arrival offset, must stay within CP
    phase: float = 0.0
    skirt_seed: int = 0             # per-run randomness of the TX skirt


def build_client_waveform(signal: ClientSignal,
                          params: OfdmParams = DEFAULT_PARAMS,
                          with_skirt: bool = True) -> np.ndarray:
    """Time-domain (CP + symbol) waveform for one client.

    Spectrum convention: an active (bit=1) subcarrier has unit
    coefficient before amplitude scaling, so an ideal receiver FFT
    sees bin magnitude == ``amplitude``.  The transmitter skirt is
    injected in the frequency domain with random phase per bin (its
    phase-noise origin makes it incoherent with the data subcarriers).
    """
    n = params.n_subcarriers
    spectrum = np.zeros(n, dtype=np.complex128)
    bins = params.subchannel_bins(signal.subchannel)
    active = [b for bit, b in zip(queue_len_to_bits(signal.queue_len), bins)
              if bit]
    for bin_idx in active:
        spectrum[bin_idx] += 1.0
    if with_skirt:
        skirt_rng = random.Random(signal.skirt_seed)
        for bin_idx in active:
            for distance in range(1, TX_SKIRT_REACH + 1):
                level = 10.0 ** (tx_skirt_dbc(distance) / 20.0)
                for direction in (-1, 1):
                    target = (bin_idx + direction * distance) % n
                    theta = skirt_rng.uniform(0.0, 2.0 * math.pi)
                    spectrum[target] += level * cmath.exp(1j * theta)
    time = np.fft.ifft(spectrum) * n  # undo numpy's 1/N so FFT recovers 1.0
    time = np.concatenate([time[-params.cp_samples:], time])  # cyclic prefix
    rotation = np.exp(
        1j * (signal.phase
              + 2.0 * math.pi * signal.cfo_fraction
              * np.arange(len(time)) / n)
    )
    return signal.amplitude * time * rotation / n


def aggregate_at_ap(signals: Sequence[ClientSignal],
                    params: OfdmParams = DEFAULT_PARAMS,
                    noise_amplitude: float = 0.0,
                    adc_clip: Optional[float] = None,
                    rng: Optional[random.Random] = None) -> np.ndarray:
    """Sum the client waveforms as the AP's ADC sees them.

    Each client is shifted by its timing offset (guaranteed < CP by
    the ROP design); AWGN of the given per-sample amplitude is added;
    the result is clipped at ``adc_clip`` to model a saturating ADC.
    """
    total_len = params.symbol_samples + max(
        (s.timing_offset_samples for s in signals), default=0
    )
    received = np.zeros(total_len, dtype=np.complex128)
    for signal in signals:
        if signal.timing_offset_samples >= params.cp_samples:
            raise ValueError(
                f"timing offset {signal.timing_offset_samples} exceeds CP "
                f"({params.cp_samples} samples); ROP's CP was sized to "
                f"prevent this"
            )
        waveform = build_client_waveform(signal, params)
        start = signal.timing_offset_samples
        received[start:start + len(waveform)] += waveform
    if noise_amplitude > 0.0:
        rng = rng if rng is not None else random.Random(0)
        noise = np.array(
            [complex(rng.gauss(0, 1), rng.gauss(0, 1)) for _ in range(total_len)]
        )
        received += noise_amplitude / math.sqrt(2.0) * noise
    if adc_clip is not None:
        received = np.clip(received.real, -adc_clip, adc_clip) \
            + 1j * np.clip(received.imag, -adc_clip, adc_clip)
    return received


@dataclass
class DecodeOutcome:
    subchannel: int
    queue_len: Optional[int]
    correct_bits: int
    bin_magnitudes: List[float]


class RopSymbolDecoder:
    """The AP side: FFT window selection and per-subchannel 2-ASK slicing.

    The AP knows each client's expected amplitude from the central RSS
    map, so the per-bit threshold is half the expected bin magnitude
    (the optimum for on/off keying).
    """

    def __init__(self, params: OfdmParams = DEFAULT_PARAMS,
                 threshold_fraction: float = 0.5):
        self.params = params
        self.threshold_fraction = threshold_fraction

    def fft_bins(self, received: np.ndarray) -> np.ndarray:
        """FFT over the window starting right after the cyclic prefix.

        All client offsets are inside the CP, so this window covers one
        full period of every client's symbol (Fig. 4).
        """
        start = self.params.cp_samples
        window = received[start:start + self.params.n_subcarriers]
        return np.fft.fft(window)

    def decode_subchannel(self, received: np.ndarray, subchannel: int,
                          expected_amplitude: float,
                          true_queue_len: Optional[int] = None) -> DecodeOutcome:
        bins = self.fft_bins(received)
        indices = self.params.subchannel_bins(subchannel)
        magnitudes = [float(abs(bins[i])) for i in indices]
        threshold = self.threshold_fraction * expected_amplitude
        bits = [1 if m > threshold else 0 for m in magnitudes]
        decoded = bits_to_queue_len(bits)
        correct = 0
        if true_queue_len is not None:
            true_bits = queue_len_to_bits(true_queue_len)
            correct = sum(1 for a, b in zip(bits, true_bits) if a == b)
        return DecodeOutcome(subchannel=subchannel, queue_len=decoded,
                             correct_bits=correct, bin_magnitudes=magnitudes)

    def decode_all(self, received: np.ndarray,
                   signals: Sequence[ClientSignal]) -> Dict[int, DecodeOutcome]:
        """Decode every client; keyed by subchannel."""
        return {
            s.subchannel: self.decode_subchannel(
                received, s.subchannel, s.amplitude, s.queue_len
            )
            for s in signals
        }


def rss_difference_tolerance_experiment(
        guard_subcarriers: int,
        rss_difference_db: float,
        runs: int = 100,
        seed: int = 0,
        queue_len_weak: int = 0b101011,
        cfo_max_fraction: float = 0.005,
        noise_amplitude: float = 0.0) -> float:
    """One point of Fig. 6: decode ratio of the weak client.

    Two clients on adjacent subchannels; the strong one is
    ``rss_difference_db`` louder.  Both draw a random residual CFO.
    Returns the fraction of runs where all 6 bits of the *weak*
    client decode correctly.
    """
    params = OfdmParams(guard_subcarriers=guard_subcarriers)
    decoder = RopSymbolDecoder(params)
    rng = random.Random(seed)
    strong_amp = 10.0 ** (rss_difference_db / 20.0)
    correct = 0
    for _ in range(runs):
        weak = ClientSignal(
            subchannel=1, queue_len=queue_len_weak, amplitude=1.0,
            cfo_fraction=rng.uniform(-cfo_max_fraction, cfo_max_fraction),
            timing_offset_samples=rng.randint(0, params.cp_samples // 2),
            phase=rng.uniform(0.0, 2 * math.pi),
            skirt_seed=rng.getrandbits(32),
        )
        strong = ClientSignal(
            subchannel=0, queue_len=MAX_QUEUE_REPORT, amplitude=strong_amp,
            cfo_fraction=rng.uniform(-cfo_max_fraction, cfo_max_fraction),
            timing_offset_samples=rng.randint(0, params.cp_samples // 2),
            phase=rng.uniform(0.0, 2 * math.pi),
            skirt_seed=rng.getrandbits(32),
        )
        received = aggregate_at_ap([weak, strong], params,
                                   noise_amplitude=noise_amplitude, rng=rng)
        outcome = decoder.decode_subchannel(received, 1, 1.0, queue_len_weak)
        if outcome.queue_len == queue_len_weak:
            correct += 1
    return correct / runs if runs else 0.0


def snr_floor_experiment(snr_db: float, runs: int = 100, seed: int = 0) -> float:
    """Decode ratio of a lone client at a given received SNR.

    ``snr_db`` is the *sample-level* (wideband) SNR — received signal
    power over noise power in the whole 20 MHz channel, the quantity a
    WiFi radio reports.  The FFT concentrates each subcarrier's energy
    into one bin (~16 dB of processing gain for 6 active bins out of
    256), which is why the one-symbol report decodes reliably down to
    the ~4 dB the paper quotes for minimum-rate WiFi.
    """
    params = DEFAULT_PARAMS
    decoder = RopSymbolDecoder(params)
    rng = random.Random(seed)
    n = params.n_subcarriers
    # Unit-amplitude client: per-sample signal power is 6/N^2 (six
    # unit bins spread over N samples after the 1/N IFFT scaling).
    active_bins = QUEUE_BITS
    signal_power = active_bins / float(n * n)
    sigma = math.sqrt(signal_power / 10.0 ** (snr_db / 10.0))
    correct = 0
    queue_len = 0b101011
    for _ in range(runs):
        client = ClientSignal(
            subchannel=3, queue_len=queue_len, amplitude=1.0,
            cfo_fraction=rng.uniform(-0.01, 0.01),
            timing_offset_samples=rng.randint(0, params.cp_samples // 2),
            phase=rng.uniform(0.0, 2 * math.pi),
            skirt_seed=rng.getrandbits(32),
        )
        received = aggregate_at_ap([client], params,
                                   noise_amplitude=sigma, rng=rng)
        outcome = decoder.decode_subchannel(received, 3, 1.0, queue_len)
        if outcome.queue_len == queue_len:
            correct += 1
    return correct / runs if runs else 0.0
