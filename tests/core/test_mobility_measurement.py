"""End-to-end test of Sec. 5 dynamic conflict-graph maintenance.

A client walks from a clean spot into another cell's interference
range.  The controller's map is a snapshot, so it keeps scheduling the
two links together and the victim link collapses; a beacon measurement
campaign rediscover the conflict and the scheduler separates them.
"""


import networkx as nx
import numpy as np
import pytest

from repro.core import build_domino_network
from repro.metrics.stats import FlowRecorder
from repro.sim.engine import Simulator
from repro.sim.node import Network
from repro.topology.builder import Topology
from repro.topology.links import Link
from repro.topology.measurement import (ObservationStore, beacon_rounds,
                                        campaign_overhead_fraction,
                                        two_hop_graph, validate_rounds)
from repro.topology.mobility import move_node
from repro.topology.propagation import LogDistanceModel
from repro.topology.trace import SyntheticTrace
from repro.traffic.udp import SaturatedSource

MODEL = LogDistanceModel(exponent=3.0, shadowing_sigma_db=0.0,
                         wall_loss_db=0.0, asymmetry_sigma_db=0.0)


def make_mobile_topology():
    """Two AP-client pairs, initially interference-free.

    AP1 (0) at x=0 with C1 (1) at x=10; AP2 (2) at x=34 with C3-style
    client (3) at x=24 — ten metres from its AP, on the side facing
    AP1 but still clear of it.
    """
    positions = [(0.0, 0.0), (10.0, 0.0), (34.0, 0.0), (24.0, 0.0)]
    matrix = MODEL.rss_matrix(positions, tx_power_dbm=15.0, seed=0)
    trace = SyntheticTrace(rss_dbm=matrix, positions=list(positions),
                           comm_threshold_dbm=-70.0)
    network = Network()
    network.add_ap(0)
    network.add_client(1, 0)
    network.add_ap(2)
    network.add_client(3, 2)
    flows = [Link(0, 1), Link(2, 3)]
    return Topology(network=network, trace=trace, flows=flows,
                    name="mobile")


# ----------------------------------------------------------------------
# Beacon-round planning units
# ----------------------------------------------------------------------
class TestBeaconRounds:
    def test_rounds_cover_all_nodes_once(self):
        hearing = nx.path_graph(7)
        rounds = beacon_rounds(hearing)
        validate_rounds(hearing, rounds)

    def test_two_hop_separation_enforced(self):
        # A star: every leaf is two hops from every other leaf through
        # the hub, so nobody can share a round.
        hearing = nx.star_graph(5)
        rounds = beacon_rounds(hearing)
        validate_rounds(hearing, rounds)
        assert all(len(r) == 1 for r in rounds)

    def test_disconnected_nodes_share_one_round(self):
        hearing = nx.empty_graph(6)
        rounds = beacon_rounds(hearing)
        assert len(rounds) == 1
        assert sorted(rounds[0]) == list(range(6))

    def test_validate_rejects_collision(self):
        hearing = nx.star_graph(3)
        with pytest.raises(ValueError):
            validate_rounds(hearing, [[1, 2], [0], [3]])
        with pytest.raises(ValueError):
            validate_rounds(hearing, [[0], [1]])  # 2, 3 never beacon

    def test_overhead_matches_paper_arithmetic(self):
        """Delta = 40 star: 41 rounds of 40 us over 125.1 ms ~ 1.3 %."""
        overhead = campaign_overhead_fraction(nx.star_graph(40))
        assert overhead == pytest.approx(41 * 40 / 125_100, rel=1e-6)
        assert 0.012 < overhead < 0.014

    def test_two_hop_graph_shape(self):
        path = nx.path_graph(4)  # 0-1-2-3
        expanded = two_hop_graph(path)
        assert expanded.has_edge(0, 2)
        assert not expanded.has_edge(0, 3)


def test_observation_store_updates_matrix():
    store = ObservationStore()
    store.record(observer=1, beaconer=0, rss_dbm=-55.0)
    store.record(observer=0, beaconer=1, rss_dbm=-58.0)
    matrix = np.full((2, 2), -120.0)
    assert store.apply_to_matrix(matrix) == 2
    assert matrix[0][1] == -55.0   # tx row, rx column
    assert matrix[1][0] == -58.0


def test_move_node_updates_both_directions():
    topology = make_mobile_topology()
    before = topology.trace.rss(0, 3)
    move_node(topology.trace, 3, (5.0, 0.0), model=MODEL)
    after = topology.trace.rss(0, 3)
    assert after > before + 10.0  # much closer to AP1 now
    assert topology.trace.rss(3, 0) == pytest.approx(after, abs=0.1)
    assert topology.trace.positions[3] == (5.0, 0.0)


# ----------------------------------------------------------------------
# The full story
# ----------------------------------------------------------------------
def test_campaign_restores_throughput_after_mobility():
    topology = make_mobile_topology()
    sim = Simulator(seed=3)
    net = build_domino_network(sim, topology)
    recorder = FlowRecorder(topology.flows)
    recorder.attach_all(net.macs.values())
    for flow in topology.flows:
        SaturatedSource(sim, net.macs[flow.src], flow.dst).start()
    net.controller.start()

    victim = Link(2, 3)

    def window_mbps(flow, run_until):
        before = recorder.records[tuple(flow)].payload_bytes
        start = sim.now
        sim.run(until=run_until)
        delta = recorder.records[tuple(flow)].payload_bytes - before
        return delta * 8.0 / (sim.now - start)

    # Phase 1: both cells independent, both links near full rate.
    clean = window_mbps(victim, 300_000.0)
    assert clean > 7.0
    assert not net.controller.imap.conflicts(Link(0, 1), victim)

    # Phase 2: the client walks toward AP1; ground truth changes, the
    # controller's snapshot does not — the victim link collapses.
    move_node(topology.trace, 3, (16.0, 0.0), model=MODEL)
    net.medium.invalidate_topology()
    degraded = window_mbps(victim, 600_000.0)
    assert degraded < 0.5 * clean
    assert not net.controller.imap.conflicts(Link(0, 1), victim)  # stale

    # Phase 3: measurement campaign -> conflict discovered -> links
    # alternate -> the victim recovers to about half rate.
    net.controller.run_measurement_campaign()
    sim.run(until=700_000.0)  # campaign + first refreshed batches
    assert net.controller.last_campaign_updates > 0
    assert net.controller.imap.conflicts(Link(0, 1), victim)
    recovered = window_mbps(victim, 1_100_000.0)
    assert recovered > 2.5  # ~half of a ~9 Mbps slot stream
    assert recovered > 1.5 * degraded
    other = recorder.flow_throughput_mbps(Link(0, 1), sim.now)
    assert other > 2.0  # the aggressor still gets its share
