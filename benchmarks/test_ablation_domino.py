"""Ablation benches for DOMINO's design choices (DESIGN.md Sec. 5).

Each ablation removes one mechanism and shows what it buys:

* **fake-link insertion** — without it, uplink packets can only ride
  demand-scheduled slots; with it they flow opportunistically and the
  chains stay densely triggered (Sec. 3.3's stated purpose);
* **backup triggers (inbound = 2)** — under a degraded detection
  model, a single trigger per link loses entries that the backup
  recovers;
* **trigger detection model** — the perfect-detection genie bounds
  the loss the calibrated model's misses cost (small, by design).
"""

from repro.core import (ControllerConfig, ConverterConfig,
                        PerfectTriggerModel, TriggerDetectionModel,
                        build_domino_network)
from repro.metrics.stats import FlowRecorder
from repro.sim.engine import Simulator
from repro.topology.builder import fig7_topology
from repro.traffic.udp import SaturatedSource

HORIZON = 500_000.0


def run(config=None, trigger_model=None, seed=2):
    topology = fig7_topology(uplinks=True)
    sim = Simulator(seed=seed)
    net = build_domino_network(sim, topology, config=config,
                               trigger_model=trigger_model)
    recorder = FlowRecorder(topology.flows, warmup_us=HORIZON * 0.1)
    recorder.attach_all(net.macs.values())
    for flow in topology.flows:
        SaturatedSource(sim, net.macs[flow.src], flow.dst).start()
    net.controller.start()
    sim.run(until=HORIZON)
    return net, recorder


#: Degraded detection (30 % misses per burst).  Isolation knob for the
#: backup-trigger ablation.
FLAKY = TriggerDetectionModel(
    detection_by_combined={n: 0.7 for n in range(1, 8)}
)


def test_ablation_fake_links(once):
    def workload():
        with_fakes = run()[1].aggregate_throughput_mbps(HORIZON)
        no_fakes = run(config=ControllerConfig(
            converter=ConverterConfig(insert_fakes=False)
        ))[1].aggregate_throughput_mbps(HORIZON)
        return with_fakes, no_fakes

    with_fakes, no_fakes = once(workload)
    print(f"\nfake insertion on: {with_fakes:.1f} Mbps, "
          f"off: {no_fakes:.1f} Mbps")
    # Fakes may only help (they carry data opportunistically and keep
    # chains alive); the saturated Fig. 7 network shows a clear gap.
    assert with_fakes >= no_fakes * 0.98


def test_ablation_backup_triggers(once):
    """Fake insertion is disabled here: with it, the saturated Fig. 7
    chains self-trigger every slot and over-the-air detection never
    matters — the backup only engages on frame-triggered chains."""

    def arm(max_inbound):
        from repro.topology.builder import fig7_topology as topo_fn
        topology = topo_fn()  # downlinks only: alternating chains
        sim = Simulator(seed=2)
        config = ControllerConfig(converter=ConverterConfig(
            insert_fakes=False, max_inbound=max_inbound))
        net = build_domino_network(sim, topology, config=config,
                                   trigger_model=FLAKY)
        recorder = FlowRecorder(topology.flows, warmup_us=HORIZON * 0.1)
        recorder.attach_all(net.macs.values())
        for flow in topology.flows:
            SaturatedSource(sim, net.macs[flow.src], flow.dst).start()
        net.controller.start()
        sim.run(until=HORIZON)
        return recorder.aggregate_throughput_mbps(HORIZON)

    redundant, single = once(lambda: (arm(2), arm(1)))
    print(f"\ninbound=2 under flaky triggers: {redundant:.1f} Mbps, "
          f"inbound=1: {single:.1f} Mbps")
    # The backup trigger pays for itself exactly when detection is
    # unreliable — the design rationale for inbound = 2 (Sec. 3.3).
    assert redundant > single * 1.1


def test_ablation_trigger_model(once):
    def workload():
        calibrated = run()[1].aggregate_throughput_mbps(HORIZON)
        perfect = run(trigger_model=PerfectTriggerModel())[1] \
            .aggregate_throughput_mbps(HORIZON)
        return calibrated, perfect

    calibrated, perfect = once(workload)
    print(f"\ncalibrated detection: {calibrated:.1f} Mbps, "
          f"perfect: {perfect:.1f} Mbps")
    # Detection misses cost little: the converter's redundancy (self-
    # triggers + backups) absorbs them, as the paper designed.
    assert calibrated > perfect * 0.93
    assert perfect >= calibrated * 0.99
