"""The DOMINO MAC: trigger-driven slot execution at each node.

This is the runtime of relative scheduling (Sec. 3.2/3.4):

* a node transmits in slot ``s`` when it detects its own signature
  followed by START (modelled by the calibrated
  :class:`~repro.core.trigger_model.TriggerDetectionModel`), one WiFi
  slot after the trigger burst — or one ROP-slot later when the burst
  ended with the ROP signature;
* "the transmitter uses the last correctly received trigger as time
  reference": every detection *replaces* the planned start, which is
  how chains re-align and wired-backbone jitter heals (Fig. 11);
* at the end of its slot (fixed offset: data airtime + SIFS + ACK +
  one slot, Fig. 8) a node broadcasts its trigger duty — the combined
  signatures of the next-slot senders it is responsible for;
* an entry with an empty queue sends a header-only fake packet; fake
  or real, the slot's timing is identical so alignment is preserved;
* a missed ACK re-queues the packet at the head: the next trigger for
  the same destination retransmits it (Sec. 3.5 "Missed ACKs");
* polling APs run ROP in interposed polling slots and forward decoded
  queue reports to the controller over the wire.

Implementation notes (honesty of the model):

* Real signatures carry no slot number; nodes infer slot position
  from fixed-duration slot timing.  Frames here carry ``meta['slot']``
  so the simulation binds a detection to the right schedule entry,
  while *whether* the detection happens comes from the calibrated
  model — the same division of labour as the paper's ns-3 setup.
* Client programs ride on AP frames (S1 samples, Fig. 8) in the real
  system; the simulation delivers them at schedule-distribution time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..mac.base import Mac
from ..metrics.timeline import TimelineRecorder
from ..telemetry import ORIGIN_META_KEY, TX_META_KEY
from ..sim.engine import Event, Simulator
from ..sim.medium import Medium
from ..sim.node import Node
from ..sim.packet import (MAC_HEADER_BYTES, Frame, FrameKind, ack_frame,
                          fake_frame)
from ..sim.phy import PhyProfile
from .coexistence import CopOccupancyMeter
from .relative_schedule import NodeProgram, SlotEntry, TriggerDuty
from .rop import ReportObservation, RopDecoder, rop_slot_duration_us
from .trigger_model import TriggerDetectionModel

#: ``frame.meta`` key on queue reports: the ``rop_poll`` event id of
#: the round being answered, so the AP's joint decode can point its
#: ``rop_decode.cause`` at the poll (telemetry-private, v3 spans).
_POLL_META_KEY = "_tel_poll"


@dataclass
class SlotTiming:
    """Fixed intra-slot layout shared by every node (Sec. 3.5 assumes
    equal-airtime packets; the converter's virtual packets make it so)."""

    data_airtime_us: float
    ack_airtime_us: float
    sifs_us: float
    slot_us: float
    trigger_burst_us: float
    rop_slot_us: float

    @property
    def trigger_offset_us(self) -> float:
        """Slot start -> trigger burst start (Fig. 8 layout)."""
        return (self.data_airtime_us + self.sifs_us + self.ack_airtime_us
                + self.slot_us)

    @property
    def slot_duration_us(self) -> float:
        """Slot start -> next slot's nominal start."""
        return self.trigger_offset_us + self.trigger_burst_us + self.slot_us

    @classmethod
    def from_profile(cls, profile: PhyProfile,
                     payload_bytes: int) -> "SlotTiming":
        data_bytes = MAC_HEADER_BYTES + payload_bytes
        return cls(
            data_airtime_us=profile.bytes_airtime_us(
                data_bytes, profile.data_rate_mbps),
            ack_airtime_us=profile.ack_airtime_us(),
            sifs_us=profile.sifs_us,
            slot_us=profile.slot_us,
            trigger_burst_us=2.0 * profile.signature_us,
            rop_slot_us=rop_slot_duration_us(profile),
        )


@dataclass
class DominoStats:
    data_tx: int = 0
    fake_tx: int = 0
    triggers_sent: int = 0
    triggers_detected: int = 0
    triggers_missed: int = 0        # targeted, detection draw failed
    self_starts: int = 0
    acks_sent: int = 0
    ack_timeouts: int = 0
    successes: int = 0
    polls_sent: int = 0
    reports_sent: int = 0
    reports_decoded: int = 0
    reports_failed: int = 0
    skipped_busy: int = 0           # planned send aborted: radio busy
    sleep_us: float = 0.0           # Sec. 5 energy saving


class DominoMac(Mac):
    """One DOMINO node (AP or client)."""

    START_DELAY_US = 100.0          # self-start offset after batch arrival

    def __init__(self, sim: Simulator, node: Node, medium: Medium,
                 trigger_model: Optional[TriggerDetectionModel] = None,
                 timeline: Optional[TimelineRecorder] = None,
                 payload_bytes: int = 512,
                 queue_capacity: int = 100,
                 seed: Optional[int] = None):
        super().__init__(sim, node, medium, queue_capacity)
        self.trigger_model = (trigger_model if trigger_model is not None
                              else TriggerDetectionModel())
        self.timeline = timeline
        self.timing = SlotTiming.from_profile(self.profile, payload_bytes)
        self.stats = DominoStats()
        self._rng = random.Random(
            seed if seed is not None else sim.rng.getrandbits(64)
        )
        # Merged program state across batches.
        self._send_entries: Dict[int, SlotEntry] = {}
        self._recv_entries: Dict[int, SlotEntry] = {}
        self._duties: Dict[int, TriggerDuty] = {}
        self._rop_slots: Set[int] = set()
        self._rop_wait: Set[int] = set()
        self._self_trigger: Set[int] = set()
        self._planned: Dict[int, Event] = {}
        self._planned_polls: Dict[int, Event] = {}
        self._executed: Set[int] = set()
        self._polls_done: Set[int] = set()
        self._duty_fired: Set[int] = set()
        self._max_slot_seen = -1
        self._awaiting_ack: Optional[Tuple[Frame, int]] = None
        self._ack_timer: Optional[Event] = None
        self._batches_started: Set[int] = set()
        self._current_batch_first_slot: Optional[int] = None
        self._current_batch_id: Optional[int] = None
        # ROP machinery (APs only).
        self.rop_decoder: Optional[RopDecoder] = None
        self.subchannel_of_client: Dict[int, int] = {}
        self.my_subchannel: Optional[int] = None
        # Poll sets (Sec. 3.5): with more than 24 clients the AP polls
        # one set per polling action, round-robin.
        self.n_poll_sets: int = 1
        self.my_poll_set: int = 0
        self._next_poll_set: int = 0
        # Wiring to the controller (set by the controller at build time).
        self.send_to_controller: Optional[Callable[[Any], None]] = None
        self._report_pending = False
        self._rop_buffer: List[ReportObservation] = []
        self._rop_decode_event: Optional[Event] = None
        # Sec. 5 coexistence: NAV horizon for the current CFP and the
        # contention-period occupancy meter.
        self._cfp_end: Optional[float] = None
        self._cop_meter = CopOccupancyMeter()
        # Sec. 5 energy saving: controller-granted sleep windows,
        # keyed by their first slot.
        self._sleep_windows: Dict[int, int] = {}
        # Sec. 5 mobility: beacon-campaign observations (None outside
        # a campaign).
        self._observations: Optional[Dict[int, float]] = None

    # ==================================================================
    # Program loading
    # ==================================================================
    def load_program(self, program: NodeProgram) -> None:
        """Merge a batch program (wire arrival or S1 hand-off)."""
        self._send_entries.update(program.send_slots)
        self._recv_entries.update(program.recv_slots)
        self._duties.update(program.duties)
        self._rop_slots.update(program.rop_slots)
        self._rop_wait.update(program.rop_wait_slots)
        self._self_trigger.update(program.self_trigger_slots)
        self._current_batch_first_slot = program.first_slot_index
        self._current_batch_id = program.batch_id
        if program.cfp_end_us is not None:
            self._cfp_end = program.cfp_end_us
        for first, last in program.sleep_windows:
            self._sleep_windows[first] = last
        self._prune(program.last_slot_index)
        if program.initial:
            self._self_start(program)
        elif self.node.is_ap:
            self._arm_entry_watchdogs(program)

    # Slot clock: (slot index, start time) of the most recent slot this
    # node anchored; used to estimate when future slots are due.
    _last_anchor: float = float("-inf")
    _slot_clock: Optional[Tuple[int, float]] = None

    def _note_slot(self, slot: int, slot_start: float) -> None:
        if self._slot_clock is None or slot >= self._slot_clock[0]:
            self._slot_clock = (slot, slot_start)
        self._maybe_sleep(slot, slot_start)

    def _maybe_sleep(self, slot: int, slot_start: float) -> None:
        """Sec. 5 energy saving: if a granted sleep window covers the
        next slot, power down through its remainder (waking a guard
        slot early — slot estimates drift slightly and missing one's
        own trigger costs more than a slot of idle listening)."""
        last = None
        for first, window_last in self._sleep_windows.items():
            if first <= slot + 1 <= window_last:
                last = window_last
                del self._sleep_windows[first]
                break
        if last is None:
            return
        per_slot = self.timing.slot_duration_us
        sleep_from = slot_start + per_slot
        wake_at = slot_start + (last + 1 - slot) * per_slot - per_slot * 0.5
        if wake_at <= max(sleep_from, self.sim.now):
            return
        self.sim.schedule_at(max(sleep_from, self.sim.now),
                             self._enter_sleep, wake_at)

    def _enter_sleep(self, wake_at: float) -> None:
        granted = self.radio.sleep_until(wake_at)
        self.stats.sleep_us += granted

    def _expected_slot_time(self, slot: int) -> float:
        """Upper-bound estimate of when ``slot`` should start.

        Uses the node's slot clock and charges every intervening slot a
        full ROP-slot allowance — deliberately generous so the
        watchdog only fires when the chain is truly dead, never racing
        a live chain (a premature self-start collides with it).
        """
        per_slot = self.timing.slot_duration_us + self.timing.rop_slot_us
        if self._slot_clock is None:
            return self.sim.now + (self.START_DELAY_US
                                   + 2.0 * per_slot)
        last_slot, last_start = self._slot_clock
        gap = max(1, slot - last_slot)
        return last_start + gap * per_slot

    def _arm_entry_watchdogs(self, program: NodeProgram) -> None:
        """Self-start insurance for this AP's entries in a new batch."""
        for slot in sorted(program.send_slots):
            deadline = self._expected_slot_time(slot) \
                + 2.0 * self.timing.slot_duration_us
            self.sim.schedule_at(max(deadline, self.sim.now),
                                 self._entry_watchdog, slot)
            break  # one watchdog per batch: restarting its first entry
                   # re-seeds the chain; later entries follow triggers

    def _entry_watchdog(self, slot: int) -> None:
        if slot in self._executed or slot in self._planned:
            return
        if self._slot_clock is not None and self._slot_clock[0] >= slot:
            return  # chain moved past it; the entry was simply lost
        if self.sim.now - self._last_anchor < 3.0 * self.timing.slot_duration_us:
            # The network around us is alive — our entry was simply
            # dropped (missed trigger).  Executing it now, out of its
            # slot, would collide with whatever is currently on air;
            # containment is the designed behaviour (Fig. 10, point 2).
            return
        self.stats.self_starts += 1
        tel = self._trace
        cause = None
        if tel.enabled:
            cause = tel.backup_trigger(self.sim.now, self.node.node_id,
                                       slot, "watchdog")
            tel.metrics.counter("domino.backup_triggers").inc()
        self._plan_send(slot, self.sim.now, cause, "backup")

    def _self_start(self, program: NodeProgram) -> None:
        """Sec. 3.3 first batch: APs start individually.

        Downlink entry in the first slot: send at a fixed offset.
        Uplink entry whose sender is one of this AP's clients: the AP
        broadcasts the client's signature first (the duty the
        controller synthesized at ``first_slot - 1``).
        """
        first = program.first_slot_index
        base = self.sim.now + self.START_DELAY_US
        duty = self._duties.get(first - 1)
        if duty is not None and not self._duty_within(first - 1):
            self.sim.schedule(base - self.sim.now, self._fire_duty, first - 1)
        entry = self._send_entries.get(first)
        if entry is not None and first not in self._executed:
            start = base + self.timing.trigger_burst_us + self.timing.slot_us
            cause = None
            if self._trace.enabled:
                cause = self._trace.backup_trigger(
                    self.sim.now, self.node.node_id, first, "initial")
            self._plan_send(first, start, cause, "initial")

    def _duty_within(self, slot: int) -> bool:
        return slot in self._duty_fired

    def _prune(self, current_last_slot: int) -> None:
        """Drop state for slots far in the past (bounded memory)."""
        horizon = current_last_slot - 200
        for table in (self._send_entries, self._recv_entries, self._duties,
                      self._sleep_windows):
            stale = [s for s in table if s < horizon]
            for s in stale:
                del table[s]
        for collection in (self._rop_slots, self._rop_wait,
                           self._self_trigger, self._executed,
                           self._polls_done, self._duty_fired):
            stale = [s for s in collection if s < horizon]
            for s in stale:
                collection.discard(s)

    # ==================================================================
    # Trigger reception
    # ==================================================================
    def on_trigger(self, frame: Frame, sinr_db: float, rss_dbm: float,
                   overlapping_signatures: int) -> None:
        slot = frame.meta.get("slot")
        if slot is None:
            return
        if self.trigger_model.sinr_factor(sinr_db) >= 1.0:
            # Every burst ends with the common START signature, so any
            # node that hears it cleanly can pin its slot clock to it —
            # even when none of the combined signatures are its own.
            self._note_slot(slot, self.sim.now
                            - self.timing.trigger_offset_us
                            - self.timing.trigger_burst_us)
        next_slot = slot + 1
        combined = max(overlapping_signatures,
                       len(frame.trigger_targets())
                       + len(frame.meta.get("rop_polls", frozenset())))
        if (self.node.node_id in frame.trigger_targets()
                and next_slot in self._send_entries
                and next_slot not in self._executed):
            tel = self._trace
            # Explicit draw (same RNG stream as sample_detect) so the
            # model probability can ride on the sig_detect event.
            p_detect = self.trigger_model.p_detect(sinr_db, combined)
            if self._rng.random() < p_detect:
                self.stats.triggers_detected += 1
                self._last_anchor = self.sim.now
                # The burst ends a fixed offset into the triggering
                # slot, which pins our slot clock too.
                self._note_slot(slot, self.sim.now
                                - self.timing.trigger_offset_us
                                - self.timing.trigger_burst_us)
                wait = self.timing.slot_us
                if frame.meta.get("rop") or next_slot in self._rop_wait:
                    wait += self.timing.rop_slot_us
                jitter = self.trigger_model.sample_jitter_us(self._rng)
                sig_id = None
                if tel.enabled:
                    sig_id = tel.sig_detect(
                        self.sim.now, self.node.node_id, frame.src, slot,
                        sinr_db, combined, True, p_detect,
                        frame.meta.get(TX_META_KEY))
                    # Chain latency: burst end to the planned TX start.
                    tel.metrics.histogram(
                        "domino.trigger_latency_us").observe(jitter + wait)
                self._plan_send(next_slot, self.sim.now + jitter + wait,
                                sig_id, "primary")
            else:
                self.stats.triggers_missed += 1
                if tel.enabled:
                    tel.sig_detect(self.sim.now, self.node.node_id,
                                   frame.src, slot, sinr_db, combined, False,
                                   p_detect, frame.meta.get(TX_META_KEY))
                    tel.metrics.counter("domino.trigger_misses").inc()
        if (self.node.node_id in frame.meta.get("rop_polls", frozenset())
                and slot in self._rop_slots
                and slot not in self._polls_done
                and slot not in self._planned_polls):
            if self.trigger_model.sample_detect(self._rng, sinr_db, combined):
                jitter = self.trigger_model.sample_jitter_us(self._rng)
                event = self.sim.schedule(
                    jitter + self.timing.slot_us, self._execute_poll, slot,
                    frame.meta.get(TX_META_KEY)
                )
                self._planned_polls[slot] = event

    #: Two trigger time references within this window are estimates of
    #: the SAME chain timing and are averaged; beyond it they belong to
    #: different (drifted) chains and the later one wins — the paper's
    #: "last correctly received trigger as time reference" healing rule.
    MERGE_WINDOW_US = 5.0

    def _plan_send(self, slot: int, start_time: float,
                   cause: Optional[int] = None,
                   via: Optional[str] = None) -> None:
        """(Re)plan the transmission for ``slot`` at ``start_time``.

        Nearby references are *combined* (each detection is an
        unbiased timing estimate, so averaging refines it and keeps
        slot members from ratcheting apart); a reference far from the
        current plan replaces it outright, which is what re-aligns a
        node onto a chain running at a genuinely different time
        (Fig. 10's healing, Fig. 11's convergence).

        ``cause``/``via`` (v3 spans) name the reference event behind
        this plan; they ride on the scheduled callback, so a replan
        re-attributes the slot to the newest reference — the same
        "last trigger wins" rule the timing itself follows.
        """
        if slot in self._executed:
            return
        existing = self._planned.get(slot)
        planned_time = start_time
        if existing is not None:
            if abs(existing.time - start_time) <= self.MERGE_WINDOW_US:
                planned_time = (existing.time + start_time) / 2.0
            existing.cancel()
        self._planned[slot] = self.sim.schedule_at(
            max(planned_time, self.sim.now), self._execute_send, slot,
            cause, via
        )

    # ==================================================================
    # Slot execution: sender side
    # ==================================================================
    def _execute_send(self, slot: int, cause: Optional[int] = None,
                      via: Optional[str] = None) -> None:
        self._planned.pop(slot, None)
        if slot in self._executed:
            return
        entry = self._send_entries.get(slot)
        if entry is None:
            return
        if self.radio.transmitting:
            self.stats.skipped_busy += 1
            return
        self._executed.add(slot)
        self._last_anchor = self.sim.now
        self._note_slot(slot, self.sim.now)
        queue = self.queues.queue_for(entry.link.dst)
        frame: Frame
        if queue:
            frame = queue.pop()
            frame.meta["slot"] = slot
            self.stats.data_tx += 1
            kind = "data"
        else:
            frame = fake_frame(self.node.node_id, entry.link.dst, slot)
            self.stats.fake_tx += 1
            kind = "fake"
        if self._cfp_end is not None and self._cfp_end > self.sim.now:
            # Coexistence: reserve the medium to the end of the CFP so
            # standard-compliant external nodes defer (Sec. 5, Fig. 15).
            frame.meta["nav_until"] = self._cfp_end
        if self.timeline is not None:
            self.timeline.record(slot, entry.link, self.sim.now,
                                 fake=(kind == "fake"), kind=kind)
        exec_id = None
        if self._trace.enabled:
            exec_id = self._trace.slot_exec(self.sim.now, self.node.node_id,
                                            slot, entry.link.dst,
                                            kind == "fake", cause, via)
            frame.meta[ORIGIN_META_KEY] = exec_id
        self._announce_batch_start(slot, exec_id)
        self.radio.transmit(frame)
        # Duty and self-triggered continuation anchor to the slot start.
        self._schedule_slot_followups(slot, self.sim.now, exec_id)

    def _announce_batch_start(self, slot: int,
                              cause: Optional[int] = None) -> None:
        if (self.node.is_ap and self.send_to_controller is not None
                and slot == self._current_batch_first_slot
                and self._current_batch_id is not None
                and self._current_batch_id not in self._batches_started):
            self._batches_started.add(self._current_batch_id)
            self.send_to_controller({
                "type": "batch_started",
                "batch": self._current_batch_id,
                "cause": cause,
            })

    def _schedule_slot_followups(self, slot: int, slot_start: float,
                                 cause: Optional[int] = None) -> None:
        """Duty burst, self-timed poll and self-trigger continuation
        for a slot this node anchors (as sender or receiver).

        ``cause`` (v3 spans) is the anchoring event — our own
        ``slot_exec`` or the anchoring frame's ``frame_tx`` — and
        becomes the parent of everything timed off this slot.
        """
        if slot in self._duties and slot not in self._duty_fired:
            fire_at = slot_start + self.timing.trigger_offset_us
            if fire_at >= self.sim.now:
                self.sim.schedule_at(fire_at, self._fire_duty, slot, cause)
        if (slot in self._rop_slots and slot not in self._polls_done
                and slot not in self._planned_polls):
            # Self-timed poll: this AP was active in the slot, so it
            # needs no over-the-air ROP signature; the poll starts one
            # WiFi slot after the trigger burst.
            poll_at = slot_start + self.timing.slot_duration_us
            if poll_at >= self.sim.now:
                self._planned_polls[slot] = self.sim.schedule_at(
                    poll_at, self._execute_poll, slot, cause
                )
        nxt = slot + 1
        if (nxt in self._self_trigger and nxt in self._send_entries
                and nxt not in self._executed):
            wait = self.timing.slot_duration_us
            if nxt in self._rop_wait:
                wait += self.timing.rop_slot_us
            self._plan_send(nxt, slot_start + wait, cause, "self")

    def on_tx_end(self, frame: Frame) -> None:
        if frame.kind is FrameKind.DATA:
            self._awaiting_ack = (frame, frame.meta.get("slot", -1))
            self._ack_timer = self.sim.schedule(
                self.profile.ack_timeout_us(), self._ack_timeout
            )

    def _ack_timeout(self) -> None:
        self._ack_timer = None
        if self._awaiting_ack is None:
            return
        frame, _slot = self._awaiting_ack
        self._awaiting_ack = None
        self.stats.ack_timeouts += 1
        # Sec. 3.5: retransmit via the next trigger for this destination.
        retry = frame.clone_for_retry()
        self.queues.queue_for(frame.dst).requeue_front(retry)

    # ==================================================================
    # Slot execution: receiver side
    # ==================================================================
    def on_receive(self, frame: Frame, rss_dbm: float) -> None:
        if frame.kind is FrameKind.BEACON:
            if self._observations is not None:
                self._observations[frame.src] = rss_dbm
            return
        if (frame.kind is FrameKind.DATA
                and frame.dst == self.node.node_id
                and "measure_report" in frame.meta):
            # Client observation report: relay down the wire (APs).
            if self.node.is_ap and self.send_to_controller is not None:
                self.send_to_controller({
                    "type": "measure_report",
                    "observer": frame.meta["observer"],
                    "heard": frame.meta["measure_report"],
                })
            self.sim.schedule(self.profile.sifs_us, self._send_ack, frame)
            return
        if frame.kind is FrameKind.DATA and frame.dst == self.node.node_id:
            self._deliver_up(frame)
            self.sim.schedule(self.profile.sifs_us, self._send_ack, frame)
            self._anchor_receiver(frame)
            return
        if frame.kind is FrameKind.FAKE and frame.dst == self.node.node_id:
            self._anchor_receiver(frame)
            return
        if (frame.kind is FrameKind.ACK and frame.dst == self.node.node_id
                and self._awaiting_ack is not None
                and frame.seq == self._awaiting_ack[0].seq):
            if self._ack_timer is not None:
                self._ack_timer.cancel()
                self._ack_timer = None
            self._awaiting_ack = None
            self.stats.successes += 1
            return
        if frame.kind is FrameKind.POLL:
            self._resync_on_poll(frame)
            self._maybe_send_report(frame)

    def on_receive_failed(self, frame: Frame, rss_dbm: float) -> None:
        # A garbled data frame still anchors the receiver's duty timing
        # (the node knows the slot layout and saw the energy).
        if frame.kind in (FrameKind.DATA, FrameKind.FAKE) \
                and frame.dst == self.node.node_id:
            self._anchor_receiver(frame)

    def _anchor_receiver(self, frame: Frame) -> None:
        """Fire duties / self-triggers using the frame's slot timing."""
        slot = frame.meta.get("slot")
        if slot is None:
            return
        self._last_anchor = self.sim.now
        airtime = self.profile.frame_airtime_us(frame)
        slot_start = self.sim.now - airtime
        self._note_slot(slot, slot_start)
        self._schedule_slot_followups(slot, slot_start,
                                      frame.meta.get(TX_META_KEY))

    def _send_ack(self, data: Frame) -> None:
        if self.radio.transmitting:
            return
        ack = ack_frame(self.node.node_id, data.src, data.seq, flow=data.flow)
        if self._trace.enabled:
            ack.meta[ORIGIN_META_KEY] = data.meta.get(TX_META_KEY)
        self.stats.acks_sent += 1
        self.radio.transmit(ack)

    # ==================================================================
    # Trigger duty
    # ==================================================================
    def _fire_duty(self, slot: int, cause: Optional[int] = None) -> None:
        duty = self._duties.get(slot)
        if duty is None or duty.empty or slot in self._duty_fired:
            return
        if self.radio.transmitting:
            return
        self._duty_fired.add(slot)
        burst = Frame(
            kind=FrameKind.TRIGGER,
            src=self.node.node_id,
            dst=None,
            meta={
                "slot": slot,
                "targets": duty.targets,
                "rop": duty.rop_flag,
                "rop_polls": duty.rop_polls,
            },
        )
        self.stats.triggers_sent += 1
        if self._trace.enabled:
            burst.meta[ORIGIN_META_KEY] = self._trace.trigger_fire(
                self.sim.now, self.node.node_id, slot, duty.targets,
                duty.rop_flag, duty.rop_polls, cause)
        self.radio.transmit(burst)

    # ==================================================================
    # ROP execution
    # ==================================================================
    def _execute_poll(self, slot: int, cause: Optional[int] = None) -> None:
        self._planned_polls.pop(slot, None)
        if slot in self._polls_done:
            return
        if self.radio.transmitting:
            return
        self._polls_done.add(slot)
        self.stats.polls_sent += 1
        self._last_anchor = self.sim.now
        poll_set = self._next_poll_set
        self._next_poll_set = (self._next_poll_set + 1) % max(
            self.n_poll_sets, 1)
        poll = Frame(kind=FrameKind.POLL, src=self.node.node_id, dst=None,
                     meta={"ap": self.node.node_id, "slot": slot,
                           "poll_set": poll_set})
        if self.timeline is not None:
            from ..topology.links import Link
            self.timeline.record(slot, Link(self.node.node_id,
                                            self.node.node_id),
                                 self.sim.now, kind="poll")
        if self._trace.enabled:
            poll.meta[ORIGIN_META_KEY] = self._trace.rop_poll(
                self.sim.now, self.node.node_id, slot, poll_set, cause)
        self.radio.transmit(poll)

    def _resync_on_poll(self, poll: Frame) -> None:
        """Adopt the polling AP's timing (reference broadcast).

        Sec. 3.1: the polling packet "behaves as a reference broadcast
        to synchronize the clients".  Because every non-polling node is
        silent during an ROP slot, the poll is the one transmission
        everyone in range can hear — the listening window that lets
        chains frozen at different offsets finally converge (the
        paper's Fig. 10 heal likewise happens while a node "is waiting
        for a polling slot").  A decoded packet timestamp is far
        sharper than a correlation peak, so no jitter is added.
        """
        slot = poll.meta.get("slot")
        if slot is None:
            return
        self._last_anchor = self.sim.now
        # Poll end -> one WiFi slot -> queue-report symbol -> one slot
        # of turnaround, then slot+1 begins (rop_slot_duration_us).
        next_start = (self.sim.now + self.profile.slot_us
                      + self.profile.rop_symbol_us + self.profile.slot_us)
        poll_airtime = self.profile.frame_airtime_us(poll)
        rop_start = self.sim.now - poll_airtime
        slot_start = (rop_start - self.timing.slot_us
                      - self.timing.trigger_burst_us
                      - self.timing.trigger_offset_us)
        self._note_slot(slot, slot_start)
        nxt = slot + 1
        if nxt in self._send_entries and nxt not in self._executed:
            self._plan_send(nxt, next_start, poll.meta.get(TX_META_KEY),
                            "poll")

    def _maybe_send_report(self, poll: Frame) -> None:
        """Client side: answer my AP's poll one slot later (Fig. 4).

        With more than 24 clients the AP polls in sets (Sec. 3.5); a
        client only answers polls addressed to its set.
        """
        if self.node.is_ap or poll.meta.get("ap") != self.node.ap_id:
            return
        if self.my_subchannel is None:
            return
        if poll.meta.get("poll_set", 0) != self.my_poll_set:
            return
        self.sim.schedule(self.profile.slot_us, self._send_report, poll)

    def _send_report(self, poll: Frame) -> None:
        if self.radio.transmitting:
            return
        backlog = self.queues.queue_for(self.node.ap_id)
        report = Frame(
            kind=FrameKind.QUEUE_REPORT,
            src=self.node.node_id,
            dst=self.node.ap_id,
            meta={
                "queue_len": backlog.rop_report(512),
                "true_backlog": len(backlog),
                "subchannel": self.my_subchannel,
                "slot": poll.meta.get("slot"),
            },
        )
        if self._trace.enabled:
            # Report tx is caused by the poll's transmission; the
            # poll's own rop_poll id rides along for the decode event.
            report.meta[ORIGIN_META_KEY] = poll.meta.get(TX_META_KEY)
            report.meta[_POLL_META_KEY] = poll.meta.get(ORIGIN_META_KEY)
        self.stats.reports_sent += 1
        self.radio.transmit(report)

    def on_queue_report(self, frame: Frame, rss_dbm: float) -> None:
        """AP side: buffer simultaneous reports, decode them jointly."""
        if not self.node.is_ap or frame.dst != self.node.node_id:
            return
        if self.rop_decoder is None:
            return
        self._rop_buffer.append(ReportObservation(
            client=frame.src,
            subchannel=frame.meta["subchannel"],
            rss_dbm=rss_dbm,
            queue_len=frame.meta["queue_len"],
        ))
        if self._rop_decode_event is None:
            self._rop_decode_event = self.sim.schedule(
                1.0, self._decode_reports, frame.meta.get("slot"),
                frame.meta.get(_POLL_META_KEY))

    def _decode_reports(self, slot: Optional[int] = None,
                        cause: Optional[int] = None) -> None:
        self._rop_decode_event = None
        observations = self._rop_buffer
        self._rop_buffer = []
        results = self.rop_decoder.decode(observations)
        decoded = {client: value for client, value in results.items()
                   if value is not None}
        self.stats.reports_decoded += len(decoded)
        self.stats.reports_failed += len(results) - len(decoded)
        if self._trace.enabled:
            self._trace.rop_decode(self.sim.now, self.node.node_id,
                                   len(decoded), len(results) - len(decoded),
                                   slot, self.rop_decoder.last_low_snr,
                                   self.rop_decoder.last_blocked, cause)
        if self.send_to_controller is not None and decoded:
            self.send_to_controller({
                "type": "rop_report",
                "ap": self.node.node_id,
                "queues": decoded,
            })

    # ==================================================================
    # Sec. 5 mobility: beacon campaign execution
    # ==================================================================
    def measure_order(self, order: Dict[str, Any]) -> None:
        """Join a measurement campaign (Sec. 5 dynamic conflict graph).

        Beacon in my assigned round, record every beacon I hear, then
        report the observations in my round of the report phase —
        clients over the air to their AP, APs straight down the wire.
        """
        my_round = None
        for index, round_nodes in enumerate(order["rounds"]):
            if self.node.node_id in round_nodes:
                my_round = index
                break
        if my_round is None:
            return
        self._observations = {}
        beacon_at = order["t0"] + my_round * order["round_us"]
        self.sim.schedule_at(max(beacon_at, self.sim.now),
                             self._send_beacon)
        report_at = (order["report0"]
                     + my_round * order["report_round_us"])
        self.sim.schedule_at(max(report_at, self.sim.now),
                             self._send_measure_report)

    def _send_beacon(self) -> None:
        if self.radio.transmitting:
            return
        self.radio.transmit(Frame(kind=FrameKind.BEACON,
                                  src=self.node.node_id, dst=None))

    def _send_measure_report(self) -> None:
        heard = self._observations if self._observations is not None else {}
        self._observations = None
        if self.node.is_ap:
            if self.send_to_controller is not None:
                self.send_to_controller({
                    "type": "measure_report",
                    "observer": self.node.node_id,
                    "heard": dict(heard),
                })
            return
        if self.radio.transmitting:
            return
        report = Frame(kind=FrameKind.DATA, src=self.node.node_id,
                       dst=self.node.ap_id,
                       payload_bytes=8 * max(len(heard), 1))
        report.meta["measure_report"] = dict(heard)
        report.meta["observer"] = self.node.node_id
        report.meta["mac_seq"] = -report.uid  # unique, bypasses enqueue
        self.radio.transmit(report)

    # ==================================================================
    # Sec. 5 coexistence: CoP occupancy measurement (APs)
    # ==================================================================
    def begin_cop_measurement(self) -> None:
        self._cop_meter.open(self.sim.now, self.radio.channel_busy())

    def end_cop_measurement(self) -> None:
        if not self._cop_meter.measuring:
            return
        busy = self._cop_meter.close(self.sim.now)
        if self.send_to_controller is not None:
            self.send_to_controller({"type": "cop_report", "busy": busy})

    def on_channel_busy(self) -> None:
        self._cop_meter.on_busy(self.sim.now)

    def on_channel_idle(self) -> None:
        self._cop_meter.on_idle(self.sim.now)

    # ==================================================================
    # Downlink queue reporting to the controller (wired)
    # ==================================================================
    REPORT_INTERVAL_US = 500.0

    def _on_enqueue(self, frame: Frame) -> None:
        if not self.node.is_ap or self.send_to_controller is None:
            return
        if not self._report_pending:
            self._report_pending = True
            self.sim.schedule(1.0, self._send_queue_report)

    def _send_queue_report(self) -> None:
        self._report_pending = False
        if self.send_to_controller is None:
            return
        backlogs = {dst: len(queue) for dst, queue in self.queues.items()}
        self.send_to_controller({
            "type": "ap_queues",
            "ap": self.node.node_id,
            "queues": backlogs,
        })
        if any(backlogs.values()):
            self._report_pending = True
            self.sim.schedule(self.REPORT_INTERVAL_US, self._send_queue_report)
