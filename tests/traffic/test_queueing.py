"""Tests for MAC queues and virtual-packet accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.packet import data_frame
from repro.traffic.queueing import ROP_MAX_REPORT, MacQueue, QueueSet


def frame(payload=512, seq=0):
    return data_frame(1, 2, payload, seq, 0.0)


def test_fifo_order():
    queue = MacQueue()
    frames = [frame(seq=i) for i in range(5)]
    for f in frames:
        queue.push(f)
    assert [queue.pop() for _ in range(5)] == frames


def test_drop_tail_when_full():
    queue = MacQueue(capacity=3)
    for i in range(5):
        accepted = queue.push(frame(seq=i))
        assert accepted == (i < 3)
    assert len(queue) == 3
    assert queue.stats.dropped == 2
    assert queue.stats.enqueued == 3


def test_requeue_front_restores_head():
    queue = MacQueue()
    queue.push(frame(seq=0))
    queue.push(frame(seq=1))
    head = queue.pop()
    queue.requeue_front(head)
    assert queue.pop().seq == 0


def test_peek_does_not_remove():
    queue = MacQueue()
    queue.push(frame(seq=7))
    assert queue.peek().seq == 7
    assert len(queue) == 1
    assert MacQueue().peek() is None


def test_virtual_packets_fixed_size():
    queue = MacQueue()
    for i in range(4):
        queue.push(frame(payload=512, seq=i))
    assert queue.virtual_packets(512) == 4


def test_virtual_packets_mixed_sizes():
    """Sec. 3.5: big packets count as several virtual packets, small
    ones still consume one slot each."""
    queue = MacQueue()
    queue.push(frame(payload=1500, seq=0))  # ceil(1500/512) = 3
    queue.push(frame(payload=100, seq=1))   # 1
    queue.push(frame(payload=512, seq=2))   # 1
    assert queue.virtual_packets(512) == 5


def test_virtual_packets_requires_positive_slot_size():
    queue = MacQueue()
    with pytest.raises(ValueError):
        queue.virtual_packets(0)


def test_rop_report_clamps_to_63():
    queue = MacQueue(capacity=200)
    for i in range(100):
        queue.push(frame(seq=i))
    assert queue.rop_report(512) == ROP_MAX_REPORT == 63


@given(st.lists(st.integers(min_value=1, max_value=4000), max_size=30))
def test_property_virtual_at_least_real(payloads):
    queue = MacQueue(capacity=100)
    for i, p in enumerate(payloads):
        queue.push(frame(payload=p, seq=i))
    assert queue.virtual_packets(512) >= len(queue)
    assert queue.rop_report(512) <= 63


def test_queue_set_per_destination():
    queues = QueueSet()
    queues.push(data_frame(1, 2, 512, 0, 0.0))
    queues.push(data_frame(1, 3, 512, 1, 0.0))
    queues.push(data_frame(1, 2, 512, 2, 0.0))
    assert queues.backlog_for(2) == 2
    assert queues.backlog_for(3) == 1
    assert queues.backlog_for(9) == 0
    assert queues.total_backlog() == 3
    assert set(queues.destinations_with_data()) == {2, 3}


def test_queue_set_rejects_broadcast():
    from repro.sim.packet import Frame, FrameKind
    queues = QueueSet()
    with pytest.raises(ValueError):
        queues.push(Frame(kind=FrameKind.DATA, src=1, dst=None))
