"""Replayable scenarios: JSON in, a fully seeded service run out.

A scenario file pins everything the online controller consumes — the
seed topology, the engine/debounce configuration, and one or more
event sources — so ``python -m repro.service --scenario f.json`` is
bit-reproducible run to run (all sources are seeded generators, and
the replay driver debounces on virtual time only).

Schema (all sections optional except ``topology``)::

    {
      "name": "forty-node-churn",
      "topology": {"kind": "random_t", "m": 10, "n": 3, "seed": 0},
      "config":   {"batch_slots": 12, "epoch_gap_us": 2000.0},
      "sources": [
        {"kind": "churn", "updates": 2000, "seed": 7},
        {"kind": "rss_wobble", "client": 1, "updates": 50},
        {"kind": "mobility", "node": 1, "to": [400.0, 400.0],
         "steps": 10, "interval_us": 5000.0},
        {"kind": "events", "events": [
          {"kind": "queue_update", "t_us": 10.0,
           "src": 0, "dst": 1, "backlog": 4}]}
      ]
    }

``topology.kind`` is ``"fig7"`` or ``"random_t"``; sources merge into
one stream sorted by ``t_us``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

from ..topology.builder import Topology, fig7_topology, random_t_topology
from .churn import ChurnConfig, churn_events, link_rss_wobble, mobility_events
from .events import ControllerEvent, event_from_json
from .incremental import ServiceConfig
from .state import NetworkState


@dataclass
class Scenario:
    """A parsed scenario, ready to run."""

    name: str
    topology: Topology
    config: ServiceConfig
    events: List[ControllerEvent] = field(default_factory=list)

    def make_state(self) -> NetworkState:
        return NetworkState.from_topology(self.topology)


def _build_topology(spec: Dict[str, Any]) -> Topology:
    kind = spec.get("kind")
    if kind == "fig7":
        return fig7_topology(uplinks=bool(spec.get("uplinks", False)))
    if kind == "random_t":
        return random_t_topology(
            m=int(spec["m"]), n=int(spec["n"]),
            area_m=float(spec.get("area_m", 800.0)),
            seed=int(spec.get("seed", 0)),
            tx_power_dbm=float(spec.get("tx_power_dbm", 20.0)),
            max_client_range_m=float(spec.get("max_client_range_m", 40.0)))
    raise ValueError(f"unknown topology kind: {kind!r}")


def _build_config(spec: Dict[str, Any]) -> ServiceConfig:
    config = ServiceConfig()
    for key in ("batch_slots", "demand_cap", "debounce_events"):
        if key in spec:
            setattr(config, key, int(spec[key]))
    if "epoch_gap_us" in spec:
        config.epoch_gap_us = float(spec["epoch_gap_us"])
    if "poll_every_batch" in spec:
        config.poll_every_batch = bool(spec["poll_every_batch"])
    return config


def _source_events(spec: Dict[str, Any], topology: Topology,
                   state: NetworkState) -> List[ControllerEvent]:
    kind = spec.get("kind")
    if kind == "churn":
        fields = {k: v for k, v in spec.items() if k != "kind"}
        return list(churn_events(state, ChurnConfig(**fields)))
    if kind == "rss_wobble":
        return list(link_rss_wobble(
            state, client=int(spec["client"]),
            updates=int(spec["updates"]), seed=int(spec.get("seed", 0)),
            start_us=float(spec.get("start_us", 0.0)),
            gap_us=float(spec.get("gap_us", 500.0)),
            jitter_db=float(spec.get("jitter_db", 1.5))))
    if kind == "mobility":
        to = spec["to"]
        return list(mobility_events(
            topology.trace, node=int(spec["node"]),
            to_pos=(float(to[0]), float(to[1])), steps=int(spec["steps"]),
            interval_us=float(spec["interval_us"]),
            start_us=float(spec.get("start_us", 0.0)),
            seed=int(spec.get("seed", 0))))
    if kind == "events":
        return [event_from_json(raw) for raw in spec["events"]]
    raise ValueError(f"unknown event source kind: {kind!r}")


def build_scenario(data: Dict[str, Any]) -> Scenario:
    """Assemble a scenario from already-parsed JSON."""
    topology = _build_topology(data.get("topology", {}))
    # Sources see a scratch state so generating events (which tracks
    # ground truth on copies anyway) can never leak into the state the
    # engine is later seeded from.
    scratch = NetworkState.from_topology(topology)
    events: List[ControllerEvent] = []
    for spec in data.get("sources", []):
        events.extend(_source_events(spec, topology, scratch))
    events.sort(key=lambda e: e.t_us)
    return Scenario(
        name=str(data.get("name", "scenario")),
        topology=topology,
        config=_build_config(data.get("config", {})),
        events=events,
    )


def load_scenario(path: str) -> Scenario:
    with open(path, "r", encoding="utf-8") as handle:
        return build_scenario(json.load(handle))
