"""Node placement generators.

Two placements are needed by the evaluation:

* :func:`two_building_placement` — stands in for the paper's 40-node
  testbed "spread across 2 buildings" (Sec. 4.2): two rectangular
  buildings separated by an outdoor gap, nodes dropped uniformly into
  rooms on a grid.  A wall counter approximates interior walls from
  room-grid crossings plus the exterior walls between buildings.

* :func:`random_placement` — uniform placement in an 800 x 800 m area
  for the Fig. 14 random-topology experiment.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, List, Tuple

Position = Tuple[float, float]


@dataclass
class Building:
    """Axis-aligned building footprint with a room grid."""

    x0: float
    y0: float
    width: float
    height: float
    room_size: float = 8.0

    def contains(self, pos: Position) -> bool:
        x, y = pos
        return (self.x0 <= x <= self.x0 + self.width
                and self.y0 <= y <= self.y0 + self.height)

    def random_position(self, rng: random.Random) -> Position:
        return (self.x0 + rng.uniform(0.0, self.width),
                self.y0 + rng.uniform(0.0, self.height))

    def rooms_crossed(self, a: Position, b: Position) -> int:
        """Rough interior-wall count: room-grid lines crossed by a-b."""
        ax, ay = a
        bx, by = b
        crossings_x = abs(int((ax - self.x0) // self.room_size)
                          - int((bx - self.x0) // self.room_size))
        crossings_y = abs(int((ay - self.y0) // self.room_size)
                          - int((by - self.y0) // self.room_size))
        return crossings_x + crossings_y


@dataclass
class TwoBuildingLayout:
    """Positions plus the wall counter used by the propagation model."""

    positions: List[Position]
    buildings: Tuple[Building, Building]

    def building_of(self, pos: Position) -> int:
        for idx, building in enumerate(self.buildings):
            if building.contains(pos):
                return idx
        return -1

    def wall_counter(self) -> Callable[[Position, Position], int]:
        """Walls crossed between two positions.

        Same building: interior room walls.  Different buildings: both
        exterior walls plus a couple of interior walls on each side —
        a deliberately coarse model; only the resulting RSS statistics
        matter, not geometric fidelity.
        """

        def count(a: Position, b: Position) -> int:
            ba = self.building_of(a)
            bb = self.building_of(b)
            if ba == bb and ba >= 0:
                return min(self.buildings[ba].rooms_crossed(a, b), 6)
            interior = 0
            if ba >= 0:
                interior += 2
            if bb >= 0:
                interior += 2
            return interior + 2  # two exterior walls

        return count


def two_building_placement(n_nodes: int = 40, seed: int = 0) -> TwoBuildingLayout:
    """Drop ``n_nodes`` into two adjacent 35 x 45 m building wings.

    Nodes alternate between the wings so both are populated, matching
    the paper's description of a testbed "spread across 2 buildings".
    The geometry is deliberately open (large rooms, nearly touching
    wings): combined with the default propagation model it yields the
    interference character the paper reports for its testbed-derived
    ``T(10, 2)`` — carrier sensing couples most sender pairs while few
    receptions actually conflict, i.e. an exposed-terminal-rich,
    hidden-terminal-poor mix (Sec. 4.2.3).
    """
    rng = random.Random(seed)
    buildings = (
        Building(x0=0.0, y0=0.0, width=35.0, height=45.0, room_size=25.0),
        Building(x0=39.0, y0=0.0, width=35.0, height=45.0, room_size=25.0),
    )
    positions = [
        buildings[i % 2].random_position(rng) for i in range(n_nodes)
    ]
    return TwoBuildingLayout(positions=positions, buildings=buildings)


def random_placement(n_nodes: int, area_m: float = 800.0,
                     seed: int = 0) -> List[Position]:
    """Uniform random positions in an ``area_m`` x ``area_m`` square."""
    rng = random.Random(seed)
    return [(rng.uniform(0.0, area_m), rng.uniform(0.0, area_m))
            for _ in range(n_nodes)]


def grid_placement(n_nodes: int, spacing_m: float = 30.0) -> List[Position]:
    """Deterministic grid, handy for tests and examples."""
    side = max(1, math.ceil(math.sqrt(n_nodes)))
    return [((i % side) * spacing_m, (i // side) * spacing_m)
            for i in range(n_nodes)]
