"""DOM203 fixture: a suppressed direct edge still leaks transitively.

The inline suppression pays for the ``leak -> sim`` edge itself, but
everything sim reaches (telemetry, helpers) now flows into a package
whose layers row allows nothing — the structural rule still fires.
"""

from ..sim import good  # dominolint: disable=DOM201


def peek():
    return good.due(0.0, 0.0)
