"""dominolint's CLI: file discovery, rule dispatch, output, exit codes."""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, TextIO

from .config import Config, ConfigError, load_config
from .deps import check_dependencies
from .determinism import check_determinism
from .findings import Finding, Suppressions
from .layering import check_layering
from .schema import (SchemaError, SchemaRegistry, check_baseline,
                     check_emissions, load_registry, write_baseline)

#: Exit codes, matching the doctor CLI convention.
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_BAD_INPUT = 2

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """All ``.py`` files under ``paths``, deterministically ordered."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
        else:
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    yield candidate


def _relpath(path: Path, root: Path) -> str:
    try:
        return str(path.resolve().relative_to(root.resolve()))
    except ValueError:
        return str(path)


def lint_file(path: Path, config: Config,
              registry: Optional[SchemaRegistry]) -> List[Finding]:
    """All findings for one file (suppressions already applied).

    Raises ``SyntaxError``/``OSError`` upward — unparseable input is
    the caller's exit-2 case, not a finding.
    """
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    rel = _relpath(path, config.root)
    module = config.module_name(path)
    findings: List[Finding] = []
    if module is not None:
        if config.in_sim_packages(module):
            findings.extend(check_determinism(tree, rel))
            findings.extend(check_dependencies(tree, rel, module, config))
        findings.extend(check_layering(
            tree, rel, module, is_package=path.name == "__init__.py",
            config=config))
        if registry is not None:
            findings.extend(check_emissions(tree, rel, registry))
    return Suppressions(source).filter(findings)


def lint_paths(paths: List[Path], config: Config,
               update_baseline: bool = False,
               stderr: Optional[TextIO] = None) -> int:
    """Lint ``paths``; print findings to ``stderr``; return exit code."""
    if stderr is None:  # bind at call time so capture/redirection works
        stderr = sys.stderr
    missing = [p for p in paths if not p.exists()]
    if missing:
        for path in missing:
            print(f"dominolint: no such path: {path}", file=stderr)
        return EXIT_BAD_INPUT

    try:
        registry: Optional[SchemaRegistry] = load_registry(config)
    except SchemaError as exc:
        print(f"dominolint: {exc}", file=stderr)
        return EXIT_BAD_INPUT

    findings: List[Finding] = []
    bad_input = False
    for path in iter_python_files(paths):
        try:
            findings.extend(lint_file(path, config, registry))
        except SyntaxError as exc:
            print(
                f"dominolint: cannot parse {_relpath(path, config.root)}:"
                f"{exc.lineno}: {exc.msg}", file=stderr)
            bad_input = True
        except OSError as exc:
            print(f"dominolint: cannot read {path}: {exc}", file=stderr)
            bad_input = True

    if update_baseline:
        write_baseline(registry, config)
    else:
        rel_events = _relpath(config.schema_events, config.root)
        baseline_findings = check_baseline(registry, config, rel_events)
        events_suppressions = Suppressions(config.schema_events.read_text())
        findings.extend(events_suppressions.filter(baseline_findings))

    for finding in sorted(set(findings)):
        print(finding.render(), file=stderr)
    if bad_input:
        return EXIT_BAD_INPUT
    return EXIT_FINDINGS if findings else EXIT_CLEAN


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "dominolint: determinism, layering and telemetry-schema "
            "checks for the DOMINO reproduction"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)")
    parser.add_argument(
        "--update-schema-baseline", action="store_true",
        help="rewrite the committed schema fingerprint from the live "
             "events.py registry (run after a deliberate schema change)")
    args = parser.parse_args(argv)
    try:
        config = load_config()
    except ConfigError as exc:
        print(f"dominolint: {exc}", file=sys.stderr)
        return EXIT_BAD_INPUT
    paths = [Path(p) for p in args.paths]
    return lint_paths(paths, config,
                      update_baseline=args.update_schema_baseline)
