"""Tests for the slot timeline recorder."""

import pytest

from repro.metrics.timeline import TimelineRecorder
from repro.topology.links import Link


def make_recorder():
    recorder = TimelineRecorder()
    # slot 0: spread 20 us; slot 1: spread 2 us; slot 2: aligned.
    recorder.record(0, Link(0, 1), 100.0)
    recorder.record(0, Link(2, 3), 120.0)
    recorder.record(1, Link(0, 1), 600.0)
    recorder.record(1, Link(2, 3), 602.0)
    recorder.record(2, Link(0, 1), 1100.0, fake=True, kind="fake")
    recorder.record(2, Link(2, 3), 1100.5)
    return recorder


def test_misalignment_by_slot():
    table = make_recorder().misalignment_by_slot()
    assert table[0] == pytest.approx(20.0)
    assert table[1] == pytest.approx(2.0)
    assert table[2] == pytest.approx(0.5)


def test_fake_counts_toward_misalignment():
    recorder = TimelineRecorder()
    recorder.record(0, Link(0, 1), 10.0)
    recorder.record(0, Link(2, 3), 40.0, fake=True, kind="fake")
    assert recorder.misalignment_by_slot()[0] == pytest.approx(30.0)


def test_polls_excluded_from_misalignment():
    recorder = TimelineRecorder()
    recorder.record(0, Link(0, 1), 10.0)
    recorder.record(0, Link(2, 2), 500.0, kind="poll")
    assert recorder.misalignment_by_slot()[0] == 0.0


def test_audible_filter_restricts_pairs():
    recorder = make_recorder()

    def never_audible(a, b):
        return False

    table = recorder.misalignment_by_slot(audible=never_audible)
    assert all(v == 0.0 for v in table.values())

    def only_0_and_2(a, b):
        return {a, b} == {0, 2}

    table = recorder.misalignment_by_slot(audible=only_0_and_2)
    assert table[0] == pytest.approx(20.0)


def test_series_fills_missing_slots():
    recorder = make_recorder()
    series = recorder.misalignment_series(5)
    assert len(series) == 5
    assert series[3] == 0.0 and series[4] == 0.0


def test_convergence_slot():
    recorder = make_recorder()
    assert recorder.convergence_slot(tolerance_us=2.0) == 1
    assert recorder.convergence_slot(tolerance_us=30.0) == 0
    assert TimelineRecorder().convergence_slot() is None


def test_render_contains_marks():
    text = make_recorder().render(names={0: "AP1", 1: "C1"})
    assert "AP1->C1" in text
    assert "D" in text
    assert "f" in text


def test_count_by_kind():
    recorder = make_recorder()
    assert recorder.count("data") == 5
    assert recorder.count("fake") == 1
    assert recorder.count("poll") == 0
