"""Trace recorders: the bounded-ring-buffer event sink and its no-op twin.

Instrumented components capture the *current* recorder once, at
construction time (``self._trace = telemetry.current()``), and guard
every hot-path emission with::

    tel = self._trace
    if tel.enabled:
        tel.frame_tx(...)

When telemetry is disabled — the default — ``current()`` returns the
module-level :data:`NULL` recorder whose ``enabled`` is ``False``, so
the instrumentation costs one attribute load and one branch per site
and nothing else.  ``benchmarks/test_telemetry_overhead.py`` keeps
that honest (<5 % on a reference fig12 run).

The *enabled* path is kept cheap by deferring work off the simulation
hot path: the typed helpers (``frame_tx`` .. ``batch_start``) append
one flat tuple of raw field values to the ring buffer — no dict is
built, nothing is sorted or rounded, the constant parts of a record
(the ``ev`` strings, the field names) exist exactly once as interned
module-level constants.  Records are materialized into the canonical
dict schema of :mod:`~repro.telemetry.events` only when read back
(``records()`` / ``events()`` / export), which is never inside the
event loop.  The enabled-path budget is asserted by the same
overhead benchmark (<20 %).
"""

from __future__ import annotations

from collections import deque
from typing import (IO, TYPE_CHECKING, Any, Deque, Iterable, Iterator, List,
                    Optional, Type, Union)

from . import jsonl
from .events import EVENT_TYPES, required_fields
from .log import get_logger
from .metrics import Metric, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - the recorder only duck-types
    from ..sim.packet import Frame  # Frame; no runtime sim dependency


#: Process-wide latch for the "metrics are being discarded" warning.
#: Lives at module level, not on the registry class, so *every* null
#: registry in the process shares it — a sweep of repeated
#: ``run_scheme(trace=None)`` calls warns exactly once, not once per
#: freshly constructed ``NullRecorder``.
_NULL_METRICS_WARNED = False


def reset_null_metrics_warning() -> None:
    """Re-arm the one-shot null-metrics warning (test helper)."""
    global _NULL_METRICS_WARNED
    _NULL_METRICS_WARNED = False


class _NullMetricsRegistry(MetricsRegistry):
    """The registry behind :class:`NullRecorder`: records into the void.

    Code that reaches ``recorder.metrics`` without a ``trace=`` opt-in
    (or outside an ``activate()`` session) silently loses its numbers,
    which is a classic source of "why is my counter zero" confusion —
    so the first write logs one warning naming the metric, then stays
    quiet.
    """

    def _get(self, name: str, cls: Type[Metric], **kwargs: Any) -> Metric:
        global _NULL_METRICS_WARNED
        if not _NULL_METRICS_WARNED:
            _NULL_METRICS_WARNED = True
            get_logger("telemetry").warning(
                "telemetry is disabled: metric %r (and anything else "
                "written to the null recorder) is discarded — activate "
                "telemetry first, e.g. run_scheme(..., trace=True) or "
                "telemetry.activate()", name)
        return super()._get(name, cls, **kwargs)


class NullRecorder:
    """Disabled telemetry: every operation is a no-op.

    Carries a throwaway metrics registry so code that reaches
    ``recorder.metrics`` without checking ``enabled`` still works (it
    records into the void, and warns once when it does); hot paths
    must check ``enabled`` first.
    """

    enabled = False

    def __init__(self) -> None:
        self.metrics: MetricsRegistry = _NullMetricsRegistry()

    # -- generic sink ---------------------------------------------------
    def emit(self, record: dict) -> None:
        pass

    # -- typed helpers (all no-ops, same signatures as TraceRecorder;
    # every helper returns the new event's id, which here is None) ----
    def frame_tx(self, t: float, node: int, frame: "Frame",
                 airtime_us: float) -> None:
        return None

    def frame_rx(self, t: float, node: int, frame: "Frame") -> None:
        return None

    def frame_drop(self, t: float, node: int, frame: "Frame",
                   reason: str) -> None:
        return None

    def sig_detect(self, t: float, node: int, src: int, slot: int,
                   sinr_db: float, combined: int, detected: bool,
                   p: Optional[float] = None,
                   cause: Optional[int] = None) -> None:
        return None

    def trigger_fire(self, t: float, node: int, slot: int,
                     targets: Iterable[int], rop: bool,
                     polls: Iterable[int],
                     cause: Optional[int] = None) -> None:
        return None

    def backup_trigger(self, t: float, node: int, slot: int,
                       reason: str) -> None:
        return None

    def slot_exec(self, t: float, node: int, slot: int, dst: int,
                  fake: bool, cause: Optional[int] = None,
                  via: Optional[str] = None) -> None:
        return None

    def rop_poll(self, t: float, node: int, slot: int, poll_set: int,
                 cause: Optional[int] = None) -> None:
        return None

    def rop_decode(self, t: float, node: int, decoded: int, failed: int,
                   slot: Optional[int] = None, low_snr: int = 0,
                   blocked: int = 0, cause: Optional[int] = None) -> None:
        return None

    def sched_dispatch(self, t: float, batch: int, first_slot: int,
                       last_slot: int, slots: int) -> None:
        return None

    def batch_start(self, t: float, batch: int, node: int,
                    cause: Optional[int] = None) -> None:
        return None

    def sched_revision(self, t: float, version: int, epoch: int,
                       events: int, dirty: int, full: bool, digest: str,
                       batch: int, cause: Optional[int] = None) -> None:
        return None

    def revision_phases(self, t: float, version: int, epoch: int,
                        membership_us: float, conflict_us: float,
                        cache_us: float, convert_us: float,
                        digest_us: float, total_us: float,
                        cause: Optional[int] = None) -> None:
        return None


#: The one shared disabled recorder (what ``telemetry.current()``
#: returns outside an activated session).
NULL = NullRecorder()


# ----------------------------------------------------------------------
# Causal-span plumbing (schema v3).  Event ids travel between
# instrumentation sites on ``Frame.meta`` under these keys; they are
# telemetry-private (only written when a recorder is enabled, stripped
# from nothing — frames are never serialized) and carry sim-derived
# values only, so determinism is untouched.
# ----------------------------------------------------------------------
#: ``frame.meta`` key: id of the decision event (``slot_exec`` /
#: ``trigger_fire`` / ``rop_poll`` / causing ``frame_tx``) that put
#: the frame on the air.  Read by :meth:`TraceRecorder.frame_tx` as
#: the transmission's ``cause``.
ORIGIN_META_KEY = "_tel_origin"

#: ``frame.meta`` key: id of the frame's own ``frame_tx`` event,
#: written by the medium at transmit time.  Read by ``frame_rx`` /
#: ``frame_drop`` as their ``cause``, and by receivers that react to
#: the frame (ACKs, queue reports, trigger detections).
TX_META_KEY = "_tel_tx"


# ----------------------------------------------------------------------
# Raw-tuple layout: (kind, *values) in schema field order.  Field-name
# tuples are derived from the event dataclasses so the two can never
# drift apart (test_every_helper_matches_its_schema pins this).
# ----------------------------------------------------------------------
_FIELDS = {kind: tuple(required_fields(kind)) for kind in EVENT_TYPES}

Raw = Union[tuple, dict]


def _materialize(raw: Raw) -> dict:
    """One buffered entry as its canonical record dict.

    Normalization deferred off the hot path happens here: set-valued
    fields are sorted (exports must be deterministic), floats captured
    at full precision are rounded to their schema width.
    """
    if type(raw) is dict:
        return raw
    kind = raw[0]
    record = {"ev": kind}
    record.update(zip(_FIELDS[kind], raw[1:]))
    if kind == "sig_detect":
        record["sinr_db"] = round(record["sinr_db"], 3)
        if record["p"] is not None:
            record["p"] = round(record["p"], 4)
    elif kind == "trigger_fire":
        record["targets"] = sorted(record["targets"])
        record["polls"] = sorted(record["polls"])
        record["rop"] = bool(record["rop"])
    elif kind == "revision_phases":
        for field in ("membership_us", "conflict_us", "cache_us",
                      "convert_us", "digest_us", "total_us"):
            record[field] = round(record[field], 1)
    return record


class TraceRecorder(NullRecorder):
    """Structured trace sink with a bounded ring buffer.

    Parameters
    ----------
    capacity:
        Maximum events held; once full, the *oldest* events are
        evicted (``evicted`` counts them).  A bounded buffer keeps
        long runs at O(capacity) memory — the tail of a trace is
        almost always the interesting part.
    metrics:
        Optional shared :class:`MetricsRegistry`; a fresh one is
        created by default.
    """

    enabled = True

    def __init__(self, capacity: int = 65536,
                 metrics: Optional[MetricsRegistry] = None):
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.capacity = capacity
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._events: Deque[Raw] = deque(maxlen=capacity)
        # Bound method cached: the hot helpers call it directly, so an
        # emission is one append + one counter bump.  The maxlen deque
        # evicts for us; ``evicted`` is derived, not counted inline.
        self._append = self._events.append
        self.emitted = 0

    # ------------------------------------------------------------------
    # Sink
    # ------------------------------------------------------------------
    def emit(self, record: dict) -> None:
        """Generic sink for pre-built record dicts (cold path)."""
        self._append(record)
        self.emitted += 1

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        # An empty recorder must not read as "no recorder" to code
        # doing `if trace:` — emptiness is `len(recorder) == 0`.
        return True

    @property
    def evicted(self) -> int:
        """Events pushed out of the ring by newer ones."""
        return self.emitted - len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.emitted = 0

    # ------------------------------------------------------------------
    # Typed helpers (hot path: append one raw tuple, nothing else).
    #
    # v3 causal spans: every helper stamps the event with its emission
    # index (``self.emitted`` *before* the bump) and returns it, so
    # instrumentation sites can thread the id into whatever the event
    # causes next.  Emission order is a pure function of the seeded
    # simulation, so the ids — and with them the byte-identical-digest
    # guarantee — stay deterministic; the id survives ring eviction
    # because it is assigned at emit time, not derived from position.
    # ------------------------------------------------------------------
    def frame_tx(self, t: float, node: int, frame: "Frame",
                 airtime_us: float) -> int:
        eid = self.emitted
        meta = frame.meta
        self._append(("frame_tx", t, node, frame.kind.value, frame.dst,
                      frame.seq, meta.get("slot"), airtime_us, eid,
                      meta.get(ORIGIN_META_KEY)))
        self.emitted = eid + 1
        return eid

    def frame_rx(self, t: float, node: int, frame: "Frame") -> int:
        eid = self.emitted
        meta = frame.meta
        self._append(("frame_rx", t, node, frame.src, frame.kind.value,
                      frame.seq, meta.get("slot"), eid,
                      meta.get(TX_META_KEY)))
        self.emitted = eid + 1
        return eid

    def frame_drop(self, t: float, node: int, frame: "Frame",
                   reason: str) -> int:
        eid = self.emitted
        meta = frame.meta
        self._append(("frame_drop", t, node, frame.src, frame.kind.value,
                      frame.seq, meta.get("slot"), reason, eid,
                      meta.get(TX_META_KEY)))
        self.emitted = eid + 1
        return eid

    def sig_detect(self, t: float, node: int, src: int, slot: int,
                   sinr_db: float, combined: int, detected: bool,
                   p: Optional[float] = None,
                   cause: Optional[int] = None) -> int:
        eid = self.emitted
        self._append(("sig_detect", t, node, src, slot, sinr_db, combined,
                      detected, p, eid, cause))
        self.emitted = eid + 1
        return eid

    def trigger_fire(self, t: float, node: int, slot: int,
                     targets: Iterable[int], rop: bool,
                     polls: Iterable[int],
                     cause: Optional[int] = None) -> int:
        # Sets are captured as-is (immutable frozensets in practice)
        # and sorted at materialize time.
        eid = self.emitted
        self._append(("trigger_fire", t, node, slot, tuple(targets), rop,
                      tuple(polls), eid, cause))
        self.emitted = eid + 1
        return eid

    def backup_trigger(self, t: float, node: int, slot: int,
                       reason: str) -> int:
        eid = self.emitted
        self._append(("backup_trigger", t, node, slot, reason, eid))
        self.emitted = eid + 1
        return eid

    def slot_exec(self, t: float, node: int, slot: int, dst: int,
                  fake: bool, cause: Optional[int] = None,
                  via: Optional[str] = None) -> int:
        eid = self.emitted
        self._append(("slot_exec", t, node, slot, dst, fake, eid, cause,
                      via))
        self.emitted = eid + 1
        return eid

    def rop_poll(self, t: float, node: int, slot: int, poll_set: int,
                 cause: Optional[int] = None) -> int:
        eid = self.emitted
        self._append(("rop_poll", t, node, slot, poll_set, eid, cause))
        self.emitted = eid + 1
        return eid

    def rop_decode(self, t: float, node: int, decoded: int, failed: int,
                   slot: Optional[int] = None, low_snr: int = 0,
                   blocked: int = 0, cause: Optional[int] = None) -> int:
        eid = self.emitted
        self._append(("rop_decode", t, node, decoded, failed, slot,
                      low_snr, blocked, eid, cause))
        self.emitted = eid + 1
        return eid

    def sched_dispatch(self, t: float, batch: int, first_slot: int,
                       last_slot: int, slots: int) -> int:
        eid = self.emitted
        self._append(("sched_dispatch", t, batch, first_slot, last_slot,
                      slots, eid))
        self.emitted = eid + 1
        return eid

    def batch_start(self, t: float, batch: int, node: int,
                    cause: Optional[int] = None) -> int:
        eid = self.emitted
        self._append(("batch_start", t, batch, node, eid, cause))
        self.emitted = eid + 1
        return eid

    def sched_revision(self, t: float, version: int, epoch: int,
                       events: int, dirty: int, full: bool, digest: str,
                       batch: int, cause: Optional[int] = None) -> int:
        eid = self.emitted
        self._append(("sched_revision", t, version, epoch, events, dirty,
                      full, digest, batch, eid, cause))
        self.emitted = eid + 1
        return eid

    def revision_phases(self, t: float, version: int, epoch: int,
                        membership_us: float, conflict_us: float,
                        cache_us: float, convert_us: float,
                        digest_us: float, total_us: float,
                        cause: Optional[int] = None) -> int:
        # Wall-clock phase durations, rounded at materialize time; only
        # emitted behind the explicit phase-timing opt-in (v5 note).
        eid = self.emitted
        self._append(("revision_phases", t, version, epoch, membership_us,
                      conflict_us, cache_us, convert_us, digest_us,
                      total_us, eid, cause))
        self.emitted = eid + 1
        return eid

    # ------------------------------------------------------------------
    # Query / export
    # ------------------------------------------------------------------
    def _materialized(self) -> Iterator[dict]:
        for raw in self._events:
            yield _materialize(raw)

    def events(self, kind: Optional[str] = None,
               node: Optional[int] = None,
               t0: Optional[float] = None,
               t1: Optional[float] = None) -> Iterator[dict]:
        """Iterate buffered records, optionally filtered."""
        for record in self._materialized():
            if kind is not None and record.get("ev") != kind:
                continue
            if node is not None and record.get("node") != node:
                continue
            t = record.get("t", 0.0)
            if t0 is not None and t < t0:
                continue
            if t1 is not None and t > t1:
                continue
            yield record

    def records(self) -> List[dict]:
        return list(self._materialized())

    def export_jsonl(self, path: str) -> int:
        """Write the buffered trace to ``path`` (canonical JSONL)."""
        return jsonl.dump_jsonl(path, self._materialized())

    def write_jsonl(self, stream: IO[str]) -> int:
        return jsonl.write_jsonl(stream, self._materialized())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceRecorder({len(self)}/{self.capacity} buffered, "
                f"{self.emitted} emitted, {self.evicted} evicted)")
