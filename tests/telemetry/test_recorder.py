"""Recorder semantics: ring eviction, no-op path, activation, JSONL."""

import io
import logging

import pytest

from repro import telemetry
from repro.sim.packet import Frame, FrameKind
from repro.telemetry import (NULL, NullRecorder, TraceRecorder, from_record,
                             jsonl)
from repro.telemetry.events import SignatureDetect, required_fields


@pytest.fixture(autouse=True)
def _clean_module_state():
    telemetry.deactivate()
    yield
    telemetry.deactivate()


def make_frame(src=0, dst=1, seq=7, slot=None):
    frame = Frame(kind=FrameKind.DATA, src=src, dst=dst, seq=seq,
                  payload_bytes=512)
    if slot is not None:
        frame.meta["slot"] = slot
    return frame


class TestRingBuffer:
    def test_eviction_keeps_newest(self):
        rec = TraceRecorder(capacity=4)
        for i in range(10):
            rec.emit({"ev": "x", "t": float(i)})
        assert len(rec) == 4
        assert rec.emitted == 10
        assert rec.evicted == 6
        assert [r["t"] for r in rec.records()] == [6.0, 7.0, 8.0, 9.0]

    def test_no_eviction_below_capacity(self):
        rec = TraceRecorder(capacity=4)
        rec.emit({"ev": "x", "t": 0.0})
        assert rec.evicted == 0 and rec.emitted == 1

    def test_clear_resets_counters(self):
        rec = TraceRecorder(capacity=2)
        for i in range(5):
            rec.emit({"ev": "x", "t": float(i)})
        rec.clear()
        assert len(rec) == 0 and rec.emitted == 0 and rec.evicted == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)

    def test_empty_recorder_is_truthy(self):
        # __len__ alone would make a fresh recorder falsy, and
        # `run_scheme(..., trace=TraceRecorder(...))` would silently
        # skip activation.
        assert TraceRecorder()
        assert len(TraceRecorder()) == 0


class TestNullRecorder:
    def test_disabled_and_silent(self):
        null = NullRecorder()
        assert null.enabled is False
        # Every typed helper must be callable and record nothing.
        null.emit({"ev": "x", "t": 0.0})
        null.frame_tx(0.0, 1, make_frame(), 100.0)
        null.frame_rx(0.0, 1, make_frame())
        null.frame_drop(0.0, 1, make_frame(), "sinr")
        null.sig_detect(0.0, 1, 2, 3, 12.0, 1, True)
        null.trigger_fire(0.0, 1, 3, {2, 4}, False, set())
        null.backup_trigger(0.0, 1, 3, "watchdog")
        null.slot_exec(0.0, 1, 3, 2, False)
        null.rop_poll(0.0, 1, 3, 0)
        null.rop_decode(0.0, 1, 2, 0)
        null.sched_dispatch(0.0, 1, 0, 7, 8)
        null.batch_start(0.0, 1, 0)
        # Metrics sink exists (records into the void) — callers that
        # skip the `enabled` check must not crash.
        null.metrics.counter("x").inc()

    def test_null_mirrors_trace_recorder_interface(self):
        # Any typed helper added to TraceRecorder needs a no-op twin
        # declared on NullRecorder itself, otherwise code written
        # against the null interface misses events on a real recorder.
        hot_path = [name for name in vars(NullRecorder)
                    if not name.startswith("_") and
                    callable(getattr(NullRecorder, name))]
        assert "emit" in hot_path and "frame_tx" in hot_path
        for name in hot_path:
            assert name in vars(TraceRecorder), (
                f"TraceRecorder must override the no-op {name}")


class TestActivation:
    def test_default_is_null(self):
        assert telemetry.current() is NULL
        assert telemetry.enabled() is False

    def test_activate_returns_fresh_recorder(self):
        rec = telemetry.activate()
        assert isinstance(rec, TraceRecorder)
        assert telemetry.current() is rec
        assert telemetry.enabled() is True

    def test_activate_accepts_explicit_recorder(self):
        mine = TraceRecorder(capacity=16)
        assert telemetry.activate(mine) is mine
        assert telemetry.current() is mine

    def test_nested_activation_is_an_error(self):
        telemetry.activate()
        with pytest.raises(RuntimeError):
            telemetry.activate()

    def test_deactivate_is_idempotent(self):
        telemetry.activate()
        telemetry.deactivate()
        telemetry.deactivate()
        assert telemetry.current() is NULL


class TestTypedHelpers:
    def test_frame_helpers_use_frame_fields_not_uid(self):
        rec = TraceRecorder()
        rec.frame_tx(10.0, 0, make_frame(slot=3), 450.0)
        rec.frame_rx(11.0, 1, make_frame(slot=3))
        rec.frame_drop(12.0, 1, make_frame(), "tx_busy")
        tx, rx, drop = rec.records()
        assert tx == {"ev": "frame_tx", "t": 10.0, "node": 0,
                      "frame": "data", "dst": 1, "seq": 7, "slot": 3,
                      "airtime_us": 450.0, "id": 0, "cause": None}
        assert rx["src"] == 0 and rx["slot"] == 3
        assert drop["reason"] == "tx_busy" and drop["slot"] is None
        # The process-global frame uid must never leak into a record.
        assert all("uid" not in r for r in (tx, rx, drop))

    def test_set_fields_sorted_at_emit(self):
        rec = TraceRecorder()
        rec.trigger_fire(5.0, 2, 4, {9, 1, 5}, True, {8, 0})
        record = rec.records()[0]
        assert record["targets"] == [1, 5, 9]
        assert record["polls"] == [0, 8]

    def test_records_round_trip_through_typed_events(self):
        rec = TraceRecorder()
        rec.sig_detect(20.0, 3, 1, 4, 17.123456, 2, True)
        event = from_record(rec.records()[0])
        assert isinstance(event, SignatureDetect)
        assert event.sinr_db == 17.123       # rounded at emit
        assert event.detected is True

    def test_every_helper_matches_its_schema(self):
        rec = TraceRecorder()
        rec.frame_tx(0.0, 0, make_frame(), 1.0)
        rec.frame_rx(0.0, 1, make_frame())
        rec.frame_drop(0.0, 1, make_frame(), "sinr")
        rec.sig_detect(0.0, 1, 0, 2, 9.0, 1, False)
        rec.trigger_fire(0.0, 1, 2, [3], False, [])
        rec.backup_trigger(0.0, 1, 2, "initial")
        rec.slot_exec(0.0, 1, 2, 3, True)
        rec.rop_poll(0.0, 1, 2, 0)
        rec.rop_decode(0.0, 1, 1, 0)
        rec.sched_dispatch(0.0, 0, 0, 5, 6)
        rec.batch_start(0.0, 0, 1)
        for record in rec.records():
            kind = record["ev"]
            assert set(record) - {"ev"} == set(required_fields(kind)), kind
            from_record(record)  # parses without TypeError

    def test_events_filter(self):
        rec = TraceRecorder()
        rec.slot_exec(10.0, 1, 0, 2, False)
        rec.slot_exec(20.0, 2, 1, 3, False)
        rec.backup_trigger(30.0, 1, 2, "watchdog")
        assert len(list(rec.events(kind="slot_exec"))) == 2
        assert len(list(rec.events(node=1))) == 2
        assert [r["t"] for r in rec.events(t0=15.0, t1=25.0)] == [20.0]


class TestJsonl:
    def test_round_trip_values_and_header(self, tmp_path):
        rec = TraceRecorder()
        rec.slot_exec(10.5, 1, 0, 2, False)
        rec.trigger_fire(11.0, 2, 0, {4, 3}, True, {1})
        path = str(tmp_path / "trace.jsonl")
        lines = rec.export_jsonl(path)
        assert lines == 3  # header + 2 records
        loaded = jsonl.load_jsonl(path)
        assert loaded == rec.records()

    def test_header_is_first_line_and_versioned(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        TraceRecorder().export_jsonl(path)
        with open(path) as handle:
            first = handle.readline().strip()
        assert first == '{"__domino_trace__":5,"schema_version":5}'

    def test_unsupported_schema_version_rejected(self):
        stream = io.StringIO('{"__domino_trace__":99}\n{"ev":"x","t":0}\n')
        with pytest.raises(jsonl.TraceFormatError):
            jsonl.load_jsonl(stream)

    def test_newer_schema_version_rejected_with_clear_error(self):
        stream = io.StringIO(
            '{"__domino_trace__":2,"schema_version":99}\n{"ev":"x","t":0}\n')
        with pytest.raises(jsonl.TraceFormatError) as err:
            jsonl.load_jsonl(stream)
        assert "newer than this build supports" in str(err.value)

    def test_v1_header_still_accepted(self):
        # v1 headers carry only the magic key; v2 fields all default.
        stream = io.StringIO(
            '{"__domino_trace__":1}\n'
            '{"ev":"sig_detect","t":1.0,"node":2,"src":1,"slot":0,'
            '"sinr_db":9.0,"combined":1,"detected":true}\n')
        records = jsonl.load_jsonl(stream)
        event = from_record(records[0])
        assert event.detected is True and event.p is None

    def test_require_header(self):
        stream = io.StringIO('{"ev":"x","t":0}\n')
        with pytest.raises(jsonl.TraceFormatError):
            list(jsonl.read_jsonl(stream, require_header=True))

    def test_blank_lines_skipped(self):
        stream = io.StringIO(
            '{"__domino_trace__":1}\n\n{"ev":"x","t":1.0}\n\n')
        assert jsonl.load_jsonl(stream) == [{"ev": "x", "t": 1.0}]

    def test_dumps_record_is_canonical(self):
        a = jsonl.dumps_record({"b": 1, "a": 2})
        b = jsonl.dumps_record({"a": 2, "b": 1})
        assert a == b == '{"a":2,"b":1}'
        with pytest.raises(ValueError):
            jsonl.dumps_record({"x": float("nan")})


class TestNullMetricsWarning:
    """Writing metrics to the disabled recorder warns once, then stays
    quiet — the numbers go nowhere, and the user should hear about it
    exactly one time per process."""

    @pytest.fixture()
    def captured(self):
        from repro.telemetry import recorder as recorder_mod
        from repro.telemetry.log import get_logger

        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(record)

        handler = Capture()
        logger = get_logger("telemetry")
        logger.addHandler(handler)
        previous = recorder_mod._NULL_METRICS_WARNED
        recorder_mod.reset_null_metrics_warning()
        try:
            yield records
        finally:
            logger.removeHandler(handler)
            recorder_mod._NULL_METRICS_WARNED = previous

    def test_warns_once_and_still_counts_into_the_void(self, captured):
        recorder = NullRecorder()
        recorder.metrics.counter("lost.frames").inc()
        recorder.metrics.gauge("lost.depth").set(3)
        recorder.metrics.counter("lost.frames").inc()

        assert len(captured) == 1
        message = captured[0].getMessage()
        assert "lost.frames" in message and "discarded" in message
        assert captured[0].levelno == logging.WARNING
        # The registry still works — callers never crash, they just
        # record into the void.
        assert recorder.metrics.counter("lost.frames").value == 2.0

    def test_warns_once_per_process_not_per_instance(self, captured):
        # A sweep calls run_scheme(trace=None) once per point, each of
        # which can construct fresh NullRecorders — the flag must be
        # process-wide or N points produce N identical warnings.
        for _ in range(3):
            NullRecorder().metrics.counter("lost.frames").inc()
        assert len(captured) == 1

    def test_enabled_recorder_never_warns(self, captured):
        recorder = TraceRecorder()
        recorder.metrics.counter("kept.frames").inc()
        assert captured == []
