"""The blessed wall-clock boundary (``taint-sanitizers`` in config).

Functions here *do* read the clock, but their contract — readings
feed telemetry, never simulation state — is reviewed, so the taint
engine treats the module as a sink, not a source.
"""

import time


def span_s():
    return time.time()
