"""Unit-level checks of the matrix backend's load-bearing invariants.

The digest tests prove end-to-end identity; these pin the individual
mechanisms so a future regression fails with a named invariant instead
of "digest mismatch somewhere in 100k events".
"""

import pytest

from repro.experiments.common import make_engine, run_scheme
from repro.sim.engine import Simulator
from repro.sim.matrix import MatrixSimulator
from repro.sim.protocol import EngineProtocol
from repro.topology.builder import fig1_topology


def test_make_engine_dispatch():
    assert type(make_engine("event", seed=1)) is Simulator
    assert type(make_engine("matrix", seed=1)) is MatrixSimulator
    with pytest.raises(ValueError):
        make_engine("quantum", seed=1)


def test_both_engines_satisfy_protocol():
    assert isinstance(Simulator(seed=1), EngineProtocol)
    assert isinstance(MatrixSimulator(seed=1), EngineProtocol)


def test_serial_counters_are_per_simulation():
    sim = Simulator(seed=1)
    assert [sim.serial("a"), sim.serial("a"), sim.serial("b")] == [1, 2, 1]
    # A fresh simulator must count from zero again — this is what keeps
    # back-to-back runs in one process byte-identical.
    fresh = MatrixSimulator(seed=1)
    assert fresh.serial("a") == 1


def _mid_flight_state(engine):
    """Run saturated fig1 to a mid-transmission instant; return
    (now, per-node (total_incoming_mw, channel_busy)) snapshots."""
    result = run_scheme("dcf", fig1_topology(), horizon_us=2_000.0,
                        seed=1, saturated=True, engine=engine)
    sim = next(iter(result.macs.values())).sim
    snapshot = {
        node.node_id: (node.radio.total_incoming_mw(),
                       node.radio.channel_busy())
        for node in result.topology.network
    }
    return sim.now, snapshot


def test_summation_order_matches_reference():
    """Interference totals are bit-identical, not merely close.

    The matrix medium folds per-transmission powers left-to-right
    (never ``ndarray.sum``'s pairwise tree) precisely so these floats
    match the reference radio's running dict-sum on every node.
    """
    now_a, event_state = _mid_flight_state("event")
    now_b, matrix_state = _mid_flight_state("matrix")
    assert now_a == now_b
    assert event_state == matrix_state   # exact float equality intended
