"""Figure 2: per-link throughput on the motivating 3-pair topology.

The Fig. 1 network (AP1 hidden to AP3, C2/AP1 exposed) run saturated
under DCF, CENTAUR, DOMINO and the omniscient scheduler.  The paper's
headline: the omniscient scheme is 76 % above DCF and 61 % above
CENTAUR overall, and DOMINO lands close to the omniscient bound —
C2->AP2 transmits in every slot while AP1->C1 and AP3->C3 alternate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..runner import TopologySpec, run_sweep, scheme_sweep
from ..topology.builder import fig1_topology
from ..topology.links import Link
from .common import format_table

SCHEMES = ("dcf", "centaur", "domino", "omniscient")


@dataclass
class Fig2Result:
    per_link_mbps: Dict[str, Dict[Link, float]] = field(default_factory=dict)
    overall_mbps: Dict[str, float] = field(default_factory=dict)

    def gain(self, scheme: str, over: str) -> float:
        base = self.overall_mbps[over]
        return self.overall_mbps[scheme] / base if base else float("inf")


def run(horizon_us: float = 1_000_000.0, seed: int = 1,
        workers: int = 0) -> Fig2Result:
    sweep = run_sweep(
        scheme_sweep(SCHEMES, TopologySpec(fig1_topology),
                     horizon_us=horizon_us, seed=seed, saturated=True),
        workers=workers)
    topology = fig1_topology()
    result = Fig2Result()
    for scheme, run_result in zip(SCHEMES, sweep.points):
        result.per_link_mbps[scheme] = {
            flow: run_result.flow_mbps(flow) for flow in topology.flows
        }
        result.overall_mbps[scheme] = run_result.aggregate_mbps
    return result


def report(result: Fig2Result) -> str:
    topology = fig1_topology()
    names = {0: "AP1", 1: "C1", 2: "AP2", 3: "C2", 4: "AP3", 5: "C3"}
    headers = ["scheme",
               *(f"{names[f.src]}->{names[f.dst]}" for f in topology.flows),
               "overall"]
    rows = []
    for scheme in SCHEMES:
        rows.append(
            [scheme,
             *(f"{result.per_link_mbps[scheme][f]:.2f}" for f in topology.flows),
             f"{result.overall_mbps[scheme]:.2f}"]
        )
    lines = [format_table(headers, rows)]
    lines.append(
        f"omniscient / dcf     = {result.gain('omniscient', 'dcf'):.2f}x"
        "  (paper: 1.76x)"
    )
    lines.append(
        f"omniscient / centaur = {result.gain('omniscient', 'centaur'):.2f}x"
        "  (paper: 1.61x)"
    )
    lines.append(
        f"domino / omniscient  = {result.gain('domino', 'omniscient'):.2f}"
        "  (paper: close to 1)"
    )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI entry
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
