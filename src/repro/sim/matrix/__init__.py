"""Vectorized matrix backend for the simulation engine.

A second implementation of the engine contract
(:mod:`repro.sim.protocol`): the same heap-driven event loop as the
reference :class:`~repro.sim.engine.Simulator`, but the per-edge energy
bookkeeping — incoming-power totals, worst-case interference, trigger
signature overlap, interrupt flags — is batched into numpy matrix
operations over *all* receivers at once instead of per-radio Python
loops.  Per-slot MAC timers are kept — their heap sequence numbers
order simultaneous commits, so they are observable (see
:mod:`repro.sim.protocol`) — but each tick's carrier-sense check is
O(1) here instead of a reception-dict scan.

The backend is selected once, at
:func:`repro.experiments.common.run_scheme` (``engine="matrix"``), and
is observationally indistinguishable from the reference engine: the
canonical trace digests are byte-identical for the same
(scheme, topology, seed).  See :mod:`repro.sim.matrix.medium` for the
equivalence argument, float by float.
"""

from __future__ import annotations

from .engine import MatrixSimulator
from .medium import MatrixMedium
from .radio import MatrixRadio

__all__ = ["MatrixSimulator", "MatrixMedium", "MatrixRadio"]
