"""Topology construction: the paper's canonical figures and T(m, n).

``T(m, n)`` (Sec. 4.2.1): sort trace nodes by communication-range
degree decreasing; take the highest-degree unused node as an AP and
randomly pick ``n`` of its communication-range neighbours as clients;
repeat for ``m`` APs.

Canonical figures are encoded as explicit RSS maps whose *semantics*
the paper specifies (who hears whom, which links collide where):

* Fig. 1  — three AP-client pairs; AP1 hidden to AP3 (collides at C3),
  C2 and AP1 exposed to each other.
* Fig. 7  — four AP-client pairs; AP2 and AP3 collide at AP1; AP3 and
  AP4 hidden to each other; conflict graph pairs (1,2) and (3,4).
* Fig. 13a — four downlinks all mutually exposed.
* Fig. 13b — three senders out of range of each other sharing one
  common exposed link (AP4 hears all of AP1..AP3).

RSS levels used (dBm): association -50, carrier-sense-only hearing
-70, reception-breaking interference -55, out of range -120.  With
the 802.11g profile (CS -82 dBm, 12 Mbps threshold 8 dB) these encode
exactly the hearing/conflict relations above.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.engine import Simulator
from ..sim.medium import Medium
from ..sim.node import Network
from ..sim.phy import DOT11G, PhyProfile
from .interference_map import InterferenceMap
from .links import Link
from .propagation import NS3_DEFAULT, LogDistanceModel
from .trace import SyntheticTrace, manual_trace

ASSOC_DBM = -50.0     # AP <-> its clients
HEAR_DBM = -70.0      # carrier-sense range, reception survives
BREAK_DBM = -55.0     # close enough to destroy a -50 dBm reception
FAR_DBM = -120.0


@dataclass
class Topology:
    """A runnable network: nodes, RSS ground truth and traffic flows.

    ``flows`` are transport-level (src, dst) pairs; the set of *links*
    the scheduler reasons about is both directions of every AP-client
    association that appears in some flow (plus fake-link candidates
    added by the converter).
    """

    network: Network
    trace: SyntheticTrace
    profile: PhyProfile = DOT11G
    flows: List[Link] = field(default_factory=list)
    name: str = "topology"

    def interference_map(self, margin_db: float = 3.0) -> InterferenceMap:
        return InterferenceMap(self.trace.rss_fn(), self.profile,
                               margin_db=margin_db)

    def build_medium(self, sim: Simulator) -> Medium:
        # The engine picks its medium implementation (event vs matrix
        # backend); the topology only supplies PHY + RSS ground truth.
        medium = sim.make_medium(self.profile, self.trace.rss_fn())
        self.network.attach_all(medium)
        return medium

    def flow_links(self) -> List[Link]:
        return list(self.flows)

    def all_association_links(self) -> List[Link]:
        """Both directions of every AP-client association.

        This is the link universe for fake-link insertion: a node can
        be kept "triggered frequently" through either direction of its
        association (Sec. 3.3).
        """
        links: List[Link] = []
        for client in self.network.clients:
            links.append(Link(client.ap_id, client.node_id))
            links.append(Link(client.node_id, client.ap_id))
        return links

    def downlinks(self) -> List[Link]:
        return [f for f in self.flows
                if self.network.nodes[f.src].is_ap]

    def uplinks(self) -> List[Link]:
        return [f for f in self.flows
                if not self.network.nodes[f.src].is_ap]


# ----------------------------------------------------------------------
# Canonical paper figures
# ----------------------------------------------------------------------
def _pairs_topology(n_pairs: int, rss: Dict[Tuple[int, int], float],
                    flows: Sequence[Link], name: str) -> Topology:
    """AP_i = 2*(i-1), C_i = 2*(i-1)+1 for i in 1..n_pairs."""
    network = Network()
    for i in range(n_pairs):
        ap = network.add_ap(2 * i)
        network.add_client(2 * i + 1, ap.node_id)
    trace = manual_trace(2 * n_pairs, rss, default_dbm=FAR_DBM)
    return Topology(network=network, trace=trace, flows=list(flows), name=name)


def fig1_topology() -> Topology:
    """Fig. 1: AP1->C1 (downlink), C2->AP2 (uplink), AP3->C3 (downlink).

    AP1 (0), C1 (1), AP2 (2), C2 (3), AP3 (4), C3 (5).
    AP1 hidden to AP3: AP1's signal collides at C3 but AP1/AP3 cannot
    hear each other.  C2 and AP1 are exposed to each other.
    """
    rss = {
        (0, 1): ASSOC_DBM, (2, 3): ASSOC_DBM, (4, 5): ASSOC_DBM,
        (0, 3): HEAR_DBM,   # AP1 <-> C2 exposed pair
        (0, 5): BREAK_DBM,  # AP1 destroys C3's reception (hidden terminal)
    }
    flows = [Link(0, 1), Link(3, 2), Link(4, 5)]
    return _pairs_topology(3, rss, flows, name="fig1")


def fig7_topology(uplinks: bool = False) -> Topology:
    """Fig. 7: four AP-client pairs.

    AP1 (0), C1 (1), AP2 (2), C2 (3), AP3 (4), C3 (5), AP4 (6), C4 (7).
    Downlink conflict graph: AP1->C1 -- AP2->C2 and AP3->C3 -- AP4->C4.
    AP2's and AP3's signals both reach AP1 (they collide there); AP3
    and AP4 are hidden to each other; C4 can trigger AP3 (point 1 in
    Fig. 10).
    """
    rss = {
        (0, 1): ASSOC_DBM, (2, 3): ASSOC_DBM,
        (4, 5): ASSOC_DBM, (6, 7): ASSOC_DBM,
        # Pair 1/2 conflict: each AP breaks the other pair's client.
        (2, 1): BREAK_DBM, (0, 3): BREAK_DBM,
        # Pair 3/4 conflict.
        (6, 5): BREAK_DBM, (4, 7): BREAK_DBM,
        # AP2 and AP3 are audible at AP1 (collide at AP1, Sec. 3.2).
        (2, 0): HEAR_DBM, (4, 0): HEAR_DBM,
        # C4 is in range of AP3: receiver-triggers-hidden-sender path.
        (7, 4): HEAR_DBM,
        # C1 in range of AP2's client chain partner for cross triggers.
        (1, 2): HEAR_DBM,
    }
    flows = [Link(0, 1), Link(2, 3), Link(4, 5), Link(6, 7)]
    if uplinks:
        flows += [Link(1, 0), Link(3, 2), Link(5, 4), Link(7, 6)]
    return _pairs_topology(4, rss, flows, name="fig7")


def fig13a_topology() -> Topology:
    """Fig. 13a: four downlinks, all senders hear each other, no conflicts."""
    rss = {(2 * i, 2 * i + 1): ASSOC_DBM for i in range(4)}
    for i in range(4):
        for j in range(i + 1, 4):
            rss[(2 * i, 2 * j)] = HEAR_DBM  # AP_i <-> AP_j
    flows = [Link(2 * i, 2 * i + 1) for i in range(4)]
    return _pairs_topology(4, rss, flows, name="fig13a")


def fig13b_topology() -> Topology:
    """Fig. 13b: AP1..AP3 out of range of each other; AP4 hears all three."""
    rss = {(2 * i, 2 * i + 1): ASSOC_DBM for i in range(4)}
    for i in range(3):
        rss[(2 * i, 6)] = HEAR_DBM  # AP_i <-> AP4
    flows = [Link(2 * i, 2 * i + 1) for i in range(4)]
    return _pairs_topology(4, rss, flows, name="fig13b")


def usrp_pair_topology(scenario: str) -> Topology:
    """Table 2 USRP scenarios: two AP-client pairs.

    ``scenario`` is one of:

    * ``'SC'`` — same contention domain, neither hidden nor exposed:
      everyone hears everyone, and concurrent transmissions collide.
    * ``'HT'`` — hidden terminals: senders cannot hear each other,
      each sender's signal breaks the other pair's reception.
    * ``'ET'`` — exposed terminals: senders hear each other, but both
      receptions survive concurrent transmissions.

    AP1 (0), C1 (1), AP2 (2), C2 (3); flows are the two downlinks.
    """
    rss: Dict[Tuple[int, int], float] = {
        (0, 1): ASSOC_DBM, (2, 3): ASSOC_DBM,
    }
    if scenario == "SC":
        rss.update({(0, 2): HEAR_DBM, (0, 3): BREAK_DBM, (2, 1): BREAK_DBM,
                    (1, 3): HEAR_DBM})
    elif scenario == "HT":
        rss.update({(0, 3): BREAK_DBM, (2, 1): BREAK_DBM})
    elif scenario == "ET":
        rss.update({(0, 2): HEAR_DBM})
    else:
        raise ValueError(f"unknown USRP scenario {scenario!r}")
    flows = [Link(0, 1), Link(2, 3)]
    topo = _pairs_topology(2, rss, flows, name=f"usrp-{scenario.lower()}")
    from ..sim.phy import USRP
    topo.profile = USRP
    return topo


# ----------------------------------------------------------------------
# T(m, n) from a trace (Sec. 4.2.1)
# ----------------------------------------------------------------------
class TopologyError(RuntimeError):
    """Raised when a T(m, n) cannot be carved out of the trace."""


def build_t_topology(trace: SyntheticTrace, m: int, n: int,
                     seed: int = 0, name: Optional[str] = None) -> Topology:
    """Construct ``T(m, n)``: ``m`` APs with ``n`` clients each.

    Follows the paper's procedure: nodes sorted by communication-range
    degree decreasing; the first unused node becomes an AP and ``n``
    random communication-range neighbours (unused so far) become its
    clients; repeat.  Raises :class:`TopologyError` when the trace
    cannot support the requested shape.
    """
    rng = random.Random(seed)
    order = trace.degree_order()
    used: set = set()
    network = Network()
    assignments: List[Tuple[int, List[int]]] = []

    for candidate in order:
        if len(assignments) == m:
            break
        if candidate in used:
            continue
        neighbors = [x for x in trace.comm_neighbors(candidate) if x not in used]
        if len(neighbors) < n:
            continue
        clients = rng.sample(neighbors, n)
        used.add(candidate)
        used.update(clients)
        assignments.append((candidate, clients))

    if len(assignments) < m:
        raise TopologyError(
            f"trace supports only {len(assignments)} of the requested {m} APs"
        )

    flows: List[Link] = []
    for ap_id, clients in assignments:
        network.add_ap(ap_id, pos=trace.positions[ap_id] if trace.positions else None)
        for client_id in clients:
            network.add_client(
                client_id, ap_id,
                pos=trace.positions[client_id] if trace.positions else None,
            )
            flows.append(Link(ap_id, client_id))       # downlink
            flows.append(Link(client_id, ap_id))       # uplink
    return Topology(network=network, trace=trace, flows=flows,
                    name=name or f"T({m},{n})")


def random_t_topology(m: int, n: int, area_m: float = 800.0, seed: int = 0,
                      model: Optional[LogDistanceModel] = None,
                      tx_power_dbm: float = 20.0,
                      max_client_range_m: float = 40.0) -> Topology:
    """Fig. 14 style topology: T(m, n) placed randomly in a square.

    The paper "randomly placed nodes in an 800 x 800 m area and
    create[d] a topology T(20, 3), which consists of 80 nodes".  A
    uniform draw of exactly ``m * (n + 1)`` nodes almost never packs
    into the shape (isolated nodes are inevitable at this density), so
    we realise the natural deployment reading: AP positions are drawn
    uniformly over the area, and each AP's ``n`` clients are dropped
    uniformly within association range of it.  The RSS matrix between
    *all* pairs then comes from the ns-3-default log-distance model,
    so inter-cell interference varies exactly as with a free draw.
    """
    prop = model if model is not None else NS3_DEFAULT
    rng = random.Random(seed)
    positions: List[Tuple[float, float]] = []
    network = Network()
    flows: List[Link] = []
    node_id = 0
    for _ in range(m):
        ap_pos = (rng.uniform(0.0, area_m), rng.uniform(0.0, area_m))
        ap_id = node_id
        positions.append(ap_pos)
        network.add_ap(ap_id, pos=ap_pos)
        node_id += 1
        for _ in range(n):
            # Uniform over the disc around the AP (clamped to the area).
            import math as _math
            radius = max_client_range_m * _math.sqrt(rng.random())
            angle = rng.uniform(0.0, 2.0 * _math.pi)
            pos = (min(max(ap_pos[0] + radius * _math.cos(angle), 0.0), area_m),
                   min(max(ap_pos[1] + radius * _math.sin(angle), 0.0), area_m))
            positions.append(pos)
            network.add_client(node_id, ap_id, pos=pos)
            flows.append(Link(ap_id, node_id))
            flows.append(Link(node_id, ap_id))
            node_id += 1
    matrix = prop.rss_matrix(positions, tx_power_dbm=tx_power_dbm, seed=seed)
    trace = SyntheticTrace(rss_dbm=matrix, positions=positions,
                           comm_threshold_dbm=-90.0)
    from ..sim.phy import DOT11G_NS3
    return Topology(network=network, trace=trace, flows=flows,
                    profile=DOT11G_NS3, name=f"random-T({m},{n})#{seed}")
