"""Fixture schema whose shape changed without a version bump."""

SCHEMA_VERSION = 1


class TraceEvent:
    t: float


class PingEvent(TraceEvent):
    KIND = "ping"

    node: int
    burst: int = 0
