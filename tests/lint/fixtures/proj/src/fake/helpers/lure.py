"""Wall-clock laundering helpers (the DOM105 fixture's supply chain).

This module is *not* in sim-packages, so DOM101 has no opinion about
it — which is the whole point: the clock read hides here, two call
hops away from the sim code that consumes it.
"""

import time


def read_clock():
    return time.time()


def jittered_now():
    base = read_clock()
    return base + 0.5
