"""RAND-style greedy scheduler (Sec. 4.2.1).

The paper schedules with "the scheduler modified based on RAND, a
greedy algorithm": maintain a queue of links ``Q``; per slot, take the
first link with data, then keep adding further non-conflicting links
with data; scheduled links move to the tail of ``Q`` for fairness.

The scheduler is stateful: the fairness rotation of ``Q`` persists
across batches, which is what gives the alternating patterns in
Fig. 7(c) / Fig. 10.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import networkx as nx

from ..topology.links import Link
from .strict_schedule import StrictSchedule

#: Additive-interference test over one slot's worth of links.
SetCheck = Callable[[Sequence[Link]], bool]


class RandScheduler:
    """Greedy maximal-set scheduler with fairness rotation.

    Parameters
    ----------
    conflict_graph:
        Link conflict graph; an edge forbids slot sharing.
    links:
        The link universe in initial queue order (deterministic).
    """

    def __init__(self, conflict_graph: "nx.Graph[Link]",
                 links: Sequence[Link],
                 set_check: Optional[SetCheck] = None):
        self.graph = conflict_graph
        self._queue: List[Link] = list(links)
        #: Optional additive-interference test over a whole slot;
        #: pairwise compatibility is necessary but not sufficient when
        #: several interferers add up at one receiver.
        self.set_check = set_check
        missing = [l for l in self._queue if l not in conflict_graph]
        if missing:
            raise ValueError(f"links missing from conflict graph: {missing}")

    @property
    def queue(self) -> List[Link]:
        """Current fairness order (read-only copy)."""
        return list(self._queue)

    def add_links(self, links: Sequence[Link]) -> None:
        """Admit newly associated links at the tail of the queue.

        Joining at the tail means a newcomer waits at most one full
        rotation before its first slot — the same position a freshly
        scheduled link lands in — so existing fairness state is
        undisturbed.  Links must already be vertices of the conflict
        graph (the caller updates the graph first).
        """
        present = set(self._queue)
        for link in links:
            if link in present:
                continue
            if link not in self.graph:
                raise ValueError(f"link missing from conflict graph: {link}")
            self._queue.append(link)
            present.add(link)

    def remove_links(self, links: Sequence[Link]) -> None:
        """Drop departed links, preserving the rest of the rotation."""
        gone = set(links)
        if gone:
            self._queue = [l for l in self._queue if l not in gone]

    def _build_slot(self, demands: Dict[Link, int]) -> List[Link]:
        """One greedy maximal set of backlogged links, in queue order."""
        slot: List[Link] = []
        for link in self._queue:
            if demands.get(link, 0) <= 0:
                continue
            if any(self.graph.has_edge(link, chosen) for chosen in slot):
                continue
            if self.set_check is not None and not self.set_check([*slot, link]):
                continue
            slot.append(link)
        return slot

    def _rotate(self, scheduled: Sequence[Link]) -> None:
        """Move just-scheduled links to the tail of the queue."""
        scheduled_set = set(scheduled)
        remaining = [l for l in self._queue if l not in scheduled_set]
        self._queue = remaining + [l for l in self._queue if l in scheduled_set]

    def schedule_batch(self, demands: Dict[Link, int],
                       max_slots: int) -> StrictSchedule:
        """Schedule up to ``max_slots`` slots serving ``demands``.

        ``demands`` maps each link to the number of packets it wants to
        send; each scheduled slot serves one packet of every link in
        it.  The input dict is not modified.  Scheduling stops early
        when every demand is satisfied.
        """
        remaining = {l: d for l, d in demands.items() if d > 0}
        schedule = StrictSchedule()
        for _ in range(max_slots):
            if not remaining:
                break
            slot = self._build_slot(remaining)
            if not slot:
                break
            schedule.append(slot)
            self._rotate(slot)
            for link in slot:
                remaining[link] -= 1
                if remaining[link] <= 0:
                    del remaining[link]
        return schedule

    def unsatisfied_after(self, demands: Dict[Link, int],
                          schedule: StrictSchedule) -> Dict[Link, int]:
        """Demands left over after ``schedule`` runs (for re-scheduling)."""
        served = schedule.service_counts()
        leftover = {}
        for link, want in demands.items():
            rest = want - served.get(link, 0)
            if rest > 0:
                leftover[link] = rest
        return leftover
