"""Live sweep observability: heartbeat records and the parent monitor.

Long multi-process sweeps used to run silently until ``run_sweep()``
returned.  This module gives them a pulse: workers post small plain
dicts (:func:`start_record` / :func:`finish_record`) over a queue the
moment they pick up or finish a point, and the parent feeds them into
a :class:`SweepMonitor` that renders per-point one-liners, a running
events/sec figure, an ETA, and a stall warning for any point that has
been running far longer than its finished peers.

Everything that crosses the process boundary is a plain dict of
scalars — never traces, never live objects — so observability cannot
perturb the determinism contract (digests are computed worker-side
from the same records either way).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

__all__ = ["SweepMonitor", "finish_record", "start_record"]


def start_record(index: int, label: str) -> dict:
    """Heartbeat a worker posts when it picks up a point."""
    return {"kind": "start", "index": index, "label": label}


def finish_record(index: int, label: str, wall_s: float, events: int,
                  findings: Optional[List[str]] = None,
                  causality: Optional[dict] = None) -> dict:
    """Heartbeat a worker posts when a point's result is reduced.

    ``findings``/``causality`` ride along only for ``diagnose=True``
    sweeps: the doctor's finding strings and the picklable
    :func:`~repro.telemetry.analysis.summarize_causality` rollup.
    """
    record = {"kind": "finish", "index": index, "label": label,
              "wall_s": wall_s, "events": events}
    if findings is not None:
        record["findings"] = list(findings)
    if causality is not None and causality.get("batches", 1):
        # A scheme without dispatch batches (dcf) has no chains; a
        # "critical p95 0.00 ms" line would just be noise.
        record["makespan_p95_us"] = causality.get("makespan_p95_us")
    return record


def doctor_line(findings: Optional[List[str]]) -> str:
    """One-liner health verdict for a finished point."""
    if findings is None:
        return ""
    if not findings:
        return "doctor: ok"
    first = findings[0]
    if len(first) > 60:
        first = first[:57] + "..."
    return f"doctor: {len(findings)} finding(s) — {first}"


class SweepMonitor:
    """Parent-side consumer of worker heartbeats.

    Feed it every queue record via :meth:`note`; call
    :meth:`check_stalls` whenever the queue is quiet.  Rendered lines
    go to ``emit`` (e.g. ``print`` or a log method).  ``clock`` is
    injectable so tests can script time instead of sleeping.
    """

    def __init__(self, n_points: int, workers: int,
                 emit: Callable[[str], None],
                 stall_timeout_s: float = 60.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.n_points = n_points
        self.workers = max(1, workers)
        self.emit = emit
        self.stall_timeout_s = stall_timeout_s
        self.clock = clock
        self.started_at: Dict[int, float] = {}
        self.labels: Dict[int, str] = {}
        self.finished = 0
        self.total_events = 0
        self.busy_s = 0.0             # summed worker wall time of finished
        self._stall_flagged: set = set()

    # -- heartbeat intake -------------------------------------------------

    def note(self, record: dict) -> None:
        if record.get("kind") == "start":
            self.note_start(record["index"], record.get("label", ""))
        elif record.get("kind") == "finish":
            self.note_finish(record)

    def note_start(self, index: int, label: str) -> None:
        self.started_at[index] = self.clock()
        self.labels[index] = label

    def note_finish(self, record: dict) -> None:
        index = record["index"]
        self.started_at.pop(index, None)
        self._stall_flagged.discard(index)
        self.finished += 1
        self.total_events += int(record.get("events", 0))
        wall_s = float(record.get("wall_s", 0.0))
        self.busy_s += wall_s
        rate = record.get("events", 0) / wall_s if wall_s > 0 else 0.0
        parts = [f"[{self.finished}/{self.n_points}] "
                 f"{record.get('label', '?')} finished in {wall_s:.2f}s "
                 f"({rate / 1000.0:.0f}k ev/s)"]
        verdict = doctor_line(record.get("findings"))
        if verdict:
            parts.append(verdict)
        p95 = record.get("makespan_p95_us")
        if p95 is not None:
            parts.append(f"critical p95 {p95 / 1000.0:.2f} ms")
        eta = self.eta_s()
        if eta is not None:
            parts.append(f"ETA {eta:.0f}s")
        self.emit(" | ".join(parts))

    # -- derived state ----------------------------------------------------

    def eta_s(self) -> Optional[float]:
        """Remaining wall-clock estimate from finished-point averages."""
        remaining = self.n_points - self.finished
        if remaining <= 0:
            return 0.0
        if not self.finished:
            return None
        mean_s = self.busy_s / self.finished
        return remaining * mean_s / self.workers

    def check_stalls(self) -> List[str]:
        """Flag points running far beyond the stall timeout (once each)."""
        now = self.clock()
        stalled = []
        for index, started in sorted(self.started_at.items()):
            if index in self._stall_flagged:
                continue
            running_s = now - started
            if running_s >= self.stall_timeout_s:
                self._stall_flagged.add(index)
                label = self.labels.get(index, f"#{index}")
                stalled.append(label)
                self.emit(f"stall: point {label} has been running "
                          f"{running_s:.0f}s with no heartbeat "
                          f"(timeout {self.stall_timeout_s:.0f}s)")
        return stalled
