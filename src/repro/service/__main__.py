"""Online controller CLI.

Usage::

    python -m repro.service --scenario examples/service_churn.json \
        [--check-every N] [--trace out.jsonl] [--json] [--quiet] \
        [--ops-port PORT] [--phase-timing] [--slo-p99-ms MS] \
        [--flight-dump-dir DIR]

Replays the scenario deterministically (virtual-time debouncing) and
prints the run summary.  ``--check-every N`` verifies every N-th epoch
against a from-scratch recompute — exit code 3 flags a digest
mismatch, which is a correctness bug, never load.  ``--trace`` writes
the ``sched_revision`` stream (plus metrics) as telemetry JSONL for
``python -m repro.telemetry summarize``.

The live ops plane (:mod:`repro.telemetry.ops`) rides along on
demand: ``--ops-port`` serves ``/metrics`` (Prometheus text),
``/healthz`` and ``/statusz`` while the replay runs, ``--phase-timing``
times each revision phase, ``--slo-p99-ms`` arms the rolling-p99 SLO
tracker (breaches print doctor-style findings to stderr as they
happen) and ``--flight-dump-dir`` arms the flight recorder, which
dumps the trace-ring tail to a JSONL file on oracle mismatch or SLO
breach.

Exit codes: 0 success, 2 unreadable/invalid scenario, 3 oracle
mismatch.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import List, Optional, Sequence

from .. import telemetry
from ..telemetry.metrics import MetricsRegistry
from ..telemetry.ops import (FlightRecorder, OpsServer, SloConfig,
                             SloTracker)
from .events import ControllerEvent
from .incremental import IncrementalController
from .scenario import load_scenario
from .service import ControllerService, OracleMismatch, ServiceStats

_EXIT_CODES = """\
exit codes:
  0  clean run (a one-line summary with the final revision version
     and oracle-check count goes to stderr)
  2  unreadable or invalid scenario file
  3  equality-oracle mismatch: an incremental revision's digest
     diverged from the from-scratch recompute (a correctness bug,
     never load; the flight recorder, if armed, has dumped the
     trace tail)
"""


async def _run_with_ops(service: ControllerService,
                        events: Sequence[ControllerEvent],
                        metrics: MetricsRegistry,
                        port: int, linger_s: float) -> ServiceStats:
    """Replay with the ops endpoint serving concurrently.

    The deterministic replay runs in a worker thread so the event
    loop stays free to answer scrapes; epoch boundaries are still a
    pure function of the scenario.  ``linger_s`` keeps the endpoint
    up after the replay drains (smoke tests scrape a finished run).
    """
    server = OpsServer(metrics, status_fn=service.status,
                       healthy_fn=service.healthy, port=port)
    bound = await server.start()
    print(f"ops endpoint on http://127.0.0.1:{bound} "
          "(/metrics /healthz /statusz)", file=sys.stderr, flush=True)
    loop = asyncio.get_running_loop()
    try:
        stats = await loop.run_in_executor(
            None, service.run_events, list(events))
        if linger_s > 0:
            await asyncio.sleep(linger_s)
        return stats
    finally:
        await server.stop()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Replay a controller scenario through the online "
                    "incremental scheduler.",
        epilog=_EXIT_CODES,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--scenario", required=True,
                        help="scenario JSON file (see repro.service."
                             "scenario for the schema)")
    parser.add_argument("--check-every", type=int, default=0,
                        metavar="N",
                        help="verify every N-th epoch against a "
                             "from-scratch recompute (0 = off)")
    parser.add_argument("--trace", metavar="OUT.JSONL", default=None,
                        help="write telemetry JSONL (sched_revision "
                             "events + metrics) to this path")
    parser.add_argument("--json", action="store_true",
                        help="emit the summary as JSON instead of text")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the stdout summary (the one-line "
                             "exit status still goes to stderr)")
    ops = parser.add_argument_group("live ops")
    ops.add_argument("--ops-port", type=int, default=None, metavar="PORT",
                     help="serve /metrics, /healthz and /statusz on "
                          "127.0.0.1:PORT while the replay runs "
                          "(0 picks a free port; the bound address is "
                          "printed to stderr)")
    ops.add_argument("--ops-linger", type=float, default=0.0,
                     metavar="SEC",
                     help="keep the ops endpoint up SEC seconds after "
                          "the replay finishes (for scrapers)")
    ops.add_argument("--phase-timing", action="store_true",
                     help="time each revision phase (adds "
                          "revision_phases trace events and "
                          "service.phase.* histograms)")
    ops.add_argument("--slo-p99-ms", type=float, default=None,
                     metavar="MS",
                     help="rolling-window p99 revision-latency target; "
                          "breaches print findings to stderr live")
    ops.add_argument("--flight-dump-dir", metavar="DIR", default=None,
                     help="arm the flight recorder: dump the trace-ring "
                          "tail to DIR on oracle mismatch or SLO breach")
    args = parser.parse_args(argv)

    try:
        scenario = load_scenario(args.scenario)
    except OSError as exc:
        print(f"error: cannot read {args.scenario}: "
              f"{exc.strerror or exc}", file=sys.stderr)
        return 2
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        print(f"error: invalid scenario {args.scenario}: {exc}",
              file=sys.stderr)
        return 2

    if args.phase_timing:
        scenario.config.phase_timing = True

    # The ops plane rides on the telemetry session: the exporter reads
    # the active metrics registry and the flight recorder freezes the
    # active trace ring, so any ops flag turns telemetry on even when
    # no --trace file was asked for.
    want_telemetry = bool(args.trace or args.ops_port is not None
                          or args.flight_dump_dir)
    recorder = telemetry.activate() if want_telemetry else None

    slo: Optional[SloTracker] = None
    if args.slo_p99_ms is not None:
        slo = SloTracker(SloConfig(p99_target_ms=args.slo_p99_ms))
        slo.subscribe(lambda alert: print(alert.render(), file=sys.stderr))
    flight: Optional[FlightRecorder] = None
    if args.flight_dump_dir and recorder is not None:
        flight = FlightRecorder(recorder, args.flight_dump_dir)

    try:
        engine = IncrementalController(scenario.make_state(),
                                       scenario.config)
        service = ControllerService(engine, check_every=args.check_every,
                                    slo=slo, flight=flight)
        try:
            if args.ops_port is not None and recorder is not None:
                stats = asyncio.run(_run_with_ops(
                    service, scenario.events, recorder.metrics,
                    args.ops_port, args.ops_linger))
            else:
                stats = service.run_events(scenario.events)
        except OracleMismatch as exc:
            print(f"ORACLE MISMATCH: {exc}", file=sys.stderr)
            if flight is not None and flight.dumps:
                print(f"flight recorder dump: {flight.dumps[-1]}",
                      file=sys.stderr)
            return 3
    finally:
        if recorder is not None:
            telemetry.deactivate()
    if recorder is not None and args.trace:
        recorder.export_jsonl(args.trace)

    if not args.quiet:
        if args.json:
            payload = {
                "scenario": scenario.name,
                "events": stats.events,
                "ignored_events": stats.ignored_events,
                "revisions": stats.revisions,
                "epochs": stats.epochs,
                "revision_p50_ms": stats.revision_p50_ms,
                "revision_p99_ms": stats.revision_p99_ms,
                "revision_mean_ms": stats.revision_mean_ms,
                "incremental_hit_rate": stats.incremental_hit_rate,
                "conflict_checks": stats.conflict_checks,
                "oracle_checks": stats.oracle_checks,
                "last_digest": stats.last_digest,
            }
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(f"scenario           {scenario.name}")
            print(stats.render())
    print(f"clean exit: revision version {engine.version}, "
          f"{stats.oracle_checks} oracle check(s)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
