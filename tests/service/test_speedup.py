"""Acceptance criterion: incremental >= 5x full recompute.

At 40 nodes (T(10, 3)) under single-link RSS deltas, one incremental
revision (apply + revise) must run at least five times faster than a
from-scratch recompute of the same state.  Measured as totals over a
30-event stream so one scheduler hiccup cannot decide the verdict;
every compared pair is also digest-checked, so the speedup is over
*provably identical* outputs.
"""

import time

from repro.service import (IncrementalController, NetworkState,
                           ServiceConfig, link_rss_wobble)
from repro.topology.builder import random_t_topology

MIN_SPEEDUP = 5.0
UPDATES = 30


def quiet_client(engine, revision):
    """A client whose links sit outside the steady-state template.

    Single-link deltas on a *scheduled* link genuinely change the
    next batch (the cache rightly reconverts); the acceptance
    criterion is about the common case — drift on one of the many
    links the current schedule does not carry.
    """
    template = {e.link for slot in revision.batch.slots
                for e in slot.entries}
    for client in sorted(engine.state.clients):
        if not any(client in (l.src, l.dst) for l in template):
            return client
    raise AssertionError("every client scheduled; topology too small")


def test_single_link_delta_speedup_at_forty_nodes():
    topology = random_t_topology(10, 3, seed=1)
    state = NetworkState.from_topology(topology)
    assert state.n_nodes == 40
    engine = IncrementalController(state, ServiceConfig())
    warmup = engine.revise(0.0, 0, engine.apply_events([]))
    client = quiet_client(engine, warmup)
    events = link_rss_wobble(NetworkState.from_topology(topology),
                             client=client, updates=UPDATES,
                             gap_us=5_000.0, jitter_db=0.75)

    incremental_s = full_s = 0.0
    for i, event in enumerate(events):
        t0 = time.perf_counter()
        applied = engine.apply_events([event])
        apply_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        _batch, expected = engine.full_recompute()
        full_s += time.perf_counter() - t0

        t0 = time.perf_counter()
        revision = engine.revise(event.t_us, i + 1, applied)
        incremental_s += apply_s + time.perf_counter() - t0

        assert revision.digest == expected, f"oracle mismatch at {i}"
        assert applied.n_dirty_links == 2  # exactly the client's pair

    speedup = full_s / incremental_s
    assert engine.cache.hits > engine.cache.misses, (
        "single-link deltas should mostly replay from cache",
        engine.cache.hits, engine.cache.misses)
    assert speedup >= MIN_SPEEDUP, (
        f"incremental {incremental_s * 1e3:.1f} ms vs "
        f"full {full_s * 1e3:.1f} ms = {speedup:.2f}x "
        f"(hits={engine.cache.hits} misses={engine.cache.misses})")
